// Explore the structural properties of any supported topology: degrees,
// diameter, average distance, link inventory, and a distance histogram.
// These are the quantities Section 3's topology discussion rests on.
//
//   ./topology_explorer [spec ...]
//   e.g. ./topology_explorer dlm:5:10x10 grid:10x10 hypercube:7

#include <cstdio>
#include <string>
#include <vector>

#include "oracle.hpp"

int main(int argc, char** argv) {
  using namespace oracle;

  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) specs.push_back(argv[i]);
  if (specs.empty())
    specs = {"grid:10x10", "torus:10x10", "dlm:5:10x10", "hypercube:7",
             "ring:16", "complete:16"};

  for (const auto& spec : specs) {
    const auto topo = topo::make_topology(spec);
    const topo::DistanceMatrix dm(*topo);

    std::size_t min_deg = SIZE_MAX, p2p = 0, buses = 0;
    for (topo::NodeId n = 0; n < topo->num_nodes(); ++n)
      min_deg = std::min(min_deg, topo->neighbors(n).size());
    for (const auto& link : topo->links())
      (link.is_bus() ? buses : p2p) += 1;

    std::printf("== %s ==\n", topo->name().c_str());
    std::printf("  nodes           %u\n", topo->num_nodes());
    std::printf("  links           %zu (%zu point-to-point, %zu buses)\n",
                topo->num_links(), p2p, buses);
    std::printf("  degree          min %zu, max %zu\n", min_deg,
                topo->max_degree());
    std::printf("  diameter        %u\n", dm.diameter());
    std::printf("  avg distance    %.2f\n", dm.average_distance());

    // Distance histogram from node 0 (radial reach of the network).
    stats::Histogram hist;
    const auto dists = topo::bfs_distances(*topo, 0);
    for (const auto d : dists) hist.add(d);
    std::printf("  reach from PE 0:");
    for (std::size_t d = 0; d < hist.buckets(); ++d)
      std::printf(" d%zu:%llu", d,
                  static_cast<unsigned long long>(hist.count(d)));
    std::printf("\n\n");
  }
  return 0;
}
