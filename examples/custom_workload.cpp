// Define a custom computation tree against the public Workload API and run
// it under both schemes. The workload here is a skewed "search tree": each
// interior node spawns one heavy subtree and several light ones — the kind
// of irregular, unpredictable structure the paper's introduction motivates
// (problem solving / symbolic computation).

#include <cstdio>
#include <memory>

#include "oracle.hpp"
#include "lb/strategy.hpp"
#include "machine/machine.hpp"
#include "topo/factory.hpp"

namespace {

using namespace oracle;

// A skewed tree: spec.a encodes remaining "budget". An interior node
// spawns one child with 60% of the budget and two with 15% each; nodes
// with budget < 4 are leaves. Purely a function of the spec, as the
// Workload contract requires.
class SearchTree final : public workload::Workload {
 public:
  explicit SearchTree(std::int64_t budget) : budget_(budget) {}

  std::string name() const override {
    return strfmt("search-%lld", static_cast<long long>(budget_));
  }

  workload::GoalSpec root() const override {
    return workload::GoalSpec{budget_, 0, 0};
  }

  workload::Expansion expand(const workload::GoalSpec& spec) const override {
    workload::Expansion e;
    if (spec.a < 4) {
      e.is_leaf = true;
      e.exec_cost = 60 + 20 * spec.a;  // leaves of uneven size
      return e;
    }
    e.is_leaf = false;
    e.exec_cost = 30;
    e.combine_cost = 25;
    const std::int64_t heavy = spec.a * 6 / 10;
    const std::int64_t light = spec.a * 15 / 100;
    e.children = {
        workload::GoalSpec{heavy, 0, spec.depth + 1},
        workload::GoalSpec{light, 1, spec.depth + 1},
        workload::GoalSpec{light, 2, spec.depth + 1},
    };
    return e;
  }

 private:
  std::int64_t budget_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t budget = argc > 1 ? parse_int(argv[1], "budget") : 40000;
  const SearchTree wl(budget);
  const auto summary = wl.summarize();
  std::printf("custom workload '%s': %llu goals (%llu leaves), total work "
              "%lld, critical path %lld\n\n",
              wl.name().c_str(),
              static_cast<unsigned long long>(summary.total_goals),
              static_cast<unsigned long long>(summary.leaf_goals),
              static_cast<long long>(summary.total_work),
              static_cast<long long>(summary.critical_path));

  const auto topo = topo::make_topology("grid:8x8");
  TextTable t({"strategy", "completion", "util %", "speedup", "goal msgs"});
  for (const char* spec :
       {"cwn:radius=9,horizon=2", "gm:hwm=2,lwm=1,interval=20",
        "acwn:radius=9,horizon=2", "steal:backoff=10"}) {
    const auto strategy = lb::make_strategy(spec);
    machine::MachineConfig mc;
    mc.seed = 1;
    machine::Machine m(*topo, wl, *strategy, mc);
    const auto r = m.run();
    t.add_row({r.strategy, std::to_string(r.completion_time),
               fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
               std::to_string(r.goal_transmissions)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nideal speedup bound: min(PEs, total work / critical path) "
              "= min(64, %.1f)\n",
              static_cast<double>(summary.total_work) /
                  static_cast<double>(summary.critical_path));
  return 0;
}
