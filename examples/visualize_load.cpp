// ASCII reproduction of ORACLE's graphics load monitor: per-PE utilization
// heat maps over the course of a run ("red: busy, blue: idle" becomes a
// '.' -> '@' shade ramp). Prints a handful of frames for CWN and GM side
// by side so the rise-time difference (Plots 11-16) is visible spatially:
// CWN floods the whole array early; GM grows a slow blob around the root.
//
//   ./visualize_load [RxC grid dims] [workload]
//   e.g. ./visualize_load 10x10 fib:15

#include <cstdio>
#include <string>
#include <vector>

#include "oracle.hpp"

namespace {

oracle::stats::RunResult run(const std::string& topology,
                             const std::string& strategy,
                             const std::string& workload) {
  oracle::core::ExperimentConfig cfg = oracle::core::paper::base_config();
  cfg.topology = topology;
  cfg.strategy = strategy;
  cfg.workload = workload;
  cfg.machine.sample_interval = 50;
  cfg.machine.monitor_per_pe = true;
  return oracle::core::run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oracle;

  const std::string dims = argc > 1 ? argv[1] : "10x10";
  const std::string workload = argc > 2 ? argv[2] : "fib:15";
  const auto parts = split(dims, 'x');
  if (parts.size() != 2) {
    std::fprintf(stderr, "usage: visualize_load RxC [workload]\n");
    return 1;
  }
  const auto rows = static_cast<std::uint32_t>(parse_int(parts[0], "rows"));
  const auto cols = static_cast<std::uint32_t>(parse_int(parts[1], "cols"));

  const auto cwn = run("grid:" + dims, "cwn:radius=9,horizon=2", workload);
  const auto gm = run("grid:" + dims, "gm:hwm=2,lwm=1,interval=20", workload);

  std::printf("Load monitor: grid:%s, %s  (shade ramp: . : - = + o x * %% @)\n\n",
              dims.c_str(), workload.c_str());

  // Show frames at matching fractions of each run's own completion.
  const double fractions[] = {0.05, 0.15, 0.3, 0.5, 0.8};
  for (const double frac : fractions) {
    const std::size_t ci =
        std::min(cwn.load_monitor.frames() - 1,
                 static_cast<std::size_t>(frac * cwn.load_monitor.frames()));
    const std::size_t gi =
        std::min(gm.load_monitor.frames() - 1,
                 static_cast<std::size_t>(frac * gm.load_monitor.frames()));
    const std::string left = cwn.load_monitor.render_frame(ci, rows, cols);
    const std::string right = gm.load_monitor.render_frame(gi, rows, cols);

    std::printf("t = %.0f%% of each run   CWN (t=%lld)%*s GM (t=%lld)\n",
                frac * 100, static_cast<long long>(cwn.load_monitor.time_of(ci)),
                static_cast<int>(cols) - 4, "",
                static_cast<long long>(gm.load_monitor.time_of(gi)));
    // Zip the two maps line by line.
    std::size_t lpos = 0, rpos = 0;
    while (lpos < left.size() && rpos < right.size()) {
      const std::size_t lend = left.find('\n', lpos);
      const std::size_t rend = right.find('\n', rpos);
      std::printf("  %s    %s\n", left.substr(lpos, lend - lpos).c_str(),
                  right.substr(rpos, rend - rpos).c_str());
      lpos = lend + 1;
      rpos = rend + 1;
    }
    std::printf("\n");
  }

  std::printf("CWN completion %lld (util %.1f%%)  |  GM completion %lld "
              "(util %.1f%%)\n",
              static_cast<long long>(cwn.completion_time),
              cwn.utilization_percent(),
              static_cast<long long>(gm.completion_time),
              gm.utilization_percent());
  return 0;
}
