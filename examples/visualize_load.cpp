// ASCII reproduction of ORACLE's graphics load monitor: per-PE utilization
// heat maps over the course of a run ("red: busy, blue: idle" becomes a
// '.' -> '@' shade ramp). Prints a handful of frames for CWN and GM side
// by side so the rise-time difference (Plots 11-16) is visible spatially:
// CWN floods the whole array early; GM grows a slow blob around the root.
//
// The heat maps render through the recorder-backed LoadMonitor view — a
// non-owning window onto the run's preallocated utilization columns — and
// --csv dumps those columns directly (one row per sampling interval, one
// column per PE) for external plotting.
//
//   ./visualize_load [RxC grid dims] [workload] [--csv PREFIX]
//   e.g. ./visualize_load 10x10 fib:15 --csv load
//        (writes load_cwn.csv and load_gm.csv)

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "oracle.hpp"
#include "stats/csv.hpp"

namespace {

oracle::stats::RunResult run(const std::string& topology,
                             const std::string& strategy,
                             const std::string& workload) {
  oracle::core::ExperimentConfig cfg = oracle::core::paper::base_config();
  cfg.topology = topology;
  cfg.strategy = strategy;
  cfg.workload = workload;
  cfg.machine.sample_interval = 50;
  cfg.machine.monitor_per_pe = true;
  return oracle::core::run_experiment(cfg);
}

/// The recorder's utilization columns as CSV: "time,pe0,pe1,...".
std::string monitor_csv(const oracle::stats::LoadMonitor& monitor) {
  std::ostringstream os;
  os << "time";
  for (std::uint32_t pe = 0; pe < monitor.num_pes(); ++pe) os << ",pe" << pe;
  os << '\n';
  for (std::size_t f = 0; f < monitor.frames(); ++f) {
    os << monitor.time_of(f);
    for (const double u : monitor.frame(f)) os << ',' << u;
    os << '\n';
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oracle;

  std::vector<std::string> positional;
  std::string csv_prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "visualize_load: --csv needs a path prefix\n");
        return 1;
      }
      csv_prefix = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }

  const std::string dims = positional.size() > 0 ? positional[0] : "10x10";
  const std::string workload = positional.size() > 1 ? positional[1] : "fib:15";
  const auto parts = split(dims, 'x');
  if (parts.size() != 2 || positional.size() > 2) {
    std::fprintf(stderr, "usage: visualize_load RxC [workload] [--csv PREFIX]\n");
    return 1;
  }
  const auto rows = static_cast<std::uint32_t>(parse_int(parts[0], "rows"));
  const auto cols = static_cast<std::uint32_t>(parse_int(parts[1], "cols"));

  const auto cwn = run("grid:" + dims, "cwn:radius=9,horizon=2", workload);
  const auto gm = run("grid:" + dims, "gm:hwm=2,lwm=1,interval=20", workload);
  const stats::LoadMonitor cwn_monitor = cwn.load_monitor();
  const stats::LoadMonitor gm_monitor = gm.load_monitor();

  std::printf("Load monitor: grid:%s, %s  (shade ramp: . : - = + o x * %% @)\n\n",
              dims.c_str(), workload.c_str());

  // Show frames at matching fractions of each run's own completion.
  const double fractions[] = {0.05, 0.15, 0.3, 0.5, 0.8};
  for (const double frac : fractions) {
    const std::size_t ci =
        std::min(cwn_monitor.frames() - 1,
                 static_cast<std::size_t>(frac * cwn_monitor.frames()));
    const std::size_t gi =
        std::min(gm_monitor.frames() - 1,
                 static_cast<std::size_t>(frac * gm_monitor.frames()));
    const std::string left = cwn_monitor.render_frame(ci, rows, cols);
    const std::string right = gm_monitor.render_frame(gi, rows, cols);

    std::printf("t = %.0f%% of each run   CWN (t=%lld)%*s GM (t=%lld)\n",
                frac * 100, static_cast<long long>(cwn_monitor.time_of(ci)),
                static_cast<int>(cols) - 4, "",
                static_cast<long long>(gm_monitor.time_of(gi)));
    // Zip the two maps line by line.
    std::size_t lpos = 0, rpos = 0;
    while (lpos < left.size() && rpos < right.size()) {
      const std::size_t lend = left.find('\n', lpos);
      const std::size_t rend = right.find('\n', rpos);
      std::printf("  %s    %s\n", left.substr(lpos, lend - lpos).c_str(),
                  right.substr(rpos, rend - rpos).c_str());
      lpos = lend + 1;
      rpos = rend + 1;
    }
    std::printf("\n");
  }

  if (!csv_prefix.empty()) {
    const std::string cwn_path = csv_prefix + "_cwn.csv";
    const std::string gm_path = csv_prefix + "_gm.csv";
    stats::write_file(cwn_path, monitor_csv(cwn_monitor));
    stats::write_file(gm_path, monitor_csv(gm_monitor));
    std::printf("utilization columns: %s, %s\n", cwn_path.c_str(),
                gm_path.c_str());
  }

  std::printf("CWN completion %lld (util %.1f%%)  |  GM completion %lld "
              "(util %.1f%%)\n",
              static_cast<long long>(cwn.completion_time),
              cwn.utilization_percent(),
              static_cast<long long>(gm.completion_time),
              gm.utilization_percent());
  return 0;
}
