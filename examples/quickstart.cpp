// Quickstart: run fib(15) on a 10x10 grid under both CWN and the Gradient
// Model with the paper's tuned parameters, and print the headline numbers.
//
//   ./quickstart [topology] [workload]
//   e.g. ./quickstart dlm:5:10x10 dc:1:987

#include <cstdio>
#include <string>

#include "oracle.hpp"

int main(int argc, char** argv) {
  using namespace oracle;

  const std::string topology = argc > 1 ? argv[1] : "grid:10x10";
  const std::string workload = argc > 2 ? argv[2] : "fib:15";
  const bool is_dlm = topology.rfind("dlm", 0) == 0;
  const auto family =
      is_dlm ? core::paper::Family::Dlm : core::paper::Family::Grid;

  std::printf("ORACLE quickstart: %s, %s\n\n", topology.c_str(),
              workload.c_str());

  TextTable table({"strategy", "completion", "avg util %", "speedup",
                   "goal msgs", "avg goal distance"});
  for (const std::string& strategy :
       {core::paper::cwn_spec(family), core::paper::gm_spec(family)}) {
    core::ExperimentConfig cfg = core::paper::base_config();
    cfg.topology = topology;
    cfg.strategy = strategy;
    cfg.workload = workload;
    const stats::RunResult r = core::run_experiment(cfg);
    table.add_row({r.strategy, std::to_string(r.completion_time),
                   oracle::fixed(r.utilization_percent(), 1),
                   oracle::fixed(r.speedup, 1),
                   std::to_string(r.goal_transmissions),
                   oracle::fixed(r.avg_goal_distance, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Speedup = PEs x avg utilization (the paper's formula). CWN should\n"
      "reach substantially higher utilization than GM on grids.\n");
  return 0;
}
