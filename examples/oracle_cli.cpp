// oracle_cli — run any experiment (or sweep) from the command line and
// print the statistics panel, optionally dumping CSVs and a trace.
//
// Usage:
//   oracle_cli [options]
//     --topology SPEC       grid:RxC | torus:RxC | dlm:S:RxC | hypercube:D |
//                           ring:N | complete:N          (default grid:10x10)
//     --strategy SPEC       cwn[:k=v,..] | gm[:..] | acwn[:..] | local |
//                           random | roundrobin | steal   (default cwn)
//     --workload SPEC       fib:N | dc:M:N | synthetic:.. | burst:..
//                           (default fib:15)
//     --seed N              master seed (default 1)
//     --seeds N             run N replications, seeds 1..N, report mean/sd
//     --sample N            utilization sampling interval (default off)
//     --hop-latency N       channel units per goal/response hop (default 1)
//     --load-measure M      queue | queue+waiting
//     --start-pe N          PE where the root goal is injected
//     --csv PATH            append the run row(s) to a CSV file
//     --series PATH         write the utilization time series CSV
//     --trace N             print the first N machine trace events
//
// Examples:
//   oracle_cli --topology dlm:5:20x20 --strategy gm --workload dc:1:4181
//   oracle_cli --strategy cwn:radius=5,horizon=1 --seeds 10

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "oracle.hpp"
#include "lb/strategy.hpp"
#include "machine/machine.hpp"
#include "stats/accumulator.hpp"
#include "stats/csv.hpp"
#include "topo/factory.hpp"

namespace {

using namespace oracle;

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "oracle_cli: %s\n(run with --help for usage)\n",
               msg.c_str());
  std::exit(2);
}

void print_usage() {
  std::printf(
      "usage: oracle_cli [--topology SPEC] [--strategy SPEC] [--workload "
      "SPEC]\n"
      "                  [--seed N | --seeds N] [--sample N] [--hop-latency "
      "N]\n"
      "                  [--load-measure queue|queue+waiting] [--start-pe N]\n"
      "                  [--csv PATH] [--series PATH] [--trace N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg = core::paper::base_config();
  std::uint64_t replications = 1;
  std::string csv_path, series_path;
  std::size_t trace_n = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "--topology") {
        cfg.topology = value();
      } else if (arg == "--strategy") {
        cfg.strategy = value();
      } else if (arg == "--workload") {
        cfg.workload = value();
      } else if (arg == "--seed") {
        cfg.machine.seed = static_cast<std::uint64_t>(parse_int(value(), arg));
      } else if (arg == "--seeds") {
        replications = static_cast<std::uint64_t>(parse_int(value(), arg));
        if (replications == 0) usage_error("--seeds must be >= 1");
      } else if (arg == "--sample") {
        cfg.machine.sample_interval = parse_int(value(), arg);
      } else if (arg == "--hop-latency") {
        cfg.machine.hop_latency = parse_int(value(), arg);
      } else if (arg == "--load-measure") {
        const std::string m = value();
        if (m == "queue") {
          cfg.machine.load_measure = machine::LoadMeasure::QueueLength;
        } else if (m == "queue+waiting") {
          cfg.machine.load_measure = machine::LoadMeasure::QueuePlusWaiting;
        } else {
          usage_error("unknown load measure '" + m + "'");
        }
      } else if (arg == "--start-pe") {
        cfg.machine.start_pe =
            static_cast<topo::NodeId>(parse_int(value(), arg));
      } else if (arg == "--csv") {
        csv_path = value();
      } else if (arg == "--series") {
        series_path = value();
        if (cfg.machine.sample_interval == 0) cfg.machine.sample_interval = 50;
      } else if (arg == "--trace") {
        trace_n = static_cast<std::size_t>(parse_int(value(), arg));
      } else {
        usage_error("unknown option '" + arg + "'");
      }
    } catch (const ConfigError& e) {
      usage_error(e.what());
    }
  }

  try {
    std::vector<core::ExperimentConfig> configs;
    for (std::uint64_t s = 0; s < replications; ++s) {
      core::ExperimentConfig c = cfg;
      if (replications > 1) c.machine.seed = s + 1;
      configs.push_back(c);
    }

    // Trace requires holding the Machine, so handle it separately.
    if (trace_n > 0 && replications == 1) {
      const auto topo = topo::make_topology(cfg.topology);
      const auto wl = workload::make_workload(cfg.workload, cfg.costs);
      const auto strategy = lb::make_strategy(cfg.strategy);
      machine::MachineConfig mc = cfg.machine;
      mc.trace_capacity = trace_n;
      machine::Machine m(*topo, *wl, *strategy, mc);
      const auto r = m.run();
      std::printf("%s", m.trace().to_string().c_str());
      std::printf("(%zu trace events shown; run completed at t=%lld, util "
                  "%.1f%%)\n",
                  m.trace().size(), static_cast<long long>(r.completion_time),
                  r.utilization_percent());
      return 0;
    }

    const auto results = core::run_all(configs);

    TextTable t({"seed", "completion", "util %", "speedup", "goals",
                 "goal msgs", "avg dist"});
    stats::Accumulator util, speedup;
    for (const auto& r : results) {
      t.add_row({std::to_string(r.seed), std::to_string(r.completion_time),
                 fixed(r.utilization_percent(), 1), fixed(r.speedup, 2),
                 std::to_string(r.goals_executed),
                 std::to_string(r.goal_transmissions),
                 fixed(r.avg_goal_distance, 2)});
      util.add(r.avg_utilization);
      speedup.add(r.speedup);
    }
    std::printf("%s = %s on %s =\n\n%s\n", "", results[0].strategy.c_str(),
                results[0].topology.c_str(), t.to_string().c_str());
    if (replications > 1) {
      std::printf("mean util %.1f%% (sd %.2f), mean speedup %.2f (sd %.2f) "
                  "over %llu seeds\n",
                  util.mean() * 100, util.stddev() * 100, speedup.mean(),
                  speedup.stddev(),
                  static_cast<unsigned long long>(replications));
    }

    if (!csv_path.empty()) {
      stats::write_file(csv_path, stats::sweep_to_csv(results));
      std::printf("wrote %s\n", csv_path.c_str());
    }
    if (!series_path.empty()) {
      stats::write_file(series_path, stats::series_to_csv(results[0]));
      std::printf("wrote %s\n", series_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
