// oracle_batch — drive cartesian experiment sweeps through the batch
// engine from the command line: sharded parallel execution, a streaming
// JSONL result store (plus optional CSV mirror), checkpointing, and
// resumable interrupted runs — plus a multi-seed aggregation/query mode
// over existing stores and a crash-safe multi-process distributed mode.
//
// Usage:
//   oracle_batch aggregate <store.jsonl> [<store2.jsonl> ...] [options]
//     --metric NAME         metric for the summary table (default speedup;
//                           repeatable / comma lists; "all" prints every
//                           metric). `--metric list` names the choices.
//     --csv PATH            also write the full long-format summary CSV
//                           (all metrics x grid points; "-" = stdout)
//     Several stores (e.g. one per host) aggregate as one pooled sweep.
//
//   oracle_batch trace <base> [--out PATH]
//     Stitch the per-process trace files of a distributed --trace run
//     (<base>.parent + <base>.<k>of<W>) into one Chrome trace JSON
//     document at PATH (default: <base>), loadable in Perfetto.
//
//   oracle_batch [run] [options]
//     --topologies A,B,..   topology spec axis   (default grid:6x6,grid:10x10,dlm:5:10x10)
//     --strategies A,B,..   strategy spec axis   (default cwn,gm,random)
//     --workloads A,B,..    workload spec axis   (default fib:13)
//     --seeds N | A,B,..    N replications (seeds 1..N) or an explicit list
//                           (default 1 replication, seed 1)
//     --master-seed M       derive each job's seed from M via
//                           Rng::derive_seed (independent reproducible
//                           streams); --seeds N still sets how many
//                           replications run, but its values are ignored
//     --jobs N              worker threads (default: all hardware threads)
//     --shard N             jobs claimed per shard (default: auto)
//     --out PATH            JSONL result store   (default results.jsonl;
//                           "-" streams records to stdout, no store)
//     --csv PATH            CSV mirror of the store
//     --resume              skip jobs already completed in the store /
//                           checkpoint, append the rest
//     --sample N            utilization sampling interval (default off)
//     --hop-latency N       channel units per goal/response hop
//     --preset NAME         start from a named baseline config (applied
//                           before every other flag, wherever it appears);
//                           currently: million-pe (10^6-PE torus showcase)
//     --sim-threads N       worker threads for the conservative parallel
//                           engine (default 1 = the serial golden engine)
//     --sim-partitions K    scheduler shards for the parallel engine
//                           (0 = auto; results depend on K, never on N)
//     --no-progress         disable the jobs/s + ETA progress lines
//     --log-level LVL       trace|debug|info|warn|error|off (default info;
//                           the ORACLE_LOG env var sets the fleet-wide
//                           default, the flag overrides per process)
//     --trace PATH          record a Chrome trace (open in Perfetto). A
//                           plain run writes the complete JSON to PATH;
//                           a distributed run writes PATH.parent plus one
//                           PATH.<k>of<W> per worker — stitch them with
//                           `oracle_batch trace PATH`
//     --status-file PATH    atomically rewrite PATH with a one-line JSON
//                           status snapshot (jobs done/total, jobs/s, ETA,
//                           per-worker lease frontier, steals, restarts)
//                           every progress tick
//
//   run-only (multi-process distributed mode):
//     --workers N           fork N worker processes (self-exec), one per
//                           content-hash shard, each into a private
//                           per-shard store; the parent merges the shards
//                           into --out in job order — byte-identical to a
//                           serial run. With --resume, only shards with
//                           incomplete jobs are re-run (crash recovery).
//     --steal               supervise the workers over dynamic job-range
//                           leases instead of fixed shards: an idle worker
//                           steals the unclaimed tail of the most-loaded
//                           lease (heavy-tailed sweeps stop idling on one
//                           slow shard). Single-host only.
//     --heartbeat-ms N      (steal/lease-server) SIGKILL+restart a worker
//                           whose heartbeat file is untouched for N ms
//                           (0 = off; must exceed the longest single job).
//                           When absent, stall detection is *adaptive*:
//                           the timeout tracks the observed job pace
//                           (p99-based, whale-guarded) with no tuning.
//     --max-restarts N      (steal) per-worker respawn budget for crashed
//                           or stalled workers (default 2). Also the
//                           poison-job threshold: a job whose worker dies
//                           on it N times is quarantined (skipped +
//                           recorded in <out>.quarantine) instead of
//                           aborting the sweep.
//     --retry-quarantined   with --resume: forget recorded quarantine
//                           verdicts and give those jobs another chance
//     --lease-server H:P    take leases from a `serve-leases` server over
//                           TCP instead of local lease files (fenced
//                           epochs, retry/backoff, works cross-host).
//                           Parent mode (--workers) spawns lease-client
//                           workers; the server owns stealing and expiry.
//     --lease-timeout-ms N  (lease-server) per-request deadline (default 2000)
//     --lease-retries N     (lease-server) consecutive-failure budget before
//                           a worker orphans itself (exit 3; default 10)
//     --shard i/N           internal/cross-host: run only shard i of N
//                           into the per-shard store derived from --out
//     --worker-slot k/W     internal (steal): run slot k's current lease
//     --keep-shards         keep the per-shard stores after a merge
//
//   oracle_batch serve-leases [sweep options] --workers W --journal PATH
//     Run the cross-host lease service for the given sweep: owns the
//     lease table, hands out fenced job-range leases, steals/expires with
//     an adaptive timeout, journals every transition (fsynced) to PATH
//     and replays it on restart. Workers connect with
//     `run ... --worker-slot k/W --lease-server HOST:PORT` (or via the
//     parent: `run ... --workers W --lease-server HOST:PORT`).
//     --listen H:P          bind address (default 127.0.0.1:0 = ephemeral;
//                           the chosen port is printed on stdout)
//     --journal PATH        crash-recovery journal (required)
//     --status-file PATH    live obs status snapshot (incl. fenced/retry
//                           counters) rewritten atomically
//     --linger-ms N         keep answering `done` this long after the
//                           sweep completes (default 1500)
//
// Examples:
//   oracle_batch --topologies grid:10x10,dlm:5:10x10 --strategies cwn,gm
//                --seeds 8 --jobs 8 --out sweep.jsonl
//   # killed half-way? finish the remaining jobs only:
//   oracle_batch ... --out sweep.jsonl --resume
//   # same sweep, 4 crash-safe worker processes, one canonical store:
//   oracle_batch run ... --workers 4 --out sweep.jsonl
//   # a worker was SIGKILLed? re-run only the dead shard's remainder:
//   oracle_batch run ... --workers 4 --out sweep.jsonl --resume

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "oracle.hpp"
#include "stats/csv.hpp"

namespace {

using namespace oracle;

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "oracle_batch: %s\n(run with --help for usage)\n",
               msg.c_str());
  std::exit(2);
}

void print_usage() {
  std::printf(
      "usage: oracle_batch [run] [--topologies A,B,..] [--strategies A,B,..]\n"
      "                    [--workloads A,B,..] [--seeds N|A,B,..]\n"
      "                    [--master-seed M] [--jobs N] [--shard N]\n"
      "                    [--out PATH|-] [--csv PATH] [--resume]\n"
      "                    [--sample N] [--hop-latency N] [--no-progress]\n"
      "                    [--preset NAME] [--sim-threads N] [--sim-partitions K]\n"
      "                    [--log-level LVL] [--trace PATH] [--status-file PATH]\n"
      "       oracle_batch run ... --workers N [--keep-shards]   (multi-process)\n"
      "       oracle_batch run ... --workers N --steal [--heartbeat-ms N]\n"
      "                    [--max-restarts N] [--retry-quarantined]\n"
      "                                                  (work-stealing supervisor)\n"
      "       oracle_batch run ... --workers N --lease-server HOST:PORT\n"
      "                    [--lease-timeout-ms N] [--lease-retries N]\n"
      "                                                  (cross-host lease client)\n"
      "       oracle_batch serve-leases ... --workers W --journal PATH\n"
      "                    [--listen H:P] [--status-file PATH] [--linger-ms N]\n"
      "                                                  (cross-host lease server)\n"
      "       oracle_batch run ... --shard i/N                   (one shard only)\n"
      "       oracle_batch aggregate <store.jsonl> [<store2.jsonl> ...]\n"
      "                    [--metric NAME|all|list] [--csv PATH|-]\n"
      "       oracle_batch trace <base> [--out PATH]     (stitch --trace files)\n");
}

std::vector<std::string> parse_list(const std::string& value,
                                    const std::string& what) {
  std::vector<std::string> out;
  for (const auto& item : split(value, ',')) {
    const auto t = trim(item);
    if (!t.empty()) out.emplace_back(t);
  }
  if (out.empty()) usage_error(what + " needs at least one entry");
  return out;
}

int aggregate_main(int argc, char** argv) {
  std::vector<std::string> stores;
  std::vector<std::string> metrics;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--metric") {
      for (const auto& m : parse_list(value(), arg)) metrics.push_back(m);
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown aggregate option '" + arg + "'");
    } else {
      stores.push_back(arg);
    }
  }
  if (metrics.empty()) metrics.push_back("speedup");
  if (metrics.size() == 1 && metrics[0] == "list") {
    for (const auto& name : exp::Aggregator::metric_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }
  if (std::find(metrics.begin(), metrics.end(), "all") != metrics.end())
    metrics = exp::Aggregator::metric_names();
  for (const auto& m : metrics) {
    const auto& known = exp::Aggregator::metric_names();
    if (std::find(known.begin(), known.end(), m) == known.end())
      usage_error("unknown metric '" + m + "' (try --metric list)");
  }
  if (stores.empty()) usage_error("aggregate needs a JSONL store path");

  try {
    const auto agg = exp::Aggregator::from_jsonl_files(stores);
    const auto groups = agg.summarize();
    if (groups.empty()) {
      std::fprintf(stderr, "oracle_batch: no parseable records in %s\n",
                   join(stores, " ").c_str());
      return 1;
    }
    std::printf("%s: %zu runs, %zu grid points", join(stores, " ").c_str(),
                agg.rows(), agg.groups());
    if (agg.skipped_lines() > 0)
      std::printf(" (%zu corrupt lines skipped)", agg.skipped_lines());
    if (agg.duplicate_rows() > 0)
      std::printf(" (%zu duplicate records ignored)", agg.duplicate_rows());
    std::printf("\n\n");
    for (const auto& m : metrics) {
      std::printf("-- %s --\n%s\n", m.c_str(),
                  exp::Aggregator::to_table(groups, m).c_str());
    }
    if (!csv_path.empty()) {
      const std::string csv = exp::Aggregator::to_csv(groups);
      if (csv_path == "-") {
        std::fputs(csv.c_str(), stdout);
      } else {
        stats::write_file(csv_path, csv);
        std::printf("csv: %s\n", csv_path.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

int trace_main(int argc, char** argv) {
  std::string base;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--out") {
      if (i + 1 >= argc) usage_error("--out needs a value");
      out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown trace option '" + arg + "'");
    } else if (base.empty()) {
      base = arg;
    } else {
      usage_error("trace takes exactly one <base> path");
    }
  }
  if (base.empty()) usage_error("trace needs the --trace base path");
  if (out.empty()) out = base;

  try {
    const auto inputs = obs::discover_trace_files(base);
    if (inputs.empty()) {
      std::fprintf(stderr,
                   "oracle_batch: no trace files found for '%s' (expected "
                   "%s.parent and/or %s.<k>of<W>)\n",
                   base.c_str(), base.c_str(), base.c_str());
      return 1;
    }
    const auto report = obs::merge_trace_files(inputs, out);
    std::printf("%s: merged %zu event(s) from %zu file(s)", out.c_str(),
                report.events, report.files_read);
    if (report.corrupt_lines > 0)
      std::printf(" (%zu corrupt line(s) skipped)", report.corrupt_lines);
    std::printf("\nload it at https://ui.perfetto.dev\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

// ----------------------------------------------------------- serve-leases --

exp::LeaseService* g_lease_service = nullptr;

void stop_lease_service(int) {
  if (g_lease_service != nullptr) g_lease_service->stop();
}

int serve_main(int argc, char** argv) {
  core::ExperimentConfig base = core::paper::base_config();
  std::vector<std::string> topologies = {"grid:6x6", "grid:10x10",
                                         "dlm:5:10x10"};
  std::vector<std::string> strategies = {"cwn", "gm", "random"};
  std::vector<std::string> workloads = {"fib:13"};
  std::vector<std::uint64_t> seeds = {1};
  exp::LeaseServiceOptions sopt;
  std::string listen = "127.0.0.1:0";
  std::size_t workers = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "--topologies") {
        topologies = parse_list(value(), arg);
      } else if (arg == "--strategies") {
        strategies = parse_list(value(), arg);
      } else if (arg == "--workloads") {
        workloads = parse_list(value(), arg);
      } else if (arg == "--seeds") {
        const std::string v = value();
        seeds.clear();
        if (v.find(',') != std::string::npos) {
          for (const auto& s : parse_list(v, arg))
            seeds.push_back(static_cast<std::uint64_t>(parse_int(s, arg)));
        } else {
          const auto n = parse_int(v, arg);
          if (n < 1) usage_error("--seeds must be >= 1");
          for (std::int64_t s = 1; s <= n; ++s)
            seeds.push_back(static_cast<std::uint64_t>(s));
        }
      } else if (arg == "--master-seed") {
        const auto m = parse_int(value(), arg);
        if (m < 1) usage_error("--master-seed must be >= 1");
        sopt.master_seed = static_cast<std::uint64_t>(m);
      } else if (arg == "--workers") {
        const auto n = parse_int(value(), arg);
        if (n < 1) usage_error("--workers must be >= 1");
        workers = static_cast<std::size_t>(n);
      } else if (arg == "--listen") {
        listen = value();
      } else if (arg == "--journal") {
        sopt.journal_path = value();
      } else if (arg == "--status-file") {
        sopt.status_path = value();
      } else if (arg == "--linger-ms") {
        const auto n = parse_int(value(), arg);
        if (n < 0) usage_error("--linger-ms must be >= 0");
        sopt.linger_ms = static_cast<std::uint32_t>(n);
      } else if (arg == "--log-level") {
        const auto lvl = log::parse_level(value());
        if (!lvl)
          usage_error("--log-level needs trace|debug|info|warn|error|off");
        log::set_level(*lvl);
      } else {
        usage_error("unknown serve-leases option '" + arg + "'");
      }
    } catch (const ConfigError& e) {
      usage_error(e.what());
    }
  }
  if (workers == 0)
    usage_error("serve-leases needs --workers W (the worker slot count)");
  if (sopt.journal_path.empty())
    usage_error("serve-leases needs --journal PATH (the recovery journal)");
  const auto hp = util::HostPort::parse(listen, /*allow_port_zero=*/true);
  if (!hp) usage_error("--listen needs HOST:PORT (or :PORT)");
  sopt.listen = *hp;

  try {
    core::SweepBuilder sweep(base);
    sweep.topologies(topologies).strategies(strategies).workloads(workloads);
    sweep.seeds(seeds);
    const auto configs = sweep.build();
    sopt.jobs = configs.size();
    // Identical clamp to the run parent's: slot_count must agree between
    // server and every worker or acquire is rejected.
    sopt.slots = std::max<std::size_t>(1, std::min(workers, sopt.jobs));

    log::set_tag("lease-server");
    exp::LeaseService service(sopt);
    service.start();
    // Line-buffered contract for launchers: the port is the first token a
    // wrapper (or the CI smoke script) needs, flushed before serving.
    std::printf("serving %zu job(s) to %zu slot(s) on %s:%u (journal %s)\n",
                sopt.jobs, sopt.slots, sopt.listen.host.c_str(),
                static_cast<unsigned>(service.port()),
                sopt.journal_path.c_str());
    std::fflush(stdout);

    g_lease_service = &service;
    std::signal(SIGINT, stop_lease_service);
    std::signal(SIGTERM, stop_lease_service);
    const auto stats = service.run();
    g_lease_service = nullptr;

    std::printf(
        "%s: %zu request(s), %zu grant(s), %zu steal(s), %zu reassign(s), "
        "%zu expiration(s), %zu fenced, %zu journal record(s) "
        "(%zu replayed, %zu torn skipped)\n",
        stats.completed ? "sweep complete" : "stopped",
        stats.requests, stats.grants, stats.steals, stats.reassigns,
        stats.expirations, stats.fenced, stats.journal_records,
        stats.replayed_records, stats.torn_journal_records);
    return stats.completed ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

/// The sweep/run mode. `run_mode` unlocks the distributed options
/// (--workers / --shard i/N / --keep-shards); `self` is the original
/// argv[0] for worker self-exec.
int sweep_main(int argc, char** argv, bool run_mode, const std::string& self) {
  core::ExperimentConfig base = core::paper::base_config();
  std::vector<std::string> topologies = {"grid:6x6", "grid:10x10",
                                         "dlm:5:10x10"};
  std::vector<std::string> strategies = {"cwn", "gm", "random"};
  std::vector<std::string> workloads = {"fib:13"};
  std::vector<std::uint64_t> seeds = {1};
  exp::BatchOptions opt;
  opt.jsonl_path = "results.jsonl";
  opt.exec.progress = true;
  bool stdout_records = false;
  bool jobs_given = false;

  // Distributed mode state.
  std::size_t workers = 0;                  // parent: fork this many
  std::optional<exp::ShardSpec> shard;      // worker: run this slice only
  std::optional<exp::ShardSpec> worker_slot;  // steal worker: slot k of W
  bool keep_shards = false;
  bool steal = false;
  std::uint32_t heartbeat_ms = 0;
  bool heartbeat_given = false;  // absent ⇒ adaptive stall detection
  std::size_t max_restarts = 2;
  bool retry_quarantined = false;
  std::string lease_server;  // "" = single-host file-lease protocol
  std::uint32_t lease_timeout_ms = 2'000;
  std::size_t lease_retries = 10;
  std::string trace_path;   // Chrome-trace base path ("" = tracing off)
  std::string status_path;  // live status snapshot file ("" = off)
  // Raw sweep-defining tokens, re-played verbatim onto each worker's
  // command line. Excludes the orchestration flags the parent owns
  // (--workers, --shard, --resume, --keep-shards, --no-progress).
  std::vector<std::string> passthrough;

  // --preset is applied in a pre-scan so explicit axes and knobs always
  // win, regardless of where they appear relative to --preset.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) != "--preset") continue;
    const std::string name = argv[i + 1];
    if (name == "million-pe" || name == "million_pe") {
      base = core::paper::million_pe_config();
      topologies = {base.topology};
      strategies = {base.strategy};
      workloads = {base.workload};
    } else {
      usage_error("unknown preset '" + name + "' (available: million-pe)");
    }
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    auto forward = [&](const std::string& flag, const std::string& v) {
      passthrough.push_back(flag);
      passthrough.push_back(v);
    };
    try {
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "--topologies") {
        const auto v = value();
        topologies = parse_list(v, arg);
        forward(arg, v);
      } else if (arg == "--strategies") {
        const auto v = value();
        strategies = parse_list(v, arg);
        forward(arg, v);
      } else if (arg == "--workloads") {
        const auto v = value();
        workloads = parse_list(v, arg);
        forward(arg, v);
      } else if (arg == "--seeds") {
        const std::string v = value();
        seeds.clear();
        if (v.find(',') != std::string::npos) {
          for (const auto& s : parse_list(v, arg))
            seeds.push_back(static_cast<std::uint64_t>(parse_int(s, arg)));
        } else {
          const auto n = parse_int(v, arg);
          if (n < 1) usage_error("--seeds must be >= 1");
          for (std::int64_t s = 1; s <= n; ++s)
            seeds.push_back(static_cast<std::uint64_t>(s));
        }
        forward(arg, v);
      } else if (arg == "--master-seed") {
        const auto v = value();
        const auto m = parse_int(v, arg);
        // 0 is the engine's "disabled" sentinel — reject rather than
        // silently falling back to the raw seeds axis.
        if (m < 1) usage_error("--master-seed must be >= 1");
        opt.master_seed = static_cast<std::uint64_t>(m);
        forward(arg, v);
      } else if (arg == "--jobs") {
        const auto v = value();
        opt.exec.workers = static_cast<std::size_t>(parse_int(v, arg));
        jobs_given = true;
        forward(arg, v);
      } else if (arg == "--shard" && run_mode &&
                 i + 1 < argc &&
                 std::string(argv[i + 1]).find('/') != std::string::npos) {
        // run-mode "--shard i/N" = worker identity; the thread-level
        // "--shard N" claim size keeps its meaning for plain integers.
        const auto v = value();
        shard = exp::ShardSpec::parse(v);
        if (!shard) usage_error("--shard needs i/N with i < N");
      } else if (arg == "--shard") {
        const auto v = value();
        opt.exec.shard_size = static_cast<std::size_t>(parse_int(v, arg));
        forward(arg, v);
      } else if (arg == "--workers" && run_mode) {
        // Validate before the size_t cast: -2 must not wrap to 2^64-2.
        const auto n = parse_int(value(), arg);
        if (n < 1) usage_error("--workers must be >= 1");
        workers = static_cast<std::size_t>(n);
      } else if (arg == "--steal" && run_mode) {
        steal = true;
      } else if (arg == "--heartbeat-ms" && run_mode) {
        const auto n = parse_int(value(), arg);
        if (n < 0) usage_error("--heartbeat-ms must be >= 0");
        heartbeat_ms = static_cast<std::uint32_t>(n);
        heartbeat_given = true;  // explicit (even 0) disables adaptive mode
      } else if (arg == "--max-restarts" && run_mode) {
        const auto n = parse_int(value(), arg);
        if (n < 0) usage_error("--max-restarts must be >= 0");
        max_restarts = static_cast<std::size_t>(n);
      } else if (arg == "--retry-quarantined" && run_mode) {
        retry_quarantined = true;
      } else if (arg == "--lease-server" && run_mode) {
        lease_server = value();
        if (!util::HostPort::parse(lease_server))
          usage_error("--lease-server needs HOST:PORT");
      } else if (arg == "--lease-timeout-ms" && run_mode) {
        const auto v = value();
        const auto n = parse_int(v, arg);
        if (n < 1) usage_error("--lease-timeout-ms must be >= 1");
        lease_timeout_ms = static_cast<std::uint32_t>(n);
        forward(arg, v);  // the budget belongs to the (spawned) workers
      } else if (arg == "--lease-retries" && run_mode) {
        const auto v = value();
        const auto n = parse_int(v, arg);
        if (n < 0) usage_error("--lease-retries must be >= 0");
        lease_retries = static_cast<std::size_t>(n);
        forward(arg, v);
      } else if (arg == "--worker-slot" && run_mode) {
        worker_slot = exp::ShardSpec::parse(value());
        if (!worker_slot) usage_error("--worker-slot needs k/W with k < W");
      } else if (arg == "--keep-shards" && run_mode) {
        keep_shards = true;
      } else if (arg == "--out") {
        const auto v = value();
        opt.jsonl_path = v;
        forward(arg, v);
      } else if (arg == "--csv") {
        const auto v = value();
        opt.csv_path = v;
        forward(arg, v);
      } else if (arg == "--resume") {
        opt.resume = true;
      } else if (arg == "--preset") {
        // Already applied by the pre-scan above; consume and forward so
        // spawned workers start from the same baseline.
        forward(arg, value());
      } else if (arg == "--sim-threads") {
        const auto v = value();
        const auto n = parse_int(v, arg);
        if (n < 1) usage_error("--sim-threads must be >= 1");
        base.machine.sim_threads = static_cast<std::uint32_t>(n);
        forward(arg, v);
      } else if (arg == "--sim-partitions") {
        const auto v = value();
        const auto n = parse_int(v, arg);
        if (n < 0) usage_error("--sim-partitions must be >= 0 (0 = auto)");
        base.machine.sim_partitions = static_cast<std::uint32_t>(n);
        forward(arg, v);
      } else if (arg == "--sample") {
        const auto v = value();
        base.machine.sample_interval = parse_int(v, arg);
        forward(arg, v);
      } else if (arg == "--hop-latency") {
        const auto v = value();
        base.machine.hop_latency = parse_int(v, arg);
        forward(arg, v);
      } else if (arg == "--no-progress") {
        opt.exec.progress = false;
      } else if (arg == "--log-level") {
        const auto v = value();
        const auto lvl = log::parse_level(v);
        if (!lvl)
          usage_error("--log-level needs trace|debug|info|warn|error|off");
        log::set_level(*lvl);
        forward(arg, v);  // workers inherit the chosen verbosity
      } else if (arg == "--trace") {
        const auto v = value();
        trace_path = v;
        // Forwarded so each spawned worker appends its own
        // "<base>.<k>of<W>" trace-line file beside the parent's.
        forward(arg, v);
      } else if (arg == "--status-file") {
        // Parent-owned: workers report through leases/heartbeats, not
        // their own status files, so this is deliberately not forwarded.
        status_path = value();
      } else {
        usage_error("unknown option '" + arg + "'");
      }
    } catch (const ConfigError& e) {
      usage_error(e.what());
    }
  }

  const bool distributed =
      workers > 0 || shard.has_value() || worker_slot.has_value();
  if (distributed) {
    if (opt.jsonl_path.empty() || opt.jsonl_path == "-")
      usage_error("distributed runs need a canonical --out store file");
    if (!opt.csv_path.empty())
      usage_error(
          "--csv is not supported for distributed runs; derive a CSV from "
          "the merged store via `oracle_batch aggregate --csv`");
    if (workers > 0 && (shard.has_value() || worker_slot.has_value()))
      usage_error(
          "--workers (parent) and --shard i/N / --worker-slot k/W (worker) "
          "are exclusive");
    if (shard.has_value() && worker_slot.has_value())
      usage_error("--shard i/N and --worker-slot k/W are exclusive");
  }
  if (steal && workers == 0 && !worker_slot.has_value())
    usage_error("--steal needs --workers N (the supervisor forks them)");
  if (!lease_server.empty() && workers == 0 && !worker_slot.has_value())
    usage_error(
        "--lease-server needs --workers N (parent) or --worker-slot k/W "
        "(one worker)");
  if (!lease_server.empty() && shard.has_value())
    usage_error("--lease-server and --shard i/N are exclusive");
  if (retry_quarantined && !opt.resume)
    usage_error("--retry-quarantined needs --resume");

  if (opt.jsonl_path == "-") {
    if (opt.resume)
      usage_error(
          "--resume needs a JSONL store to resume from; it cannot be "
          "combined with --out -");
    opt.jsonl_path.clear();
    stdout_records = true;
    opt.jsonl_stream = &std::cout;
    opt.exec.progress = false;  // keep stdout pure JSONL
  }

  try {
    core::SweepBuilder sweep(base);
    sweep.topologies(topologies).strategies(strategies).workloads(workloads);
    // The seeds axis always contributes the replication count; with
    // --master-seed the axis values are then overwritten per job by
    // Rng::derive_seed(master, index) in the engine.
    sweep.seeds(seeds);
    opt.collect = false;  // sweeps can be huge; the store is the output

    if (workers > 0) {
      // Parent of a multi-process run: self-exec one worker per shard.
      // The supervisor's own lifecycle events (spawns, steals, reaps)
      // record on logical pid 0; workers take pid k+1 for slot k.
      if (!trace_path.empty()) obs::Tracer::enable(0, "supervisor");
      exp::ShardRunOptions sopt;
      sopt.workers = workers;
      sopt.out = opt.jsonl_path;
      sopt.resume = opt.resume;
      sopt.keep_shard_stores = keep_shards;
      sopt.master_seed = opt.master_seed;
      sopt.steal = steal;
      sopt.heartbeat_ms = heartbeat_ms;
      // No explicit --heartbeat-ms in a supervised (steal or lease-server)
      // run: stall detection defaults to the adaptive, pace-tracking
      // timeout instead of a fixed guess.
      sopt.adaptive_heartbeat =
          (steal || !lease_server.empty()) && !heartbeat_given;
      sopt.max_restarts = max_restarts;
      sopt.retry_quarantined = retry_quarantined;
      sopt.lease_server = lease_server;
      sopt.status_path = status_path;
      sopt.trace_path = trace_path;
      sopt.exec_path = exp::self_exec_path(self);
      sopt.worker_args = passthrough;
      sopt.worker_args.insert(sopt.worker_args.begin(), "run");
      if (!jobs_given) {
        // Split the hardware threads across the workers instead of letting
        // every worker oversubscribe the whole machine.
        const std::size_t hw =
            std::max<std::size_t>(1, std::thread::hardware_concurrency());
        sopt.worker_args.push_back("--jobs");
        sopt.worker_args.push_back(
            std::to_string(std::max<std::size_t>(1, hw / workers)));
      }
      sopt.worker_args.push_back("--no-progress");

      const auto report = sweep.run_sharded(sopt);
      std::printf("%s\n", report.summary().c_str());
      for (const auto& w : report.workers) {
        if (w.ok()) continue;
        // In steal mode a failed exit may have been absorbed by an
        // auto-restart; the summary above already says so. Still surface
        // each failure for the log.
        const char* hint =
            report.merged ? "auto-restarted"
                          : "its completed jobs are safe; --resume finishes "
                            "the rest";
        const auto lvl =
            report.merged ? log::Level::Warn : log::Level::Error;
        if (w.term_signal != 0)
          ORACLE_LOG(lvl, strfmt("shard %zu/%zu worker killed by signal "
                                 "%d (%s)",
                                 w.shard, workers, w.term_signal, hint));
        else
          ORACLE_LOG(lvl, strfmt("shard %zu/%zu worker exited with "
                                 "status %d (%s)",
                                 w.shard, workers, w.exit_code, hint));
      }
      if (report.merged)
        std::printf("store: %s (+ checkpoint %s)\n", sopt.out.c_str(),
                    exp::Checkpoint::default_path(sopt.out).c_str());
      if (!trace_path.empty()) {
        // Parent events go to "<base>.parent" as trace-event lines; the
        // trace subcommand stitches them with the worker files.
        obs::Tracer::write_event_lines(obs::parent_trace_path(trace_path),
                                       /*append=*/false);
        if (obs::Tracer::dropped() > 0)
          ORACLE_LOG_WARN(strfmt("trace buffer overflow: %zu event(s) "
                                 "dropped",
                                 obs::Tracer::dropped()));
        std::printf("trace: %s.{parent,<k>of<W>} (stitch with "
                    "`oracle_batch trace %s`)\n",
                    trace_path.c_str(), trace_path.c_str());
      }
      if (!status_path.empty())
        std::printf("status: %s\n", status_path.c_str());
      return report.ok() ? 0 : 1;
    }

    if (worker_slot.has_value()) {
      // Steal-mode worker: run this slot's current lease into its private
      // store, re-reading the lease before every job.
      log::set_tag(strfmt("worker %zu/%zu", worker_slot->index,
                          worker_slot->count));
      if (!trace_path.empty())
        obs::Tracer::enable(
            static_cast<std::uint32_t>(worker_slot->index + 1),
            strfmt("worker %zu", worker_slot->index));
      exp::LeaseWorkerOptions wopt;
      wopt.canonical_out = opt.jsonl_path;
      wopt.slot = worker_slot->index;
      wopt.slot_count = worker_slot->count;
      wopt.merge_resume = opt.resume;
      wopt.master_seed = opt.master_seed;
      wopt.threads = jobs_given ? opt.exec.workers : 1;
      // CI fault injection: ORACLE_SHARD_FAULT="die|kill|stall:<slot>:<n>"
      // arms a one-shot fault in the matching slot ("kill" raises SIGKILL,
      // "die" _exit(1)s, "stall" sleeps through the heartbeat timeout).
      // The one-shot marker lives beside the canonical store, so the
      // supervisor's respawn of the same slot runs clean.
      if (const char* fault = std::getenv("ORACLE_SHARD_FAULT")) {
        const auto parts = split(fault, ':');
        const bool slot_match =
            parts.size() >= 3 &&
            (parts[1] == "*" ||
             static_cast<std::size_t>(parse_int(parts[1], "fault slot")) ==
                 wopt.slot);
        if (slot_match) {
          const auto n =
              static_cast<std::size_t>(parse_int(parts[2], "fault job count"));
          if (parts[0] == "poison") {
            // A poison *job*: kills whichever worker starts sweep index n,
            // every time — deliberately no once-marker, so only the
            // quarantine verdict stops the carnage.
            wopt.hooks.die_on_job_index = n;
            wopt.hooks.die_with_sigkill = true;
          } else {
            wopt.hooks.once_marker = opt.jsonl_path + ".fault_fired";
            if (parts[0] == "die" || parts[0] == "kill") {
              wopt.hooks.die_after_n_jobs = n;
              wopt.hooks.die_with_sigkill = parts[0] == "kill";
            } else if (parts[0] == "stall") {
              wopt.hooks.stall_after_n_jobs = n;
              if (parts.size() >= 4)
                wopt.hooks.stall_ms = static_cast<std::uint32_t>(
                    parse_int(parts[3], "fault stall ms"));
            }
          }
        }
      }

      auto write_worker_trace = [&] {
        if (trace_path.empty()) return;
        // Append: a respawned slot continues the same per-slot file, so
        // the merged timeline shows the whole slot history. The durable
        // prefix was flushed by the previous incarnation at its exit; a
        // SIGKILLed one just loses its own buffer.
        obs::Tracer::write_event_lines(
            obs::worker_trace_path(trace_path, worker_slot->index,
                                   worker_slot->count),
            /*append=*/true);
      };

      if (!lease_server.empty()) {
        // Cross-host mode: fenced leases over TCP instead of lease files.
        wopt.lease_server = lease_server;
        wopt.op_timeout_ms = lease_timeout_ms;
        wopt.retry_budget = lease_retries;
        const auto report = exp::run_lease_client_worker(sweep.build(), wopt);
        ORACLE_LOG_INFO(strfmt(
            "%zu lease(s) run, %zu job(s) executed, %zu skipped; "
            "%llu retries, %llu reconnects%s%s",
            report.leases_run, report.batch.executed, report.batch.skipped,
            static_cast<unsigned long long>(report.retries),
            static_cast<unsigned long long>(report.reconnects),
            report.fenced ? "; fenced" : "",
            report.orphaned ? "; ORPHANED" : ""));
        for (const auto& err : report.batch.errors)
          ORACLE_LOG_ERROR("failed: " + err);
        write_worker_trace();
        if (report.orphaned) return exp::kOrphanedExitCode;
        return report.batch.ok() ? 0 : 1;
      }

      const auto report = exp::run_lease_worker(sweep.build(), wopt);
      ORACLE_LOG_INFO(report.summary());
      ORACLE_LOG_DEBUG(report.job_wall.summary());
      for (const auto& err : report.errors)
        ORACLE_LOG_ERROR("failed: " + err);
      write_worker_trace();
      return report.ok() ? 0 : 1;
    }

    if (shard.has_value()) {
      // Worker: run only this shard's slice into its private store.
      log::set_tag(strfmt("shard %zu/%zu", shard->index, shard->count));
      if (!trace_path.empty())
        obs::Tracer::enable(static_cast<std::uint32_t>(shard->index + 1),
                            strfmt("shard %zu", shard->index));
      opt.shard_index = shard->index;
      opt.shard_count = shard->count;
      const std::string canonical = opt.jsonl_path;
      opt.jsonl_path =
          exp::shard_store_path(canonical, shard->index, shard->count);
      if (opt.resume) opt.extra_resume_stores.push_back(canonical);
      opt.exec.progress = false;  // parents interleave many workers

      const auto outcome = sweep.run_batch(opt);
      ORACLE_LOG_INFO(outcome.report.summary());
      ORACLE_LOG_DEBUG(outcome.report.job_wall.summary());
      for (const auto& err : outcome.report.errors)
        ORACLE_LOG_ERROR("failed: " + err);
      if (!trace_path.empty()) {
        // Static shards are spawned exactly once per run, so truncate
        // rather than append — a re-run replaces the slot's trace.
        obs::Tracer::write_event_lines(
            obs::worker_trace_path(trace_path, shard->index, shard->count),
            /*append=*/false);
      }
      return outcome.report.ok() ? 0 : 1;
    }

    // Plain (threaded) run: the tracer records on logical pid 0 and the
    // complete Chrome JSON document is written directly — no merge step.
    if (!trace_path.empty()) obs::Tracer::enable(0, "oracle_batch");
    opt.exec.status_path = status_path;

    const auto outcome = sweep.run_batch(opt);
    const auto& rep = outcome.report;
    if (!stdout_records) {
      std::printf("%s\n", rep.summary().c_str());
      std::printf(
          "throughput: %.1f jobs/s, %.3fM events/s (%llu simulation events "
          "in %.2fs)\n",
          rep.jobs_per_second, rep.events_per_second() / 1e6,
          static_cast<unsigned long long>(rep.total_events),
          rep.elapsed_seconds);
      if (rep.job_wall.count > 0)
        std::printf("%s\n", rep.job_wall.summary().c_str());
      if (!opt.jsonl_path.empty())
        std::printf("store: %s (+ checkpoint %s)\n", opt.jsonl_path.c_str(),
                    exp::Checkpoint::default_path(opt.jsonl_path).c_str());
      if (!opt.csv_path.empty())
        std::printf("csv:   %s\n", opt.csv_path.c_str());
    }
    if (!trace_path.empty()) {
      const std::size_t events = obs::Tracer::write_json(trace_path);
      if (obs::Tracer::dropped() > 0)
        ORACLE_LOG_WARN(strfmt("trace buffer overflow: %zu event(s) dropped",
                               obs::Tracer::dropped()));
      if (!stdout_records)
        std::printf("trace: %s (%zu events; load at "
                    "https://ui.perfetto.dev)\n",
                    trace_path.c_str(), events);
    }
    for (const auto& err : rep.errors)
      ORACLE_LOG_ERROR("failed: " + err);
    return rep.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Verbosity: CLI default Info, ORACLE_LOG env overrides fleet-wide
  // (worker processes inherit it), an explicit --log-level flag wins.
  if (!oracle::log::init_from_env())
    oracle::log::set_level(oracle::log::Level::Info);
  const std::string self = argv[0];
  if (argc > 1 && std::string(argv[1]) == "aggregate")
    return aggregate_main(argc - 1, argv + 1);
  if (argc > 1 && std::string(argv[1]) == "trace")
    return trace_main(argc - 1, argv + 1);
  if (argc > 1 && std::string(argv[1]) == "serve-leases")
    return serve_main(argc - 1, argv + 1);
  if (argc > 1 && std::string(argv[1]) == "run")
    return sweep_main(argc - 1, argv + 1, /*run_mode=*/true, self);
  return sweep_main(argc, argv, /*run_mode=*/false, self);
}
