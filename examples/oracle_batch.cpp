// oracle_batch — drive cartesian experiment sweeps through the batch
// engine from the command line: sharded parallel execution, a streaming
// JSONL result store (plus optional CSV mirror), checkpointing, and
// resumable interrupted runs — plus a multi-seed aggregation/query mode
// over existing stores.
//
// Usage:
//   oracle_batch aggregate <store.jsonl> [options]
//     --metric NAME         metric for the summary table (default speedup;
//                           repeatable / comma lists; "all" prints every
//                           metric). `--metric list` names the choices.
//     --csv PATH            also write the full long-format summary CSV
//                           (all metrics x grid points; "-" = stdout)
//
//   oracle_batch [options]
//     --topologies A,B,..   topology spec axis   (default grid:6x6,grid:10x10,dlm:5:10x10)
//     --strategies A,B,..   strategy spec axis   (default cwn,gm,random)
//     --workloads A,B,..    workload spec axis   (default fib:13)
//     --seeds N | A,B,..    N replications (seeds 1..N) or an explicit list
//                           (default 1 replication, seed 1)
//     --master-seed M       derive each job's seed from M via
//                           Rng::derive_seed (independent reproducible
//                           streams); --seeds N still sets how many
//                           replications run, but its values are ignored
//     --jobs N              worker threads (default: all hardware threads)
//     --shard N             jobs claimed per shard (default: auto)
//     --out PATH            JSONL result store   (default results.jsonl;
//                           "-" streams records to stdout, no store)
//     --csv PATH            CSV mirror of the store
//     --resume              skip jobs already completed in the store /
//                           checkpoint, append the rest
//     --sample N            utilization sampling interval (default off)
//     --hop-latency N       channel units per goal/response hop
//     --no-progress         disable the jobs/s + ETA progress lines
//
// Examples:
//   oracle_batch --topologies grid:10x10,dlm:5:10x10 --strategies cwn,gm
//                --seeds 8 --jobs 8 --out sweep.jsonl
//   # killed half-way? finish the remaining jobs only:
//   oracle_batch ... --out sweep.jsonl --resume

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "oracle.hpp"
#include "stats/csv.hpp"

namespace {

using namespace oracle;

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "oracle_batch: %s\n(run with --help for usage)\n",
               msg.c_str());
  std::exit(2);
}

void print_usage() {
  std::printf(
      "usage: oracle_batch [--topologies A,B,..] [--strategies A,B,..]\n"
      "                    [--workloads A,B,..] [--seeds N|A,B,..]\n"
      "                    [--master-seed M] [--jobs N] [--shard N]\n"
      "                    [--out PATH|-] [--csv PATH] [--resume]\n"
      "                    [--sample N] [--hop-latency N] [--no-progress]\n"
      "       oracle_batch aggregate <store.jsonl> [--metric NAME|all|list]\n"
      "                    [--csv PATH|-]\n");
}

std::vector<std::string> parse_list(const std::string& value,
                                    const std::string& what) {
  std::vector<std::string> out;
  for (const auto& item : split(value, ',')) {
    const auto t = trim(item);
    if (!t.empty()) out.emplace_back(t);
  }
  if (out.empty()) usage_error(what + " needs at least one entry");
  return out;
}

int aggregate_main(int argc, char** argv) {
  std::string store;
  std::vector<std::string> metrics;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--metric") {
      for (const auto& m : parse_list(value(), arg)) metrics.push_back(m);
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown aggregate option '" + arg + "'");
    } else if (store.empty()) {
      store = arg;
    } else {
      usage_error("aggregate takes exactly one store path");
    }
  }
  if (metrics.empty()) metrics.push_back("speedup");
  if (metrics.size() == 1 && metrics[0] == "list") {
    for (const auto& name : exp::Aggregator::metric_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }
  if (std::find(metrics.begin(), metrics.end(), "all") != metrics.end())
    metrics = exp::Aggregator::metric_names();
  for (const auto& m : metrics) {
    const auto& known = exp::Aggregator::metric_names();
    if (std::find(known.begin(), known.end(), m) == known.end())
      usage_error("unknown metric '" + m + "' (try --metric list)");
  }
  if (store.empty()) usage_error("aggregate needs a JSONL store path");

  try {
    const auto agg = exp::Aggregator::from_jsonl_file(store);
    const auto groups = agg.summarize();
    if (groups.empty()) {
      std::fprintf(stderr, "oracle_batch: no parseable records in %s\n",
                   store.c_str());
      return 1;
    }
    std::printf("%s: %zu runs, %zu grid points", store.c_str(), agg.rows(),
                agg.groups());
    if (agg.skipped_lines() > 0)
      std::printf(" (%zu corrupt lines skipped)", agg.skipped_lines());
    std::printf("\n\n");
    for (const auto& m : metrics) {
      std::printf("-- %s --\n%s\n", m.c_str(),
                  exp::Aggregator::to_table(groups, m).c_str());
    }
    if (!csv_path.empty()) {
      const std::string csv = exp::Aggregator::to_csv(groups);
      if (csv_path == "-") {
        std::fputs(csv.c_str(), stdout);
      } else {
        stats::write_file(csv_path, csv);
        std::printf("csv: %s\n", csv_path.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "aggregate")
    return aggregate_main(argc - 1, argv + 1);

  core::ExperimentConfig base = core::paper::base_config();
  std::vector<std::string> topologies = {"grid:6x6", "grid:10x10",
                                         "dlm:5:10x10"};
  std::vector<std::string> strategies = {"cwn", "gm", "random"};
  std::vector<std::string> workloads = {"fib:13"};
  std::vector<std::uint64_t> seeds = {1};
  exp::BatchOptions opt;
  opt.jsonl_path = "results.jsonl";
  opt.exec.progress = true;
  bool stdout_records = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return 0;
      } else if (arg == "--topologies") {
        topologies = parse_list(value(), arg);
      } else if (arg == "--strategies") {
        strategies = parse_list(value(), arg);
      } else if (arg == "--workloads") {
        workloads = parse_list(value(), arg);
      } else if (arg == "--seeds") {
        const std::string v = value();
        seeds.clear();
        if (v.find(',') != std::string::npos) {
          for (const auto& s : parse_list(v, arg))
            seeds.push_back(static_cast<std::uint64_t>(parse_int(s, arg)));
        } else {
          const auto n = parse_int(v, arg);
          if (n < 1) usage_error("--seeds must be >= 1");
          for (std::int64_t s = 1; s <= n; ++s)
            seeds.push_back(static_cast<std::uint64_t>(s));
        }
      } else if (arg == "--master-seed") {
        const auto m = parse_int(value(), arg);
        // 0 is the engine's "disabled" sentinel — reject rather than
        // silently falling back to the raw seeds axis.
        if (m < 1) usage_error("--master-seed must be >= 1");
        opt.master_seed = static_cast<std::uint64_t>(m);
      } else if (arg == "--jobs") {
        opt.exec.workers = static_cast<std::size_t>(parse_int(value(), arg));
      } else if (arg == "--shard") {
        opt.exec.shard_size = static_cast<std::size_t>(parse_int(value(), arg));
      } else if (arg == "--out") {
        opt.jsonl_path = value();
      } else if (arg == "--csv") {
        opt.csv_path = value();
      } else if (arg == "--resume") {
        opt.resume = true;
      } else if (arg == "--sample") {
        base.machine.sample_interval = parse_int(value(), arg);
      } else if (arg == "--hop-latency") {
        base.machine.hop_latency = parse_int(value(), arg);
      } else if (arg == "--no-progress") {
        opt.exec.progress = false;
      } else {
        usage_error("unknown option '" + arg + "'");
      }
    } catch (const ConfigError& e) {
      usage_error(e.what());
    }
  }

  if (opt.jsonl_path == "-") {
    if (opt.resume)
      usage_error(
          "--resume needs a JSONL store to resume from; it cannot be "
          "combined with --out -");
    opt.jsonl_path.clear();
    stdout_records = true;
    opt.jsonl_stream = &std::cout;
    opt.exec.progress = false;  // keep stdout pure JSONL
  }

  try {
    core::SweepBuilder sweep(base);
    sweep.topologies(topologies).strategies(strategies).workloads(workloads);
    // The seeds axis always contributes the replication count; with
    // --master-seed the axis values are then overwritten per job by
    // Rng::derive_seed(master, index) in the engine.
    sweep.seeds(seeds);
    opt.collect = false;  // sweeps can be huge; the store is the output

    const auto outcome = sweep.run_batch(opt);
    const auto& rep = outcome.report;
    if (!stdout_records) {
      std::printf("%s\n", rep.summary().c_str());
      std::printf(
          "throughput: %.1f jobs/s, %.3fM events/s (%llu simulation events "
          "in %.2fs)\n",
          rep.jobs_per_second, rep.events_per_second() / 1e6,
          static_cast<unsigned long long>(rep.total_events),
          rep.elapsed_seconds);
      if (!opt.jsonl_path.empty())
        std::printf("store: %s (+ checkpoint %s)\n", opt.jsonl_path.c_str(),
                    exp::Checkpoint::default_path(opt.jsonl_path).c_str());
      if (!opt.csv_path.empty())
        std::printf("csv:   %s\n", opt.csv_path.c_str());
    }
    for (const auto& err : rep.errors)
      std::fprintf(stderr, "oracle_batch: failed: %s\n", err.c_str());
    return rep.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}
