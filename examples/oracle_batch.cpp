// oracle_batch — the command-line front end of the batch experiment
// engine. Every subcommand is a thin argv parser over the library entry
// points in exp/commands.hpp (which own all behaviour; see that header
// and README.md for the full flag reference):
//
//   oracle_batch [run] ...          cartesian sweeps: threaded, sharded
//                                   multi-process, work-stealing, or
//                                   cross-host lease-client execution
//   oracle_batch aggregate ...      multi-seed summary tables / CSV over
//                                   one or more JSONL result stores
//   oracle_batch trace <base>       stitch distributed --trace files
//   oracle_batch serve-leases ...   cross-host fenced lease server
//   oracle_batch serve ...          resident oracle service: memoized
//                                   sweep serving over a store index
//   oracle_batch query ...          client for a running serve daemon
//
// Exit codes: 0 ok, 1 runtime failure, 2 usage error (3 = orphaned
// lease worker). Invalid flag combinations surface as ConfigError from
// the command layer and are rendered as usage errors here.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "oracle.hpp"

namespace {

using namespace oracle;

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "oracle_batch: %s\n(run with --help for usage)\n",
               msg.c_str());
  std::exit(2);
}

void print_usage() {
  std::printf(
      "usage: oracle_batch [run] [--topologies A,B,..] [--strategies A,B,..]\n"
      "                    [--workloads A,B,..] [--seeds N|A,B,..]\n"
      "                    [--master-seed M] [--preset NAME] [--jobs N]\n"
      "                    [--shard N] [--out PATH|-] [--csv PATH] [--resume]\n"
      "                    [--sample N] [--hop-latency N] [--no-progress]\n"
      "                    [--sim-threads N] [--sim-partitions K]\n"
      "                    [--log-level LVL] [--trace PATH] [--status-file PATH]\n"
      "       oracle_batch run ... --workers N [--keep-shards]   (multi-process)\n"
      "       oracle_batch run ... --workers N --steal [--heartbeat-ms N]\n"
      "                    [--max-restarts N] [--retry-quarantined]\n"
      "                                                  (work-stealing supervisor)\n"
      "       oracle_batch run ... --workers N --lease-server HOST:PORT\n"
      "                    [--lease-timeout-ms N] [--lease-retries N]\n"
      "                                                  (cross-host lease client)\n"
      "       oracle_batch serve-leases ... --workers W --journal PATH\n"
      "                    [--listen H:P] [--status-file PATH] [--linger-ms N]\n"
      "                                                  (cross-host lease server)\n"
      "       oracle_batch run ... --shard i/N                   (one shard only)\n"
      "       oracle_batch aggregate <store.jsonl> [<store2.jsonl> ...]\n"
      "                    [--metric NAME|all|list] [--csv PATH|-]\n"
      "       oracle_batch trace <base> [--out PATH]     (stitch --trace files)\n"
      "       oracle_batch serve --store S [--store EXTRA ...] [--listen H:P]\n"
      "                    [--jobs N] [--shard N] [--status-file PATH]\n"
      "                    [--query-threads N] [--job-budget N]\n"
      "                    [--client-timeout-ms N] [--trace PATH]\n"
      "                    [--log-level LVL]         (resident oracle service)\n"
      "       oracle_batch query --server HOST:PORT [sweep options]\n"
      "                    [--metric NAME|all|list] [--csv PATH|-]\n"
      "                    [--target METRIC:HALFWIDTH] [--timeout-ms N]\n"
      "                                                  (ask a serve daemon)\n");
}

std::vector<std::string> parse_list(const std::string& value,
                                    const std::string& what) {
  std::vector<std::string> out;
  for (const auto& item : split(value, ',')) {
    const auto t = trim(item);
    if (!t.empty()) out.emplace_back(t);
  }
  if (out.empty()) usage_error(what + " needs at least one entry");
  return out;
}

/// --preset is applied in a pre-scan so explicit axes and knobs always
/// win, regardless of where they appear relative to --preset.
void apply_preset_prescan(int argc, char** argv, core::SweepSpec& sweep) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--preset") sweep.apply_preset(argv[i + 1]);
}

/// Shared handling of the sweep-defining flags (axes + engine knobs).
/// Returns false when `arg` is not a sweep flag. `value` yields the
/// flag's argument (advancing the caller's cursor).
template <typename ValueFn>
bool parse_sweep_flag(core::SweepSpec& sweep, const std::string& arg,
                      ValueFn&& value) {
  if (arg == "--topologies") {
    sweep.topologies = parse_list(value(), arg);
  } else if (arg == "--strategies") {
    sweep.strategies = parse_list(value(), arg);
  } else if (arg == "--workloads") {
    sweep.workloads = parse_list(value(), arg);
  } else if (arg == "--seeds") {
    sweep.seeds = core::SweepSpec::parse_seed_axis(value());
  } else if (arg == "--master-seed") {
    // 0 is the engine's "disabled" sentinel — reject rather than
    // silently falling back to the raw seeds axis.
    const auto m = parse_int(value(), arg);
    if (m < 1) usage_error("--master-seed must be >= 1");
    sweep.master_seed = static_cast<std::uint64_t>(m);
  } else if (arg == "--preset") {
    value();  // already applied by the pre-scan
  } else if (arg == "--sample") {
    sweep.sample_interval = parse_int(value(), arg);
  } else if (arg == "--hop-latency") {
    sweep.hop_latency = parse_int(value(), arg);
  } else if (arg == "--sim-threads") {
    const auto n = parse_int(value(), arg);
    if (n < 1) usage_error("--sim-threads must be >= 1");
    sweep.sim_threads = n;
  } else if (arg == "--sim-partitions") {
    sweep.sim_partitions = parse_int(value(), arg);
  } else {
    return false;
  }
  return true;
}

/// "--metric list" prints the metric vocabulary and exits; "all" and
/// validation are handled by exp::resolve_metrics.
bool metrics_list_requested(const std::vector<std::string>& metrics) {
  if (metrics.size() != 1 || metrics[0] != "list") return false;
  for (const auto& name : exp::Aggregator::metric_names())
    std::printf("%s\n", name.c_str());
  return true;
}

int aggregate_cli(int argc, char** argv) {
  exp::AggregateCommand cmd;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--metric") {
      for (const auto& m : parse_list(value(), arg)) cmd.metrics.push_back(m);
    } else if (arg == "--csv") {
      cmd.csv_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown aggregate option '" + arg + "'");
    } else {
      cmd.stores.push_back(arg);
    }
  }
  if (metrics_list_requested(cmd.metrics)) return 0;
  return exp::run_aggregate_command(cmd);
}

int trace_cli(int argc, char** argv) {
  exp::TraceCommand cmd;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--out") {
      if (i + 1 >= argc) usage_error("--out needs a value");
      cmd.out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown trace option '" + arg + "'");
    } else if (cmd.base.empty()) {
      cmd.base = arg;
    } else {
      usage_error("trace takes exactly one <base> path");
    }
  }
  return exp::run_trace_command(cmd);
}

int serve_leases_cli(int argc, char** argv) {
  exp::ServeLeasesCommand cmd;
  std::string listen = "127.0.0.1:0";
  apply_preset_prescan(argc, argv, cmd.sweep);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (parse_sweep_flag(cmd.sweep, arg, value)) {
    } else if (arg == "--workers") {
      const auto n = parse_int(value(), arg);
      if (n < 1) usage_error("--workers must be >= 1");
      cmd.workers = static_cast<std::size_t>(n);
    } else if (arg == "--listen") {
      listen = value();
    } else if (arg == "--journal") {
      cmd.options.journal_path = value();
    } else if (arg == "--status-file") {
      cmd.options.status_path = value();
    } else if (arg == "--linger-ms") {
      cmd.options.linger_ms = static_cast<std::uint32_t>(parse_int(value(), arg));
    } else if (arg == "--log-level") {
      const auto lvl = log::parse_level(value());
      if (!lvl) usage_error("--log-level needs trace|debug|info|warn|error|off");
      log::set_level(*lvl);
    } else {
      usage_error("unknown serve-leases option '" + arg + "'");
    }
  }
  const auto hp = util::HostPort::parse(listen, /*allow_port_zero=*/true);
  if (!hp) usage_error("--listen needs HOST:PORT (or :PORT)");
  cmd.options.listen = *hp;
  cmd.options.master_seed = cmd.sweep.master_seed;
  return exp::run_serve_leases_command(cmd);
}

int serve_cli(int argc, char** argv) {
  exp::ServeCommand cmd;
  std::string listen = "127.0.0.1:0";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--store") {
      // First --store is the canonical (writable) store; later ones are
      // extra read-only cache sources.
      if (cmd.options.store.empty())
        cmd.options.store = value();
      else
        cmd.options.extra_stores.push_back(value());
    } else if (arg == "--listen") {
      listen = value();
    } else if (arg == "--jobs") {
      cmd.options.exec_threads = static_cast<std::size_t>(parse_int(value(), arg));
    } else if (arg == "--shard") {
      cmd.options.shard_size = static_cast<std::size_t>(parse_int(value(), arg));
    } else if (arg == "--status-file") {
      cmd.options.status_path = value();
    } else if (arg == "--status-interval-ms") {
      const auto n = parse_int(value(), arg);
      if (n < 1) usage_error("--status-interval-ms must be >= 1");
      cmd.options.status_interval_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--query-threads") {
      cmd.options.query_threads =
          static_cast<std::size_t>(parse_int(value(), arg));
    } else if (arg == "--job-budget") {
      const auto n = parse_int(value(), arg);
      if (n < 1) usage_error("--job-budget must be >= 1");
      cmd.options.job_budget = static_cast<std::size_t>(n);
    } else if (arg == "--client-timeout-ms") {
      const auto n = parse_int(value(), arg);
      if (n < 1) usage_error("--client-timeout-ms must be >= 1");
      cmd.options.write_timeout_ms = static_cast<std::uint32_t>(n);
      cmd.options.read_timeout_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--trace") {
      cmd.trace_path = value();
    } else if (arg == "--log-level") {
      const auto lvl = log::parse_level(value());
      if (!lvl) usage_error("--log-level needs trace|debug|info|warn|error|off");
      log::set_level(*lvl);
    } else {
      usage_error("unknown serve option '" + arg + "'");
    }
  }
  const auto hp = util::HostPort::parse(listen, /*allow_port_zero=*/true);
  if (!hp) usage_error("--listen needs HOST:PORT (or :PORT)");
  cmd.options.listen = *hp;
  return exp::run_serve_command(cmd);
}

int query_cli(int argc, char** argv) {
  exp::QueryCommand cmd;
  std::vector<std::string> metrics;
  std::string target;
  apply_preset_prescan(argc, argv, cmd.query.sweep);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (parse_sweep_flag(cmd.query.sweep, arg, value)) {
    } else if (arg == "--server") {
      cmd.server = value();
    } else if (arg == "--metric") {
      for (const auto& m : parse_list(value(), arg)) metrics.push_back(m);
    } else if (arg == "--csv") {
      cmd.csv_path = value();
      cmd.query.want_csv = true;
    } else if (arg == "--target") {
      target = value();
    } else if (arg == "--timeout-ms") {
      const auto n = parse_int(value(), arg);
      if (n < 1) usage_error("--timeout-ms must be >= 1");
      cmd.timeout_ms = static_cast<std::uint32_t>(n);
    } else {
      usage_error("unknown query option '" + arg + "'");
    }
  }
  if (metrics_list_requested(metrics)) return 0;
  cmd.query.metrics = exp::resolve_metrics(metrics);
  if (!target.empty()) {
    // METRIC:HALFWIDTH, e.g. speedup:0.05 — keep scheduling fresh seeds
    // until every grid point's 95% CI half-width is within the target.
    const auto colon = target.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= target.size())
      usage_error("--target needs METRIC:HALFWIDTH (e.g. speedup:0.05)");
    cmd.query.target_metric = target.substr(0, colon);
    cmd.query.target_ci95 =
        parse_double(target.substr(colon + 1), "--target half-width");
    if (cmd.query.target_ci95 <= 0.0)
      usage_error("--target half-width must be > 0");
  }
  if (cmd.server.empty()) usage_error("query needs --server HOST:PORT");
  return exp::run_query_command(cmd);
}

/// The sweep/run mode. `run_mode` unlocks the distributed options; `self`
/// is the original argv[0] for worker self-exec.
int sweep_cli(int argc, char** argv, bool run_mode, const std::string& self) {
  exp::SweepCommand cmd;
  cmd.self = self;
  apply_preset_prescan(argc, argv, cmd.sweep);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--shard" && run_mode && i + 1 < argc &&
               std::string(argv[i + 1]).find('/') != std::string::npos) {
      // run-mode "--shard i/N" = worker identity; the thread-level
      // "--shard N" claim size keeps its meaning for plain integers.
      cmd.shard = exp::ShardSpec::parse(value());
      if (!cmd.shard) usage_error("--shard needs i/N with i < N");
    } else if (parse_sweep_flag(cmd.sweep, arg, value)) {
    } else if (arg == "--jobs") {
      cmd.jobs = static_cast<std::size_t>(parse_int(value(), arg));
      cmd.jobs_given = true;
    } else if (arg == "--shard") {
      cmd.claim_shard_size = static_cast<std::size_t>(parse_int(value(), arg));
    } else if (arg == "--workers" && run_mode) {
      // Validate before the size_t cast: -2 must not wrap to 2^64-2.
      const auto n = parse_int(value(), arg);
      if (n < 1) usage_error("--workers must be >= 1");
      cmd.workers = static_cast<std::size_t>(n);
    } else if (arg == "--steal" && run_mode) {
      cmd.steal = true;
    } else if (arg == "--heartbeat-ms" && run_mode) {
      cmd.heartbeat_ms = static_cast<std::uint32_t>(parse_int(value(), arg));
      cmd.heartbeat_given = true;  // explicit (even 0) disables adaptive mode
    } else if (arg == "--max-restarts" && run_mode) {
      cmd.max_restarts = static_cast<std::size_t>(parse_int(value(), arg));
    } else if (arg == "--retry-quarantined" && run_mode) {
      cmd.retry_quarantined = true;
    } else if (arg == "--lease-server" && run_mode) {
      cmd.lease_server = value();
      if (!util::HostPort::parse(cmd.lease_server))
        usage_error("--lease-server needs HOST:PORT");
    } else if (arg == "--lease-timeout-ms" && run_mode) {
      const auto n = parse_int(value(), arg);
      if (n < 1) usage_error("--lease-timeout-ms must be >= 1");
      cmd.lease_timeout_ms = static_cast<std::uint32_t>(n);
    } else if (arg == "--lease-retries" && run_mode) {
      cmd.lease_retries = static_cast<std::size_t>(parse_int(value(), arg));
    } else if (arg == "--worker-slot" && run_mode) {
      cmd.worker_slot = exp::ShardSpec::parse(value());
      if (!cmd.worker_slot) usage_error("--worker-slot needs k/W with k < W");
    } else if (arg == "--keep-shards" && run_mode) {
      cmd.keep_shards = true;
    } else if (arg == "--out") {
      cmd.out = value();
    } else if (arg == "--csv") {
      cmd.csv_path = value();
    } else if (arg == "--resume") {
      cmd.resume = true;
    } else if (arg == "--no-progress") {
      cmd.progress = false;
    } else if (arg == "--log-level") {
      const auto v = value();
      const auto lvl = log::parse_level(v);
      if (!lvl) usage_error("--log-level needs trace|debug|info|warn|error|off");
      log::set_level(*lvl);
      cmd.log_level = v;  // workers inherit the chosen verbosity
    } else if (arg == "--trace") {
      cmd.trace_path = value();
    } else if (arg == "--status-file") {
      // Parent-owned: workers report through leases/heartbeats, not
      // their own status files, so this is deliberately not forwarded.
      cmd.status_path = value();
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  return exp::run_sweep_command(cmd);
}

}  // namespace

int main(int argc, char** argv) {
  // Verbosity: CLI default Info, ORACLE_LOG env overrides fleet-wide
  // (worker processes inherit it), an explicit --log-level flag wins.
  if (!oracle::log::init_from_env())
    oracle::log::set_level(oracle::log::Level::Info);
  const std::string self = argv[0];
  const std::string sub = argc > 1 ? argv[1] : "";
  try {
    if (sub == "aggregate") return aggregate_cli(argc - 1, argv + 1);
    if (sub == "trace") return trace_cli(argc - 1, argv + 1);
    if (sub == "serve-leases") return serve_leases_cli(argc - 1, argv + 1);
    if (sub == "serve") return serve_cli(argc - 1, argv + 1);
    if (sub == "query") return query_cli(argc - 1, argv + 1);
    if (sub == "run")
      return sweep_cli(argc - 1, argv + 1, /*run_mode=*/true, self);
    return sweep_cli(argc, argv, /*run_mode=*/false, self);
  } catch (const oracle::ConfigError& e) {
    usage_error(e.what());
  }
}
