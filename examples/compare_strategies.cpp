// Compare every load-distribution strategy on one scenario, printing the
// full statistics panel (the numbers ORACLE reports per run).
//
//   ./compare_strategies [topology] [workload]
//   e.g. ./compare_strategies grid:16x16 dc:1:987

#include <cstdio>
#include <string>
#include <vector>

#include "oracle.hpp"

int main(int argc, char** argv) {
  using namespace oracle;

  const std::string topology = argc > 1 ? argv[1] : "grid:10x10";
  const std::string workload = argc > 2 ? argv[2] : "fib:15";

  const std::vector<std::string> strategies = {
      "local",
      "random",
      "roundrobin",
      "steal:backoff=10",
      "gm:hwm=2,lwm=1,interval=20",
      "cwn:radius=9,horizon=2",
      "acwn:radius=9,horizon=2,saturation=3,redistribute=4",
  };

  std::vector<core::ExperimentConfig> configs;
  for (const auto& strategy : strategies) {
    core::ExperimentConfig cfg = core::paper::base_config();
    cfg.topology = topology;
    cfg.strategy = strategy;
    cfg.workload = workload;
    configs.push_back(cfg);
  }
  const auto results = core::run_all(configs);

  std::printf("Strategy comparison: %s, %s (%u PEs)\n\n", topology.c_str(),
              workload.c_str(), results[0].num_pes);
  TextTable t({"strategy", "completion", "util %", "speedup", "goal msgs",
               "resp msgs", "ctrl msgs", "avg dist", "max chan util %"});
  for (const auto& r : results) {
    t.add_row({r.strategy, std::to_string(r.completion_time),
               fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
               std::to_string(r.goal_transmissions),
               std::to_string(r.response_transmissions),
               std::to_string(r.control_transmissions),
               fixed(r.avg_goal_distance, 2),
               fixed(r.max_channel_utilization * 100, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Spell out the headline of the paper for the two schemes under study.
  const auto& gm = results[4];
  const auto& cwn = results[5];
  std::printf("CWN / GM speedup ratio: %.2f  (the paper's Table 2 statistic)\n",
              gm.speedup > 0 ? cwn.speedup / gm.speedup : 0.0);
  return 0;
}
