#include "util/rng.hpp"

#include <cmath>

namespace oracle {

double Rng::exponential(double mean) noexcept {
  ORACLE_ASSERT(mean > 0.0);
  // Inverse CDF; 1 - uniform01() is in (0, 1], so log() is finite.
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal(double mean, double stddev) noexcept {
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  return mean + stddev * u * factor;
}

std::uint64_t Rng::geometric(double p) noexcept {
  ORACLE_ASSERT(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - uniform01();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace oracle
