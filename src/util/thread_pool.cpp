#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/error.hpp"

namespace oracle {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ORACLE_ASSERT(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ORACLE_ASSERT_MSG(!stop_, "submit() after ThreadPool destruction began");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ was set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t num_threads,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  ThreadPool pool(num_threads);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t workers = pool.size();
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace oracle
