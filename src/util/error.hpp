#pragma once
// Error-handling primitives used throughout the ORACLE library.
//
// Invariant violations inside the simulator are programming errors and abort
// via ORACLE_ASSERT (kept on in release builds: a discrete-event simulator
// that silently corrupts its event list produces plausible-looking garbage).
// User-facing configuration problems throw oracle::ConfigError instead.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace oracle {

/// Thrown for malformed experiment configuration (bad topology spec, negative
/// costs, unknown strategy name, ...). Carries a human-readable message.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulation reaches an impossible state that is attributable
/// to user input rather than library bugs (e.g. event limit exceeded).
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ORACLE_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}
}  // namespace detail

}  // namespace oracle

#define ORACLE_ASSERT(expr)                                                 \
  do {                                                                      \
    if (!(expr))                                                            \
      ::oracle::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);    \
  } while (0)

#define ORACLE_ASSERT_MSG(expr, msg)                                        \
  do {                                                                      \
    if (!(expr))                                                            \
      ::oracle::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));      \
  } while (0)

/// Validate user configuration; throws ConfigError with `msg` on failure.
#define ORACLE_REQUIRE(expr, msg)                   \
  do {                                              \
    if (!(expr)) throw ::oracle::ConfigError(msg);  \
  } while (0)
