#include "util/net.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "util/error.hpp"
#include "util/posix_io.hpp"
#include "util/string_util.hpp"

namespace oracle::util {

std::optional<HostPort> HostPort::parse(const std::string& text,
                                        bool allow_port_zero) {
  const std::string t{trim(text)};
  if (t.empty()) return std::nullopt;
  HostPort hp;
  std::string port_str;
  const auto colon = t.rfind(':');
  if (colon == std::string::npos) {
    hp.host = "127.0.0.1";
    port_str = t;
  } else {
    hp.host = t.substr(0, colon);
    if (hp.host.empty()) hp.host = "127.0.0.1";
    port_str = t.substr(colon + 1);
  }
  std::int64_t port = 0;
  try {
    port = parse_int(port_str, "port");
  } catch (const ConfigError&) {
    return std::nullopt;
  }
  if (port < 0 || port > 65535) return std::nullopt;
  if (port == 0 && !allow_port_zero) return std::nullopt;
  hp.port = static_cast<std::uint16_t>(port);
  return hp;
}

std::string HostPort::str() const {
  return strfmt("%s:%u", host.c_str(), static_cast<unsigned>(port));
}

std::optional<std::uint64_t> parse_u64_token(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

const std::string& TextFrame::tok(std::size_t i) const {
  static const std::string kEmpty;
  return i < tokens.size() ? tokens[i] : kEmpty;
}

std::optional<std::uint64_t> TextFrame::u64(std::size_t i) const {
  if (i >= tokens.size()) return std::nullopt;
  return parse_u64_token(tokens[i]);
}

std::string TextFrame::text_after(std::size_t i) const {
  if (i >= tokens.size()) return {};
  std::size_t pos = token_end_[i];
  if (pos < raw_.size() && raw_[pos] == ' ') ++pos;
  return raw_.substr(pos);
}

std::optional<std::string> FrameSplitter::next() {
  if (corrupt_) return std::nullopt;
  if (buf_.size() - off_ < 4) return std::nullopt;
  const auto* h = reinterpret_cast<const unsigned char*>(buf_.data() + off_);
  const std::uint32_t n = static_cast<std::uint32_t>(h[0]) |
                          (static_cast<std::uint32_t>(h[1]) << 8) |
                          (static_cast<std::uint32_t>(h[2]) << 16) |
                          (static_cast<std::uint32_t>(h[3]) << 24);
  if (n > max_bytes_) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (buf_.size() - off_ - 4 < n) return std::nullopt;
  std::string payload = buf_.substr(off_ + 4, n);
  off_ += 4 + static_cast<std::size_t>(n);
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not accrete every frame it ever received.
  if (off_ > 4096 && off_ * 2 >= buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return payload;
}

std::string frame_bytes(const std::string& payload, std::size_t max_bytes) {
  if (payload.size() > max_bytes) return {};
  unsigned char hdr[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  hdr[0] = static_cast<unsigned char>(n & 0xff);
  hdr[1] = static_cast<unsigned char>((n >> 8) & 0xff);
  hdr[2] = static_cast<unsigned char>((n >> 16) & 0xff);
  hdr[3] = static_cast<unsigned char>((n >> 24) & 0xff);
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.append(reinterpret_cast<const char*>(hdr), 4);
  buf.append(payload);
  return buf;
}

std::optional<TextFrame> TextFrame::parse(const std::string& payload,
                                          const std::string& version,
                                          std::size_t max_tokens) {
  TextFrame f;
  f.raw_ = payload;
  std::size_t pos = 0;
  while (pos < payload.size() && f.tokens.size() < max_tokens) {
    while (pos < payload.size() && payload[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < payload.size() && payload[end] != ' ') ++end;
    if (end > pos) {
      f.tokens.emplace_back(payload, pos, end - pos);
      f.token_end_.push_back(end);
    }
    pos = end;
  }
  if (f.tokens.size() < 3 || f.tokens[0] != version) return std::nullopt;
  const auto seq = parse_u64_token(f.tokens[1]);
  if (!seq) return std::nullopt;
  f.seq = *seq;
  return f;
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

#if defined(_WIN32)

void Socket::close() { fd_ = -1; }
Socket listen_tcp(const HostPort&, int) { return Socket(); }
std::uint16_t local_port(int) { return 0; }
Socket connect_tcp(const HostPort&, NetDeadline) { return Socket(); }
Socket accept_tcp(int) { return Socket(); }
void set_send_buffer(int, int) {}
bool send_frame(int, const std::string&, NetDeadline, std::size_t) {
  return false;
}
std::optional<std::string> recv_frame(int, NetDeadline, std::size_t) {
  return std::nullopt;
}
IoResult read_some(int, std::string&, std::size_t) { return IoResult::kClosed; }
IoResult write_some(int, const char*, std::size_t, std::size_t* written) {
  if (written != nullptr) *written = 0;
  return IoResult::kClosed;
}
WakePipe::WakePipe() = default;
WakePipe::~WakePipe() = default;
void WakePipe::notify() {}
void WakePipe::drain() {}

#else

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Remaining milliseconds until `deadline`, clamped to >= 0.
int ms_until(NetDeadline deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - NetClock::now())
                        .count();
  if (left <= 0) return 0;
  if (left > 60'000) return 60'000;
  return static_cast<int>(left);
}

/// Wait for `events` on fd until deadline. True iff the fd became ready.
bool wait_ready(int fd, short events, NetDeadline deadline) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  while (true) {
    const int r = poll_retry(&p, 1, ms_until(deadline));
    if (r > 0) return true;
    if (r == 0) {
      if (NetClock::now() >= deadline) return false;
      continue;  // clamped wait expired; deadline still ahead
    }
    return false;
  }
}

std::optional<sockaddr_in> resolve_ipv4(const HostPort& hp) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.port);
  if (::inet_pton(AF_INET, hp.host.c_str(), &addr.sin_addr) == 1) return addr;
  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  if (::getaddrinfo(hp.host.c_str(), nullptr, &hints, &res) != 0 || !res)
    return std::nullopt;
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

/// Write exactly n bytes to a (possibly nonblocking) socket under a
/// deadline. Unlike write_full this must poll on EAGAIN.
bool write_all_deadline(int fd, const char* p, std::size_t n,
                        NetDeadline deadline) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_ready(fd, POLLOUT, deadline)) return false;
      continue;
    }
    return false;
  }
  return true;
}

/// Read exactly n bytes under a deadline. False on EOF/timeout/error.
bool read_all_deadline(int fd, char* p, std::size_t n, NetDeadline deadline) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd, p + done, n - done, 0);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_ready(fd, POLLIN, deadline)) return false;
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

Socket listen_tcp(const HostPort& at, int backlog) {
  const auto addr = resolve_ipv4(at);
  if (!addr) return Socket();
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Socket();
  int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0)
    return Socket();
  if (::listen(s.fd(), backlog) != 0) return Socket();
  set_nonblocking(s.fd());
  return s;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

Socket connect_tcp(const HostPort& to, NetDeadline deadline) {
  const auto addr = resolve_ipv4(to);
  if (!addr) return Socket();
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Socket();
  set_nonblocking(s.fd());
  const int rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&*addr),
                           sizeof(*addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return Socket();
    if (!wait_ready(s.fd(), POLLOUT, deadline)) return Socket();
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0)
      return Socket();
  }
  set_nodelay(s.fd());
  return s;
}

Socket accept_tcp(int listen_fd) {
  Socket s(::accept(listen_fd, nullptr, nullptr));
  if (!s.valid()) return Socket();
  set_nonblocking(s.fd());
  set_nodelay(s.fd());
  return s;
}

void set_send_buffer(int fd, int bytes) {
  if (bytes <= 0) return;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
}

IoResult read_some(int fd, std::string& buf, std::size_t max_bytes) {
  char chunk[16384];
  std::size_t total = 0;
  while (total < max_bytes) {
    const std::size_t want = std::min(sizeof(chunk), max_bytes - total);
    const ssize_t r = ::recv(fd, chunk, want, 0);
    if (r > 0) {
      buf.append(chunk, static_cast<std::size_t>(r));
      total += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return IoResult::kClosed;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return total > 0 ? IoResult::kProgress : IoResult::kWouldBlock;
    return IoResult::kClosed;
  }
  return IoResult::kProgress;
}

IoResult write_some(int fd, const char* data, std::size_t len,
                    std::size_t* written) {
  std::size_t done = 0;
  IoResult result = IoResult::kWouldBlock;
  while (done < len) {
    const ssize_t r = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      result = IoResult::kProgress;
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    result = IoResult::kClosed;
    break;
  }
  if (done == len && len > 0) result = IoResult::kProgress;
  if (written != nullptr) *written = done;
  return result;
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) return;
  rfd_ = fds[0];
  wfd_ = fds[1];
  set_nonblocking(rfd_);
  set_nonblocking(wfd_);
}

WakePipe::~WakePipe() {
  if (rfd_ >= 0) ::close(rfd_);
  if (wfd_ >= 0) ::close(wfd_);
}

void WakePipe::notify() {
  if (wfd_ < 0) return;
  const char b = 1;
  // A full pipe already guarantees the poller will wake; dropping the
  // byte on EAGAIN is the coalescing, not a loss.
  [[maybe_unused]] const ssize_t r = ::write(wfd_, &b, 1);
}

void WakePipe::drain() {
  if (rfd_ < 0) return;
  char sink[256];
  while (::read(rfd_, sink, sizeof(sink)) > 0) {
  }
}

bool send_frame(int fd, const std::string& payload, NetDeadline deadline,
                std::size_t max_bytes) {
  if (payload.size() > max_bytes) return false;
  unsigned char hdr[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  hdr[0] = static_cast<unsigned char>(n & 0xff);
  hdr[1] = static_cast<unsigned char>((n >> 8) & 0xff);
  hdr[2] = static_cast<unsigned char>((n >> 16) & 0xff);
  hdr[3] = static_cast<unsigned char>((n >> 24) & 0xff);
  // Header and payload in one buffer: a single send() usually covers both,
  // and a peer can never observe a header-only partial frame from us.
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.append(reinterpret_cast<const char*>(hdr), 4);
  buf.append(payload);
  return write_all_deadline(fd, buf.data(), buf.size(), deadline);
}

std::optional<std::string> recv_frame(int fd, NetDeadline deadline,
                                      std::size_t max_bytes) {
  unsigned char hdr[4];
  if (!read_all_deadline(fd, reinterpret_cast<char*>(hdr), 4, deadline))
    return std::nullopt;
  const std::uint32_t n = static_cast<std::uint32_t>(hdr[0]) |
                          (static_cast<std::uint32_t>(hdr[1]) << 8) |
                          (static_cast<std::uint32_t>(hdr[2]) << 16) |
                          (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (n > max_bytes) return std::nullopt;
  std::string payload(n, '\0');
  if (n > 0 && !read_all_deadline(fd, payload.data(), n, deadline))
    return std::nullopt;
  return payload;
}

#endif

}  // namespace oracle::util
