#include "util/string_util.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace oracle {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::int64_t parse_int(std::string_view s, std::string_view what) {
  const std::string str(trim(s));
  ORACLE_REQUIRE(!str.empty(), std::string(what) + ": empty integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(str.c_str(), &end, 10);
  ORACLE_REQUIRE(errno == 0 && end == str.c_str() + str.size(),
                 std::string(what) + ": bad integer '" + str + "'");
  return static_cast<std::int64_t>(value);
}

double parse_double(std::string_view s, std::string_view what) {
  const std::string str(trim(s));
  ORACLE_REQUIRE(!str.empty(), std::string(what) + ": empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(str.c_str(), &end);
  ORACLE_REQUIRE(errno == 0 && end == str.c_str() + str.size(),
                 std::string(what) + ": bad number '" + str + "'");
  return value;
}

std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string fixed(double value, int digits) {
  return strfmt("%.*f", digits, value);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace oracle
