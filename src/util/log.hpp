#pragma once
// Minimal leveled logger. The simulator is performance-sensitive, so trace
// logging compiles to a level check plus (lazily) formatting; the default
// level is Warn so large sweeps are silent.
//
// Multi-process runs tag their lines: a worker calls set_tag("worker 1/4")
// at startup and every line it writes carries the tag, so the interleaved
// stderr of a supervised run still attributes each line to its origin.
// `ORACLE_LOG=debug` (see init_from_env) raises the level fleet-wide
// because child processes inherit the environment; an explicit --log-level
// flag overrides it per invocation.

#include <cstdio>
#include <optional>
#include <string>

namespace oracle::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide log level. Not thread-local: sweep workers share it.
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// Parse "trace|debug|info|warn|error|off" (case-insensitive); nullopt on
/// anything else.
std::optional<Level> parse_level(const std::string& name) noexcept;

/// Apply the ORACLE_LOG environment variable, if set to a valid level
/// name. Returns true when a level was applied. Malformed values are
/// ignored (the logger must never abort the process it observes).
bool init_from_env() noexcept;

/// Origin tag prepended to every line (e.g. "worker 1/4"); "" disables.
/// Process-wide: set once at startup, before threads spawn.
void set_tag(std::string tag);
const std::string& tag() noexcept;

/// True if a message at `lvl` would be emitted.
bool enabled(Level lvl) noexcept;

/// Emit a preformatted message (newline appended).
void write(Level lvl, const std::string& msg);

}  // namespace oracle::log

#define ORACLE_LOG(lvl, msg)                                     \
  do {                                                           \
    if (::oracle::log::enabled(lvl)) ::oracle::log::write(lvl, (msg)); \
  } while (0)

#define ORACLE_LOG_TRACE(msg) ORACLE_LOG(::oracle::log::Level::Trace, msg)
#define ORACLE_LOG_DEBUG(msg) ORACLE_LOG(::oracle::log::Level::Debug, msg)
#define ORACLE_LOG_INFO(msg) ORACLE_LOG(::oracle::log::Level::Info, msg)
#define ORACLE_LOG_WARN(msg) ORACLE_LOG(::oracle::log::Level::Warn, msg)
#define ORACLE_LOG_ERROR(msg) ORACLE_LOG(::oracle::log::Level::Error, msg)
