#pragma once
// Minimal leveled logger. The simulator is performance-sensitive, so trace
// logging compiles to a level check plus (lazily) formatting; the default
// level is Warn so large sweeps are silent.

#include <cstdio>
#include <string>

namespace oracle::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide log level. Not thread-local: sweep workers share it.
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// True if a message at `lvl` would be emitted.
bool enabled(Level lvl) noexcept;

/// Emit a preformatted message (newline appended).
void write(Level lvl, const std::string& msg);

}  // namespace oracle::log

#define ORACLE_LOG(lvl, msg)                                     \
  do {                                                           \
    if (::oracle::log::enabled(lvl)) ::oracle::log::write(lvl, (msg)); \
  } while (0)

#define ORACLE_LOG_TRACE(msg) ORACLE_LOG(::oracle::log::Level::Trace, msg)
#define ORACLE_LOG_DEBUG(msg) ORACLE_LOG(::oracle::log::Level::Debug, msg)
#define ORACLE_LOG_INFO(msg) ORACLE_LOG(::oracle::log::Level::Info, msg)
#define ORACLE_LOG_WARN(msg) ORACLE_LOG(::oracle::log::Level::Warn, msg)
#define ORACLE_LOG_ERROR(msg) ORACLE_LOG(::oracle::log::Level::Error, msg)
