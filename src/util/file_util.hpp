#pragma once
// Durability and atomic-replace primitives for the crash-safe result
// stores. POSIX builds get real fsync()/rename() semantics; elsewhere the
// functions degrade to best-effort no-ops so the library still compiles
// (the stores stay correct on clean exits, just without power-loss
// guarantees).

#include <cstdint>
#include <optional>
#include <string>

namespace oracle::util {

/// Flush `path`'s written data to stable storage (fsync on POSIX). The
/// caller must already have pushed its buffered writes into the OS (e.g.
/// std::ofstream::flush); this persists them across power loss, not just
/// process death. Returns false when the file cannot be opened or synced;
/// callers treat that as best-effort (network/overlay filesystems commonly
/// reject fsync).
bool fsync_path(const std::string& path) noexcept;

/// fsync the directory containing `path`, making a just-renamed or
/// just-created entry itself durable. Best-effort, as above.
bool fsync_parent_dir(const std::string& path) noexcept;

/// Atomically replace `target` with `tmp` (rename(2)): readers see either
/// the complete old file or the complete new file, never a partial write.
/// The tmp file's data is fsynced first, and the parent directory after.
/// Throws SimulationError when the rename itself fails.
void atomic_replace(const std::string& tmp, const std::string& target);

/// Delete `path` if it exists; returns true when a file was removed.
bool remove_file(const std::string& path) noexcept;

/// True when `path` exists (stat succeeds).
bool file_exists(const std::string& path) noexcept;

/// Create `path` if missing and bump its modification time to now — the
/// heartbeat primitive of the shard supervisor (workers touch, the parent
/// watches the mtime). Returns false when the file cannot be created.
bool touch_file(const std::string& path) noexcept;

/// Modification time of `path` in nanoseconds since the epoch, or nullopt
/// when it does not exist. Only *changes* of this value are meaningful to
/// callers (the heartbeat monitor measures staleness against a steady
/// clock, never against this wall-clock value), so second-granularity
/// filesystems merely coarsen detection, not correctness.
std::optional<std::int64_t> file_mtime_ns(const std::string& path) noexcept;

/// Atomically publish a small control file: write `content` to a tmp file
/// beside `path`, fsync, and rename over `path` — readers see the old or
/// the new content, never a torn write. Throws SimulationError on failure.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace oracle::util
