#pragma once
// RingQueue: a growable circular-buffer FIFO with up-front capacity
// reservation. std::deque allocates a fresh block every few dozen elements
// and never gives one back mid-run; the simulator's per-PE ready queues and
// per-channel wait queues instead reserve once at machine setup and then
// push/pop millions of times with zero allocation (capacity only grows on
// overflow, by doubling).
//
// Supports random access and middle erasure (both index-based) because load
// balancing occasionally extracts a transferable goal from the middle of a
// ready queue; erasure shifts the shorter side, so it is O(min(i, n-i)) —
// fine for the rare transfer, irrelevant to the hot push/pop path.

#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace oracle::util {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return buf_.size(); }

  /// Ensure capacity for at least `n` elements without further allocation.
  void reserve(std::size_t n) {
    if (n > buf_.size()) regrow(ceil_pow2(n));
  }

  T& operator[](std::size_t i) {
    ORACLE_ASSERT(i < size_);
    return buf_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    ORACLE_ASSERT(i < size_);
    return buf_[(head_ + i) & mask_];
  }

  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }

  void push_back(T value) {
    if (size_ == buf_.size()) regrow(buf_.empty() ? 8 : buf_.size() * 2);
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  T pop_front() {
    ORACLE_ASSERT(size_ > 0);
    T out = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return out;
  }

  /// Remove the element at logical index `i`, preserving the order of the
  /// rest. Shifts whichever side of `i` is shorter; works identically when
  /// the live range wraps around the end of the buffer, because every slot
  /// access goes through the masked logical indexing of operator[].
  /// The vacated physical slot is reset to T{} so resource-holding payloads
  /// (pooled pointers, handles) do not linger behind head_ / past the tail.
  void erase_at(std::size_t i) {
    ORACLE_ASSERT(i < size_);
    if (i == 0) {
      // Front: drop in place — no element moves at all.
      buf_[head_] = T{};
      head_ = (head_ + 1) & mask_;
      --size_;
      return;
    }
    if (i == size_ - 1) {
      // Back: drop in place.
      buf_[(head_ + i) & mask_] = T{};
      --size_;
      return;
    }
    if (i < size_ - i - 1) {
      // Left side shorter: shift [0, i) right by one, then advance head_.
      // Each assignment targets a slot whose value has already been moved
      // out (or is about to be vacated), so the moved-from state is only
      // ever overwritten, never read.
      for (std::size_t j = i; j > 0; --j)
        (*this)[j] = std::move((*this)[j - 1]);
      buf_[head_] = T{};
      head_ = (head_ + 1) & mask_;
    } else {
      // Right side shorter: shift (i, size_) left by one.
      for (std::size_t j = i; j + 1 < size_; ++j)
        (*this)[j] = std::move((*this)[j + 1]);
      buf_[(head_ + size_ - 1) & mask_] = T{};
    }
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  static std::size_t ceil_pow2(std::size_t n) {
    std::size_t p = 8;
    while (p < n) p *= 2;
    return p;
  }

  void regrow(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = buf_.size() - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;   // index of the logical front
  std::size_t size_ = 0;
  std::size_t mask_ = 0;   // buf_.size() - 1 (capacity is a power of two)
};

}  // namespace oracle::util
