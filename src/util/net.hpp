#pragma once
// Minimal TCP plumbing for the lease service: parse "host:port", listen,
// connect with a deadline, and exchange length-prefixed frames. POSIX
// sockets only (the shard supervisor is already POSIX-gated); no new
// dependencies. All blocking calls honour an absolute deadline via
// poll_retry so a wedged peer can never hang a worker past its retry
// budget.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace oracle::util {

using NetClock = std::chrono::steady_clock;
using NetDeadline = NetClock::time_point;

/// "host:port" (or ":port" / bare "port" meaning 127.0.0.1). Port must be
/// in [1, 65535] for connect; 0 is allowed for listen (ephemeral).
struct HostPort {
  std::string host;
  std::uint16_t port = 0;

  static std::optional<HostPort> parse(const std::string& text,
                                       bool allow_port_zero = false);
  std::string str() const;
};

/// Owning socket fd; closes on destruction. Moveable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Relinquish ownership (caller closes).
  int release();
  void close();

 private:
  int fd_ = -1;
};

/// Bind + listen on host:port (SO_REUSEADDR). Port 0 picks an ephemeral
/// port; read it back with local_port(). Invalid Socket on failure
/// (errno preserved).
Socket listen_tcp(const HostPort& at, int backlog = 64);

/// The locally-bound port of a listening/connected socket (0 on error).
std::uint16_t local_port(int fd);

/// Connect with a deadline (nonblocking connect + poll). Invalid Socket
/// on failure or timeout. Resolves numeric IPv4 or names via getaddrinfo.
Socket connect_tcp(const HostPort& to, NetDeadline deadline);

/// Accept one pending connection (socket must be ready). Invalid on error.
Socket accept_tcp(int listen_fd);

/// Set SO_SNDBUF on a socket (0 = leave the OS default). Best-effort: a
/// server uses this to bound how much a stalled client can sink into the
/// kernel before the userspace write queue (and its eviction deadline)
/// takes over.
void set_send_buffer(int fd, int bytes);

inline constexpr std::size_t kMaxFrameBytes = 1 << 16;

/// Write one [u32-le length][payload] frame before `deadline`. The socket
/// may be nonblocking; partial writes are continued under poll. False on
/// error/timeout. `max_bytes` caps the payload a protocol is willing to
/// put on the wire (both peers must agree).
bool send_frame(int fd, const std::string& payload, NetDeadline deadline,
                std::size_t max_bytes = kMaxFrameBytes);

/// Read one frame before `deadline`. nullopt on EOF, timeout, error, or
/// an oversized/corrupt length prefix (connection should be dropped).
std::optional<std::string> recv_frame(int fd, NetDeadline deadline,
                                      std::size_t max_bytes = kMaxFrameBytes);

/// The exact wire bytes of one frame — [u32-le length][payload] in a
/// single contiguous buffer (what send_frame puts on the wire). A
/// non-blocking server encodes responses with this and queues the bytes
/// for incremental writes. Empty string when the payload exceeds
/// `max_bytes` (nothing to queue; the caller must not send a partial).
std::string frame_bytes(const std::string& payload,
                        std::size_t max_bytes = kMaxFrameBytes);

/// One non-blocking read attempt, appending up to `max_bytes` to `buf`.
enum class IoResult {
  kProgress,    ///< bytes were transferred
  kWouldBlock,  ///< nothing available right now (EAGAIN)
  kClosed       ///< EOF or a hard socket error — drop the connection
};
IoResult read_some(int fd, std::string& buf, std::size_t max_bytes = 65536);

/// One non-blocking write attempt of data[0, len). Returns bytes written
/// through `written` (0 on would-block). kClosed on a hard error.
IoResult write_some(int fd, const char* data, std::size_t len,
                    std::size_t* written);

/// Incremental decoder for length-prefixed frames arriving in arbitrary
/// chunks on a non-blocking connection: feed() raw bytes as they arrive,
/// next() pops complete payloads in order. corrupt() latches when a
/// length prefix exceeds max_bytes — the stream is garbage from there on
/// and the connection should be dropped.
class FrameSplitter {
 public:
  explicit FrameSplitter(std::size_t max_bytes = kMaxFrameBytes)
      : max_bytes_(max_bytes) {}

  void feed(const char* data, std::size_t len) { buf_.append(data, len); }
  void feed(const std::string& data) { feed(data.data(), data.size()); }

  /// Pop the next complete frame payload; nullopt when no complete frame
  /// is buffered (or the stream is corrupt).
  std::optional<std::string> next();

  bool corrupt() const { return corrupt_; }
  /// True when a partial frame (header or payload) is sitting in the
  /// buffer — the peer owes us bytes (drives the read-stall deadline).
  bool partial() const { return off_ < buf_.size(); }

 private:
  std::size_t max_bytes_;
  std::string buf_;
  std::size_t off_ = 0;  ///< consumed prefix of buf_
  bool corrupt_ = false;
};

/// Self-pipe that wakes a poll loop from another thread: poll the read
/// end for POLLIN, notify() from anywhere (async-signal-safe, coalescing,
/// never blocks), drain() before re-polling. POSIX only; invalid (fds
/// < 0) on Windows or pipe() failure.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  bool valid() const { return rfd_ >= 0; }
  int poll_fd() const { return rfd_; }
  void notify();
  void drain();

 private:
  int rfd_ = -1;
  int wfd_ = -1;
};

/// Strict decimal u64: digits only, overflow-checked. nullopt otherwise.
std::optional<std::uint64_t> parse_u64_token(const std::string& s);

/// Tokenised view of a versioned text frame: "<version> <seq> <op> ...".
/// Shared by the lease and service protocols so both speak one dialect.
/// Tokens split on runs of spaces; `tokens[0]` is the version, `tokens[1]`
/// the (already validated) seq. `text_after(i)` recovers the raw payload
/// bytes after token i — byte-exact, no trimming — for trailing free text
/// (error messages, JSON, rendered tables) that may itself contain spaces
/// or newlines. `max_tokens` stops tokenisation early so a large trailing
/// text body is not shredded into thousands of tokens.
struct TextFrame {
  std::uint64_t seq = 0;
  std::vector<std::string> tokens;

  std::size_t size() const { return tokens.size(); }
  const std::string& tok(std::size_t i) const;
  std::optional<std::uint64_t> u64(std::size_t i) const;
  std::string text_after(std::size_t i) const;

  static std::optional<TextFrame> parse(
      const std::string& payload, const std::string& version,
      std::size_t max_tokens = static_cast<std::size_t>(-1));

 private:
  std::string raw_;
  std::vector<std::size_t> token_end_;  // end offset of tokens[i] in raw_
};

}  // namespace oracle::util
