#pragma once
// Minimal TCP plumbing for the lease service: parse "host:port", listen,
// connect with a deadline, and exchange length-prefixed frames. POSIX
// sockets only (the shard supervisor is already POSIX-gated); no new
// dependencies. All blocking calls honour an absolute deadline via
// poll_retry so a wedged peer can never hang a worker past its retry
// budget.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace oracle::util {

using NetClock = std::chrono::steady_clock;
using NetDeadline = NetClock::time_point;

/// "host:port" (or ":port" / bare "port" meaning 127.0.0.1). Port must be
/// in [1, 65535] for connect; 0 is allowed for listen (ephemeral).
struct HostPort {
  std::string host;
  std::uint16_t port = 0;

  static std::optional<HostPort> parse(const std::string& text,
                                       bool allow_port_zero = false);
  std::string str() const;
};

/// Owning socket fd; closes on destruction. Moveable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Relinquish ownership (caller closes).
  int release();
  void close();

 private:
  int fd_ = -1;
};

/// Bind + listen on host:port (SO_REUSEADDR). Port 0 picks an ephemeral
/// port; read it back with local_port(). Invalid Socket on failure
/// (errno preserved).
Socket listen_tcp(const HostPort& at, int backlog = 64);

/// The locally-bound port of a listening/connected socket (0 on error).
std::uint16_t local_port(int fd);

/// Connect with a deadline (nonblocking connect + poll). Invalid Socket
/// on failure or timeout. Resolves numeric IPv4 or names via getaddrinfo.
Socket connect_tcp(const HostPort& to, NetDeadline deadline);

/// Accept one pending connection (socket must be ready). Invalid on error.
Socket accept_tcp(int listen_fd);

inline constexpr std::size_t kMaxFrameBytes = 1 << 16;

/// Write one [u32-le length][payload] frame before `deadline`. The socket
/// may be nonblocking; partial writes are continued under poll. False on
/// error/timeout. `max_bytes` caps the payload a protocol is willing to
/// put on the wire (both peers must agree).
bool send_frame(int fd, const std::string& payload, NetDeadline deadline,
                std::size_t max_bytes = kMaxFrameBytes);

/// Read one frame before `deadline`. nullopt on EOF, timeout, error, or
/// an oversized/corrupt length prefix (connection should be dropped).
std::optional<std::string> recv_frame(int fd, NetDeadline deadline,
                                      std::size_t max_bytes = kMaxFrameBytes);

/// Strict decimal u64: digits only, overflow-checked. nullopt otherwise.
std::optional<std::uint64_t> parse_u64_token(const std::string& s);

/// Tokenised view of a versioned text frame: "<version> <seq> <op> ...".
/// Shared by the lease and service protocols so both speak one dialect.
/// Tokens split on runs of spaces; `tokens[0]` is the version, `tokens[1]`
/// the (already validated) seq. `text_after(i)` recovers the raw payload
/// bytes after token i — byte-exact, no trimming — for trailing free text
/// (error messages, JSON, rendered tables) that may itself contain spaces
/// or newlines. `max_tokens` stops tokenisation early so a large trailing
/// text body is not shredded into thousands of tokens.
struct TextFrame {
  std::uint64_t seq = 0;
  std::vector<std::string> tokens;

  std::size_t size() const { return tokens.size(); }
  const std::string& tok(std::size_t i) const;
  std::optional<std::uint64_t> u64(std::size_t i) const;
  std::string text_after(std::size_t i) const;

  static std::optional<TextFrame> parse(
      const std::string& payload, const std::string& version,
      std::size_t max_tokens = static_cast<std::size_t>(-1));

 private:
  std::string raw_;
  std::vector<std::size_t> token_end_;  // end offset of tokens[i] in raw_
};

}  // namespace oracle::util
