#pragma once
// InlineFunction: a move-only callable with fixed small-buffer storage and
// *no heap fallback*. The discrete-event hot path (sim/scheduler.hpp,
// sim/resource.hpp) stores millions of short-lived callbacks per run;
// std::function would heap-allocate every capture larger than its tiny SBO
// and pay a double indirection on call. InlineFunction trades generality
// for a hard guarantee: constructing, moving and destroying one never
// allocates, and an oversized capture is a *compile-time* error, so an
// accidental fat lambda can't silently reintroduce allocation.
//
// Usage:
//   util::InlineFunction<void(), 48> cb = [this, idx] { fire(idx); };
//   if (cb) cb();
//
// Requirements on the stored callable F:
//   - sizeof(F) <= Capacity and alignof(F) <= alignof(std::max_align_t)
//     (static_asserted; shrink the capture — e.g. pass a pool index instead
//     of a by-value payload — or raise Capacity at the use site)
//   - F is nothrow-move-constructible (stored callables relocate when
//     their containers grow — e.g. a Resource's RingQueue of waiting
//     requests — and a throwing move could lose events)

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace oracle::util {

template <typename Signature, std::size_t Capacity>
class InlineFunction;  // undefined; see the R(Args...) specialization

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit, like std::function
    construct(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and construct `f` directly in
  /// the inline buffer — the zero-move path the scheduler uses to build an
  /// event's callback in its slot.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  /// Destroy the stored callable (if any); *this becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
    invoke_ = nullptr;
  }

 private:
  template <typename D>
  static constexpr bool kTrivial =
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;

  template <typename F, typename D = std::decay_t<F>>
  void construct(F&& f) {
    static_assert(sizeof(D) <= Capacity,
                  "callable too large for InlineFunction's inline storage: "
                  "shrink the capture (pass indices/pointers, not payloads) "
                  "or raise Capacity at the use site");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callable over-aligned for InlineFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callable must be nothrow-move-constructible");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    invoke_ = [](void* p, Args&&... args) -> R {
      return (*std::launder(static_cast<D*>(p)))(std::forward<Args>(args)...);
    };
    // Trivially-relocatable callables (every POD-capture lambda — the whole
    // simulator hot path) skip the ops table entirely: moves are a plain
    // memcpy and destruction is a no-op, with no indirect calls.
    if constexpr (!kTrivial<D>) ops_ = &kOps<D>;
  }

  struct Ops {
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr Ops kOps = {
      [](void* dst, void* src) noexcept {
        D* s = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { std::launder(static_cast<D*>(p))->~D(); },
  };

  void move_from(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
    } else if (other.invoke_ != nullptr) {
      std::memcpy(buf_, other.buf_, Capacity);
    }
    invoke_ = other.invoke_;
    ops_ = other.ops_;
    other.invoke_ = nullptr;
    other.ops_ = nullptr;
  }

  // Zero-initialized so whole-capacity relocation memcpys never read
  // indeterminate bytes (construction cost only; moves are unaffected).
  alignas(std::max_align_t) unsigned char buf_[Capacity] = {};
  R (*invoke_)(void*, Args&&...) = nullptr;
  const Ops* ops_ = nullptr;
};

template <typename R, typename... Args, std::size_t Capacity>
bool operator==(const InlineFunction<R(Args...), Capacity>& f,
                std::nullptr_t) noexcept {
  return !static_cast<bool>(f);
}

template <typename R, typename... Args, std::size_t Capacity>
bool operator!=(const InlineFunction<R(Args...), Capacity>& f,
                std::nullptr_t) noexcept {
  return static_cast<bool>(f);
}

}  // namespace oracle::util
