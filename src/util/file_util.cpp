#include "util/file_util.hpp"

#include <cstdio>
#include <fstream>

#include "util/error.hpp"
#include "util/posix_io.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace oracle::util {

#if defined(_WIN32)

bool fsync_path(const std::string&) noexcept { return false; }
bool fsync_parent_dir(const std::string&) noexcept { return false; }

bool file_exists(const std::string& path) noexcept {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return true;
  }
  return false;
}

bool touch_file(const std::string& path) noexcept {
  // No utime on the portable fallback: an append-mode open+close creates
  // the file when missing and must never truncate existing content.
  if (std::FILE* f = std::fopen(path.c_str(), "ab")) {
    std::fclose(f);
    return true;
  }
  return false;
}

std::optional<std::int64_t> file_mtime_ns(const std::string&) noexcept {
  return std::nullopt;
}

#else

bool fsync_path(const std::string& path) noexcept {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = fsync_retry(fd);  // EINTR must not drop the barrier
  ::close(fd);
  return ok;
}

bool fsync_parent_dir(const std::string& path) noexcept {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = fsync_retry(fd);
  ::close(fd);
  return ok;
}

bool file_exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool touch_file(const std::string& path) noexcept {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  // futimens(nullptr) sets both timestamps to now even when nothing was
  // written — cheaper than a write and never perturbs file contents.
  const bool ok = ::futimens(fd, nullptr) == 0;
  ::close(fd);
  return ok;
}

std::optional<std::int64_t> file_mtime_ns(const std::string& path) noexcept {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(st.st_mtimespec.tv_sec) * 1'000'000'000 +
         st.st_mtimespec.tv_nsec;
#else
  return static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
         st.st_mtim.tv_nsec;
#endif
}

#endif

void atomic_replace(const std::string& tmp, const std::string& target) {
  fsync_path(tmp);
  if (std::rename(tmp.c_str(), target.c_str()) != 0)
    throw SimulationError("cannot rename '" + tmp + "' to '" + target + "'");
  fsync_parent_dir(target);
}

bool remove_file(const std::string& path) noexcept {
  return std::remove(path.c_str()) == 0;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc | std::ios::binary);
    if (!out) throw SimulationError("cannot open '" + tmp + "' for writing");
    out << content;
    out.flush();
    if (!out) throw SimulationError("write to '" + tmp + "' failed");
  }
  atomic_replace(tmp, path);
}

}  // namespace oracle::util
