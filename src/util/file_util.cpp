#include "util/file_util.hpp"

#include <cstdio>

#include "util/error.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace oracle::util {

#if defined(_WIN32)

bool fsync_path(const std::string&) noexcept { return false; }
bool fsync_parent_dir(const std::string&) noexcept { return false; }

bool file_exists(const std::string& path) noexcept {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return true;
  }
  return false;
}

#else

bool fsync_path(const std::string& path) noexcept {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool fsync_parent_dir(const std::string& path) noexcept {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool file_exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

#endif

void atomic_replace(const std::string& tmp, const std::string& target) {
  fsync_path(tmp);
  if (std::rename(tmp.c_str(), target.c_str()) != 0)
    throw SimulationError("cannot rename '" + tmp + "' to '" + target + "'");
  fsync_parent_dir(target);
}

bool remove_file(const std::string& path) noexcept {
  return std::remove(path.c_str()) == 0;
}

}  // namespace oracle::util
