#include "util/log.hpp"

#include <atomic>
#include <mutex>

namespace oracle::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::Warn)};
std::mutex g_write_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}
}  // namespace

Level level() noexcept { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

void set_level(Level lvl) noexcept {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) >= g_level.load(std::memory_order_relaxed);
}

void write(Level lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace oracle::log
