#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>

namespace oracle::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::Warn)};
std::mutex g_write_mutex;
std::string g_tag;  // written once at startup, then read-only

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}
}  // namespace

Level level() noexcept { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

void set_level(Level lvl) noexcept {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

std::optional<Level> parse_level(const std::string& name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return Level::Trace;
  if (lower == "debug") return Level::Debug;
  if (lower == "info") return Level::Info;
  if (lower == "warn" || lower == "warning") return Level::Warn;
  if (lower == "error") return Level::Error;
  if (lower == "off" || lower == "none") return Level::Off;
  return std::nullopt;
}

bool init_from_env() noexcept {
  const char* env = std::getenv("ORACLE_LOG");
  if (!env) return false;
  const auto lvl = parse_level(env);
  if (!lvl) return false;
  set_level(*lvl);
  return true;
}

void set_tag(std::string tag) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  g_tag = std::move(tag);
}

const std::string& tag() noexcept { return g_tag; }

bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) >= g_level.load(std::memory_order_relaxed);
}

void write(Level lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  if (g_tag.empty())
    std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
  else
    std::fprintf(stderr, "[%s] [%s] %s\n", level_name(lvl), g_tag.c_str(),
                 msg.c_str());
}

}  // namespace oracle::log
