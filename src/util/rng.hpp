#pragma once
// Deterministic pseudo-random number generation for simulations.
//
// Reproducibility is a core requirement: a run is fully determined by its
// ExperimentConfig and seed (DESIGN.md invariant 7). We therefore avoid
// std::default_random_engine (implementation-defined) and implement
// xoshiro256** with a SplitMix64 seeder, plus the handful of distributions
// the simulator needs. Streams can be split so that sub-systems (workload,
// tie-breaking, synthetic trees) draw from independent sequences.

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace oracle {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state, and as a
/// cheap standalone generator for hashing-like uses.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method: unbiased and branch-light.
  std::uint64_t below(std::uint64_t bound) noexcept {
    ORACLE_ASSERT(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    ORACLE_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Marsaglia polar method (no cached spare: keeps the
  /// generator stateless between calls so splitting stays predictable).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Geometric number of failures before first success, success prob p.
  std::uint64_t geometric(double p) noexcept;

  /// Derive an independent stream; child streams with distinct tags do not
  /// overlap in practice (distinct SplitMix64 seeds).
  Rng split(std::uint64_t tag) noexcept {
    return Rng(next() ^ (0x94d049bb133111ebULL * (tag + 1)));
  }

  /// Deterministically derive the seed for job `index` of a batch from a
  /// master seed: a pure function (no generator state involved), so the
  /// same (master, index) always yields the same seed no matter how many
  /// workers execute the sweep or in which order. Distinct indices yield
  /// independent streams (double SplitMix64 mix).
  static std::uint64_t derive_seed(std::uint64_t master,
                                   std::uint64_t index) noexcept {
    SplitMix64 outer(master);
    SplitMix64 inner(outer.next() ^ (index + 0x9E3779B97F4A7C15ULL));
    return inner.next();
  }

  /// Derive an independent child generator by index *without* advancing
  /// this generator (const counterpart of split(), for fan-out points that
  /// must not perturb the parent stream).
  Rng derive(std::uint64_t index) const noexcept {
    return Rng(derive_seed(state_[0] ^ rotl(state_[2], 31), index));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace oracle
