#pragma once
// EINTR-safe POSIX I/O wrappers. Every blocking syscall in the durability
// and network paths goes through these, so signal delivery (SIGCHLD from
// the shard supervisor, profiler timers, ...) can never surface as a
// short write, a lost fsync, or a spuriously failed poll. On non-POSIX
// hosts the functions degrade to stubs that report failure, mirroring
// file_util's best-effort contract.

#include <cstddef>
#include <cstdint>

#if !defined(_WIN32)
struct pollfd;
#endif

namespace oracle::util {

/// Read exactly `n` bytes unless EOF intervenes, retrying on EINTR and
/// continuing across short reads. Returns the byte count actually read
/// (== n, or less on EOF), or -1 on error (errno preserved).
std::ptrdiff_t read_full(int fd, void* buf, std::size_t n) noexcept;

/// Write all `n` bytes, retrying on EINTR and continuing across short
/// writes (a signal mid-write otherwise silently truncates the record).
/// Returns false on a real write error (errno preserved).
bool write_full(int fd, const void* buf, std::size_t n) noexcept;

/// fsync, retrying on EINTR. Returns false on a real fsync failure
/// (callers in the store paths treat that as best-effort, matching
/// util::fsync_path).
bool fsync_retry(int fd) noexcept;

#if !defined(_WIN32)
/// poll(2) that re-arms the *remaining* timeout after EINTR, so a signal
/// storm cannot stretch a deadline indefinitely. timeout_ms < 0 blocks
/// forever. Returns poll's result (>0 ready, 0 timeout, -1 real error).
int poll_retry(struct pollfd* fds, std::size_t nfds, int timeout_ms) noexcept;
#endif

}  // namespace oracle::util
