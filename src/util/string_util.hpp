#pragma once
// Small string helpers shared by config parsing and report printing.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oracle {

/// Split `s` on `delim`, keeping empty fields ("a::b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Lower-cased copy (ASCII only).
std::string to_lower(std::string_view s);

/// Parse a non-negative integer; throws ConfigError naming `what` on failure.
std::int64_t parse_int(std::string_view s, std::string_view what);

/// Parse a double; throws ConfigError naming `what` on failure.
double parse_double(std::string_view s, std::string_view what);

/// printf-style formatting into std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-point formatting with `digits` decimals (report tables).
std::string fixed(double value, int digits);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// FNV-1a 64-bit content hash. The batch engine's job identity and the
/// shared-topology cache key both use it, so "same bytes, same identity"
/// holds across both layers.
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace oracle
