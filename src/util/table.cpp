#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace oracle {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  Row row;
  row.cells = std::move(cells);
  row.rule_before = pending_rule_;
  pending_rule_ = false;
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { pending_rule_ = true; }

bool TextTable::looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  bool digit_seen = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '%' && c != 'x' && c != 'e' && c != '-') {
      return false;
    }
  }
  return digit_seen;
}

std::string TextTable::csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string TextTable::to_string() const {
  const std::size_t ncols = header_.size();
  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_)
    for (std::size_t c = 0; c < ncols && c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c) os << " | ";
      const std::size_t pad = widths[c] - cell.size();
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += widths[c] + (c ? 3 : 0);
  const std::string rule(total, '-');
  os << rule << '\n';
  for (const Row& row : rows_) {
    if (row.rule_before) os << rule << '\n';
    emit_row(os, row.cells);
  }
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(header_[c]);
  }
  os << '\n';
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace oracle
