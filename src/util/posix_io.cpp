#include "util/posix_io.hpp"

#include <cerrno>

#if !defined(_WIN32)
#include <poll.h>
#include <unistd.h>
#endif

#include <chrono>

namespace oracle::util {

#if defined(_WIN32)

std::ptrdiff_t read_full(int, void*, std::size_t) noexcept { return -1; }
bool write_full(int, const void*, std::size_t) noexcept { return false; }
bool fsync_retry(int) noexcept { return false; }

#else

std::ptrdiff_t read_full(int fd, void* buf, std::size_t n) noexcept {
  auto* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;  // EOF
    done += static_cast<std::size_t>(r);
  }
  return static_cast<std::ptrdiff_t>(done);
}

bool write_full(int fd, const void* buf, std::size_t n) noexcept {
  const auto* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::write(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(r);
  }
  return true;
}

bool fsync_retry(int fd) noexcept {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

int poll_retry(struct pollfd* fds, std::size_t nfds, int timeout_ms) noexcept {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      timeout_ms < 0 ? Clock::time_point::max()
                     : Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    int remaining = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      remaining = left > 0 ? static_cast<int>(left) : 0;
    }
    const int r = ::poll(fds, static_cast<nfds_t>(nfds), remaining);
    if (r >= 0 || errno != EINTR) return r;
  }
}

#endif

}  // namespace oracle::util
