#pragma once
// ASCII table printer used by the bench harnesses to emit paper-style tables.

#include <iosfwd>
#include <string>
#include <vector>

namespace oracle {

/// Column-aligned text table. Rows are added as vectors of cell strings; the
/// printer right-aligns numeric-looking cells and left-aligns the rest.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row. Short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with single-space-padded ` | ` separators and a header rule.
  std::string to_string() const;

  /// Render as CSV (RFC-4180 quoting).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  static bool looks_numeric(const std::string& cell);
  static std::string csv_escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace oracle
