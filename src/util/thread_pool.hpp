#pragma once
// Fixed-size thread pool used by core::Runner to execute independent
// simulation runs in parallel. Each simulation is fully self-contained
// (own Scheduler, own Rng), so the pool needs no shared-state support
// beyond the task queue itself.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oracle {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (default: hardware concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread, including worker threads
  /// (tasks submitted by workers are executed by the pool as usual).
  void submit(std::function<void()> task);

  /// Block until every submitted task (including tasks submitted while
  /// waiting) has finished executing.
  void wait_idle();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Convenience: run fn(i) for i in [0, n) across the pool and wait.
  /// Exceptions thrown by `fn` propagate to the caller (first one wins).
  static void parallel_for(std::size_t n, std::size_t num_threads,
                           const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace oracle
