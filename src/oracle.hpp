#pragma once
// Umbrella header for the ORACLE load-distribution library — a C++20
// reproduction of the simulation system behind L. V. Kale, "Comparing the
// Performance of Two Dynamic Load Distribution Methods" (ICPP 1988).
//
// Quickstart:
//   #include "oracle.hpp"
//   oracle::core::ExperimentConfig cfg;
//   cfg.topology = "grid:10x10";
//   cfg.strategy = "cwn:radius=9,horizon=2";
//   cfg.workload = "fib:15";
//   auto result = oracle::core::run_experiment(cfg);
//   std::cout << result.utilization_percent() << "%\n";

#include "core/config.hpp"
#include "core/presets.hpp"
#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "exp/exp.hpp"
#include "lb/acwn.hpp"
#include "lb/baselines.hpp"
#include "lb/cwn.hpp"
#include "lb/gradient.hpp"
#include "lb/strategy.hpp"
#include "machine/machine.hpp"
#include "obs/json_lint.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "stats/run_result.hpp"
#include "util/log.hpp"
#include "topo/dlm.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"
#include "topo/grid.hpp"
#include "topo/hypercube.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "workload/dc.hpp"
#include "workload/fib.hpp"
#include "workload/synthetic.hpp"
#include "workload/workload.hpp"
