#pragma once
// Adaptive CWN (ACWN) — the paper's Section 5 future-work directions,
// implemented as an extension so they can be evaluated:
//
//  1. *Saturation control*: "When the system is running at 100% utilization,
//     there is no need to send every goal out to other PEs. Detecting such a
//     situation and then keeping goals locally until the situation changes
//     would be worth investigating." A new goal is kept at its source when
//     both the local load and the least neighbor load are at or above
//     `saturation` (everyone has plenty of work).
//
//  2. *Bounded redistribution*: "a small, well-controlled (i.e. responsive
//     to runtime conditions) re-distribution component should be added to
//     CWN." When a PE learns a neighbor's load is lower than its own by at
//     least `redistribute_delta` and it has queued work, it re-sends one
//     queued (not yet started) goal toward that neighbor, at most
//     `max_moves` extra moves per goal (tracked via the hop budget).
//
// With saturation = 0 and redistribute_delta = 0, ACWN degenerates to CWN.

#include "lb/cwn.hpp"

namespace oracle::lb {

struct AcwnParams {
  CwnParams cwn;                      // base CWN parameters
  std::int64_t saturation = 3;        // 0 disables saturation control
  std::int64_t redistribute_delta = 4;  // 0 disables redistribution
  sim::Duration redistribute_cooldown = 10;  // min time between moves per PE
};

class Acwn : public Cwn {
 public:
  explicit Acwn(const AcwnParams& params);

  std::string name() const override;
  void attach(machine::Machine& m) override;
  void on_goal_created(topo::NodeId pe, machine::Message msg) override;
  void on_neighbor_load(topo::NodeId pe, topo::NodeId from,
                        std::int64_t load) override;
  void on_control(topo::NodeId pe, const machine::Message& msg) override;

  const AcwnParams& acwn_params() const noexcept { return params_; }

 private:
  void maybe_redistribute(topo::NodeId pe, topo::NodeId toward,
                          std::int64_t neighbor_load);

  AcwnParams params_;
  std::vector<sim::SimTime> last_move_;  // per-PE redistribution cooldown
};

}  // namespace oracle::lb
