#include "lb/gradient.hpp"

#include <algorithm>

#include "machine/machine.hpp"
#include "util/string_util.hpp"

namespace oracle::lb {

GradientModel::GradientModel(const GmParams& params) : params_(params) {
  ORACLE_REQUIRE(params_.interval > 0, "GM interval must be positive");
  ORACLE_REQUIRE(params_.low_water_mark >= 0, "GM low-water-mark must be >= 0");
  ORACLE_REQUIRE(params_.high_water_mark >= params_.low_water_mark,
                 "GM high-water-mark must be >= low-water-mark");
}

std::string GradientModel::name() const {
  return strfmt("gm(h=%lld,l=%lld,i=%lld)",
                static_cast<long long>(params_.high_water_mark),
                static_cast<long long>(params_.low_water_mark),
                static_cast<long long>(params_.interval));
}

void GradientModel::attach(machine::Machine& m) {
  Strategy::attach(m);
  proximity_cap_ = static_cast<std::int64_t>(m.diameter()) + 1;
  const auto n = m.num_pes();
  neighbor_prox_.resize(n);
  // "All the PEs initially assume that the proximities of their neighbors
  // are 0."
  for (topo::NodeId pe = 0; pe < n; ++pe)
    neighbor_prox_[pe].assign(m.topology().neighbors(pe).size(), 0);
  last_broadcast_.assign(n, 0);
}

void GradientModel::on_start() {
  for (topo::NodeId pe = 0; pe < machine().num_pes(); ++pe) {
    const sim::Duration offset =
        params_.stagger
            ? static_cast<sim::Duration>(
                  (static_cast<std::uint64_t>(pe) * params_.interval) /
                  std::max<std::uint32_t>(machine().num_pes(), 1))
            : 0;
    machine().scheduler_for(pe).schedule_after(offset,
                                               [this, pe] { wakeup(pe); });
  }
}

std::int64_t GradientModel::compute_proximity(topo::NodeId pe, bool idle) const {
  if (idle) return 0;
  const auto& row = neighbor_prox_[pe];
  std::int64_t least = proximity_cap_;
  if (!row.empty()) least = *std::min_element(row.begin(), row.end());
  // "the proximity is one more than the smallest proximity among the
  // immediate neighbors", clamped to diameter + 1.
  return std::min<std::int64_t>(least + 1, proximity_cap_);
}

void GradientModel::wakeup(topo::NodeId pe) {
  if (!machine().config().lb_coprocessor)
    machine().pe(pe).add_overhead(params_.cycle_cpu_cost);
  const std::int64_t load = machine().load_of(pe);
  const bool idle = load < params_.low_water_mark;
  const bool abundant = load > params_.high_water_mark;

  const std::int64_t prox = compute_proximity(pe, idle);
  if (prox != last_broadcast_[pe]) {
    last_broadcast_[pe] = prox;
    machine().broadcast_control(pe, machine::kCtrlProximity, prox);
  }

  if (abundant) {
    // Neighbor with least proximity; ties broken uniformly.
    const auto& nbrs = machine().topology().neighbors(pe);
    const auto& row = neighbor_prox_[pe];
    if (!nbrs.empty()) {
      const std::int64_t best = *std::min_element(row.begin(), row.end());
      std::size_t chosen = 0;
      std::uint64_t ties = 0;
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i] == best) {
          ++ties;
          if (machine().rng_for(pe).below(ties) == 0) chosen = i;
        }
      }
      if (!params_.require_gradient || best < proximity_cap_) {
        auto goal = machine().pe(pe).take_transferable_goal(params_.send_newest);
        if (goal) {
          goal->hops += 1;
          machine().send_goal(pe, nbrs[chosen], std::move(*goal));
        }
      }
    }
  }

  machine().scheduler_for(pe).schedule_after(params_.interval,
                                       [this, pe] { wakeup(pe); });
}

void GradientModel::on_goal_created(topo::NodeId pe, machine::Message msg) {
  // "Whenever a subgoal is generated, it is simply entered in the local
  // queue."
  machine().keep_goal(pe, msg);
}

void GradientModel::on_goal_arrived(topo::NodeId pe, machine::Message msg) {
  // "Any PE that receives a goal message from its neighbor just adds it to
  // its queue."
  machine().keep_goal(pe, msg);
}

void GradientModel::on_control(topo::NodeId pe, const machine::Message& msg) {
  if (msg.ctrl_tag != machine::kCtrlProximity) return;
  const auto& nbrs = machine().topology().neighbors(pe);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), msg.src);
  if (it == nbrs.end() || *it != msg.src) return;  // bus overhear: ignore
  neighbor_prox_[pe][static_cast<std::size_t>(it - nbrs.begin())] =
      msg.ctrl_value;
}

}  // namespace oracle::lb
