#pragma once
// Contracting Within a Neighborhood (CWN), Section 2.1 of the paper.
//
// Every new subgoal is immediately contracted out: the source PE sends it
// to its least-loaded neighbor. Each PE on the path forwards it to *its*
// least-loaded neighbor — the goal "travels along the steepest load
// gradient to a local minimum" — until either
//   (a) it has travelled `radius` hops (it must stop), or
//   (b) the holding PE's own load is below its least-loaded neighbor's and
//       the goal has already travelled at least `horizon` hops.
// Once kept, a goal never moves again.
//
// Load information about neighbors comes from a periodic short broadcast
// plus piggy-backing on regular messages (MachineConfig::piggyback_load).

#include "lb/load_info.hpp"
#include "lb/strategy.hpp"
#include "sim/time.hpp"

namespace oracle::lb {

struct CwnParams {
  std::uint32_t radius = 9;   // max hops a goal message may travel
  std::uint32_t horizon = 2;  // min hops before a load-based keep
  /// Period of the neighbor-load broadcast; 0 disables it (piggy-backing
  /// alone then carries load information). Matches the GM interval so both
  /// schemes refresh neighborhood information at the same cadence.
  sim::Duration broadcast_interval = 20;

  /// Keep a goal when the local load *equals* the least neighbor estimate
  /// (a plateau is also a local minimum of the load gradient). With the
  /// strict reading ("own load is less than its least loaded neighbors")
  /// goals almost never stop before the radius early in a run, when every
  /// estimate is still 0; the paper's Table 3 distribution (half of all
  /// goals keep at the first eligible hop, average ~3.15) matches the
  /// plateau reading, so it is the default. bench_ablation_cwn_params
  /// sweeps both.
  bool tie_keep = true;

  /// PE time charged per load broadcast when the machine has no
  /// communication co-processor (MachineConfig::lb_coprocessor == false).
  sim::Duration broadcast_cpu_cost = 2;
};

class Cwn : public Strategy {
 public:
  explicit Cwn(const CwnParams& params);

  std::string name() const override;
  void attach(machine::Machine& m) override;
  void on_start() override;
  void on_goal_created(topo::NodeId pe, machine::Message msg) override;
  void on_goal_arrived(topo::NodeId pe, machine::Message msg) override;
  void on_control(topo::NodeId pe, const machine::Message& msg) override;
  void on_neighbor_load(topo::NodeId pe, topo::NodeId from,
                        std::int64_t load) override;

  const CwnParams& params() const noexcept { return params_; }

 protected:
  NeighborLoadTable& table() noexcept { return table_; }
  void schedule_broadcast(topo::NodeId pe);

 private:
  CwnParams params_;
  NeighborLoadTable table_;
};

}  // namespace oracle::lb
