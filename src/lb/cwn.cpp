#include "lb/cwn.hpp"

#include "machine/machine.hpp"
#include "util/string_util.hpp"

namespace oracle::lb {

Cwn::Cwn(const CwnParams& params) : params_(params) {
  ORACLE_REQUIRE(params_.radius >= 1, "CWN radius must be >= 1");
  ORACLE_REQUIRE(params_.horizon <= params_.radius,
                 "CWN horizon cannot exceed the radius");
  ORACLE_REQUIRE(params_.broadcast_interval >= 0,
                 "CWN broadcast interval must be >= 0");
}

std::string Cwn::name() const {
  return strfmt("cwn(r=%u,h=%u)", params_.radius, params_.horizon);
}

void Cwn::attach(machine::Machine& m) {
  Strategy::attach(m);
  table_.init(m.topology());
}

void Cwn::schedule_broadcast(topo::NodeId pe) {
  machine().scheduler_for(pe).schedule_after(params_.broadcast_interval,
                                             [this, pe] {
    if (!machine().config().lb_coprocessor)
      machine().pe(pe).add_overhead(params_.broadcast_cpu_cost);
    machine().broadcast_control(pe, machine::kCtrlLoadInfo,
                                machine().load_of(pe));
    schedule_broadcast(pe);  // run() stops the scheduler at root completion
  });
}

void Cwn::on_start() {
  if (params_.broadcast_interval <= 0) return;
  for (topo::NodeId pe = 0; pe < machine().num_pes(); ++pe)
    schedule_broadcast(pe);
}

void Cwn::on_goal_created(topo::NodeId pe, machine::Message msg) {
  // "this scheme sends every subgoal out to another PE as soon as it is
  // created" — unconditionally, to look over the horizon.
  const topo::NodeId target = table_.least_loaded(pe, machine().rng_for(pe));
  if (target == topo::kInvalidNode) {  // isolated PE (1-node topologies)
    machine().keep_goal(pe, msg);
    return;
  }
  msg.hops += 1;
  machine().send_goal(pe, target, std::move(msg));
}

void Cwn::on_goal_arrived(topo::NodeId pe, machine::Message msg) {
  if (msg.hops >= params_.radius) {
    machine().keep_goal(pe, msg);  // radius exhausted: must keep
    return;
  }
  const std::int64_t own = machine().load_of(pe);
  const std::int64_t least = table_.min_load(pe);
  if (msg.hops >= params_.horizon &&
      (own < least || (params_.tie_keep && own == least))) {
    machine().keep_goal(pe, msg);  // local minimum of the load gradient
    return;
  }
  const topo::NodeId target = table_.least_loaded(pe, machine().rng_for(pe));
  ORACLE_ASSERT(target != topo::kInvalidNode);
  msg.hops += 1;
  machine().send_goal(pe, target, std::move(msg));
}

void Cwn::on_control(topo::NodeId pe, const machine::Message& msg) {
  if (msg.ctrl_tag == machine::kCtrlLoadInfo)
    table_.update(pe, msg.src, msg.ctrl_value);
}

void Cwn::on_neighbor_load(topo::NodeId pe, topo::NodeId from,
                           std::int64_t load) {
  table_.update(pe, from, load);
}

}  // namespace oracle::lb
