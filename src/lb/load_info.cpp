#include "lb/load_info.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oracle::lb {

void NeighborLoadTable::init(const topo::Topology& topo) {
  topo_ = &topo;
  rows_.clear();
  rows_.resize(topo.num_nodes());
  for (topo::NodeId pe = 0; pe < topo.num_nodes(); ++pe)
    rows_[pe].assign(topo.neighbors(pe).size(), 0);
}

void NeighborLoadTable::update(topo::NodeId pe, topo::NodeId from,
                               std::int64_t load) {
  ORACLE_ASSERT(topo_ != nullptr && pe < rows_.size());
  const auto& nbrs = topo_->neighbors(pe);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), from);
  // A bus broadcast can reach PEs that share a link without being
  // "neighbors" of interest; ignore unknown senders defensively.
  if (it == nbrs.end() || *it != from) return;
  rows_[pe][static_cast<std::size_t>(it - nbrs.begin())] = load;
}

std::int64_t NeighborLoadTable::estimate(topo::NodeId pe,
                                         topo::NodeId neighbor) const {
  ORACLE_ASSERT(topo_ != nullptr && pe < rows_.size());
  const auto& nbrs = topo_->neighbors(pe);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), neighbor);
  ORACLE_ASSERT_MSG(it != nbrs.end() && *it == neighbor, "not a neighbor");
  return rows_[pe][static_cast<std::size_t>(it - nbrs.begin())];
}

std::int64_t NeighborLoadTable::min_load(topo::NodeId pe) const {
  ORACLE_ASSERT(topo_ != nullptr && pe < rows_.size());
  const auto& row = rows_[pe];
  if (row.empty()) return 0;
  return *std::min_element(row.begin(), row.end());
}

topo::NodeId NeighborLoadTable::least_loaded(topo::NodeId pe, Rng& rng) const {
  ORACLE_ASSERT(topo_ != nullptr && pe < rows_.size());
  const auto& row = rows_[pe];
  if (row.empty()) return topo::kInvalidNode;
  const std::int64_t best = *std::min_element(row.begin(), row.end());
  // Reservoir-style single pass over ties keeps selection uniform without
  // allocating a candidate list.
  std::size_t chosen = 0;
  std::uint64_t ties = 0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == best) {
      ++ties;
      if (rng.below(ties) == 0) chosen = i;
    }
  }
  return topo_->neighbors(pe)[chosen];
}

std::size_t NeighborLoadTable::degree(topo::NodeId pe) const {
  ORACLE_ASSERT(topo_ != nullptr && pe < rows_.size());
  return rows_[pe].size();
}

}  // namespace oracle::lb
