#pragma once
// The Gradient Model (GM) of Lin & Keller, as described in Section 2.2.
//
// New subgoals always enter the local queue. A separate, asynchronous
// gradient process per PE wakes every `interval` units and:
//   1. computes the PE's load and state: idle (load < low-water-mark),
//      abundant (load > high-water-mark), else neutral;
//   2. computes its proximity: 0 if idle, else 1 + min neighbor proximity,
//      clamped to network diameter + 1;
//   3. broadcasts the proximity to all neighbors iff it changed;
//   4. if abundant, sends one queued goal to the neighbor with least
//      proximity.
// PEs initially assume all neighbor proximities are 0. Receiving a goal
// just enqueues it (state changes are noticed at the next wakeup).
//
// The gradient process runs on the communication co-processor (paper §3.1:
// "we assume a communication co-processor to handle the routing and
// load-balancing functions"), so wakeups cost no PE compute time.

#include "lb/strategy.hpp"
#include "sim/time.hpp"

#include <vector>

namespace oracle::lb {

struct GmParams {
  std::int64_t high_water_mark = 2;
  std::int64_t low_water_mark = 1;
  sim::Duration interval = 20;  // sleep between gradient-process cycles

  /// Stagger the first wakeup of each PE across [0, interval) so the
  /// "asynchronous" processes are not phase-locked. Deterministic.
  bool stagger = true;

  /// Only send work when the least neighbor proximity actually signals a
  /// reachable idle PE (< diameter+1). Disabling this sends one goal per
  /// cycle whenever abundant, even with no idle PE inferred (the literal
  /// reading of the paper text); see bench_ablation_gm_params.
  bool require_gradient = true;

  /// Send the newest queued goal (preserves locality of older work); when
  /// false, sends the oldest.
  bool send_newest = true;

  /// PE time charged per gradient-process cycle when the machine has no
  /// communication co-processor. Larger than CWN's broadcast cost: the
  /// gradient process "needs to execute a more complex code and more
  /// frequently" (paper §3.1).
  sim::Duration cycle_cpu_cost = 6;
};

class GradientModel : public Strategy {
 public:
  explicit GradientModel(const GmParams& params);

  std::string name() const override;
  void attach(machine::Machine& m) override;
  void on_start() override;
  void on_goal_created(topo::NodeId pe, machine::Message msg) override;
  void on_goal_arrived(topo::NodeId pe, machine::Message msg) override;
  void on_control(topo::NodeId pe, const machine::Message& msg) override;

  const GmParams& params() const noexcept { return params_; }

  /// Test hooks: current proximity estimates.
  std::int64_t proximity_of(topo::NodeId pe) const { return last_broadcast_.at(pe); }

 private:
  void wakeup(topo::NodeId pe);
  std::int64_t compute_proximity(topo::NodeId pe, bool idle) const;

  GmParams params_;
  std::int64_t proximity_cap_ = 0;  // diameter + 1
  // neighbor_prox_[pe][i] = last proximity heard from topo.neighbors(pe)[i].
  std::vector<std::vector<std::int64_t>> neighbor_prox_;
  std::vector<std::int64_t> last_broadcast_;  // last value each PE broadcast
};

}  // namespace oracle::lb
