#pragma once
// Baseline strategies. None of these appear in the paper's evaluation, but
// they anchor the comparison: LocalOnly shows what *no* distribution does,
// RandomPush / RoundRobinPush show what distribution without load
// information does, and WorkStealing is the classic receiver-initiated
// alternative to the two sender/queue-driven schemes under study.

#include "lb/strategy.hpp"
#include "sim/time.hpp"

#include <vector>

namespace oracle::lb {

/// Keep every goal where it was created. Utilization collapses to ~1/P.
class LocalOnly : public Strategy {
 public:
  std::string name() const override { return "local"; }
  void on_goal_created(topo::NodeId pe, machine::Message msg) override;
  void on_goal_arrived(topo::NodeId pe, machine::Message msg) override;
};

/// Send every new goal to a uniformly random neighbor, which keeps it.
class RandomPush : public Strategy {
 public:
  std::string name() const override { return "random"; }
  void on_goal_created(topo::NodeId pe, machine::Message msg) override;
  void on_goal_arrived(topo::NodeId pe, machine::Message msg) override;
};

/// Send every new goal to the next neighbor in cyclic order.
class RoundRobinPush : public Strategy {
 public:
  std::string name() const override { return "roundrobin"; }
  void attach(machine::Machine& m) override;
  void on_goal_created(topo::NodeId pe, machine::Message msg) override;
  void on_goal_arrived(topo::NodeId pe, machine::Message msg) override;

 private:
  std::vector<std::size_t> next_;  // per-PE cursor into the neighbor list
};

/// Receiver-initiated work stealing: goals stay local; an idle PE asks a
/// random neighbor for work, retrying after `backoff` on refusal.
class WorkStealing : public Strategy {
 public:
  struct Params {
    sim::Duration backoff = 10;   // delay between steal attempts while idle
    std::int64_t min_victim_load = 1;  // victim must have > this much queued
  };

  explicit WorkStealing(const Params& params);

  std::string name() const override;
  void attach(machine::Machine& m) override;
  void on_start() override;
  void on_goal_created(topo::NodeId pe, machine::Message msg) override;
  void on_goal_arrived(topo::NodeId pe, machine::Message msg) override;
  void on_control(topo::NodeId pe, const machine::Message& msg) override;
  void on_pe_idle(topo::NodeId pe) override;

 private:
  void try_steal(topo::NodeId pe);

  Params params_;
  std::vector<bool> stealing_;  // a request or backoff timer is outstanding
};

}  // namespace oracle::lb
