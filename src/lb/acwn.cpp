#include "lb/acwn.hpp"

#include "machine/machine.hpp"
#include "util/string_util.hpp"

namespace oracle::lb {

Acwn::Acwn(const AcwnParams& params) : Cwn(params.cwn), params_(params) {
  ORACLE_REQUIRE(params_.saturation >= 0, "ACWN saturation must be >= 0");
  ORACLE_REQUIRE(params_.redistribute_delta >= 0,
                 "ACWN redistribute_delta must be >= 0");
  ORACLE_REQUIRE(params_.redistribute_cooldown >= 0,
                 "ACWN cooldown must be >= 0");
}

std::string Acwn::name() const {
  return strfmt("acwn(r=%u,h=%u,sat=%lld,rd=%lld)", params_.cwn.radius,
                params_.cwn.horizon,
                static_cast<long long>(params_.saturation),
                static_cast<long long>(params_.redistribute_delta));
}

void Acwn::attach(machine::Machine& m) {
  Cwn::attach(m);
  last_move_.assign(m.num_pes(), -1);
}

void Acwn::on_goal_created(topo::NodeId pe, machine::Message msg) {
  // Saturation control: if everyone nearby is saturated, contracting the
  // goal out only spends channel time; keep it (it can still be
  // redistributed later, unlike in plain CWN).
  if (params_.saturation > 0 && machine().load_of(pe) >= params_.saturation &&
      table().min_load(pe) >= params_.saturation) {
    machine().keep_goal(pe, msg);
    return;
  }
  Cwn::on_goal_created(pe, std::move(msg));
}

void Acwn::on_neighbor_load(topo::NodeId pe, topo::NodeId from,
                            std::int64_t load) {
  Cwn::on_neighbor_load(pe, from, load);
  maybe_redistribute(pe, from, load);
}

void Acwn::on_control(topo::NodeId pe, const machine::Message& msg) {
  Cwn::on_control(pe, msg);
  if (msg.ctrl_tag == machine::kCtrlLoadInfo &&
      msg.src != topo::kInvalidNode &&
      machine().topology().are_neighbors(pe, msg.src)) {
    maybe_redistribute(pe, msg.src, msg.ctrl_value);
  }
}

void Acwn::maybe_redistribute(topo::NodeId pe, topo::NodeId toward,
                              std::int64_t neighbor_load) {
  if (params_.redistribute_delta <= 0) return;
  if (machine().load_of(pe) - neighbor_load < params_.redistribute_delta)
    return;
  const sim::SimTime now = machine().now_of(pe);
  if (last_move_[pe] >= 0 &&
      now - last_move_[pe] < params_.redistribute_cooldown)
    return;
  // Move one queued goal toward the underloaded neighbor. The hop budget
  // still applies: a goal that exhausted its radius stays put for good.
  auto goal = machine().pe(pe).take_transferable_goal(/*newest=*/true);
  if (!goal) return;
  if (goal->hops >= params_.cwn.radius) {
    machine().keep_goal(pe, *goal);  // out of budget; put it back
    return;
  }
  last_move_[pe] = now;
  goal->hops += 1;
  machine().send_goal(pe, toward, std::move(*goal));
}

}  // namespace oracle::lb
