#pragma once
// Load-distribution strategy interface.
//
// A Strategy decides *where goals go*; the Machine provides mechanism
// (channels, queues, routing, clocks). The two decision points are goal
// creation (CWN contracts out immediately; GM enqueues locally) and goal
// message arrival (CWN keeps or forwards; GM always keeps). Strategies may
// additionally run periodic co-processor work (GM's gradient process, CWN's
// load broadcast) and react to control messages.

#include <memory>
#include <string>
#include <string_view>

#include "machine/message.hpp"
#include "topo/topology.hpp"

namespace oracle::machine {
class Machine;
}

namespace oracle::lb {

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Short name with parameters, e.g. "cwn(r=9,h=2)".
  virtual std::string name() const = 0;

  /// Bind to a machine; allocate per-PE state. Called exactly once, before
  /// the simulation starts.
  virtual void attach(machine::Machine& m) { machine_ = &m; }

  /// Simulation is about to run (t = 0): schedule periodic processes here.
  virtual void on_start() {}

  /// A new subgoal was created on `pe`. The strategy must either keep it
  /// (Machine::keep_goal) or send it to a neighbor (Machine::send_goal).
  virtual void on_goal_created(topo::NodeId pe, machine::Message msg) = 0;

  /// A goal message arrived at `pe` from a neighbor. Keep or forward.
  virtual void on_goal_arrived(topo::NodeId pe, machine::Message msg) = 0;

  /// A control message arrived at `pe` (co-processor path, no PE cost).
  virtual void on_control(topo::NodeId /*pe*/, const machine::Message& /*msg*/) {}

  /// Any message from immediate neighbor `from` carried a piggy-backed load
  /// value (MachineConfig::piggyback_load).
  virtual void on_neighbor_load(topo::NodeId /*pe*/, topo::NodeId /*from*/,
                                std::int64_t /*load*/) {}

  /// `pe` just became idle (finished an activation, ready queue empty).
  virtual void on_pe_idle(topo::NodeId /*pe*/) {}

 protected:
  machine::Machine& machine() const {
    return *machine_;
  }

 private:
  machine::Machine* machine_ = nullptr;
};

/// Build a strategy from a spec string:
///   "cwn:radius=9,horizon=2,interval=10"
///   "gm:hwm=2,lwm=1,interval=20"
///   "acwn:radius=9,horizon=2,saturation=3,redistribute=1"
///   "local" | "random" | "roundrobin" | "steal:backoff=10"
std::unique_ptr<Strategy> make_strategy(std::string_view spec);

}  // namespace oracle::lb
