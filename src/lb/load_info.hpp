#pragma once
// Neighbor-load bookkeeping shared by CWN, ACWN and the push baselines.
//
// Section 2.1: "Each PE maintains the load information about its immediate
// neighbors ... obtained by broadcasting a very short message to all the
// neighbors periodically, or as an optimization, piggy-backing the load
// information 'word' with regular messages." Values are therefore *stale
// estimates*, never ground truth — the table only updates from messages.

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace oracle::machine {
class Machine;
}

namespace oracle::lb {

class NeighborLoadTable {
 public:
  /// Allocate per-PE rows; neighbors initially assumed load 0 (idle).
  void init(const topo::Topology& topo);

  /// Record that `pe` learned neighbor `from` has load `load`.
  void update(topo::NodeId pe, topo::NodeId from, std::int64_t load);

  /// `pe`'s current estimate of neighbor `neighbor`'s load.
  std::int64_t estimate(topo::NodeId pe, topo::NodeId neighbor) const;

  /// The minimum estimated load among `pe`'s neighbors (0 if none).
  std::int64_t min_load(topo::NodeId pe) const;

  /// The least-loaded neighbor of `pe`; ties broken uniformly at random
  /// (deterministic given the run's Rng). kInvalidNode if no neighbors.
  topo::NodeId least_loaded(topo::NodeId pe, Rng& rng) const;

  /// Number of neighbors tracked for `pe`.
  std::size_t degree(topo::NodeId pe) const;

 private:
  const topo::Topology* topo_ = nullptr;
  // rows_[pe][i] = load estimate for topo.neighbors(pe)[i].
  std::vector<std::vector<std::int64_t>> rows_;
};

}  // namespace oracle::lb
