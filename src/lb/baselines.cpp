#include "lb/baselines.hpp"

#include <algorithm>

#include "machine/machine.hpp"
#include "util/string_util.hpp"

namespace oracle::lb {

// --------------------------------------------------------------------------
// LocalOnly
// --------------------------------------------------------------------------

void LocalOnly::on_goal_created(topo::NodeId pe, machine::Message msg) {
  machine().keep_goal(pe, msg);
}

void LocalOnly::on_goal_arrived(topo::NodeId pe, machine::Message msg) {
  machine().keep_goal(pe, msg);  // unreachable in practice; keep is safe
}

// --------------------------------------------------------------------------
// RandomPush
// --------------------------------------------------------------------------

void RandomPush::on_goal_created(topo::NodeId pe, machine::Message msg) {
  const auto& nbrs = machine().topology().neighbors(pe);
  if (nbrs.empty()) {
    machine().keep_goal(pe, msg);
    return;
  }
  const auto pick = nbrs[machine().rng_for(pe).below(nbrs.size())];
  msg.hops += 1;
  machine().send_goal(pe, pick, std::move(msg));
}

void RandomPush::on_goal_arrived(topo::NodeId pe, machine::Message msg) {
  machine().keep_goal(pe, msg);
}

// --------------------------------------------------------------------------
// RoundRobinPush
// --------------------------------------------------------------------------

void RoundRobinPush::attach(machine::Machine& m) {
  Strategy::attach(m);
  next_.assign(m.num_pes(), 0);
}

void RoundRobinPush::on_goal_created(topo::NodeId pe, machine::Message msg) {
  const auto& nbrs = machine().topology().neighbors(pe);
  if (nbrs.empty()) {
    machine().keep_goal(pe, msg);
    return;
  }
  const auto pick = nbrs[next_[pe] % nbrs.size()];
  next_[pe] = (next_[pe] + 1) % nbrs.size();
  msg.hops += 1;
  machine().send_goal(pe, pick, std::move(msg));
}

void RoundRobinPush::on_goal_arrived(topo::NodeId pe, machine::Message msg) {
  machine().keep_goal(pe, msg);
}

// --------------------------------------------------------------------------
// WorkStealing
// --------------------------------------------------------------------------

WorkStealing::WorkStealing(const Params& params) : params_(params) {
  ORACLE_REQUIRE(params_.backoff > 0, "steal backoff must be positive");
  ORACLE_REQUIRE(params_.min_victim_load >= 0,
                 "min_victim_load must be >= 0");
}

std::string WorkStealing::name() const {
  return strfmt("steal(b=%lld)", static_cast<long long>(params_.backoff));
}

void WorkStealing::attach(machine::Machine& m) {
  Strategy::attach(m);
  stealing_.assign(m.num_pes(), false);
}

void WorkStealing::on_start() {
  // Every PE starts idle; arm its first steal attempt after one backoff
  // period (staggered deterministically to avoid a synchronized thundering
  // herd on the root's channels).
  for (topo::NodeId pe = 0; pe < machine().num_pes(); ++pe) {
    const sim::Duration offset =
        params_.backoff +
        static_cast<sim::Duration>(pe % static_cast<topo::NodeId>(
                                            std::max<sim::Duration>(
                                                params_.backoff, 1)));
    stealing_[pe] = true;
    machine().scheduler_for(pe).schedule_after(offset,
                                               [this, pe] { try_steal(pe); });
  }
}

void WorkStealing::on_goal_created(topo::NodeId pe, machine::Message msg) {
  machine().keep_goal(pe, msg);
}

void WorkStealing::on_goal_arrived(topo::NodeId pe, machine::Message msg) {
  stealing_[pe] = false;  // steal satisfied (or work arrived anyway)
  machine().keep_goal(pe, msg);
}

void WorkStealing::on_pe_idle(topo::NodeId pe) {
  if (!stealing_[pe]) try_steal(pe);
}

void WorkStealing::try_steal(topo::NodeId pe) {
  if (!machine().pe(pe).idle()) {  // work arrived in the meantime
    stealing_[pe] = false;
    return;
  }
  const auto& nbrs = machine().topology().neighbors(pe);
  if (nbrs.empty()) {
    stealing_[pe] = false;
    return;
  }
  stealing_[pe] = true;
  const auto victim = nbrs[machine().rng_for(pe).below(nbrs.size())];
  machine().send_control(pe, victim, machine::kCtrlStealReq, 0);
}

void WorkStealing::on_control(topo::NodeId pe, const machine::Message& msg) {
  switch (msg.ctrl_tag) {
    case machine::kCtrlStealReq: {
      // We are the victim; ship one queued goal if we have enough.
      if (machine().load_of(pe) > params_.min_victim_load) {
        auto goal = machine().pe(pe).take_transferable_goal(/*newest=*/false);
        if (goal) {
          goal->hops += 1;
          machine().send_goal(pe, msg.src, std::move(*goal));
          return;
        }
      }
      machine().send_control(pe, msg.src, machine::kCtrlStealNack, 0);
      return;
    }
    case machine::kCtrlStealNack: {
      // Back off, then retry if still idle.
      machine().scheduler_for(pe).schedule_after(params_.backoff,
                                           [this, pe] { try_steal(pe); });
      return;
    }
    default:
      return;
  }
}

}  // namespace oracle::lb
