#include <map>
#include <string>

#include "lb/acwn.hpp"
#include "lb/baselines.hpp"
#include "lb/cwn.hpp"
#include "lb/gradient.hpp"
#include "lb/strategy.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace oracle::lb {

namespace {

std::map<std::string, std::string> parse_kv(std::string_view s,
                                            std::string_view what) {
  std::map<std::string, std::string> kv;
  if (trim(s).empty()) return kv;
  for (const auto& item : split(s, ',')) {
    const auto pair = split(item, '=');
    ORACLE_REQUIRE(pair.size() == 2,
                   std::string(what) + ": expected key=value, got '" + item + "'");
    kv[to_lower(trim(pair[0]))] = std::string(trim(pair[1]));
  }
  return kv;
}

std::int64_t kv_int(const std::map<std::string, std::string>& kv,
                    const std::string& key, std::int64_t fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : parse_int(it->second, key);
}

bool kv_bool(const std::map<std::string, std::string>& kv,
             const std::string& key, bool fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  if (iequals(it->second, "true") || it->second == "1") return true;
  if (iequals(it->second, "false") || it->second == "0") return false;
  throw ConfigError(key + ": expected boolean, got '" + it->second + "'");
}

}  // namespace

std::unique_ptr<Strategy> make_strategy(std::string_view spec) {
  const auto parts = split(trim(spec), ':');
  ORACLE_REQUIRE(!parts.empty() && !parts[0].empty(), "empty strategy spec");
  const std::string kind = to_lower(parts[0]);
  const auto kv = parse_kv(parts.size() >= 2 ? parts[1] : "", kind);
  ORACLE_REQUIRE(parts.size() <= 2, "strategy spec has too many ':' sections");

  if (kind == "cwn") {
    CwnParams p;
    p.radius = static_cast<std::uint32_t>(kv_int(kv, "radius", p.radius));
    p.horizon = static_cast<std::uint32_t>(kv_int(kv, "horizon", p.horizon));
    p.broadcast_interval = kv_int(kv, "interval", p.broadcast_interval);
    p.tie_keep = kv_bool(kv, "tiekeep", p.tie_keep);
    p.broadcast_cpu_cost = kv_int(kv, "bcost", p.broadcast_cpu_cost);
    return std::make_unique<Cwn>(p);
  }
  if (kind == "gm" || kind == "gradient") {
    GmParams p;
    p.high_water_mark = kv_int(kv, "hwm", p.high_water_mark);
    p.low_water_mark = kv_int(kv, "lwm", p.low_water_mark);
    p.interval = kv_int(kv, "interval", p.interval);
    p.stagger = kv_bool(kv, "stagger", p.stagger);
    p.require_gradient = kv_bool(kv, "requiregradient", p.require_gradient);
    p.send_newest = kv_bool(kv, "sendnewest", p.send_newest);
    p.cycle_cpu_cost = kv_int(kv, "ccost", p.cycle_cpu_cost);
    return std::make_unique<GradientModel>(p);
  }
  if (kind == "acwn") {
    AcwnParams p;
    p.cwn.radius = static_cast<std::uint32_t>(kv_int(kv, "radius", p.cwn.radius));
    p.cwn.horizon =
        static_cast<std::uint32_t>(kv_int(kv, "horizon", p.cwn.horizon));
    p.cwn.broadcast_interval = kv_int(kv, "interval", p.cwn.broadcast_interval);
    p.cwn.tie_keep = kv_bool(kv, "tiekeep", p.cwn.tie_keep);
    p.saturation = kv_int(kv, "saturation", p.saturation);
    p.redistribute_delta = kv_int(kv, "redistribute", p.redistribute_delta);
    p.redistribute_cooldown = kv_int(kv, "cooldown", p.redistribute_cooldown);
    return std::make_unique<Acwn>(p);
  }
  if (kind == "local") return std::make_unique<LocalOnly>();
  if (kind == "random") return std::make_unique<RandomPush>();
  if (kind == "roundrobin" || kind == "rr")
    return std::make_unique<RoundRobinPush>();
  if (kind == "steal" || kind == "ws") {
    WorkStealing::Params p;
    p.backoff = kv_int(kv, "backoff", p.backoff);
    p.min_victim_load = kv_int(kv, "minvictim", p.min_victim_load);
    return std::make_unique<WorkStealing>(p);
  }
  throw ConfigError("unknown strategy '" + kind +
                    "' (expected cwn|gm|acwn|local|random|roundrobin|steal)");
}

}  // namespace oracle::lb
