#pragma once
// The event list: a pending-event set ordered by (time, sequence number).
//
// The sequence number gives FIFO ordering among simultaneous events, which
// makes runs deterministic (DESIGN.md invariant 7) — SIMSCRIPT makes the
// same guarantee for its event set. Every pop takes the minimum (time, seq)
// pair and seq is unique, so the dispatch order is a total order independent
// of the container: swapping the queue implementation can never reorder a
// run. That invariant is what lets the batch engine promise byte-identical
// JSONL output for any worker count.
//
// Engine layout (allocation-free steady state):
//   - Callbacks are util::InlineFunction<void(), 48>: 48 bytes of inline
//     storage, move-only, no heap fallback — an oversized capture fails to
//     compile instead of silently allocating (park payloads in a pool and
//     capture the index; see machine::MessagePool).
//   - Pending events live in a *generation-stamped slot map*: fixed-size
//     chunks of slots plus an intrusive free list. A slot holds the
//     callback and a 32-bit generation counter; EventHandle packs
//     (generation, slot) into 64 bits, so liveness checks are one compare
//     and cancel() is O(1): it invalidates the slot (destroying the
//     callback immediately) and leaves a tombstone to be dropped lazily.
//     No scan, ever. Chunked storage means slot addresses never move, so
//     the dispatcher invokes callbacks in place with no per-event copy.
//   - Near-future events (the simulation hot path: hop latencies and
//     activation costs are small integers) go into a timing wheel — a ring
//     of per-tick FIFO buckets with a bitmap index, one bit per tick, so
//     schedule and dispatch are O(1) with no comparisons at all. Bucket
//     append order equals seq order, preserving the FIFO tie-break. The
//     ring size is configurable per scheduler (power of two; Machine
//     autotunes it from the config's latency scale).
//   - Events at or beyond the wheel horizon (base + ring_ticks) wait in an
//     *indexed 4-ary heap* of 24-byte (time, seq, slot) triples — small
//     PODs, shallow tree, cache-friendly sifts. Whenever the wheel's base
//     advances, every overflow event that falls inside the new horizon
//     migrates into its bucket *before* any later (higher-seq) event can be
//     appended there, so the (time, seq) total order is preserved across
//     the two structures.
//   - When the whole engine is empty, scheduling a far-future event slides
//     the wheel's base to that time instead of routing it to the heap, so
//     the "single outstanding timer" pattern (samplers, steal backoffs)
//     stays on the O(1) wheel path even past the horizon. Events scheduled
//     *behind* a slid base afterwards go to the heap and are dispatched
//     directly from its top (they are always earlier than anything in the
//     ring, so the (time, seq) order is preserved).
//   - run() drains each tick's bucket as a batch in a tight loop: the
//     tick scan, base advance, and overflow migration are paid once per
//     occupied tick rather than once per event. Same-tick events appended
//     by callbacks land at the bucket tail and join the same batch in seq
//     order, so batching cannot reorder anything.
//   - reserve(n) pre-sizes the slot map and overflow heap so a run whose
//     peak pending-event count is known never reallocates mid-run.

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/error.hpp"
#include "util/inline_function.hpp"

namespace oracle::sim {

/// Identifies a scheduled event so it can be cancelled. Valid until the
/// event fires or is cancelled; a stale handle (even one whose slot has
/// been reused by a later event) is detected via the generation stamp.
struct EventHandle {
  std::uint64_t id = 0;  // (generation << 32) | (slot + 1)
  bool valid() const noexcept { return id != 0; }
};

/// Priority queue of timed callbacks. Not thread-safe: a Scheduler belongs
/// to exactly one simulation run (parallelism happens across runs, or
/// across the per-partition scheduler shards of one parallel run).
class Scheduler {
 public:
  /// Inline, move-only, never heap-allocates. Captures larger than 48
  /// bytes are a compile error: pass pool indices or pointers instead of
  /// by-value payloads (see machine::Machine's message pool).
  using Callback = util::InlineFunction<void(), 48>;

  /// Default timing-wheel span in ticks; the historical fixed size.
  static constexpr std::uint32_t kDefaultRingTicks = 1024;
  /// Bounds for configurable ring sizes (kept modest: the bitmap scan in
  /// find_next_tick walks ring_ticks/64 words in the worst case).
  static constexpr std::uint32_t kMinRingTicks = 64;
  static constexpr std::uint32_t kMaxRingTicks = 1u << 16;

  /// Round `requested` into [kMinRingTicks, kMaxRingTicks] and up to the
  /// next power of two (the bucket index is `time & mask`).
  static std::uint32_t normalize_ring_ticks(std::uint32_t requested) noexcept;

  explicit Scheduler(std::uint32_t ring_ticks = kDefaultRingTicks);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Advances only inside run()/step().
  SimTime now() const noexcept { return now_; }

  /// Configured timing-wheel span (normalized), for tests/telemetry.
  std::uint32_t ring_ticks() const noexcept { return ring_ticks_; }

  /// Schedule `f` to run at absolute time `when` (>= now()). The callable
  /// is constructed directly in its event slot (no intermediate moves).
  template <typename F>
  EventHandle schedule_at(SimTime when, F&& f) {
    ORACLE_ASSERT_MSG(when >= now_, "scheduling into the past");
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      ORACLE_ASSERT(f != nullptr);
      s.cb = std::forward<F>(f);
    } else {
      s.cb.emplace(std::forward<F>(f));
    }
    s.live = true;
    const std::uint64_t seq = next_seq_++;
    if (when >= base_ + ring_ticks_ && ring_count_ == 0 && heap_.empty()) {
      // Empty engine: slide the wheel to cover `when` instead of parking
      // the lone event in the heap. Anything scheduled behind the slid
      // base afterwards takes the heap and is dispatched from its top.
      base_ = when;
      ++base_slides_;
    }
    if (when >= base_ && when < base_ + ring_ticks_) {
      ring_insert(when, idx);
      ++wheel_scheduled_;
    } else {
      heap_.push_back(HeapEntry{when, seq, idx});
      sift_up(heap_.size() - 1);
      ++heap_scheduled_;
    }
    ++live_events_;
    return EventHandle{(static_cast<std::uint64_t>(s.gen) << 32) |
                       (static_cast<std::uint64_t>(idx) + 1)};
  }

  /// Schedule `f` after `delay` (>= 0) units.
  template <typename F>
  EventHandle schedule_after(Duration delay, F&& f) {
    ORACLE_ASSERT_MSG(delay >= 0, "negative event delay");
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  /// Cancel a pending event in O(1): the handle's generation is checked
  /// against the slot (stale/fired/cancelled handles fail the compare) and
  /// the callback is destroyed immediately; the queue entry is dropped
  /// lazily when it surfaces. Returns false if it already fired, was
  /// already cancelled, or the handle is invalid.
  bool cancel(EventHandle handle);

  /// True if no runnable events remain.
  bool empty() const noexcept { return live_events_ == 0; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const noexcept { return live_events_; }

  /// Total events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Cheap engine profiling counters, sampled by the observability layer
  /// after each run. Maintained unconditionally: each is one increment on
  /// a path that already touches the same cache lines, far below the
  /// noise floor of bench_engine_micro.
  struct Counters {
    std::uint64_t executed = 0;       ///< events dispatched
    std::uint64_t cancelled = 0;      ///< successful cancel() calls
    std::uint64_t wheel_scheduled = 0;///< events that entered via the wheel
    std::uint64_t heap_scheduled = 0; ///< events that entered via the heap
    std::uint64_t tick_batches = 0;   ///< occupied ticks drained by run()
    std::uint64_t base_slides = 0;    ///< empty-engine wheel slides
  };
  Counters counters() const noexcept {
    return Counters{executed_,        cancelled_,    wheel_scheduled_,
                    heap_scheduled_,  tick_batches_, base_slides_};
  }

  /// Pre-size the slot map and overflow heap for `n` simultaneous pending
  /// events, so the steady state never reallocates. Machine setup calls
  /// this with its worst-case in-flight estimate.
  void reserve(std::size_t n);

  /// Execute the next event, advancing the clock. Returns false when the
  /// event list is empty.
  bool step();

  /// Run until the event list is empty, `until` is passed, or `max_events`
  /// events have executed (0 = unlimited; exceeding a nonzero bound throws
  /// SimulationError, as this usually means a runaway model).
  /// Returns the time of the last executed event.
  SimTime run(SimTime until = kTimeInfinity, std::uint64_t max_events = 0);

  /// Request that run() stops before dispatching any further event.
  void request_stop() noexcept { stop_requested_ = true; }

  /// Time of the next live event, without dispatching it. Used by the
  /// conservative parallel engine to size the next safe window. May drop
  /// tombstones (lazy cleanup), hence non-const.
  bool next_event_time(SimTime& out) { return peek_next_time(out); }

 private:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;
  // Slots live in fixed-size chunks so their addresses never move: the
  // dispatch loop can invoke a callback *in place* (no per-event move-out)
  // even if the callback schedules events that grow the slot map.
  static constexpr std::uint32_t kSlotChunkShift = 8;
  static constexpr std::uint32_t kSlotChunkSize = 1u << kSlotChunkShift;

  /// One pending (or tombstoned) event. `gen` advances whenever the slot's
  /// current event dies (fires or is cancelled), invalidating old handles.
  /// `next` is an intrusive link with two mutually-exclusive uses: the
  /// bucket FIFO chain while the event is queued in the wheel, and the
  /// free-list chain while the slot is unallocated — so buckets need no
  /// storage of their own and queue links ride on already-hot slot lines.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    bool live = false;          // scheduled and not yet fired/cancelled
    std::uint32_t next = kNoSlot;
  };

  /// Overflow-heap entries are small PODs so sifts never touch callbacks;
  /// ordering is (time, seq), identical to the dispatch order.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// One wheel tick: an intrusive FIFO threaded through Slot::next.
  struct Bucket {
    std::uint32_t head = kNoSlot;
    std::uint32_t tail = kNoSlot;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  Slot& slot(std::uint32_t idx) noexcept {
    return chunks_[idx >> kSlotChunkShift][idx & (kSlotChunkSize - 1)];
  }
  const Slot& slot(std::uint32_t idx) const noexcept {
    return chunks_[idx >> kSlotChunkShift][idx & (kSlotChunkSize - 1)];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) noexcept;
  void sift_up(std::size_t i) noexcept;
  void pop_top() noexcept;

  void ring_insert(SimTime when, std::uint32_t idx);
  void clear_tick(std::uint32_t tick) noexcept {
    ring_[tick].tail = kNoSlot;
    bits_[tick >> 6] &= ~(1ULL << (tick & 63));
  }
  /// Pull every overflow event inside the wheel horizon into its bucket
  /// (in (time, seq) order), dropping tombstones on the way.
  void migrate_overflow();
  /// Find the earliest occupied tick >= base_; false if the ring is empty.
  bool find_next_tick(SimTime& out) const noexcept;
  /// Next live event's time without moving base_ (horizon peeks must not
  /// move the wheel, or inserts between runs could land behind it).
  bool peek_next_time(SimTime& out);
  /// Drop dead entries at the heap top; true if a live *straggler*
  /// (an event scheduled behind a slid wheel base) is on top.
  bool straggler_on_top();
  /// Retire slot `idx` and invoke its callback in place at time `t`.
  void fire(std::uint32_t idx, SimTime t);
  [[noreturn]] void throw_budget_exceeded(std::uint64_t max_events) const;

  // Timing wheel.
  std::uint32_t ring_ticks_;     // normalized span (power of two)
  std::uint32_t ring_mask_;      // ring_ticks_ - 1
  std::uint32_t bit_words_;      // ring_ticks_ / 64
  std::vector<Bucket> ring_;     // ring_ticks_ buckets
  std::vector<std::uint64_t> bits_;  // per-tick occupancy bitmap
  SimTime base_ = 0;             // earliest time the wheel can hold
  std::size_t ring_count_ = 0;   // entries (live + tombstones) in the wheel

  std::vector<HeapEntry> heap_;  // 4-ary min-heap of far-future events
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;  // slots constructed across all chunks
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_events_ = 0;
  SimTime now_ = kTimeZero;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t wheel_scheduled_ = 0;
  std::uint64_t heap_scheduled_ = 0;
  std::uint64_t tick_batches_ = 0;
  std::uint64_t base_slides_ = 0;
  bool stop_requested_ = false;
};

}  // namespace oracle::sim
