#pragma once
// The event list: a pending-event set ordered by (time, sequence number).
//
// The sequence number gives FIFO ordering among simultaneous events, which
// makes runs deterministic (DESIGN.md invariant 7) — SIMSCRIPT makes the
// same guarantee for its event set. Cancellation is supported by handle;
// cancelled entries are dropped lazily when they reach the top of the heap.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "util/error.hpp"

namespace oracle::sim {

/// Identifies a scheduled event so it can be cancelled. Valid until the
/// event fires or is cancelled.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const noexcept { return id != 0; }
};

/// Priority queue of timed callbacks. Not thread-safe: a Scheduler belongs
/// to exactly one simulation run (parallelism happens across runs).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Advances only inside run()/step().
  SimTime now() const noexcept { return now_; }

  /// Schedule `cb` to run at absolute time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback cb);

  /// Schedule `cb` after `delay` (>= 0) units.
  EventHandle schedule_after(Duration delay, Callback cb) {
    ORACLE_ASSERT_MSG(delay >= 0, "negative event delay");
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or the handle is invalid.
  bool cancel(EventHandle handle);

  /// True if no runnable events remain.
  bool empty() const noexcept { return live_events_ == 0; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const noexcept { return live_events_; }

  /// Total events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Execute the next event, advancing the clock. Returns false when the
  /// event list is empty.
  bool step();

  /// Run until the event list is empty, `until` is passed, or `max_events`
  /// events have executed (0 = unlimited; exceeding a nonzero bound throws
  /// SimulationError, as this usually means a runaway model).
  /// Returns the time of the last executed event.
  SimTime run(SimTime until = kTimeInfinity, std::uint64_t max_events = 0);

  /// Request that run() stops before dispatching any further event.
  void request_stop() noexcept { stop_requested_ = true; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among simultaneous events
    std::uint64_t id;
    Callback cb;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Binary heap managed with std::push_heap/std::pop_heap over a vector:
  // cache-friendlier than std::priority_queue and allows inspection.
  std::vector<Entry> heap_;
  std::vector<std::uint64_t> cancelled_;  // ids cancelled but still in heap_
  std::size_t live_events_ = 0;
  SimTime now_ = kTimeZero;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;

  bool is_cancelled(std::uint64_t id) const;
  void forget_cancelled(std::uint64_t id);
};

}  // namespace oracle::sim
