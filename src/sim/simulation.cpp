#include "sim/simulation.hpp"

namespace oracle::sim {

void Simulation::add_sampler(Duration interval, SamplerFn fn, SimTime start) {
  ORACLE_ASSERT_MSG(interval > 0, "sampler interval must be positive");
  samplers_.push_back(Sampler{interval, std::move(fn)});
  arm_sampler(samplers_.size() - 1, start);
}

void Simulation::arm_sampler(std::size_t idx, SimTime when) {
  sched_.schedule_at(when, [this, idx] {
    Sampler& s = samplers_[idx];
    s.fn(sched_.now());
    // Only re-arm while real work remains: the sampler's own event is the
    // one being executed, so "pending() > 0" means someone else is active.
    if (sched_.pending() > 0) arm_sampler(idx, sched_.now() + s.interval);
  });
}

}  // namespace oracle::sim
