#pragma once
// Coroutine-based process abstraction.
//
// ORACLE (the paper's simulator, built on SIMSCRIPT) exposes a *process*
// abstraction in addition to raw events "Thus the code written for ORACLE
// looks the same as that for a real multiprocessor". We reproduce that with
// C++20 coroutines: a Process is a coroutine that can `co_await hold(n)`
// to advance simulated time. The machine model itself is event-driven for
// speed; processes are the ergonomic layer used by periodic daemons,
// examples and tests.

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"

namespace oracle::sim {

class Process;

namespace detail {

struct ProcessState {
  Scheduler* sched = nullptr;
  bool done = false;
  std::exception_ptr error;
};

}  // namespace detail

/// Awaitable returned by hold(): suspends the process for `delay` units.
struct HoldAwaitable {
  Scheduler* sched;
  Duration delay;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sched->schedule_after(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// A simulated process. Create via any coroutine returning Process that was
/// launched with Process::spawn(); the coroutine body runs until its first
/// suspension as soon as the process is spawned (SIMSCRIPT "activate now").
class Process {
 public:
  struct promise_type {
    std::shared_ptr<detail::ProcessState> state =
        std::make_shared<detail::ProcessState>();

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this),
                     state);
    }
    // Lazy start: spawn() injects the scheduler, then resumes.
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept {
      state->done = true;
      return {};  // handle self-destroys after final suspend
    }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { state->error = std::current_exception(); }

    /// Allows `co_await hold(n)` without carrying the scheduler around.
    HoldAwaitable await_transform(Duration delay) {
      ORACLE_ASSERT_MSG(state->sched != nullptr, "process not spawned");
      ORACLE_ASSERT_MSG(delay >= 0, "negative hold");
      return HoldAwaitable{state->sched, delay};
    }
  };

  Process() = default;
  Process(Process&& other) noexcept = default;
  Process& operator=(Process&& other) noexcept = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Bind the process to a scheduler and run it to its first suspension.
  void spawn(Scheduler& sched) {
    ORACLE_ASSERT_MSG(handle_, "spawn of empty/moved-from Process");
    ORACLE_ASSERT_MSG(state_->sched == nullptr, "process spawned twice");
    state_->sched = &sched;
    handle_.resume();
    rethrow_if_failed();
  }

  bool done() const noexcept { return state_ && state_->done; }

  /// Re-raise an exception that escaped the coroutine body.
  void rethrow_if_failed() const {
    if (state_ && state_->error) std::rethrow_exception(state_->error);
  }

 private:
  Process(std::coroutine_handle<promise_type> h,
          std::shared_ptr<detail::ProcessState> state)
      : handle_(h), state_(std::move(state)) {}

  std::coroutine_handle<promise_type> handle_;
  std::shared_ptr<detail::ProcessState> state_;
};

/// Inside a Process coroutine: `co_await hold(10);` advances sim time 10
/// units. (Plain `co_await 10;` also works via await_transform.)
inline Duration hold(Duration delay) { return delay; }

}  // namespace oracle::sim
