#pragma once
// SIMSCRIPT-style resource: a facility with `capacity` identical servers and
// a FIFO request queue. ORACLE models each communication channel as one such
// process; we use Resource for channels and buses, so contention for links
// is simulated exactly as in the paper ("it models contention for the basic
// resources of a parallel system").

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "stats/accumulator.hpp"

namespace oracle::sim {

/// FIFO multi-server resource. Usage pattern:
///   resource.acquire_for(service_time, [done] { ... });
/// which queues if all servers are busy, holds a server for `service_time`
/// units, then invokes the completion callback and starts the next waiter.
class Resource {
 public:
  Resource(Scheduler& sched, std::string name, std::uint32_t capacity = 1);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  const std::string& name() const noexcept { return name_; }
  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint32_t in_service() const noexcept { return in_service_; }
  std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Request a server for `service` units; `on_complete` runs when service
  /// finishes (may be null). FIFO among waiters.
  void acquire_for(Duration service, std::function<void()> on_complete);

  /// Total busy server-time accumulated so far (updated on completion).
  Duration busy_time() const noexcept { return busy_time_; }

  /// Number of completed services.
  std::uint64_t completed() const noexcept { return completed_; }

  /// Utilization over [0, horizon]: busy server-time / (capacity * horizon).
  double utilization(SimTime horizon) const noexcept;

  /// Observed queueing delays (time from request to service start).
  const stats::Accumulator& queue_delay() const noexcept { return queue_delay_; }

 private:
  struct Request {
    Duration service;
    std::function<void()> on_complete;
    SimTime enqueued_at;
  };

  void start_service(Request req);
  void finish_service(Duration service, std::function<void()> on_complete);

  Scheduler& sched_;
  std::string name_;
  std::uint32_t capacity_;
  std::uint32_t in_service_ = 0;
  std::deque<Request> queue_;
  Duration busy_time_ = 0;
  std::uint64_t completed_ = 0;
  stats::Accumulator queue_delay_;
};

}  // namespace oracle::sim
