#pragma once
// SIMSCRIPT-style resource: a facility with `capacity` identical servers and
// a FIFO request queue. ORACLE models each communication channel as one such
// process; we use Resource for channels and buses, so contention for links
// is simulated exactly as in the paper ("it models contention for the basic
// resources of a parallel system").

#include <cstdint>
#include <string>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "stats/accumulator.hpp"
#include "util/inline_function.hpp"
#include "util/ring_queue.hpp"

namespace oracle::sim {

/// FIFO multi-server resource. Usage pattern:
///   resource.acquire_for(service_time, [done] { ... });
/// which queues if all servers are busy, holds a server for `service_time`
/// units, then invokes the completion callback and starts the next waiter.
class Resource {
 public:
  /// Completion callbacks are inline and move-only, capped at 16 bytes of
  /// capture (an object pointer plus two 32-bit indices) so a whole
  /// in-service record (this + service + callback) still fits one 48-byte
  /// scheduler event. Pass pool indices, not payloads.
  using Callback = util::InlineFunction<void(), 16>;

  Resource(Scheduler& sched, std::string name, std::uint32_t capacity = 1);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  const std::string& name() const noexcept { return name_; }
  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint32_t in_service() const noexcept { return in_service_; }
  std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Request a server for `service` units; `on_complete` runs when service
  /// finishes (may be null). FIFO among waiters.
  void acquire_for(Duration service, Callback on_complete);

  /// Pre-size the wait queue so steady-state queueing never allocates.
  void reserve(std::size_t waiters) { queue_.reserve(waiters); }

  /// Total busy server-time accumulated so far (updated on completion).
  Duration busy_time() const noexcept { return busy_time_; }

  /// Number of completed services.
  std::uint64_t completed() const noexcept { return completed_; }

  /// Utilization over [0, horizon]: busy server-time / (capacity * horizon).
  double utilization(SimTime horizon) const noexcept;

  /// Observed queueing delays (time from request to service start).
  const stats::Accumulator& queue_delay() const noexcept { return queue_delay_; }

 private:
  struct Request {
    Duration service = 0;
    Callback on_complete;
    SimTime enqueued_at = 0;
  };

  void start_service(Request req);
  void finish_service(Duration service, Callback on_complete);

  Scheduler& sched_;
  std::string name_;
  std::uint32_t capacity_;
  std::uint32_t in_service_ = 0;
  util::RingQueue<Request> queue_;
  Duration busy_time_ = 0;
  std::uint64_t completed_ = 0;
  stats::Accumulator queue_delay_;
};

}  // namespace oracle::sim
