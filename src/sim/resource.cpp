#include "sim/resource.hpp"

#include <utility>

namespace oracle::sim {

Resource::Resource(Scheduler& sched, std::string name, std::uint32_t capacity)
    : sched_(sched), name_(std::move(name)), capacity_(capacity) {
  ORACLE_ASSERT_MSG(capacity_ > 0, "resource capacity must be positive");
}

void Resource::acquire_for(Duration service, Callback on_complete) {
  ORACLE_ASSERT_MSG(service >= 0, "negative service time");
  Request req{service, std::move(on_complete), sched_.now()};
  if (in_service_ < capacity_) {
    start_service(std::move(req));
  } else {
    queue_.push_back(std::move(req));
  }
}

void Resource::start_service(Request req) {
  ++in_service_;
  queue_delay_.add(static_cast<double>(sched_.now() - req.enqueued_at));
  const Duration service = req.service;
  // Move the callback into the event; `this` outlives the scheduler run.
  sched_.schedule_after(service,
                        [this, service, cb = std::move(req.on_complete)]() mutable {
                          finish_service(service, std::move(cb));
                        });
}

void Resource::finish_service(Duration service, Callback on_complete) {
  ORACLE_ASSERT(in_service_ > 0);
  --in_service_;
  busy_time_ += service;
  ++completed_;
  if (!queue_.empty() && in_service_ < capacity_) {
    start_service(queue_.pop_front());
  }
  if (on_complete) on_complete();
}

double Resource::utilization(SimTime horizon) const noexcept {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(busy_time_) /
         (static_cast<double>(capacity_) * static_cast<double>(horizon));
}

}  // namespace oracle::sim
