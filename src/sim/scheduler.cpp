#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>

#include "util/string_util.hpp"

namespace oracle::sim {

namespace {

constexpr std::uint32_t handle_slot(std::uint64_t id) {
  return static_cast<std::uint32_t>(id & 0xffffffffULL) - 1;
}

constexpr std::uint32_t handle_gen(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

std::uint32_t Scheduler::normalize_ring_ticks(std::uint32_t requested) noexcept {
  const std::uint32_t clamped =
      std::clamp(requested, kMinRingTicks, kMaxRingTicks);
  return std::bit_ceil(clamped);
}

Scheduler::Scheduler(std::uint32_t ring_ticks)
    : ring_ticks_(normalize_ring_ticks(ring_ticks)),
      ring_mask_(ring_ticks_ - 1),
      bit_words_(ring_ticks_ / 64),
      ring_(ring_ticks_),
      bits_(bit_words_, 0) {}

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slot(idx).next;
    return idx;
  }
  ORACLE_ASSERT_MSG(slot_count_ < kNoSlot, "event slot map exhausted");
  if (slot_count_ == chunks_.size() * kSlotChunkSize)
    chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
  return slot_count_++;
}

void Scheduler::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slot(idx);
  s.next = free_head_;
  free_head_ = idx;
}

bool Scheduler::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const std::uint32_t idx = handle_slot(handle.id);
  if (idx >= slot_count_) return false;
  Slot& s = slot(idx);
  // One generation compare answers "is this exact event still pending":
  // fired, cancelled, and slot-reused handles all carry a stale generation.
  if (!s.live || s.gen != handle_gen(handle.id)) return false;
  s.live = false;
  ++s.gen;
  s.cb.reset();  // free captured resources now, not at pop time
  --live_events_;
  ++cancelled_;
  // The wheel/heap entry stays as a tombstone, dropped in O(1) amortized
  // when it surfaces — no scan.
  return true;
}

void Scheduler::sift_up(std::size_t i) noexcept {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::pop_top() noexcept {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t end = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Scheduler::ring_insert(SimTime when, std::uint32_t idx) {
  const std::uint32_t tick = static_cast<std::uint32_t>(when) & ring_mask_;
  Bucket& b = ring_[tick];
  slot(idx).next = kNoSlot;
  if (b.tail == kNoSlot) {
    b.head = idx;
    bits_[tick >> 6] |= 1ULL << (tick & 63);
  } else {
    slot(b.tail).next = idx;
  }
  b.tail = idx;
  ++ring_count_;
}

void Scheduler::migrate_overflow() {
  while (!heap_.empty() && heap_.front().time < base_ + ring_ticks_) {
    const HeapEntry top = heap_.front();
    pop_top();
    if (!slot(top.slot).live) {
      release_slot(top.slot);
      continue;
    }
    // Stragglers (events behind a slid base) are dispatched straight from
    // the heap top and can never reach a migration point.
    ORACLE_ASSERT_MSG(top.time >= base_, "straggler reached migrate_overflow");
    // Heap pops arrive in (time, seq) order and any future direct insert
    // for these ticks carries a larger seq, so appending preserves FIFO.
    ring_insert(top.time, top.slot);
  }
}

bool Scheduler::find_next_tick(SimTime& out) const noexcept {
  const std::uint32_t start = static_cast<std::uint32_t>(base_) & ring_mask_;
  std::uint32_t word_i = start >> 6;
  std::uint64_t word = bits_[word_i] & (~0ULL << (start & 63));
  for (std::uint32_t scanned = 0; scanned <= bit_words_; ++scanned) {
    if (word != 0) {
      const std::uint32_t bit =
          word_i * 64 +
          static_cast<std::uint32_t>(__builtin_ctzll(word));
      out = base_ + static_cast<SimTime>((bit - start) & ring_mask_);
      return true;
    }
    word_i = (word_i + 1) & (bit_words_ - 1);
    word = bits_[word_i];
  }
  return false;
}

bool Scheduler::straggler_on_top() {
  // Drop tombstones parked at the heap top; amortized O(1), each tombstone
  // is dropped exactly once. After this, every heap entry is live-or-later:
  // if the top is >= base_, so is everything below it (min-heap).
  while (!heap_.empty() && !slot(heap_.front().slot).live) {
    release_slot(heap_.front().slot);
    pop_top();
  }
  return !heap_.empty() && heap_.front().time < base_;
}

void Scheduler::fire(std::uint32_t idx, SimTime t) {
  Slot& s = slot(idx);
  ORACLE_ASSERT(t >= now_);
  // Retire the event before invoking, but run the callback *in place*:
  // chunked slots never move, and the slot is not released (hence not
  // reusable by events the callback schedules) until the call returns.
  s.live = false;
  ++s.gen;
  now_ = t;
  --live_events_;
  ++executed_;
  s.cb();
  s.cb.reset();
  release_slot(idx);
}

bool Scheduler::peek_next_time(SimTime& out) {
  // Like the dispatch scan in step(), but without moving base_: a peek
  // that moved the wheel past `until` would leave later inserts behind the
  // cursor. A live straggler (scheduled behind a slid base) is earlier
  // than everything in the ring by construction; otherwise the wheel
  // invariant (overflow top >= base_ + ring_ticks_) makes the ring
  // candidate, when present, always the earlier one.
  if (straggler_on_top()) {
    out = heap_.front().time;
    return true;
  }
  for (;;) {
    if (ring_count_ > 0) {
      SimTime t;
      const bool found = find_next_tick(t);
      ORACLE_ASSERT(found);
      const std::uint32_t tick = static_cast<std::uint32_t>(t) & ring_mask_;
      Bucket& b = ring_[tick];
      while (b.head != kNoSlot && !slot(b.head).live) {
        const std::uint32_t dead = b.head;
        b.head = slot(dead).next;
        release_slot(dead);
        --ring_count_;
      }
      if (b.head == kNoSlot) {
        clear_tick(tick);
        continue;
      }
      out = t;
      return true;
    }
    // Heap-top tombstones were already dropped by straggler_on_top().
    if (heap_.empty()) return false;
    out = heap_.front().time;
    return true;
  }
}

void Scheduler::reserve(std::size_t n) {
  heap_.reserve(n);
  while (chunks_.size() * kSlotChunkSize < n)
    chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
}

bool Scheduler::step() {
  for (;;) {
    if (straggler_on_top()) {
      const HeapEntry top = heap_.front();
      pop_top();
      fire(top.slot, top.time);
      return true;
    }
    if (ring_count_ == 0) {
      // Jump the wheel to the earliest far-future event and pull its
      // cohort in (straggler_on_top() already dropped dead heap tops).
      if (heap_.empty()) return false;
      base_ = heap_.front().time;
      migrate_overflow();
      continue;
    }
    SimTime t;
    const bool found = find_next_tick(t);
    ORACLE_ASSERT(found);
    if (t != base_) {
      base_ = t;
      // The horizon moved: admit overflow events it now covers *before*
      // anything else can append to their buckets.
      if (!heap_.empty()) migrate_overflow();
    }
    const std::uint32_t tick = static_cast<std::uint32_t>(t) & ring_mask_;
    Bucket& b = ring_[tick];
    for (;;) {
      if (b.head == kNoSlot) {
        clear_tick(tick);
        break;  // bucket held only tombstones; rescan
      }
      const std::uint32_t idx = b.head;
      Slot& s = slot(idx);
      b.head = s.next;
      --ring_count_;
      if (!s.live) {
        release_slot(idx);
        continue;
      }
      if (b.head == kNoSlot) {
        clear_tick(tick);
      } else {
        // Overlap the next event's slot fetch with this callback's work:
        // intrusive links otherwise serialize the loads.
        __builtin_prefetch(&slot(b.head));
      }
      fire(idx, t);
      return true;
    }
  }
}

SimTime Scheduler::run(SimTime until, std::uint64_t max_events) {
  stop_requested_ = false;
  const bool bounded = until != kTimeInfinity;
  while (!stop_requested_) {
    if (straggler_on_top()) {
      // Dispatch directly from the heap top: a straggler precedes every
      // ring entry and no ring entry can tie with it (ring times >= base_).
      const HeapEntry top = heap_.front();
      if (bounded && top.time > until) break;
      pop_top();
      fire(top.slot, top.time);
      if (max_events != 0 && executed_ > max_events)
        throw_budget_exceeded(max_events);
      continue;
    }
    if (ring_count_ == 0) {
      if (heap_.empty()) break;
      base_ = heap_.front().time;
      migrate_overflow();
      continue;
    }
    SimTime t;
    const bool found = find_next_tick(t);
    ORACLE_ASSERT(found);
    if (bounded && t > until) break;
    if (t != base_) {
      base_ = t;
      if (!heap_.empty()) migrate_overflow();
    }
    const std::uint32_t tick = static_cast<std::uint32_t>(t) & ring_mask_;
    Bucket& b = ring_[tick];
    const std::uint64_t exec_before = executed_;
    // Drain the whole tick as a batch: the tick scan, base advance, and
    // overflow migration above are paid once per occupied tick, not once
    // per event. Same-tick events appended by callbacks land at the tail
    // and join the batch in seq order. The `base_ == t` guard catches a
    // callback emptying the engine and sliding the base: the bucket may
    // then hold events for a *different* time aliasing to this index, so
    // the scan must restart.
    while (b.head != kNoSlot && base_ == t && !stop_requested_) {
      const std::uint32_t idx = b.head;
      Slot& s = slot(idx);
      b.head = s.next;
      --ring_count_;
      if (b.head == kNoSlot) {
        clear_tick(tick);
      } else {
        __builtin_prefetch(&slot(b.head));
      }
      if (!s.live) {
        release_slot(idx);
        continue;
      }
      fire(idx, t);
      if (max_events != 0 && executed_ > max_events)
        throw_budget_exceeded(max_events);
    }
    if (executed_ != exec_before) ++tick_batches_;
  }
  return now_;
}

void Scheduler::throw_budget_exceeded(std::uint64_t max_events) const {
  (void)max_events;
  throw SimulationError(strfmt(
      "event budget exceeded (%llu events executed, t=%lld); "
      "the model is probably not terminating",
      static_cast<unsigned long long>(executed_),
      static_cast<long long>(now_)));
}

}  // namespace oracle::sim
