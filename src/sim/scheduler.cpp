#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace oracle::sim {

EventHandle Scheduler::schedule_at(SimTime when, Callback cb) {
  ORACLE_ASSERT_MSG(when >= now_, "scheduling into the past");
  ORACLE_ASSERT(cb != nullptr);
  Entry entry{when, next_seq_++, next_id_++, std::move(cb)};
  const EventHandle handle{entry.id};
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_events_;
  return handle;
}

bool Scheduler::is_cancelled(std::uint64_t id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

void Scheduler::forget_cancelled(std::uint64_t id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  ORACLE_ASSERT(it != cancelled_.end());
  // Order doesn't matter; swap-and-pop.
  *it = cancelled_.back();
  cancelled_.pop_back();
}

bool Scheduler::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  // The id is only known to the heap if it hasn't fired. Scan the heap to
  // verify liveness; cancellation is rare (timer resets), so O(n) is fine
  // and keeps the hot path allocation-free.
  const bool present =
      std::any_of(heap_.begin(), heap_.end(),
                  [&](const Entry& e) { return e.id == handle.id; });
  if (!present || is_cancelled(handle.id)) return false;
  cancelled_.push_back(handle.id);
  --live_events_;
  return true;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    if (is_cancelled(entry.id)) {
      forget_cancelled(entry.id);
      continue;  // lazily dropped
    }
    ORACLE_ASSERT(entry.time >= now_);
    now_ = entry.time;
    --live_events_;
    ++executed_;
    entry.cb();
    return true;
  }
  return false;
}

SimTime Scheduler::run(SimTime until, std::uint64_t max_events) {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    // Peek: don't dispatch events beyond the horizon.
    if (heap_.front().time > until) break;
    if (!step()) break;
    if (max_events != 0 && executed_ > max_events) {
      throw SimulationError(strfmt(
          "event budget exceeded (%llu events executed, t=%lld); "
          "the model is probably not terminating",
          static_cast<unsigned long long>(executed_),
          static_cast<long long>(now_)));
    }
  }
  return now_;
}

}  // namespace oracle::sim
