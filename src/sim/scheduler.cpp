#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace oracle::sim {

namespace {

constexpr std::uint32_t handle_slot(std::uint64_t id) {
  return static_cast<std::uint32_t>(id & 0xffffffffULL) - 1;
}

constexpr std::uint32_t handle_gen(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

Scheduler::Scheduler() : ring_(kRingTicks) {}

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slot(idx).next;
    return idx;
  }
  ORACLE_ASSERT_MSG(slot_count_ < kNoSlot, "event slot map exhausted");
  if (slot_count_ == chunks_.size() * kSlotChunkSize)
    chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
  return slot_count_++;
}

void Scheduler::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slot(idx);
  s.next = free_head_;
  free_head_ = idx;
}

bool Scheduler::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const std::uint32_t idx = handle_slot(handle.id);
  if (idx >= slot_count_) return false;
  Slot& s = slot(idx);
  // One generation compare answers "is this exact event still pending":
  // fired, cancelled, and slot-reused handles all carry a stale generation.
  if (!s.live || s.gen != handle_gen(handle.id)) return false;
  s.live = false;
  ++s.gen;
  s.cb.reset();  // free captured resources now, not at pop time
  --live_events_;
  ++cancelled_;
  // The wheel/heap entry stays as a tombstone, dropped in O(1) amortized
  // when it surfaces — no scan.
  return true;
}

void Scheduler::sift_up(std::size_t i) noexcept {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::pop_top() noexcept {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t end = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Scheduler::ring_insert(SimTime when, std::uint32_t idx) {
  const std::uint32_t tick = static_cast<std::uint32_t>(when) & kRingMask;
  Bucket& b = ring_[tick];
  slot(idx).next = kNoSlot;
  if (b.tail == kNoSlot) {
    b.head = idx;
    bits_[tick >> 6] |= 1ULL << (tick & 63);
  } else {
    slot(b.tail).next = idx;
  }
  b.tail = idx;
  ++ring_count_;
}

void Scheduler::migrate_overflow() {
  while (!heap_.empty() && heap_.front().time < base_ + kRingTicks) {
    const HeapEntry top = heap_.front();
    pop_top();
    if (!slot(top.slot).live) {
      release_slot(top.slot);
      continue;
    }
    // Heap pops arrive in (time, seq) order and any future direct insert
    // for these ticks carries a larger seq, so appending preserves FIFO.
    ring_insert(top.time, top.slot);
  }
}

bool Scheduler::find_next_tick(SimTime& out) const noexcept {
  const std::uint32_t start = static_cast<std::uint32_t>(base_) & kRingMask;
  std::uint32_t word_i = start >> 6;
  std::uint64_t word = bits_[word_i] & (~0ULL << (start & 63));
  for (std::uint32_t scanned = 0; scanned <= kBitWords; ++scanned) {
    if (word != 0) {
      const std::uint32_t bit =
          word_i * 64 +
          static_cast<std::uint32_t>(__builtin_ctzll(word));
      out = base_ + static_cast<SimTime>((bit - start) & kRingMask);
      return true;
    }
    word_i = (word_i + 1) & (kBitWords - 1);
    word = bits_[word_i];
  }
  return false;
}

bool Scheduler::peek_next_time(SimTime& out) {
  // Like the dispatch scan in step(), but without moving base_: a peek
  // that moved the wheel past `until` would leave later inserts behind the
  // cursor. The wheel invariant (overflow top >= base_ + kRingTicks) makes
  // the ring candidate, when present, always the earlier one.
  for (;;) {
    if (ring_count_ > 0) {
      SimTime t;
      const bool found = find_next_tick(t);
      ORACLE_ASSERT(found);
      const std::uint32_t tick = static_cast<std::uint32_t>(t) & kRingMask;
      Bucket& b = ring_[tick];
      while (b.head != kNoSlot && !slot(b.head).live) {
        const std::uint32_t dead = b.head;
        b.head = slot(dead).next;
        release_slot(dead);
        --ring_count_;
      }
      if (b.head == kNoSlot) {
        clear_tick(tick);
        continue;
      }
      out = t;
      return true;
    }
    while (!heap_.empty() && !slot(heap_.front().slot).live) {
      release_slot(heap_.front().slot);
      pop_top();
    }
    if (heap_.empty()) return false;
    out = heap_.front().time;
    return true;
  }
}

void Scheduler::reserve(std::size_t n) {
  heap_.reserve(n);
  while (chunks_.size() * kSlotChunkSize < n)
    chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
}

bool Scheduler::step() {
  std::uint32_t idx;
  for (;;) {
    if (ring_count_ == 0) {
      // Drop tombstones parked at the heap top, then jump the wheel to the
      // earliest far-future event and pull its cohort in.
      while (!heap_.empty() && !slot(heap_.front().slot).live) {
        release_slot(heap_.front().slot);
        pop_top();
      }
      if (heap_.empty()) return false;
      base_ = heap_.front().time;
      migrate_overflow();
      continue;
    }
    SimTime t;
    const bool found = find_next_tick(t);
    ORACLE_ASSERT(found);
    if (t != base_) {
      base_ = t;
      // The horizon moved: admit overflow events it now covers *before*
      // anything else can append to their buckets.
      if (!heap_.empty()) migrate_overflow();
    }
    const std::uint32_t tick = static_cast<std::uint32_t>(t) & kRingMask;
    Bucket& b = ring_[tick];
    for (;;) {
      if (b.head == kNoSlot) {
        clear_tick(tick);
        break;  // bucket held only tombstones; rescan
      }
      idx = b.head;
      Slot& s = slot(idx);
      b.head = s.next;
      --ring_count_;
      if (!s.live) {
        release_slot(idx);
        continue;
      }
      if (b.head == kNoSlot) {
        clear_tick(tick);
      } else {
        // Overlap the next event's slot fetch with this callback's work:
        // intrusive links otherwise serialize the loads.
        __builtin_prefetch(&slot(b.head));
      }
      ORACLE_ASSERT(t >= now_);
      // Retire the event before invoking, but run the callback *in place*:
      // chunked slots never move, and the slot is not released (hence not
      // reusable by events the callback schedules) until the call returns.
      s.live = false;
      ++s.gen;
      now_ = t;
      --live_events_;
      ++executed_;
      s.cb();
      s.cb.reset();
      release_slot(idx);
      return true;
    }
  }
}

SimTime Scheduler::run(SimTime until, std::uint64_t max_events) {
  stop_requested_ = false;
  // With a horizon, peek so no event beyond `until` is dispatched;
  // unbounded runs skip the peek entirely.
  const bool bounded = until != kTimeInfinity;
  while (!stop_requested_) {
    if (bounded) {
      SimTime next;
      if (!peek_next_time(next) || next > until) break;
    }
    if (!step()) break;
    if (max_events != 0 && executed_ > max_events) {
      throw SimulationError(strfmt(
          "event budget exceeded (%llu events executed, t=%lld); "
          "the model is probably not terminating",
          static_cast<unsigned long long>(executed_),
          static_cast<long long>(now_)));
    }
  }
  return now_;
}

}  // namespace oracle::sim
