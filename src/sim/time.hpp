#pragma once
// Simulated time. The paper charges integer "units" for primitive operations
// (Section 3: "times to be charged for primitive operations"; run lengths of
// 1000..23000 units). We use a 64-bit integer tick count: integer time makes
// event ordering exact and runs bit-reproducible across platforms.

#include <cstdint>

namespace oracle::sim {

/// A point in simulated time, in abstract "units".
using SimTime = std::int64_t;

/// A duration in simulated time units.
using Duration = std::int64_t;

inline constexpr SimTime kTimeZero = 0;

/// Sentinel for "never" / unbounded horizons.
inline constexpr SimTime kTimeInfinity = INT64_MAX;

}  // namespace oracle::sim
