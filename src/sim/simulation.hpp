#pragma once
// Simulation: a Scheduler plus run-scoped services (named resources,
// processes, periodic samplers). One Simulation == one ORACLE run.

#include <memory>
#include <string>
#include <vector>

#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/inline_function.hpp"

namespace oracle::sim {

class Simulation {
 public:
  Simulation() = default;
  /// Size the scheduler's timing wheel explicitly (normalized to a power
  /// of two); Machine autotunes this from the config's latency scale.
  explicit Simulation(std::uint32_t ring_ticks) : sched_(ring_ticks) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Scheduler& scheduler() noexcept { return sched_; }
  const Scheduler& scheduler() const noexcept { return sched_; }
  SimTime now() const noexcept { return sched_.now(); }

  /// Create a resource owned by this simulation.
  Resource& make_resource(std::string name, std::uint32_t capacity = 1) {
    resources_.push_back(
        std::make_unique<Resource>(sched_, std::move(name), capacity));
    return *resources_.back();
  }

  const std::vector<std::unique_ptr<Resource>>& resources() const noexcept {
    return resources_;
  }

  /// Launch a coroutine process (runs to first suspension immediately).
  void spawn(Process p) {
    processes_.push_back(std::move(p));
    processes_.back().spawn(sched_);
  }

  /// Sampler hooks ride the same no-heap-fallback callable as scheduler
  /// events: sampling is part of the engine's steady state (one firing per
  /// interval for the whole run), so its callback must not reintroduce
  /// allocation. Capture indices/pointers, not payloads.
  using SamplerFn = util::InlineFunction<void(SimTime), 48>;

  /// Invoke `fn(now)` every `interval` units starting at `start`, until the
  /// event list would otherwise be empty. Sampler events never keep the
  /// simulation alive on their own: they are rescheduled only while other
  /// work is pending, mirroring ORACLE's output sampler.
  void add_sampler(Duration interval, SamplerFn fn, SimTime start = 0);

  /// Run to completion (or the event budget). Returns the final time.
  SimTime run(std::uint64_t max_events = 0) {
    return sched_.run(kTimeInfinity, max_events);
  }

 private:
  struct Sampler {
    Duration interval;
    SamplerFn fn;
  };

  void arm_sampler(std::size_t idx, SimTime when);

  Scheduler sched_;
  std::vector<std::unique_ptr<Resource>> resources_;
  std::vector<Process> processes_;
  std::vector<Sampler> samplers_;
};

}  // namespace oracle::sim
