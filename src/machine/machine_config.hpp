#pragma once
// Machine-level parameters: communication costs, load measurement, and
// instrumentation. These are the knobs Section 3 of the paper describes as
// ORACLE inputs ("times to be charged for primitive operations", the
// communication/computation ratio, the sampling for the load monitor).

#include <cstdint>

#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace oracle::machine {

/// How a PE's "load" is computed. The paper uses the number of messages
/// waiting to be processed (QueueLength) and, in its conclusions, suggests
/// also counting tasks that await responses ("future commitments").
enum class LoadMeasure : std::uint8_t {
  QueueLength,        // ready-queue length (paper default)
  QueuePlusWaiting,   // + goals awaiting child responses (paper §5 idea)
};

struct MachineConfig {
  /// Base channel occupancy per goal/response message hop.
  sim::Duration hop_latency = 1;
  /// Base channel occupancy per control message (load/proximity/steal
  /// traffic — the paper's "very short message" / piggy-backed load word).
  sim::Duration ctrl_latency = 1;

  /// Optional size-proportional transmission cost: each message occupies
  /// its channel for base latency + size * word_time. Sizes are abstract
  /// words; word_time = 0 (default) reduces to the fixed-latency model.
  sim::Duration word_time = 0;
  std::uint32_t goal_msg_size = 8;      // a goal closure
  std::uint32_t response_msg_size = 2;  // a result value
  std::uint32_t ctrl_msg_size = 1;      // one load/proximity word

  LoadMeasure load_measure = LoadMeasure::QueueLength;

  /// "We assume a communication co-processor to handle the routing and
  /// load-balancing functions" (paper §3.1). When disabled, strategies
  /// charge their periodic work (load broadcasts, gradient cycles) to the
  /// PE itself, delaying user computation — the paper predicts GM suffers
  /// more from this ("more complex code and more frequently").
  bool lb_coprocessor = true;

  /// Piggy-back the sender's load on every goal/response message (the
  /// paper's "optimization" in §2.1).
  bool piggyback_load = true;

  /// PE where the root goal is injected.
  topo::NodeId start_pe = 0;

  /// Master seed for the run (tie-breaking, workload jitter).
  std::uint64_t seed = 1;

  /// Utilization sampling interval for the time-series plots; 0 = off.
  sim::Duration sample_interval = 0;

  /// Also record per-PE utilization frames (ORACLE's load monitor; needed
  /// by the heat-map visualization). Requires sample_interval > 0.
  bool monitor_per_pe = false;

  /// Hard event budget (guards against non-terminating models); 0 = none.
  std::uint64_t max_events = 500'000'000;

  /// Record up to this many machine-level trace events (0 disables).
  std::size_t trace_capacity = 0;

  /// Worker threads for the conservative parallel engine; 1 = the serial
  /// engine (the golden reference path). Execution knob only: like
  /// BatchOptions::jobs it is deliberately NOT part of the job content
  /// hash (exp::job_canonical_string), because for a fixed partition
  /// count the results are identical for any thread count.
  std::uint32_t sim_threads = 1;

  /// Logical PE partitions (scheduler shards) for the parallel engine;
  /// 0 = auto (scaled from machine size). The simulation trajectory is a
  /// function of the partition count, never of sim_threads, so results
  /// are reproducible across hosts with different core counts. Also
  /// excluded from the job content hash, as runs only depend on it when
  /// sim_threads > 1 (parallel results are documented as a distinct,
  /// self-consistent trajectory per partition count).
  std::uint32_t sim_partitions = 0;

  /// Heterogeneity / degradation injection: this percentage of PEs
  /// (selected deterministically from the seed) execute every phase
  /// `slow_factor` times slower. Exercises the schemes' ability to steer
  /// work away from slow parts of the machine. 0 = homogeneous (default).
  std::uint32_t slow_pe_percent = 0;
  std::uint32_t slow_factor = 4;
};

}  // namespace oracle::machine
