#include "machine/pe.hpp"

#include "machine/machine.hpp"
#include "util/error.hpp"

namespace oracle::machine {

PE::PE(Machine& machine, topo::NodeId id)
    : machine_(machine), sched_(&machine.scheduler_for(id)), id_(id) {
  // Per-PE container reserves scale down on huge machines: 64-slot reserves
  // are free at 10^3 PEs but cost gigabytes at 10^6, where per-PE queues
  // stay short anyway (the workload fans out across the machine).
  const bool huge = machine.num_pes() > 65536;
  ready_.reserve(huge ? 4 : 64);
  waiting_.reserve(huge ? 4 : 64);
}

void PE::enqueue_goal(const Message& msg) {
  ORACLE_ASSERT(msg.kind == MsgKind::Goal);
  Activation act;
  act.id = msg.goal_id;
  act.spec = msg.spec;
  act.hops = msg.hops;
  act.parent_id = msg.parent_id;
  act.parent_pe = msg.parent_pe;
  act.is_combine = false;
  ready_.push_back(act);
  ++machine_.hot_.queue_len[id_];
  try_dispatch();
}

std::int64_t PE::load() const noexcept { return machine_.load_of(id_); }

bool PE::executing() const noexcept {
  return machine_.hot_.executing[id_] != 0;
}

std::uint64_t PE::goals_executed() const noexcept {
  return machine_.hot_.goals_executed[id_];
}

std::optional<Message> PE::take_transferable_goal(bool newest) {
  // Only fresh goals can move; combine activations belong to goals that
  // already spawned children here ("it is prohibitively expensive to move a
  // task from a PE to another after it has spawned sub-tasks").
  auto take = [&](std::size_t i) {
    const Activation& act = ready_[i];
    Message msg = Message::goal(act.id, act.spec, act.parent_id, act.parent_pe);
    msg.hops = act.hops;
    ready_.erase_at(i);
    --machine_.hot_.queue_len[id_];
    return msg;
  };
  if (newest) {
    for (std::size_t i = ready_.size(); i-- > 0;)
      if (!ready_[i].is_combine) return take(i);
  } else {
    for (std::size_t i = 0; i < ready_.size(); ++i)
      if (!ready_[i].is_combine) return take(i);
  }
  return std::nullopt;
}

sim::Duration PE::busy_time_through(sim::SimTime now) const noexcept {
  return machine_.hot_.busy_through(id_, now);
}

void PE::try_dispatch() {
  HotState& hot = machine_.hot_;
  if (hot.executing[id_] || ready_.empty()) return;
  current_ = ready_.pop_front();
  --hot.queue_len[id_];

  sim::Duration cost;
  if (current_.is_combine) {
    cost = current_.cost;
  } else {
    // Expansion is cheap and pure; expanding at dispatch keeps queued goals
    // transferable as plain specs.
    const workload::Expansion exp = machine_.expand(current_.spec);
    cost = exp.exec_cost;
  }
  cost *= static_cast<sim::Duration>(machine_.speed_factor(id_));
  // Deferred load-balancing overhead (no co-processor): occupies the PE
  // ahead of the activation it delays.
  cost += pending_overhead_;
  pending_overhead_ = 0;
  hot.executing[id_] = 1;
  hot.exec_start[id_] = sched_->now();
  hot.exec_cost[id_] = cost;
  // The in-flight activation lives in current_, so the completion event
  // captures only `this` and stays inline in the scheduler slot.
  sched_->schedule_after(cost, [this] { finish_current(); });
}

void PE::finish_current() {
  HotState& hot = machine_.hot_;
  ORACLE_ASSERT(hot.executing[id_]);
  const Activation act = current_;
  hot.executing[id_] = 0;
  hot.busy_accum[id_] += hot.exec_cost[id_];

  if (act.is_combine) {
    respond_to_parent(act);
  } else {
    const workload::Expansion exp = machine_.expand(act.spec);
    ++hot.goals_executed[id_];
    machine_.record_goal_executed(id_, act.hops);
    if (exp.is_leaf) {
      respond_to_parent(act);
    } else {
      // Park this goal awaiting responses, then contract out the children.
      WaitingGoal waiting;
      waiting.parent_id = act.parent_id;
      waiting.parent_pe = act.parent_pe;
      waiting.remaining = static_cast<std::uint32_t>(exp.children.size());
      waiting.combine_cost = exp.combine_cost;
      waiting.spec = act.spec;
      waiting.hops = act.hops;
      ORACLE_ASSERT(waiting.remaining > 0);
      const bool inserted = waiting_.emplace(act.id, waiting).second;
      ORACLE_ASSERT_MSG(inserted, "goal executed twice");
      ++hot.waiting[id_];
      for (const workload::GoalSpec& child : exp.children) {
        Message msg =
            Message::goal(machine_.next_goal_id(id_), child, act.id, id_);
        machine_.place_new_goal(id_, std::move(msg));
      }
    }
  }

  try_dispatch();
  if (idle()) machine_.notify_idle(id_);
}

void PE::respond_to_parent(const Activation& act) {
  if (act.parent_id == workload::kInvalidGoal) {
    machine_.on_root_complete(id_);
    return;
  }
  machine_.send_response(id_, act.parent_pe, act.parent_id);
}

void PE::deliver_response(workload::GoalId parent_id) {
  const auto it = waiting_.find(parent_id);
  ORACLE_ASSERT_MSG(it != waiting_.end(), "response for unknown goal");
  ORACLE_ASSERT(it->second.remaining > 0);
  if (--it->second.remaining == 0) {
    Activation act;
    act.id = parent_id;
    act.spec = it->second.spec;
    act.hops = it->second.hops;
    act.parent_id = it->second.parent_id;
    act.parent_pe = it->second.parent_pe;
    act.is_combine = true;
    act.cost = it->second.combine_cost;
    waiting_.erase(it);
    --machine_.hot_.waiting[id_];
    ready_.push_back(act);
    ++machine_.hot_.queue_len[id_];
    try_dispatch();
  }
}

}  // namespace oracle::machine
