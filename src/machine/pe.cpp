#include "machine/pe.hpp"

#include "machine/machine.hpp"
#include "util/error.hpp"

namespace oracle::machine {

PE::PE(Machine& machine, topo::NodeId id) : machine_(machine), id_(id) {
  ready_.reserve(64);
  waiting_.reserve(64);
}

void PE::enqueue_goal(const Message& msg) {
  ORACLE_ASSERT(msg.kind == MsgKind::Goal);
  Activation act;
  act.id = msg.goal_id;
  act.spec = msg.spec;
  act.hops = msg.hops;
  act.parent_id = msg.parent_id;
  act.parent_pe = msg.parent_pe;
  act.is_combine = false;
  ready_.push_back(act);
  try_dispatch();
}

std::int64_t PE::load() const noexcept {
  std::int64_t load = static_cast<std::int64_t>(ready_.size());
  if (machine_.config().load_measure == LoadMeasure::QueuePlusWaiting)
    load += static_cast<std::int64_t>(waiting_.size());
  return load;
}

std::optional<Message> PE::take_transferable_goal(bool newest) {
  // Only fresh goals can move; combine activations belong to goals that
  // already spawned children here ("it is prohibitively expensive to move a
  // task from a PE to another after it has spawned sub-tasks").
  auto take = [&](std::size_t i) {
    const Activation& act = ready_[i];
    Message msg = Message::goal(act.id, act.spec, act.parent_id, act.parent_pe);
    msg.hops = act.hops;
    ready_.erase_at(i);
    return msg;
  };
  if (newest) {
    for (std::size_t i = ready_.size(); i-- > 0;)
      if (!ready_[i].is_combine) return take(i);
  } else {
    for (std::size_t i = 0; i < ready_.size(); ++i)
      if (!ready_[i].is_combine) return take(i);
  }
  return std::nullopt;
}

sim::Duration PE::busy_time_through(sim::SimTime now) const noexcept {
  sim::Duration busy = busy_time_;
  if (executing_) {
    const sim::Duration elapsed = now - exec_started_;
    busy += elapsed < exec_cost_ ? elapsed : exec_cost_;
  }
  return busy;
}

void PE::try_dispatch() {
  if (executing_ || ready_.empty()) return;
  current_ = ready_.pop_front();

  sim::Duration cost;
  if (current_.is_combine) {
    cost = current_.cost;
  } else {
    // Expansion is cheap and pure; expanding at dispatch keeps queued goals
    // transferable as plain specs.
    const workload::Expansion exp = machine_.expand(current_.spec);
    cost = exp.exec_cost;
  }
  cost *= static_cast<sim::Duration>(machine_.speed_factor(id_));
  // Deferred load-balancing overhead (no co-processor): occupies the PE
  // ahead of the activation it delays.
  cost += pending_overhead_;
  pending_overhead_ = 0;
  executing_ = true;
  exec_started_ = machine_.now();
  exec_cost_ = cost;
  // The in-flight activation lives in current_, so the completion event
  // captures only `this` and stays inline in the scheduler slot.
  machine_.scheduler().schedule_after(cost, [this] { finish_current(); });
}

void PE::finish_current() {
  ORACLE_ASSERT(executing_);
  const Activation act = current_;
  executing_ = false;
  busy_time_ += exec_cost_;

  if (act.is_combine) {
    respond_to_parent(act);
  } else {
    const workload::Expansion exp = machine_.expand(act.spec);
    ++goals_executed_;
    machine_.record_goal_executed(id_, act.hops);
    if (exp.is_leaf) {
      respond_to_parent(act);
    } else {
      // Park this goal awaiting responses, then contract out the children.
      WaitingGoal waiting;
      waiting.parent_id = act.parent_id;
      waiting.parent_pe = act.parent_pe;
      waiting.remaining = static_cast<std::uint32_t>(exp.children.size());
      waiting.combine_cost = exp.combine_cost;
      waiting.spec = act.spec;
      waiting.hops = act.hops;
      ORACLE_ASSERT(waiting.remaining > 0);
      const bool inserted = waiting_.emplace(act.id, waiting).second;
      ORACLE_ASSERT_MSG(inserted, "goal executed twice");
      for (const workload::GoalSpec& child : exp.children) {
        Message msg = Message::goal(machine_.next_goal_id(), child, act.id, id_);
        machine_.place_new_goal(id_, std::move(msg));
      }
    }
  }

  try_dispatch();
  if (idle()) machine_.notify_idle(id_);
}

void PE::respond_to_parent(const Activation& act) {
  if (act.parent_id == workload::kInvalidGoal) {
    machine_.on_root_complete();
    return;
  }
  machine_.send_response(id_, act.parent_pe, act.parent_id);
}

void PE::deliver_response(workload::GoalId parent_id) {
  const auto it = waiting_.find(parent_id);
  ORACLE_ASSERT_MSG(it != waiting_.end(), "response for unknown goal");
  ORACLE_ASSERT(it->second.remaining > 0);
  if (--it->second.remaining == 0) {
    Activation act;
    act.id = parent_id;
    act.spec = it->second.spec;
    act.hops = it->second.hops;
    act.parent_id = it->second.parent_id;
    act.parent_pe = it->second.parent_pe;
    act.is_combine = true;
    act.cost = it->second.combine_cost;
    waiting_.erase(it);
    ready_.push_back(act);
    try_dispatch();
  }
}

}  // namespace oracle::machine
