#include "machine/machine.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace oracle::machine {

namespace {
// Initial per-run capacity of the sampled columns (frames and series
// samples). Covers a completion time of 512 sampling intervals without
// reallocation; longer runs double geometrically.
constexpr std::size_t kExpectedFrames = 512;

// Above this many PEs the per-object reserves flip from "free insurance"
// to a memory bill measured in gigabytes; switch to lean sizing and let
// the few hot structures grow on demand.
constexpr std::uint32_t kHugeMachinePEs = 65536;
}  // namespace

std::uint32_t Machine::tuned_ring_ticks(const MachineConfig& config,
                                        const workload::Workload& workload) {
  // The timing wheel should cover the model's typical event horizon: the
  // costliest single message hop and the root goal's phase costs, with 4x
  // headroom so strategy timers (periodic broadcasts, steal backoffs on
  // the same scale) stay on the wheel rather than in the overflow heap.
  const std::uint32_t max_words = std::max(
      {config.goal_msg_size, config.response_msg_size, config.ctrl_msg_size});
  sim::Duration span = std::max(config.hop_latency, config.ctrl_latency) +
                       config.word_time * static_cast<sim::Duration>(max_words);
  const workload::Expansion root = workload.expand(workload.root());
  span = std::max({span, root.exec_cost, root.combine_cost});
  const std::uint64_t target = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(span) * 4, sim::Scheduler::kDefaultRingTicks,
      sim::Scheduler::kMaxRingTicks);
  return sim::Scheduler::normalize_ring_ticks(
      static_cast<std::uint32_t>(target));
}

std::uint32_t Machine::resolve_diameter(const topo::Topology& topo) {
  if (topo.num_nodes() <= topo::kExactRoutingMaxNodes)
    return topo::DistanceMatrix(topo).diameter();
  const std::int64_t hint = topo.diameter_hint();
  ORACLE_REQUIRE(
      hint >= 0,
      strfmt("topology %s has %u nodes (over the %u-node exact-routing cap) "
             "but provides no closed-form diameter",
             topo.name().c_str(), topo.num_nodes(),
             topo::kExactRoutingMaxNodes));
  return static_cast<std::uint32_t>(hint);
}

Machine::Machine(const topo::Topology& topo, const workload::Workload& workload,
                 lb::Strategy& strategy, const MachineConfig& config)
    : topo_(topo),
      workload_(workload),
      strategy_(strategy),
      config_(config),
      sim_(tuned_ring_ticks(config, workload)),
      rng_(config.seed),
      routing_(topo.num_nodes() <= topo::kExactRoutingMaxNodes
                   ? std::make_shared<const topo::RoutingTable>(topo)
                   : nullptr),
      diameter_(resolve_diameter(topo)),
      trace_(config.trace_capacity) {
  init();
}

Machine::Machine(topo::SharedTopology shared,
                 const workload::Workload& workload, lb::Strategy& strategy,
                 const MachineConfig& config)
    : topo_owner_(shared.topology),
      topo_(*topo_owner_),
      workload_(workload),
      strategy_(strategy),
      config_(config),
      sim_(tuned_ring_ticks(config, workload)),
      rng_(config.seed),
      routing_(std::move(shared.routing)),
      diameter_(shared.diameter),
      trace_(config.trace_capacity) {
  ORACLE_REQUIRE(
      routing_ == nullptr || routing_->num_nodes() == topo_.num_nodes(),
      "shared routing table does not match the topology");
  init();
}

Machine::~Machine() = default;

void Machine::init() {
  ORACLE_REQUIRE(config_.start_pe < topo_.num_nodes(),
                 "start_pe outside the topology");
  ORACLE_REQUIRE(config_.hop_latency >= 0 && config_.ctrl_latency >= 0,
                 "latencies must be non-negative");
  if (!routing_ && topo_.num_nodes() > 1) {
    // Fail fast with a clear message instead of asserting mid-run: beyond
    // the exact-routing cap the topology must route in closed form.
    ORACLE_REQUIRE(
        topo_.analytic_next_hop(0, topo_.num_nodes() - 1) !=
            topo::kInvalidNode,
        strfmt("topology %s exceeds the exact-routing cap (%u nodes) and "
               "offers no analytic routing",
               topo_.name().c_str(), topo_.num_nodes()));
  }

  hot_.resize(topo_.num_nodes());

  // Shards (and their schedulers) must exist before PEs: each PE caches a
  // pointer to its owning scheduler at construction.
  if (config_.sim_threads > 1) setup_parallel();

  const bool huge = topo_.num_nodes() > kHugeMachinePEs;
  const std::size_t links = topo_.links().size();
  if (!par_) {
    // Pre-size the event engine so the steady state never reallocates: at
    // most one execution event per PE plus one in-service event per channel
    // server are outstanding, with headroom for strategy timers (periodic
    // broadcasts, steal backoffs) and the sampler. Huge machines get lean
    // sizing (a million idle PEs never have 8 events each in flight).
    sim_.scheduler().reserve(
        huge ? 2 * static_cast<std::size_t>(topo_.num_nodes()) + 64
             : 8 * static_cast<std::size_t>(topo_.num_nodes()) + 2 * links +
                   64);
    msg_pool_.reserve(huge ? kHugeMachinePEs : 2 * links + 64);
  }

  // Pre-size the metrics columns the same way: steady-state sampling then
  // writes into preallocated frames instead of constructing vectors. The
  // frame estimate is a capacity hint — longer runs grow geometrically.
  const bool frames_on = config_.sample_interval > 0 && config_.monitor_per_pe;
  metrics_.reserve(topo_.num_nodes(), frames_on ? kExpectedFrames : 0);
  util_series_ = metrics_.add_series(
      "utilization_percent",
      config_.sample_interval > 0 ? kExpectedFrames : 1);
  goal_tx_ = metrics_.add_counter("goal_transmissions");
  response_tx_ = metrics_.add_counter("response_transmissions");
  control_tx_ = metrics_.add_counter("control_transmissions");

  pes_.reserve(topo_.num_nodes());
  for (topo::NodeId id = 0; id < topo_.num_nodes(); ++id)
    pes_.push_back(std::make_unique<PE>(*this, id));

  if (config_.slow_pe_percent > 0) {
    ORACLE_REQUIRE(config_.slow_pe_percent <= 100,
                   "slow_pe_percent must be in [0, 100]");
    ORACLE_REQUIRE(config_.slow_factor >= 1, "slow_factor must be >= 1");
    // Deterministic selection from a dedicated stream so the same seed
    // degrades the same PEs regardless of strategy behaviour.
    Rng selector = Rng(config_.seed).split(0x5105);
    speed_factor_.assign(topo_.num_nodes(), 1);
    for (auto& f : speed_factor_)
      if (selector.below(100) < config_.slow_pe_percent)
        f = config_.slow_factor;
  }

  channels_.reserve(links);
  const std::size_t channel_slots = huge ? 4 : 32;
  for (const topo::Link& link : topo_.links()) {
    bool cross = false;
    if (par_) {
      const std::uint32_t s0 = shard_of(link.members[0]);
      for (const topo::NodeId m : link.members)
        if (shard_of(m) != s0) {
          cross = true;
          break;
        }
    }
    if (cross) {
      // Members span shards: traffic goes through the analytic cross
      // channels (ShardState::cross_channels) and the window barriers.
      channels_.push_back(nullptr);
      continue;
    }
    sim::Simulation& owner =
        par_ ? par_->shards[shard_of(link.members[0])]->sim : sim_;
    channels_.push_back(&owner.make_resource(
        strfmt("%s-link-%u", link.is_bus() ? "bus" : "p2p", link.id)));
    channels_.back()->reserve(channel_slots);
  }

  strategy_.attach(*this);
}

void Machine::keep_goal(topo::NodeId pe, const Message& msg) {
  ORACLE_ASSERT(msg.kind == MsgKind::Goal);
  trace_.record(now(), TraceEvent::GoalKept, msg.src, pe, msg.goal_id,
                msg.hops);
  pes_[pe]->enqueue_goal(msg);
}

sim::Duration Machine::occupancy_of(const Message& msg) const noexcept {
  sim::Duration latency =
      msg.kind == MsgKind::Control ? config_.ctrl_latency : config_.hop_latency;
  if (config_.word_time > 0) {
    const std::uint32_t size = msg.kind == MsgKind::Goal
                                   ? config_.goal_msg_size
                                   : msg.kind == MsgKind::Response
                                         ? config_.response_msg_size
                                         : config_.ctrl_msg_size;
    latency += config_.word_time * static_cast<sim::Duration>(size);
  }
  return latency;
}

void Machine::count_tx(topo::NodeId from, MsgKind kind) {
  if (par_) {
    // Shard-local counters (the shared recorder would race); flushed into
    // metrics_ after the run.
    ShardState& shard = *par_->shards[shard_of(from)];
    switch (kind) {
      case MsgKind::Goal: ++shard.goal_tx; break;
      case MsgKind::Response: ++shard.response_tx; break;
      case MsgKind::Control: ++shard.control_tx; break;
    }
    return;
  }
  switch (kind) {
    case MsgKind::Goal: metrics_.add(goal_tx_); break;
    case MsgKind::Response: metrics_.add(response_tx_); break;
    case MsgKind::Control: metrics_.add(control_tx_); break;
  }
}

void Machine::transmit(topo::NodeId from, topo::NodeId to, Message msg) {
  // Park the payload in the pool: the completion event carries a 4-byte
  // slot index, keeping the callback inline (and the hop allocation-free).
  // The message stays pooled across every hop of a multi-hop route.
  transmit_pooled(from, to, pool_for(from).put(std::move(msg)));
}

void Machine::transmit_pooled(topo::NodeId from, topo::NodeId to,
                              std::uint32_t slot) {
  Message& msg = pool_for(from).at(slot);
  msg.src = from;
  if (config_.piggyback_load && msg.kind != MsgKind::Control)
    msg.piggyback_load = load_of(from);
  const sim::Duration latency = occupancy_of(msg);
  count_tx(from, msg.kind);
  switch (msg.kind) {
    case MsgKind::Goal:
      trace_.record(now(), TraceEvent::GoalSent, from, to, msg.goal_id,
                    msg.hops);
      break;
    case MsgKind::Response:
      trace_.record(now(), TraceEvent::ResponseSent, from, to, msg.parent_id,
                    0);
      break;
    case MsgKind::Control:
      trace_.record(now(), TraceEvent::ControlSent, from, to,
                    workload::kInvalidGoal, msg.ctrl_tag);
      break;
  }
  const topo::LinkId lid = topo_.link_between(from, to);
  ORACLE_ASSERT_MSG(lid != topo::kInvalidLink,
                    "message between non-adjacent PEs");
  if (par_ && channels_[lid] == nullptr) {
    transmit_over_cross_link(from, to, lid, slot);
    return;
  }
  channels_[lid]->acquire_for(latency,
                              [this, slot, to] { deliver_pooled(slot, to); });
}

void Machine::send_goal(topo::NodeId from, topo::NodeId to, Message msg) {
  ORACLE_ASSERT(msg.kind == MsgKind::Goal);
  ORACLE_ASSERT_MSG(topo_.are_neighbors(from, to),
                    "goals move one neighbor hop at a time");
  transmit(from, to, std::move(msg));
}

void Machine::send_control(topo::NodeId from, topo::NodeId to,
                           std::uint32_t tag, std::int64_t value) {
  transmit(from, to, Message::control(tag, value));
}

void Machine::broadcast_control(topo::NodeId from, std::uint32_t tag,
                                std::int64_t value) {
  // One channel transaction per attached link; a bus delivers to every
  // member in that single transaction.
  for (const topo::LinkId lid : topo_.links_of(from)) {
    Message msg = Message::control(tag, value);
    msg.src = from;
    count_tx(from, MsgKind::Control);
    trace_.record(now(), TraceEvent::ControlSent, from, topo::kInvalidNode,
                  workload::kInvalidGoal, tag);
    if (par_ && channels_[lid] == nullptr) {
      broadcast_over_cross_link(from, lid, std::move(msg));
      continue;
    }
    const sim::Duration occupancy = occupancy_of(msg);
    // [this, slot, lid] is exactly the 16-byte inline budget of
    // Resource::Callback; the sender rides in msg.src.
    const std::uint32_t slot = pool_for(from).put(std::move(msg));
    channels_[lid]->acquire_for(occupancy, [this, slot, lid] {
      const topo::Link& link = topo_.links()[lid];
      const Message delivered = pool_for(link.members[0]).take(slot);
      for (const topo::NodeId member : link.members)
        if (member != delivered.src) deliver(delivered, member);
    });
  }
}

void Machine::send_response(topo::NodeId from, topo::NodeId to,
                            workload::GoalId parent_id) {
  if (from == to) {
    // Local response: parent goal waits on the same PE; no channel involved.
    pes_[to]->deliver_response(parent_id);
    return;
  }
  Message msg = Message::response(parent_id, to);
  transmit(from, next_hop(from, to), std::move(msg));
}

// Copy-based delivery, used by broadcasts (one payload, many receivers).
void Machine::deliver(const Message& msg, topo::NodeId to) {
  if (stopped_at(to)) return;  // run is over; drop in-flight traffic
  if (msg.piggyback_load >= 0 && msg.src != topo::kInvalidNode)
    strategy_.on_neighbor_load(to, msg.src, msg.piggyback_load);

  switch (msg.kind) {
    case MsgKind::Goal:
      strategy_.on_goal_arrived(to, msg);
      return;
    case MsgKind::Response:
      if (msg.dst == to) {
        pes_[to]->deliver_response(msg.parent_id);
      } else {
        transmit(to, next_hop(to, msg.dst), msg);
      }
      return;
    case MsgKind::Control:
      strategy_.on_control(to, msg);
      return;
  }
}

// Pooled unicast delivery: the message is only copied out of the pool at
// its terminal hop (goal arrival); response forwarding re-transmits the
// same slot with zero copies.
void Machine::deliver_pooled(std::uint32_t slot, topo::NodeId to) {
  MessagePool& pool = pool_for(to);
  if (stopped_at(to)) {  // run is over; drop in-flight traffic
    pool.release(slot);
    return;
  }
  Message& msg = pool.at(slot);
  if (msg.piggyback_load >= 0 && msg.src != topo::kInvalidNode)
    strategy_.on_neighbor_load(to, msg.src, msg.piggyback_load);

  switch (msg.kind) {
    case MsgKind::Goal:
      strategy_.on_goal_arrived(to, pool.take(slot));
      return;
    case MsgKind::Response:
      if (msg.dst == to) {
        const workload::GoalId parent_id = msg.parent_id;
        pool.release(slot);
        pes_[to]->deliver_response(parent_id);
      } else {
        transmit_pooled(to, next_hop(to, msg.dst), slot);
      }
      return;
    case MsgKind::Control:
      strategy_.on_control(to, msg);
      pool.release(slot);
      return;
  }
}

void Machine::place_new_goal(topo::NodeId pe, Message msg) {
  trace_.record(now(), TraceEvent::GoalCreated, pe, pe, msg.goal_id, 0);
  strategy_.on_goal_created(pe, std::move(msg));
}

void Machine::record_goal_executed(topo::NodeId pe, std::uint32_t hops) {
  trace_.record(now(), TraceEvent::GoalExecuted, pe, pe,
                workload::kInvalidGoal, hops);
  if (par_)
    par_->shards[shard_of(pe)]->goal_hops.add(hops);
  else
    goal_hops_.add(hops);
}

void Machine::on_root_complete(topo::NodeId pe) {
  if (par_) {
    ShardState& shard = *par_->shards[shard_of(pe)];
    ORACLE_ASSERT(!shard.stopped);
    shard.stopped = true;
    shard.completion_time = shard.sim.now();
    shard.sim.scheduler().request_stop();
    // The main thread notices at the next window barrier; the other
    // shards finish the current window (keeping the trajectory a function
    // of K alone) and then stop.
    par_->completed.store(true, std::memory_order_release);
    return;
  }
  ORACLE_ASSERT(!root_done_);
  root_done_ = true;
  completion_time_ = now();
  trace_.record(now(), TraceEvent::RootCompleted, topo::kInvalidNode,
                topo::kInvalidNode, 1, 0);
  scheduler().request_stop();
}

void Machine::notify_idle(topo::NodeId pe) {
  if (!stopped_at(pe)) strategy_.on_pe_idle(pe);
}

double Machine::busy_fraction_since_last_sample() {
  sim::Duration busy = 0;
  for (std::uint32_t i = 0; i < num_pes(); ++i)
    busy += hot_.busy_through(i, now());
  const sim::Duration delta_busy = busy - last_sample_busy_;
  const sim::Duration delta_t = now() - last_sample_time_;
  last_sample_busy_ = busy;
  last_sample_time_ = now();
  if (delta_t <= 0) return 0.0;
  return static_cast<double>(delta_busy) /
         (static_cast<double>(num_pes()) * static_cast<double>(delta_t));
}

Machine::EngineStats Machine::engine_stats() const {
  EngineStats s;
  if (!par_) {
    s.sched = sim_.scheduler().counters();
    s.msg_pool_reused = msg_pool_.reused();
    return s;
  }
  s.shards = par_->plan.num_shards;
  s.windows = par_->windows;
  for (const auto& shard : par_->shards) {
    const sim::Scheduler::Counters c = shard->sim.scheduler().counters();
    s.sched.executed += c.executed;
    s.sched.cancelled += c.cancelled;
    s.sched.wheel_scheduled += c.wheel_scheduled;
    s.sched.heap_scheduled += c.heap_scheduled;
    s.sched.tick_batches += c.tick_batches;
    s.sched.base_slides += c.base_slides;
    s.window_stalls += shard->window_stalls;
    s.cross_messages += shard->cross_sent;
    s.msg_pool_reused += shard->pool.reused();
  }
  return s;
}

stats::RunResult Machine::run() {
  ORACLE_ASSERT_MSG(!ran_, "Machine::run() called twice");
  ran_ = true;

  strategy_.on_start();

  if (par_) {
    run_parallel();
  } else {
    if (config_.sample_interval > 0) {
      if (config_.monitor_per_pe) last_pe_busy_.assign(num_pes(), 0);
      sim_.add_sampler(
          config_.sample_interval,
          [this](sim::SimTime t) {
            if (t == 0) return;  // nothing elapsed yet
            if (config_.monitor_per_pe) {
              // Per-PE busy fraction over the elapsed interval (uses the
              // pre-update last_sample_time_), written straight into the
              // recorder's preallocated columns — no per-frame vector.
              const double span = static_cast<double>(t - last_sample_time_);
              const stats::MetricsRecorder::FrameRef frame =
                  metrics_.begin_frame(t);
              for (std::uint32_t pe = 0; pe < num_pes(); ++pe) {
                double u = 0.0;
                if (span > 0) {
                  const sim::Duration busy = hot_.busy_through(pe, t);
                  u = static_cast<double>(busy - last_pe_busy_[pe]) / span;
                  last_pe_busy_[pe] = busy;
                }
                frame.utilization[pe] = u;
                frame.queue_depth[pe] = hot_.load(pe, config_.load_measure);
              }
            }
            metrics_.append(util_series_, t,
                            busy_fraction_since_last_sample() * 100.0);
          },
          config_.sample_interval);
    }

    // Inject the root goal: it is *created* on start_pe, so the strategy
    // makes the same placement decision it would for any subgoal. Built
    // inside the event so the capture stays inline-sized.
    scheduler().schedule_at(0, [this] {
      Message root =
          Message::goal(next_goal_id(config_.start_pe), workload_.root(),
                        workload::kInvalidGoal, topo::kInvalidNode);
      place_new_goal(config_.start_pe, std::move(root));
    });

    sim_.run(config_.max_events);
  }
  ORACLE_ASSERT_MSG(root_done_,
                    "simulation drained its event list before the root goal "
                    "completed (model deadlock)");

  // ---- Aggregate --------------------------------------------------------
  const EngineStats engine = engine_stats();

  stats::RunResult r;
  r.topology = topo_.name();
  r.strategy = strategy_.name();
  r.workload = workload_.name();
  r.num_pes = num_pes();
  r.seed = config_.seed;
  r.completion_time = completion_time_;
  r.events_executed = engine.sched.executed;

  sim::Duration total_busy = 0;
  r.pe_utilization.reserve(num_pes());
  r.pe_goals.reserve(num_pes());
  stats::Accumulator util_acc;
  for (std::uint32_t i = 0; i < num_pes(); ++i) {
    const sim::Duration busy = hot_.busy_through(i, completion_time_);
    total_busy += busy;
    const double u =
        completion_time_ > 0
            ? static_cast<double>(busy) / static_cast<double>(completion_time_)
            : 0.0;
    r.pe_utilization.push_back(u);
    util_acc.add(u);
    r.pe_goals.push_back(hot_.goals_executed[i]);
    r.goals_executed += hot_.goals_executed[i];
  }
  r.utilization_cv =
      util_acc.mean() > 0 ? util_acc.stddev() / util_acc.mean() : 0.0;
  r.max_min_utilization_gap = util_acc.max() - util_acc.min();
  r.total_work = total_busy;
  r.avg_utilization =
      completion_time_ > 0
          ? static_cast<double>(total_busy) /
                (static_cast<double>(num_pes()) * static_cast<double>(completion_time_))
          : 0.0;
  r.speedup = r.avg_utilization * static_cast<double>(num_pes());

  r.goal_hops = goal_hops_;
  r.avg_goal_distance = goal_hops_.mean();
  r.goal_transmissions = metrics_.counter_value(goal_tx_);
  r.response_transmissions = metrics_.counter_value(response_tx_);
  r.control_transmissions = metrics_.counter_value(control_tx_);

  double channel_util_sum = 0.0;
  for (topo::LinkId lid = 0; lid < channels_.size(); ++lid) {
    const double u = channels_[lid]
                         ? channels_[lid]->utilization(completion_time_)
                         : cross_channel_utilization(lid, completion_time_);
    channel_util_sum += u;
    r.max_channel_utilization = std::max(r.max_channel_utilization, u);
  }
  r.avg_channel_utilization =
      channels_.empty() ? 0.0
                        : channel_util_sum / static_cast<double>(channels_.size());

  // Hand the whole recorder to the result (trimmed to what was recorded):
  // series and frame views stay valid for as long as the RunResult lives.
  metrics_.compact();
  r.metrics = std::move(metrics_);
  return r;
}

}  // namespace oracle::machine
