#pragma once
// The simulated multiprocessor: topology + channels + PEs + strategy +
// workload, wired into one discrete-event simulation. One Machine = one
// ORACLE run. Machines are single-threaded; sweeps parallelize across
// independent Machine instances.

#include <memory>
#include <vector>

#include "lb/strategy.hpp"
#include "machine/machine_config.hpp"
#include "machine/message.hpp"
#include "machine/pe.hpp"
#include "machine/trace.hpp"
#include "sim/simulation.hpp"
#include "stats/run_result.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace oracle::machine {

/// Recycling slot pool for in-flight Messages. A network hop parks its
/// payload here and the channel-completion event captures only the 4-byte
/// slot index, so a hop's scheduler callback fits inline (sizeof(Message)
/// would blow the 48-byte budget) and steady-state routing allocates
/// nothing: slots are reused as soon as their message is delivered.
///
/// Storage is chunked so message addresses never move: delivery code holds
/// `at()` references across strategy hooks, and a hook may transmit (i.e.
/// put() into this pool) — growth must not invalidate outstanding
/// references.
class MessagePool {
 public:
  void reserve(std::size_t n) {
    while (chunks_.size() * kChunkSize < n)
      chunks_.push_back(std::make_unique<Message[]>(kChunkSize));
    free_.reserve(n);
  }

  std::uint32_t put(Message&& msg) {
    std::uint32_t idx;
    if (free_.empty()) {
      if (count_ == chunks_.size() * kChunkSize)
        chunks_.push_back(std::make_unique<Message[]>(kChunkSize));
      idx = count_++;
    } else {
      idx = free_.back();
      free_.pop_back();
      ++reused_;
    }
    at(idx) = std::move(msg);
    return idx;
  }

  /// Remove and return the message, releasing the slot for reuse.
  Message take(std::uint32_t idx) {
    Message out = std::move(at(idx));
    free_.push_back(idx);
    return out;
  }

  /// In-place access while the message stays pooled: multi-hop routing
  /// updates transport fields here instead of copying the payload out and
  /// back per hop. The reference stays valid across put() calls.
  Message& at(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  /// Release the slot without reading the message (terminal delivery that
  /// already consumed what it needed, or dropped in-flight traffic).
  void release(std::uint32_t idx) { free_.push_back(idx); }

  std::size_t in_flight() const noexcept { return count_ - free_.size(); }

  /// Slots handed out from the free list rather than freshly constructed —
  /// a direct measure of how well pooling avoids allocation in steady state.
  std::uint64_t reused() const noexcept { return reused_; }

 private:
  static constexpr std::uint32_t kChunkShift = 6;  // 64 messages per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  std::vector<std::unique_ptr<Message[]>> chunks_;
  std::uint32_t count_ = 0;  // slots handed out across all chunks
  std::vector<std::uint32_t> free_;
  std::uint64_t reused_ = 0;
};

class Machine {
 public:
  /// The topology, workload and strategy must outlive the Machine. Routing
  /// structures are built privately (one BFS sweep per destination).
  Machine(const topo::Topology& topo, const workload::Workload& workload,
          lb::Strategy& strategy, const MachineConfig& config);

  /// Share pre-built routing structures: every Machine in a batch that
  /// names the same topology spec reuses one immutable topology + routing
  /// table (see topo::make_topology_shared) instead of rebuilding them
  /// per seed. The shared_ptrs keep the bundle alive for this Machine.
  Machine(topo::SharedTopology shared, const workload::Workload& workload,
          lb::Strategy& strategy, const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Inject the root goal at config.start_pe, run to completion, and
  /// aggregate statistics. Callable exactly once.
  stats::RunResult run();

  // --- Services used by PEs and strategies --------------------------------

  sim::Scheduler& scheduler() noexcept { return sim_.scheduler(); }
  sim::SimTime now() const noexcept { return sim_.now(); }
  Rng& rng() noexcept { return rng_; }
  const MachineConfig& config() const noexcept { return config_; }

  const topo::Topology& topology() const noexcept { return topo_; }
  std::uint32_t num_pes() const noexcept { return topo_.num_nodes(); }
  std::uint32_t diameter() const noexcept { return diameter_; }

  PE& pe(topo::NodeId id) { return *pes_.at(id); }
  const PE& pe(topo::NodeId id) const { return *pes_.at(id); }

  /// The strategy-visible load of a PE (per config().load_measure).
  std::int64_t load_of(topo::NodeId id) const { return pes_.at(id)->load(); }

  /// Execution-time multiplier for a PE (1 unless degradation injection is
  /// configured via slow_pe_percent / slow_factor).
  std::uint32_t speed_factor(topo::NodeId id) const {
    return speed_factor_.empty() ? 1u : speed_factor_[id];
  }

  /// Keep a goal on `pe`: enqueue it locally (no communication).
  void keep_goal(topo::NodeId pe, const Message& msg);

  /// Send a goal message one hop to neighbor `to`. The caller (strategy)
  /// must already have accounted the hop in msg.hops.
  void send_goal(topo::NodeId from, topo::NodeId to, Message msg);

  /// Send a control message to neighbor `to` (co-processor path).
  void send_control(topo::NodeId from, topo::NodeId to, std::uint32_t tag,
                    std::int64_t value);

  /// Broadcast a control message to all neighbors. On bus links the bus is
  /// acquired once and all attached PEs hear it (the DLM advantage).
  void broadcast_control(topo::NodeId from, std::uint32_t tag,
                         std::int64_t value);

  /// Expand a goal spec (delegates to the workload).
  workload::Expansion expand(const workload::GoalSpec& spec) const {
    return workload_.expand(spec);
  }

  /// Allocate a fresh goal id.
  workload::GoalId next_goal_id() noexcept { return next_goal_id_++; }

  // --- Hooks called by PEs -------------------------------------------------

  /// A goal's split/leaf phase just ran on `pe` having travelled `hops`.
  void record_goal_executed(topo::NodeId pe, std::uint32_t hops);

  /// A fresh subgoal was created on `pe` (PE split phase). Routes to the
  /// strategy's placement decision.
  void place_new_goal(topo::NodeId pe, Message msg);

  /// Send a response from `from` to the waiting parent goal on `to`
  /// (shortest-path routed; free if from == to).
  void send_response(topo::NodeId from, topo::NodeId to,
                     workload::GoalId parent_id);

  /// The root goal finished: stop the run.
  void on_root_complete();

  /// PE became idle (strategy hook passthrough).
  void notify_idle(topo::NodeId pe);

  /// Machine-level execution trace (empty unless config.trace_capacity > 0).
  const Trace& trace() const noexcept { return trace_; }

  /// Read-only view of the message pool, for profiling counters.
  const MessagePool& message_pool() const noexcept { return msg_pool_; }

 private:
  void deliver(const Message& msg, topo::NodeId to);
  void deliver_pooled(std::uint32_t slot, topo::NodeId to);
  sim::Resource& channel_for(topo::NodeId from, topo::NodeId to);
  void transmit(topo::NodeId from, topo::NodeId to, Message msg);
  void transmit_pooled(topo::NodeId from, topo::NodeId to, std::uint32_t slot);
  double busy_fraction_since_last_sample();
  void init();

  // Keeps a cache-shared topology alive; null when the caller owns the
  // topology (reference-only constructor).
  std::shared_ptr<const topo::Topology> topo_owner_;
  const topo::Topology& topo_;
  const workload::Workload& workload_;
  lb::Strategy& strategy_;
  MachineConfig config_;

  sim::Simulation sim_;
  Rng rng_;
  std::shared_ptr<const topo::RoutingTable> routing_;
  std::uint32_t diameter_;
  MessagePool msg_pool_;

  std::vector<std::unique_ptr<PE>> pes_;
  std::vector<sim::Resource*> channels_;  // one per topology link, owned by sim_
  std::vector<std::uint32_t> speed_factor_;  // empty when homogeneous

  workload::GoalId next_goal_id_ = 1;
  Trace trace_;
  bool root_done_ = false;
  bool ran_ = false;
  sim::SimTime completion_time_ = 0;

  // Statistics. The recorder owns every sampled column (utilization
  // series, per-PE frames) and the transmission counters; it is sized in
  // init() alongside Scheduler::reserve and moved into the RunResult.
  stats::Histogram goal_hops_;
  stats::MetricsRecorder metrics_;
  stats::SeriesId util_series_ = 0;
  stats::CounterId goal_tx_ = 0;
  stats::CounterId response_tx_ = 0;
  stats::CounterId control_tx_ = 0;
  sim::Duration last_sample_busy_ = 0;
  sim::SimTime last_sample_time_ = 0;
  std::vector<sim::Duration> last_pe_busy_;
};

}  // namespace oracle::machine
