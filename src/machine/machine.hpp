#pragma once
// The simulated multiprocessor: topology + channels + PEs + strategy +
// workload, wired into one discrete-event simulation. One Machine = one
// ORACLE run.
//
// Two execution engines share this model:
//   - Serial (sim_threads == 1, the default): one scheduler dispatches
//     every event in (time, seq) order. This is the golden reference —
//     its dispatch order is pinned byte-identical by the regression suite.
//   - Conservative parallel (sim_threads > 1): PEs are partitioned into K
//     contiguous shards (machine/partition.hpp), each with its own
//     scheduler, channel resources, message pool, and RNG stream. Shards
//     advance in lock-stepped windows bounded by the topology lookahead
//     (min cross-shard link latency); cross-shard messages are exchanged
//     at the window barriers. The trajectory is a deterministic function
//     of (config, K) and *independent of the thread count*: shards run
//     identically whether 1 or 16 workers execute them, so RunResult
//     metrics are reproducible across hosts. Parallel runs are a distinct
//     trajectory from serial (control timing differs), documented in
//     README "Million-PE runs".

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lb/strategy.hpp"
#include "machine/machine_config.hpp"
#include "machine/message.hpp"
#include "machine/partition.hpp"
#include "machine/pe.hpp"
#include "machine/trace.hpp"
#include "sim/simulation.hpp"
#include "stats/run_result.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace oracle::machine {

/// Recycling slot pool for in-flight Messages. A network hop parks its
/// payload here and the channel-completion event captures only the 4-byte
/// slot index, so a hop's scheduler callback fits inline (sizeof(Message)
/// would blow the 48-byte budget) and steady-state routing allocates
/// nothing: slots are reused as soon as their message is delivered.
///
/// Storage is chunked so message addresses never move: delivery code holds
/// `at()` references across strategy hooks, and a hook may transmit (i.e.
/// put() into this pool) — growth must not invalidate outstanding
/// references.
class MessagePool {
 public:
  void reserve(std::size_t n) {
    while (chunks_.size() * kChunkSize < n)
      chunks_.push_back(std::make_unique<Message[]>(kChunkSize));
    free_.reserve(n);
  }

  std::uint32_t put(Message&& msg) {
    std::uint32_t idx;
    if (free_.empty()) {
      if (count_ == chunks_.size() * kChunkSize)
        chunks_.push_back(std::make_unique<Message[]>(kChunkSize));
      idx = count_++;
    } else {
      idx = free_.back();
      free_.pop_back();
      ++reused_;
    }
    at(idx) = std::move(msg);
    return idx;
  }

  /// Remove and return the message, releasing the slot for reuse.
  Message take(std::uint32_t idx) {
    Message out = std::move(at(idx));
    free_.push_back(idx);
    return out;
  }

  /// In-place access while the message stays pooled: multi-hop routing
  /// updates transport fields here instead of copying the payload out and
  /// back per hop. The reference stays valid across put() calls.
  Message& at(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  /// Release the slot without reading the message (terminal delivery that
  /// already consumed what it needed, or dropped in-flight traffic).
  void release(std::uint32_t idx) { free_.push_back(idx); }

  std::size_t in_flight() const noexcept { return count_ - free_.size(); }

  /// Slots handed out from the free list rather than freshly constructed —
  /// a direct measure of how well pooling avoids allocation in steady state.
  std::uint64_t reused() const noexcept { return reused_; }

 private:
  static constexpr std::uint32_t kChunkShift = 6;  // 64 messages per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  std::vector<std::unique_ptr<Message[]>> chunks_;
  std::uint32_t count_ = 0;  // slots handed out across all chunks
  std::vector<std::uint32_t> free_;
  std::uint64_t reused_ = 0;
};

/// Structure-of-arrays block of the per-PE fields the dispatch loop, the
/// strategies, and the samplers touch on every event. Owned by Machine;
/// PE objects write through on every queue/execution transition, so load
/// queries (load_of), utilization sampling, and end-of-run aggregation
/// walk dense columns instead of chasing one heap object per PE. In
/// parallel runs each shard writes only its own PEs' rows — the index
/// ranges are disjoint, so the columns are shared without synchronization.
struct HotState {
  std::vector<std::int64_t> queue_len;    // ready-queue length
  std::vector<std::int64_t> waiting;      // goals awaiting child responses
  std::vector<std::uint8_t> executing;    // activation in flight?
  std::vector<sim::SimTime> exec_start;   // in-flight activation start
  std::vector<sim::Duration> exec_cost;   // in-flight activation cost
  std::vector<sim::Duration> busy_accum;  // completed busy time
  std::vector<std::uint64_t> goals_executed;

  void resize(std::size_t n) {
    queue_len.assign(n, 0);
    waiting.assign(n, 0);
    executing.assign(n, 0);
    exec_start.assign(n, 0);
    exec_cost.assign(n, 0);
    busy_accum.assign(n, 0);
    goals_executed.assign(n, 0);
  }

  /// Busy time of PE `i` through `t`, counting the clamped prefix of any
  /// in-flight activation. Clamped below as well: in a parallel run other
  /// shards may have advanced past the root completion time, so `t` can
  /// precede an in-flight activation's start.
  sim::Duration busy_through(std::size_t i, sim::SimTime t) const noexcept {
    sim::Duration busy = busy_accum[i];
    if (executing[i]) {
      const sim::Duration elapsed = t - exec_start[i];
      if (elapsed > 0)
        busy += elapsed < exec_cost[i] ? elapsed : exec_cost[i];
    }
    return busy;
  }

  std::int64_t load(std::size_t i, LoadMeasure measure) const noexcept {
    std::int64_t load = queue_len[i];
    if (measure == LoadMeasure::QueuePlusWaiting) load += waiting[i];
    return load;
  }
};

/// A message crossing a shard boundary, exchanged at window barriers.
/// `order` is the sender shard's running send counter: sorting by
/// (deliver, src_shard, order) makes the injection sequence — and thus
/// the receiver's (time, seq) dispatch order — deterministic.
struct CrossMsg {
  sim::SimTime deliver = 0;
  topo::NodeId to = topo::kInvalidNode;
  std::uint32_t src_shard = 0;
  std::uint64_t order = 0;
  Message payload;
};

/// Analytic stand-in for a sim::Resource on a link whose members span
/// shards: a capacity-1 FIFO server's k-th departure is
/// max(arrival_k, prev_departure) + service_k, which this tracks in two
/// words. Each *sender* shard keeps its own occupancy per cross link (a
/// shared Resource would race); the one modeling deviation — opposite
/// directions of a cross link don't contend — is documented in README.
struct CrossChannel {
  sim::SimTime busy_until = 0;
  sim::Duration busy_sum = 0;

  sim::SimTime occupy(sim::SimTime now, sim::Duration service) noexcept {
    const sim::SimTime start = now > busy_until ? now : busy_until;
    busy_until = start + service;
    busy_sum += service;
    return busy_until;
  }
};

/// Everything one scheduler shard owns. No member is ever touched by two
/// threads: a shard is executed by exactly one worker per window, and the
/// main thread reads it only between windows (the barrier's mutex orders
/// the handoff).
struct ShardState {
  explicit ShardState(std::uint32_t ring_ticks) : sim(ring_ticks) {}

  sim::Simulation sim;  // own scheduler + channel resources
  MessagePool pool;     // own in-flight slots (indices are shard-local)
  Rng rng{1};           // per-shard stream; deterministic given K
  bool stopped = false; // root finished here; skip further windows
  sim::SimTime completion_time = 0;

  std::uint64_t goal_counter = 0;  // goal ids: counter * K + shard + 1
  std::uint64_t send_order = 0;    // CrossMsg sequencing
  std::uint64_t goal_tx = 0, response_tx = 0, control_tx = 0;
  std::uint64_t cross_sent = 0;    // messages pushed to outboxes
  std::uint64_t window_stalls = 0; // windows in which this shard ran 0 events
  stats::Histogram goal_hops;

  /// Sender-side occupancy per cross-shard link.
  std::unordered_map<topo::LinkId, CrossChannel> cross_channels;
  /// Outgoing cross messages of the current window, per destination shard.
  std::vector<std::vector<CrossMsg>> outbox;
  /// Messages addressed here whose delivery time is still beyond the
  /// window horizon, sorted by (deliver, src_shard, order).
  std::vector<CrossMsg> holdback;
};

/// Shared coordination state of a parallel run: the shards, the lookahead,
/// and the worker-release barrier. Allocated only when sim_threads > 1.
struct ParallelState {
  PartitionPlan plan;
  Lookahead lookahead;
  std::vector<std::unique_ptr<ShardState>> shards;
  std::uint32_t num_workers = 1;

  // Window barrier (condition variables, not spinning: correctness must
  // not depend on having a core per worker). Workers wait for `epoch` to
  // advance, run their shards to `window_until`, then decrement `pending`.
  std::mutex mutex;
  std::condition_variable work_cv, done_cv;
  std::uint64_t epoch = 0;
  std::uint32_t pending = 0;
  sim::SimTime window_until = 0;
  bool shutdown = false;
  std::vector<std::exception_ptr> errors;
  std::vector<std::thread> workers;

  // Set by the root shard's worker when the root goal completes; the main
  // thread reads it at barriers.
  std::atomic<bool> completed{false};

  // Barrier-side telemetry (main thread only).
  std::uint64_t windows = 0;
  std::uint64_t cross_delivered = 0;
};

class Machine {
 public:
  /// The topology, workload and strategy must outlive the Machine. Exact
  /// routing structures (one BFS sweep per destination) are built
  /// privately up to topo::kExactRoutingMaxNodes; beyond that the
  /// topology must provide analytic_next_hop / diameter_hint.
  Machine(const topo::Topology& topo, const workload::Workload& workload,
          lb::Strategy& strategy, const MachineConfig& config);

  /// Share pre-built routing structures: every Machine in a batch that
  /// names the same topology spec reuses one immutable topology + routing
  /// table (see topo::make_topology_shared) instead of rebuilding them
  /// per seed. The shared_ptrs keep the bundle alive for this Machine.
  Machine(topo::SharedTopology shared, const workload::Workload& workload,
          lb::Strategy& strategy, const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  /// Inject the root goal at config.start_pe, run to completion, and
  /// aggregate statistics. Callable exactly once.
  stats::RunResult run();

  // --- Services used by PEs and strategies --------------------------------

  sim::Scheduler& scheduler() noexcept { return sim_.scheduler(); }
  sim::SimTime now() const noexcept { return sim_.now(); }
  Rng& rng() noexcept { return rng_; }
  const MachineConfig& config() const noexcept { return config_; }

  /// The scheduler that owns `pe`'s events: the global one in a serial
  /// run, pe's shard scheduler in a parallel run. Strategies must route
  /// their timers through this (not scheduler()) to stay engine-agnostic.
  sim::Scheduler& scheduler_for(topo::NodeId pe) noexcept {
    return par_ ? par_->shards[shard_of(pe)]->sim.scheduler()
                : sim_.scheduler();
  }

  /// Simulated time at `pe` (its shard's clock). In a parallel run clocks
  /// advance per shard within a window; per-PE decisions (cooldowns,
  /// backoffs) must use this, never the global now().
  sim::SimTime now_of(topo::NodeId pe) const noexcept {
    return par_ ? par_->shards[shard_of(pe)]->sim.now() : sim_.now();
  }

  /// The RNG stream for decisions made at `pe`. Serial runs share one
  /// stream (the golden trajectory); parallel runs use one stream per
  /// shard, so draws depend only on the shard's deterministic event order.
  Rng& rng_for(topo::NodeId pe) noexcept {
    return par_ ? par_->shards[shard_of(pe)]->rng : rng_;
  }

  const topo::Topology& topology() const noexcept { return topo_; }
  std::uint32_t num_pes() const noexcept { return topo_.num_nodes(); }
  std::uint32_t diameter() const noexcept { return diameter_; }

  PE& pe(topo::NodeId id) { return *pes_.at(id); }
  const PE& pe(topo::NodeId id) const { return *pes_.at(id); }

  /// The strategy-visible load of a PE (per config().load_measure), read
  /// straight from the SoA column.
  std::int64_t load_of(topo::NodeId id) const {
    return hot_.load(id, config_.load_measure);
  }

  /// Execution-time multiplier for a PE (1 unless degradation injection is
  /// configured via slow_pe_percent / slow_factor).
  std::uint32_t speed_factor(topo::NodeId id) const {
    return speed_factor_.empty() ? 1u : speed_factor_[id];
  }

  /// Keep a goal on `pe`: enqueue it locally (no communication).
  void keep_goal(topo::NodeId pe, const Message& msg);

  /// Send a goal message one hop to neighbor `to`. The caller (strategy)
  /// must already have accounted the hop in msg.hops.
  void send_goal(topo::NodeId from, topo::NodeId to, Message msg);

  /// Send a control message to neighbor `to` (co-processor path).
  void send_control(topo::NodeId from, topo::NodeId to, std::uint32_t tag,
                    std::int64_t value);

  /// Broadcast a control message to all neighbors. On bus links the bus is
  /// acquired once and all attached PEs hear it (the DLM advantage).
  void broadcast_control(topo::NodeId from, std::uint32_t tag,
                         std::int64_t value);

  /// Expand a goal spec (delegates to the workload).
  workload::Expansion expand(const workload::GoalSpec& spec) const {
    return workload_.expand(spec);
  }

  /// Allocate a fresh goal id for a goal created on `pe`. Serial ids are
  /// sequential; parallel ids interleave per shard (counter * K + shard
  /// + 1) so they are unique and independent of worker count.
  workload::GoalId next_goal_id(topo::NodeId pe) noexcept {
    if (!par_) return next_goal_id_++;
    ShardState& shard = *par_->shards[shard_of(pe)];
    return shard.goal_counter++ * par_->plan.num_shards + shard_of(pe) + 1;
  }

  // --- Hooks called by PEs -------------------------------------------------

  /// A goal's split/leaf phase just ran on `pe` having travelled `hops`.
  void record_goal_executed(topo::NodeId pe, std::uint32_t hops);

  /// A fresh subgoal was created on `pe` (PE split phase). Routes to the
  /// strategy's placement decision.
  void place_new_goal(topo::NodeId pe, Message msg);

  /// Send a response from `from` to the waiting parent goal on `to`
  /// (shortest-path routed; free if from == to).
  void send_response(topo::NodeId from, topo::NodeId to,
                     workload::GoalId parent_id);

  /// The root goal finished on `pe`: stop the run (pe's shard, in a
  /// parallel run; the other shards stop at the next window barrier).
  void on_root_complete(topo::NodeId pe);

  /// PE became idle (strategy hook passthrough).
  void notify_idle(topo::NodeId pe);

  /// Machine-level execution trace (empty unless config.trace_capacity > 0).
  const Trace& trace() const noexcept { return trace_; }

  /// Read-only view of the message pool, for profiling counters.
  const MessagePool& message_pool() const noexcept { return msg_pool_; }

  /// Engine telemetry aggregated across shards, for obs::Tracer sampling
  /// after a run. Serial runs report the single scheduler with zero
  /// windows/cross traffic.
  struct EngineStats {
    sim::Scheduler::Counters sched;       // summed over shards
    std::uint64_t shards = 1;
    std::uint64_t windows = 0;            // horizon barriers executed
    std::uint64_t window_stalls = 0;      // (shard, window) pairs with 0 events
    std::uint64_t cross_messages = 0;     // messages crossing shard edges
    std::uint64_t msg_pool_reused = 0;    // summed over shard pools
  };
  EngineStats engine_stats() const;

 private:
  friend class PE;

  static std::uint32_t tuned_ring_ticks(const MachineConfig& config,
                                        const workload::Workload& workload);
  static std::uint32_t resolve_diameter(const topo::Topology& topo);

  std::uint32_t shard_of(topo::NodeId pe) const noexcept {
    return par_->plan.shard_of(pe);
  }
  topo::NodeId next_hop(topo::NodeId from, topo::NodeId to) const {
    if (routing_) return routing_->next_hop(from, to);
    const topo::NodeId hop = topo_.analytic_next_hop(from, to);
    ORACLE_ASSERT_MSG(hop != topo::kInvalidNode,
                      "topology offers neither exact nor analytic routing");
    return hop;
  }
  MessagePool& pool_for(topo::NodeId pe) noexcept {
    return par_ ? par_->shards[shard_of(pe)]->pool : msg_pool_;
  }
  /// True when delivery at `pe` should be dropped because its shard's run
  /// is over (root completion). Reads only shard-local state in parallel.
  bool stopped_at(topo::NodeId pe) const noexcept {
    return par_ ? par_->shards[shard_of(pe)]->stopped : root_done_;
  }

  void deliver(const Message& msg, topo::NodeId to);
  void deliver_pooled(std::uint32_t slot, topo::NodeId to);
  void transmit(topo::NodeId from, topo::NodeId to, Message msg);
  void transmit_pooled(topo::NodeId from, topo::NodeId to, std::uint32_t slot);
  void count_tx(topo::NodeId from, MsgKind kind);
  sim::Duration occupancy_of(const Message& msg) const noexcept;
  double busy_fraction_since_last_sample();
  void init();

  // Parallel engine (machine_parallel.cpp).
  void setup_parallel();
  void transmit_over_cross_link(topo::NodeId from, topo::NodeId to,
                                topo::LinkId lid, std::uint32_t slot);
  void broadcast_over_cross_link(topo::NodeId from, topo::LinkId lid,
                                 Message msg);
  void run_parallel();
  void worker_loop(std::uint32_t worker);
  double cross_channel_utilization(topo::LinkId lid,
                                   sim::SimTime horizon) const;

  // Keeps a cache-shared topology alive; null when the caller owns the
  // topology (reference-only constructor).
  std::shared_ptr<const topo::Topology> topo_owner_;
  const topo::Topology& topo_;
  const workload::Workload& workload_;
  lb::Strategy& strategy_;
  MachineConfig config_;

  sim::Simulation sim_;
  Rng rng_;
  std::shared_ptr<const topo::RoutingTable> routing_;  // null beyond the
                                                       // exact-routing cap
  std::uint32_t diameter_;
  MessagePool msg_pool_;
  std::unique_ptr<ParallelState> par_;  // null in serial runs

  std::vector<std::unique_ptr<PE>> pes_;
  HotState hot_;
  // One per topology link; owned by sim_ (serial) or a shard sim
  // (parallel, links internal to the shard). Null for links whose members
  // span shards — those route through ShardState::cross_channels.
  std::vector<sim::Resource*> channels_;
  std::vector<std::uint32_t> speed_factor_;  // empty when homogeneous

  workload::GoalId next_goal_id_ = 1;
  Trace trace_;
  bool root_done_ = false;
  bool ran_ = false;
  sim::SimTime completion_time_ = 0;

  // Statistics. The recorder owns every sampled column (utilization
  // series, per-PE frames) and the transmission counters; it is sized in
  // init() alongside Scheduler::reserve and moved into the RunResult.
  stats::Histogram goal_hops_;
  stats::MetricsRecorder metrics_;
  stats::SeriesId util_series_ = 0;
  stats::CounterId goal_tx_ = 0;
  stats::CounterId response_tx_ = 0;
  stats::CounterId control_tx_ = 0;
  sim::Duration last_sample_busy_ = 0;
  sim::SimTime last_sample_time_ = 0;
  std::vector<sim::Duration> last_pe_busy_;
};

}  // namespace oracle::machine
