#pragma once
// Execution trace: a bounded log of machine-level events (goal placement,
// transmissions, keeps, responses, control traffic). ORACLE provided
// "form and content of the output information required" as an input knob;
// this is our equivalent, mainly used to debug strategies and in tests to
// assert on fine-grained behaviour.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "topo/topology.hpp"
#include "workload/goal.hpp"

namespace oracle::machine {

enum class TraceEvent : std::uint8_t {
  GoalCreated,    // new subgoal handed to the strategy
  GoalSent,       // goal transmitted one hop
  GoalKept,       // goal accepted for execution at a PE
  GoalExecuted,   // split/leaf phase ran
  ResponseSent,   // response transmitted one hop
  ControlSent,    // control message transmitted
  RootCompleted,  // run finished
};

const char* trace_event_name(TraceEvent e);

struct TraceRecord {
  sim::SimTime time = 0;
  TraceEvent event = TraceEvent::GoalCreated;
  topo::NodeId from = topo::kInvalidNode;
  topo::NodeId to = topo::kInvalidNode;
  workload::GoalId goal = workload::kInvalidGoal;
  std::int64_t detail = 0;  // hops for goals, tag for control

  std::string to_string() const;
};

/// Bounded in-memory trace. Recording stops silently at the cap so traces
/// can stay on for large runs without exhausting memory.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 0) : capacity_(capacity) {}

  bool enabled() const noexcept { return capacity_ > 0; }
  bool full() const noexcept { return records_.size() >= capacity_; }
  std::size_t size() const noexcept { return records_.size(); }

  void record(sim::SimTime t, TraceEvent e, topo::NodeId from, topo::NodeId to,
              workload::GoalId goal, std::int64_t detail);

  const std::vector<TraceRecord>& records() const noexcept { return records_; }

  /// Records matching one event kind.
  std::vector<TraceRecord> filter(TraceEvent e) const;

  /// Multi-line rendering (one record per line).
  std::string to_string() const;

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
};

}  // namespace oracle::machine
