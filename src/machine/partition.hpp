#pragma once
// PE partitioning and lookahead for the conservative parallel engine.
//
// A parallel run splits the machine's PEs into K contiguous blocks
// ("shards"), each with its own scheduler. Contiguity is the topology
// awareness: every generator in src/topo/ numbers nodes so that nearby ids
// are nearby in the network (row-major grids, Gray-adjacent hypercube
// labels, heap-ordered trees), so an id-contiguous block is a compact
// region and most links stay internal to one shard.
//
// The classic conservative-DES bound (Chandy/Misra/Bryant lineage) says a
// shard may safely execute all events strictly before
//     min(every shard's next event time) + lookahead,
// where lookahead is the minimum latency any cross-shard interaction needs
// to traverse a link: an event at time t in one shard can only affect
// another shard at or after t + lookahead. ORACLE's machine model gives
// this to us exactly: every cross-PE interaction is a Message on a Link,
// and its channel occupancy is a closed form of the config's latency knobs
// (hop/ctrl base latency + word_time * message size). The minimum over the
// cross-shard links is computed once, before the run.

#include <cstdint>
#include <vector>

#include "machine/machine_config.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace oracle::machine {

/// Contiguous near-equal partition of PEs [0, n) into K shards.
/// shard_of is a pure closed form (no per-PE table): PE p belongs to shard
/// floor(p*K/n), which yields blocks whose sizes differ by at most one.
struct PartitionPlan {
  std::uint32_t num_pes = 0;
  std::uint32_t num_shards = 1;

  std::uint32_t shard_of(topo::NodeId pe) const noexcept {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(pe) * num_shards / num_pes);
  }
  /// First PE of shard `s` (== one past the last PE of shard s-1).
  topo::NodeId begin(std::uint32_t s) const noexcept {
    return static_cast<topo::NodeId>(
        (static_cast<std::uint64_t>(s) * num_pes + num_shards - 1) /
        num_shards);
  }
  topo::NodeId end(std::uint32_t s) const noexcept { return begin(s + 1); }
};

/// Auto shard count: one shard per ~4096 PEs, capped at 16 — small
/// machines gain nothing from sharding, and beyond ~16 shards the barrier
/// cost outgrows the win on commodity core counts.
std::uint32_t auto_num_shards(std::uint32_t num_pes) noexcept;

/// Build a plan with `requested` shards (0 = auto), clamped to [1, n].
PartitionPlan make_partition_plan(std::uint32_t num_pes,
                                  std::uint32_t requested);

/// The cheapest message the machine model can put on a channel: the
/// cross-shard lookahead bound. Control words and goal/response payloads
/// have different closed forms; the min over message kinds is what bounds
/// how soon an event in one shard can be observed in another.
sim::Duration link_min_latency(const MachineConfig& config) noexcept;

/// One ordered pair of shards joined by at least one link, with the
/// minimum latency over the links joining them. (Latencies are uniform
/// per config today, so min_latency is the same for every edge; the
/// per-edge form is kept so per-link latencies slot in later.)
struct PartitionEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  sim::Duration min_latency = sim::kTimeInfinity;
};

/// Cross-shard structure of a partitioned topology.
struct Lookahead {
  /// min over cross-shard edges; kTimeInfinity when K == 1 (or no link
  /// crosses a shard boundary), i.e. shards never need to synchronize.
  sim::Duration horizon = sim::kTimeInfinity;
  /// Every ordered shard pair sharing a link, sorted by (from, to).
  std::vector<PartitionEdge> edges;
};

/// Scan the topology's links once and derive the conservative lookahead.
/// Rejects (ConfigError) configurations whose cheapest cross-shard message
/// has zero latency: a zero-lookahead model cannot make parallel progress.
Lookahead compute_lookahead(const topo::Topology& topo,
                            const PartitionPlan& plan,
                            const MachineConfig& config);

}  // namespace oracle::machine
