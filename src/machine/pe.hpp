#pragma once
// A processing element: one user-program execution engine plus its ready
// queue of goal activations. ORACLE models "one process for each user
// process running on a PE"; here the PE is an event-driven actor that
// executes one activation at a time, charging simulated time per phase.
//
// The scalar fields the dispatch loop and the strategies poll on every
// event — queue lengths, execution state, busy time, goal counts — live in
// the Machine-owned SoA block (machine::HotState), written through by the
// PE on every transition. The PE object itself keeps only the containers
// (ready queue, waiting map) and the in-flight activation.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "machine/message.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"
#include "util/ring_queue.hpp"
#include "workload/goal.hpp"

namespace oracle::machine {

class Machine;

/// One entry in a PE's ready queue: either a fresh goal about to run its
/// split/leaf phase, or a resumed goal running its combine phase.
struct Activation {
  workload::GoalId id = workload::kInvalidGoal;
  workload::GoalSpec spec;
  std::uint32_t hops = 0;                            // distance travelled
  workload::GoalId parent_id = workload::kInvalidGoal;
  topo::NodeId parent_pe = topo::kInvalidNode;
  bool is_combine = false;
  sim::Duration cost = 0;  // combine phase cost (fresh goals expand lazily)
};

class PE {
 public:
  PE(Machine& machine, topo::NodeId id);

  PE(const PE&) = delete;
  PE& operator=(const PE&) = delete;

  topo::NodeId id() const noexcept { return id_; }

  /// Add a fresh goal (from a kept goal message) to the ready queue.
  void enqueue_goal(const Message& msg);

  /// A response for waiting goal `parent_id` arrived (or was produced
  /// locally); enqueue its combine phase when all children have answered.
  void deliver_response(workload::GoalId parent_id);

  /// The strategy's view of this PE's load (per MachineConfig::load_measure).
  std::int64_t load() const noexcept;

  /// Ready-queue length (fresh + combine activations).
  std::size_t queue_length() const noexcept { return ready_.size(); }

  /// Goals parked here awaiting child responses (future commitments).
  std::size_t waiting_count() const noexcept { return waiting_.size(); }

  bool executing() const noexcept;
  bool idle() const noexcept { return !executing() && ready_.empty(); }

  /// Remove a transferable goal (a *fresh* goal that has not started
  /// executing) from the ready queue so the strategy can send it elsewhere
  /// (GM's abundant-state send; ACWN redistribution; work stealing).
  /// `newest` picks the most recently enqueued such goal, else the oldest.
  /// Returns std::nullopt if no fresh goal is queued.
  std::optional<Message> take_transferable_goal(bool newest);

  /// Busy time accumulated so far, including the in-flight activation.
  sim::Duration busy_time_through(sim::SimTime now) const noexcept;

  /// Charge load-balancing overhead to this PE: the next dispatched
  /// activation is delayed by the accumulated amount (used when the
  /// machine has no communication co-processor, MachineConfig::lb_coprocessor
  /// == false). Overhead counts as occupancy, not useful work.
  void add_overhead(sim::Duration d) noexcept {
    pending_overhead_ += d;
  }

  sim::Duration pending_overhead() const noexcept { return pending_overhead_; }

  /// Goals whose split/leaf phase ran on this PE.
  std::uint64_t goals_executed() const noexcept;

 private:
  friend class Machine;

  void try_dispatch();
  void finish_current();
  void respond_to_parent(const Activation& act);

  struct WaitingGoal {
    workload::GoalId parent_id;  // this goal's own parent
    topo::NodeId parent_pe;
    std::uint32_t remaining;     // outstanding child responses
    sim::Duration combine_cost;
    workload::GoalSpec spec;
    std::uint32_t hops;
  };

  Machine& machine_;
  // This PE's event engine: the global scheduler in a serial run, the
  // owning shard's in a parallel run. Cached at construction so the
  // dispatch hot path pays no shard lookup.
  sim::Scheduler* sched_;
  topo::NodeId id_;
  // Pre-reserved ring buffer: the dispatch hot loop pushes/pops activations
  // with zero allocation (reserve sizes adapt to machine scale; see ctor).
  util::RingQueue<Activation> ready_;
  std::unordered_map<workload::GoalId, WaitingGoal> waiting_;
  // The activation being executed (valid while executing): storing it here
  // keeps the completion event's capture to just `this`.
  Activation current_;
  sim::Duration pending_overhead_ = 0;
};

}  // namespace oracle::machine
