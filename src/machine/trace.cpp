#include "machine/trace.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace oracle::machine {

const char* trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::GoalCreated: return "goal-created";
    case TraceEvent::GoalSent: return "goal-sent";
    case TraceEvent::GoalKept: return "goal-kept";
    case TraceEvent::GoalExecuted: return "goal-executed";
    case TraceEvent::ResponseSent: return "response-sent";
    case TraceEvent::ControlSent: return "control-sent";
    case TraceEvent::RootCompleted: return "root-completed";
  }
  return "?";
}

std::string TraceRecord::to_string() const {
  return strfmt("t=%lld %-14s from=%d to=%d goal=%llu detail=%lld",
                static_cast<long long>(time), trace_event_name(event),
                from == topo::kInvalidNode ? -1 : static_cast<int>(from),
                to == topo::kInvalidNode ? -1 : static_cast<int>(to),
                static_cast<unsigned long long>(goal),
                static_cast<long long>(detail));
}

void Trace::record(sim::SimTime t, TraceEvent e, topo::NodeId from,
                   topo::NodeId to, workload::GoalId goal,
                   std::int64_t detail) {
  if (!enabled() || full()) return;
  records_.push_back(TraceRecord{t, e, from, to, goal, detail});
}

std::vector<TraceRecord> Trace::filter(TraceEvent e) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_)
    if (r.event == e) out.push_back(r);
  return out;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const auto& r : records_) os << r.to_string() << '\n';
  return os.str();
}

}  // namespace oracle::machine
