// Conservative parallel engine (sim_threads > 1): shard setup, the
// window/barrier loop, cross-shard message exchange, and the worker pool.
// The serial engine and everything shared with it live in machine.cpp.
//
// Correctness sketch. Shards only interact through messages on links whose
// members span shards, and every such message occupies its (analytic)
// channel for at least L = lookahead.horizon ticks. If every shard has
// executed all events strictly before some time W, then any message a
// shard sends while executing the window departs at or after
// send_time + L >= t_min + L, where t_min is the minimum next-event time
// across shards at the window start. Choosing W = t_min + L therefore
// guarantees no event executed inside the window can produce a
// cross-shard delivery inside the same window: deliveries land in the
// receivers' holdback queues at the barrier and are injected before the
// next window opens. The trajectory is a pure function of (config, K):
// workers only decide *which thread* runs a shard, never the order of
// events within it, so any thread count yields identical results.

#include <algorithm>
#include <iterator>

#include "machine/machine.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace oracle::machine {

namespace {
// Mirrors kHugeMachinePEs in machine.cpp: lean per-shard reserves above it.
constexpr std::uint32_t kHugeMachinePEs = 65536;

bool holdback_before(const CrossMsg& a, const CrossMsg& b) {
  if (a.deliver != b.deliver) return a.deliver < b.deliver;
  if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
  return a.order < b.order;
}
}  // namespace

void Machine::setup_parallel() {
  ORACLE_REQUIRE(config_.sample_interval == 0,
                 "the parallel engine does not support utilization sampling "
                 "(sample_interval > 0); run with --sim-threads 1");
  ORACLE_REQUIRE(config_.trace_capacity == 0,
                 "the parallel engine does not support machine traces "
                 "(trace_capacity > 0); run with --sim-threads 1");

  par_ = std::make_unique<ParallelState>();
  par_->plan = make_partition_plan(topo_.num_nodes(), config_.sim_partitions);
  par_->lookahead = compute_lookahead(topo_, par_->plan, config_);
  par_->num_workers = std::min(config_.sim_threads, par_->plan.num_shards);

  const std::uint32_t K = par_->plan.num_shards;
  const std::uint32_t ring = sim_.scheduler().ring_ticks();
  const bool huge = topo_.num_nodes() > kHugeMachinePEs;
  par_->shards.reserve(K);
  for (std::uint32_t s = 0; s < K; ++s) {
    auto shard = std::make_unique<ShardState>(ring);
    const std::size_t size = par_->plan.end(s) - par_->plan.begin(s);
    shard->sim.scheduler().reserve(huge ? 2 * size + 64 : 8 * size + 64);
    shard->pool.reserve(huge ? 16384 : 1024);
    // One deterministic stream per shard: shard execution is sequential,
    // so draws depend only on the shard's event order — a function of K.
    shard->rng = Rng(config_.seed).split(0x9E3700u + s);
    shard->outbox.resize(K);
    par_->shards.push_back(std::move(shard));
  }
}

void Machine::transmit_over_cross_link(topo::NodeId from, topo::NodeId to,
                                       topo::LinkId lid, std::uint32_t slot) {
  ShardState& src = *par_->shards[shard_of(from)];
  Message payload = src.pool.take(slot);
  const sim::Duration service = occupancy_of(payload);
  // Analytic capacity-1 FIFO per (sender shard, link): the k-th message
  // departs at max(arrival, previous departure) + service, which is when
  // the serial Resource would complete it.
  const sim::SimTime depart =
      src.cross_channels[lid].occupy(src.sim.now(), service);
  const std::uint32_t dst_shard = shard_of(to);
  if (dst_shard == shard_of(from)) {
    // A link can span shards while this particular (from, to) pair stays
    // inside one (e.g. two members of a bus that also reaches another
    // shard): deliver locally at the analytic departure time.
    const std::uint32_t new_slot = src.pool.put(std::move(payload));
    src.sim.scheduler().schedule_at(
        depart, [this, new_slot, to] { deliver_pooled(new_slot, to); });
    return;
  }
  ++src.cross_sent;
  src.outbox[dst_shard].push_back(CrossMsg{depart, to, shard_of(from),
                                           src.send_order++,
                                           std::move(payload)});
}

void Machine::broadcast_over_cross_link(topo::NodeId from, topo::LinkId lid,
                                        Message msg) {
  ShardState& src = *par_->shards[shard_of(from)];
  const std::uint32_t src_shard = shard_of(from);
  const sim::Duration service = occupancy_of(msg);
  const sim::SimTime depart =
      src.cross_channels[lid].occupy(src.sim.now(), service);
  // One bus transaction, every member hears it: local members get a
  // pooled delivery event, remote members a CrossMsg copy each.
  for (const topo::NodeId member : topo_.links()[lid].members) {
    if (member == from) continue;
    if (shard_of(member) == src_shard) {
      const std::uint32_t slot = src.pool.put(Message(msg));
      src.sim.scheduler().schedule_at(
          depart, [this, slot, member] { deliver_pooled(slot, member); });
    } else {
      ++src.cross_sent;
      src.outbox[shard_of(member)].push_back(CrossMsg{
          depart, member, src_shard, src.send_order++, Message(msg)});
    }
  }
}

double Machine::cross_channel_utilization(topo::LinkId lid,
                                          sim::SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  sim::Duration busy = 0;
  for (const auto& shard : par_->shards) {
    const auto it = shard->cross_channels.find(lid);
    if (it != shard->cross_channels.end()) busy += it->second.busy_sum;
  }
  return static_cast<double>(busy) / static_cast<double>(horizon);
}

void Machine::worker_loop(std::uint32_t worker) {
  ParallelState& P = *par_;
  std::uint64_t seen_epoch = 0;
  while (true) {
    sim::SimTime until;
    {
      std::unique_lock<std::mutex> lock(P.mutex);
      P.work_cv.wait(lock,
                     [&] { return P.shutdown || P.epoch != seen_epoch; });
      if (P.shutdown) return;
      seen_epoch = P.epoch;
      until = P.window_until;
    }
    try {
      // Static shard ownership (worker w runs shards w, w+N, ...): a shard
      // is touched by exactly one thread per window, so shard state needs
      // no locks — the barrier's mutex orders the inter-window handoff.
      for (std::uint32_t s = worker; s < P.plan.num_shards;
           s += P.num_workers) {
        ShardState& shard = *P.shards[s];
        if (shard.stopped) continue;
        const std::uint64_t before = shard.sim.scheduler().executed();
        // run() treats `until` inclusively; the window is [_, until), so
        // stop at until - 1. An infinite window (K == 1, or no link
        // crosses shards) runs to drain or request_stop.
        const sim::SimTime bound =
            until == sim::kTimeInfinity ? sim::kTimeInfinity : until - 1;
        shard.sim.scheduler().run(bound, config_.max_events);
        if (shard.sim.scheduler().executed() == before)
          ++shard.window_stalls;
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(P.mutex);
      P.errors.push_back(std::current_exception());
    }
    bool last;
    {
      std::lock_guard<std::mutex> lock(P.mutex);
      last = --P.pending == 0;
    }
    if (last) P.done_cv.notify_one();
  }
}

void Machine::run_parallel() {
  ParallelState& P = *par_;
  const std::uint32_t K = P.plan.num_shards;

  // Root injection, same contract as serial: created on start_pe so the
  // strategy makes its normal placement decision.
  P.shards[shard_of(config_.start_pe)]->sim.scheduler().schedule_at(0, [this] {
    Message root =
        Message::goal(next_goal_id(config_.start_pe), workload_.root(),
                      workload::kInvalidGoal, topo::kInvalidNode);
    place_new_goal(config_.start_pe, std::move(root));
  });

  P.workers.reserve(P.num_workers);
  for (std::uint32_t w = 0; w < P.num_workers; ++w)
    P.workers.emplace_back([this, w] { worker_loop(w); });

  const auto shutdown_and_join = [&P] {
    {
      std::lock_guard<std::mutex> lock(P.mutex);
      P.shutdown = true;
    }
    P.work_cv.notify_all();
    for (std::thread& t : P.workers) t.join();
    P.workers.clear();
  };

  try {
    while (true) {
      // ---- Barrier section: workers idle, main thread owns all state ----
      // Move this window's cross traffic into the receivers' holdbacks and
      // restore the deterministic (deliver, src_shard, order) sequence.
      for (const auto& shard : P.shards)
        for (std::uint32_t dst = 0; dst < K; ++dst) {
          auto& box = shard->outbox[dst];
          if (box.empty()) continue;
          auto& hold = P.shards[dst]->holdback;
          hold.insert(hold.end(), std::make_move_iterator(box.begin()),
                      std::make_move_iterator(box.end()));
          box.clear();
        }
      for (const auto& shard : P.shards)
        std::sort(shard->holdback.begin(), shard->holdback.end(),
                  holdback_before);

      if (P.completed.load(std::memory_order_acquire)) break;

      if (config_.max_events > 0) {
        std::uint64_t total = 0;
        for (const auto& shard : P.shards)
          total += shard->sim.scheduler().executed();
        if (total > config_.max_events)
          throw SimulationError(strfmt(
              "event budget exceeded (%llu events executed across %u "
              "shards); the model is probably not terminating",
              static_cast<unsigned long long>(total), K));
      }

      // Next safe window: [t_min, t_min + horizon). Holdback fronts count
      // as pending events — a shard whose only work is an incoming cross
      // message must not be skipped.
      sim::SimTime t_min = sim::kTimeInfinity;
      for (const auto& shard : P.shards) {
        if (shard->stopped) continue;
        sim::SimTime t;
        if (shard->sim.scheduler().next_event_time(t))
          t_min = std::min(t_min, t);
        if (!shard->holdback.empty())
          t_min = std::min(t_min, shard->holdback.front().deliver);
      }
      ORACLE_ASSERT_MSG(t_min != sim::kTimeInfinity,
                        "parallel simulation drained every shard before the "
                        "root goal completed (model deadlock)");

      const sim::SimTime window_end =
          P.lookahead.horizon == sim::kTimeInfinity
              ? sim::kTimeInfinity
              : t_min + P.lookahead.horizon;

      // Inject every held-back message due inside the window. The window
      // invariant (deliver >= send_window_end) guarantees none is late:
      // holdback fronts are never below the receiver's clock.
      for (const auto& shard_ptr : P.shards) {
        ShardState& shard = *shard_ptr;
        std::size_t taken = 0;
        while (taken < shard.holdback.size() &&
               shard.holdback[taken].deliver < window_end) {
          CrossMsg& cm = shard.holdback[taken];
          ++taken;
          if (shard.stopped) continue;  // run over there; drop traffic
          const std::uint32_t slot = shard.pool.put(std::move(cm.payload));
          const topo::NodeId to = cm.to;
          shard.sim.scheduler().schedule_at(
              cm.deliver, [this, slot, to] { deliver_pooled(slot, to); });
          ++P.cross_delivered;
        }
        shard.holdback.erase(shard.holdback.begin(),
                             shard.holdback.begin() + taken);
      }

      ++P.windows;

      {
        std::lock_guard<std::mutex> lock(P.mutex);
        P.window_until = window_end;
        P.pending = P.num_workers;
        ++P.epoch;
      }
      P.work_cv.notify_all();
      {
        std::unique_lock<std::mutex> lock(P.mutex);
        P.done_cv.wait(lock, [&] { return P.pending == 0; });
        if (!P.errors.empty()) std::rethrow_exception(P.errors.front());
      }
    }
  } catch (...) {
    shutdown_and_join();
    throw;
  }
  shutdown_and_join();

  // The run is over; fold shard-local results into the serial-side fields
  // the aggregation in run() reads. Workers are joined, so everything the
  // shards wrote is visible here.
  root_done_ = true;
  for (const auto& shard : P.shards) {
    if (shard->stopped)
      completion_time_ = std::max(completion_time_, shard->completion_time);
    goal_hops_.merge(shard->goal_hops);
    metrics_.add(goal_tx_, shard->goal_tx);
    metrics_.add(response_tx_, shard->response_tx);
    metrics_.add(control_tx_, shard->control_tx);
  }
}

}  // namespace oracle::machine
