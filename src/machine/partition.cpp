#include "machine/partition.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace oracle::machine {

std::uint32_t auto_num_shards(std::uint32_t num_pes) noexcept {
  return std::clamp<std::uint32_t>(num_pes / 4096, 1, 16);
}

PartitionPlan make_partition_plan(std::uint32_t num_pes,
                                  std::uint32_t requested) {
  ORACLE_REQUIRE(num_pes > 0, "partition plan needs at least one PE");
  PartitionPlan plan;
  plan.num_pes = num_pes;
  plan.num_shards = requested == 0
                        ? auto_num_shards(num_pes)
                        : std::min(requested, num_pes);
  return plan;
}

sim::Duration link_min_latency(const MachineConfig& config) noexcept {
  // Mirrors Machine's transmit cost model: goals and responses occupy a
  // channel for hop_latency + size * word_time, control words for
  // ctrl_latency + ctrl_size * word_time.
  const std::uint32_t payload_words =
      std::min(config.goal_msg_size, config.response_msg_size);
  const sim::Duration payload =
      config.hop_latency + config.word_time * payload_words;
  const sim::Duration ctrl =
      config.ctrl_latency + config.word_time * config.ctrl_msg_size;
  return std::min(payload, ctrl);
}

Lookahead compute_lookahead(const topo::Topology& topo,
                            const PartitionPlan& plan,
                            const MachineConfig& config) {
  Lookahead result;
  if (plan.num_shards <= 1) return result;  // never synchronizes

  const sim::Duration latency = link_min_latency(config);
  std::map<std::pair<std::uint32_t, std::uint32_t>, sim::Duration> edges;
  for (const topo::Link& link : topo.links()) {
    // A bus can attach members in several shards; every ordered pair of
    // distinct member shards is a potential message path.
    for (const topo::NodeId a : link.members) {
      const std::uint32_t sa = plan.shard_of(a);
      for (const topo::NodeId b : link.members) {
        const std::uint32_t sb = plan.shard_of(b);
        if (sa == sb) continue;
        auto [it, inserted] =
            edges.emplace(std::make_pair(sa, sb), latency);
        if (!inserted) it->second = std::min(it->second, latency);
      }
    }
  }
  if (edges.empty()) return result;  // disjoint shards never interact

  result.edges.reserve(edges.size());
  for (const auto& [key, lat] : edges) {
    result.edges.push_back(PartitionEdge{key.first, key.second, lat});
    result.horizon = std::min(result.horizon, lat);
  }
  ORACLE_REQUIRE(
      result.horizon >= 1,
      strfmt("parallel simulation needs lookahead >= 1 tick, but the "
             "cheapest cross-partition message costs %lld (zero-latency "
             "links admit no conservative horizon); raise hop/ctrl latency "
             "or run with --sim-threads 1",
             static_cast<long long>(result.horizon)));
  return result;
}

}  // namespace oracle::machine
