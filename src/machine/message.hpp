#pragma once
// Messages exchanged between PEs.
//
// Three kinds, mirroring the paper's model:
//  - Goal: a subgoal being placed (CWN forwards these hop by hop; GM sends
//    them one neighbor-hop at a time). Carries the cumulative distance
//    travelled, the paper's Table 3 statistic.
//  - Response: a result returning to the parent goal's PE; routed along
//    shortest paths by the network.
//  - Control: strategy-defined payloads (load broadcasts, proximity
//    updates, steal requests), handled by the communication co-processor:
//    they occupy channels but cost no PE compute time.

#include <cstdint>

#include "topo/topology.hpp"
#include "workload/goal.hpp"

namespace oracle::machine {

enum class MsgKind : std::uint8_t { Goal, Response, Control };

/// Strategy-defined control tags (kept in one enum so traces are readable).
enum ControlTag : std::uint32_t {
  kCtrlLoadInfo = 1,    // value = sender's load
  kCtrlProximity = 2,   // value = sender's proximity (Gradient Model)
  kCtrlStealReq = 3,    // value unused (work stealing baseline)
  kCtrlStealNack = 4,   // value unused
};

struct Message {
  MsgKind kind = MsgKind::Goal;

  // -- Goal fields -------------------------------------------------------
  workload::GoalId goal_id = workload::kInvalidGoal;
  workload::GoalSpec spec;
  std::uint32_t hops = 0;  // cumulative hops travelled by this goal so far
  workload::GoalId parent_id = workload::kInvalidGoal;
  topo::NodeId parent_pe = topo::kInvalidNode;

  // -- Response fields ---------------------------------------------------
  topo::NodeId dst = topo::kInvalidNode;  // final destination PE

  // -- Control fields ----------------------------------------------------
  std::uint32_t ctrl_tag = 0;
  std::int64_t ctrl_value = 0;

  // -- Transport fields (set per hop by the network) ----------------------
  topo::NodeId src = topo::kInvalidNode;   // immediate sender of this hop
  std::int64_t piggyback_load = -1;        // sender load, -1 = absent

  static Message goal(workload::GoalId id, const workload::GoalSpec& spec,
                      workload::GoalId parent_id, topo::NodeId parent_pe) {
    Message m;
    m.kind = MsgKind::Goal;
    m.goal_id = id;
    m.spec = spec;
    m.parent_id = parent_id;
    m.parent_pe = parent_pe;
    return m;
  }

  static Message response(workload::GoalId parent_id, topo::NodeId dst) {
    Message m;
    m.kind = MsgKind::Response;
    m.parent_id = parent_id;
    m.dst = dst;
    return m;
  }

  static Message control(std::uint32_t tag, std::int64_t value) {
    Message m;
    m.kind = MsgKind::Control;
    m.ctrl_tag = tag;
    m.ctrl_value = value;
    return m;
  }
};

}  // namespace oracle::machine
