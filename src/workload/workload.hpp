#pragma once
// Abstract workload: an implicitly-defined computation tree.
//
// Expansion must be a pure function of the GoalSpec (no hidden state, no
// shared RNG) so that runs are reproducible regardless of the order in
// which PEs expand goals, and so tests can walk the tree independently.

#include <memory>
#include <string>
#include <string_view>

#include "workload/goal.hpp"

namespace oracle::workload {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Short name for reports, e.g. "fib-18" or "dc-1-4181".
  virtual std::string name() const = 0;

  /// The root goal.
  virtual GoalSpec root() const = 0;

  /// Expand a goal: what it costs and what it spawns.
  virtual Expansion expand(const GoalSpec& spec) const = 0;

  /// Walk the whole tree (iteratively) and summarize it. O(tree size).
  TreeSummary summarize() const;
};

/// Build a workload from a spec string:
///   "fib:N"                      naive doubly-recursive Fibonacci
///   "dc:M:N"                     divide-and-conquer over [M, N]
///   "synthetic:seed=S,depth=D,branch=B,leafbias=P"   random tree
///   "burst:seed=S,phases=K,width=W"                  rise-and-fall cycles
/// An optional trailing ";leaf=L,split=S,combine=C" overrides costs.
std::unique_ptr<Workload> make_workload(std::string_view spec);
std::unique_ptr<Workload> make_workload(std::string_view spec,
                                        const CostModel& costs);

}  // namespace oracle::workload
