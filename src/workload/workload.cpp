#include "workload/workload.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace oracle::workload {

TreeSummary Workload::summarize() const {
  TreeSummary s;
  // Iterative DFS carrying (spec, depth, finish-time-so-far is handled via
  // a second pass: critical path = exec costs along root->leaf + combine
  // costs back up; computed with an explicit stack of partial results).
  struct Frame {
    GoalSpec spec;
    Expansion exp;
    std::size_t next_child = 0;
    sim::Duration best_child_path = 0;  // max over children processed
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root(), expand(root()), 0, 0});
  sim::Duration root_path = 0;

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child == 0) {  // first visit
      ++s.total_goals;
      s.height = std::max(s.height, f.spec.depth);
      s.total_work += f.exp.exec_cost + (f.exp.is_leaf ? 0 : f.exp.combine_cost);
      if (f.exp.is_leaf) ++s.leaf_goals;
    }
    if (f.exp.is_leaf || f.next_child >= f.exp.children.size()) {
      // Post-order: path through this node.
      const sim::Duration path =
          f.exp.exec_cost +
          (f.exp.is_leaf ? 0 : f.best_child_path + f.exp.combine_cost);
      stack.pop_back();
      if (stack.empty()) {
        root_path = path;
      } else {
        Frame& parent = stack.back();
        parent.best_child_path = std::max(parent.best_child_path, path);
      }
      continue;
    }
    const GoalSpec child = f.exp.children[f.next_child++];
    ORACLE_ASSERT_MSG(child.depth == f.spec.depth + 1,
                      "workload must set child depth = parent depth + 1");
    stack.push_back(Frame{child, expand(child), 0, 0});
  }
  s.critical_path = root_path;
  return s;
}

}  // namespace oracle::workload
