#include <map>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "workload/dc.hpp"
#include "workload/fib.hpp"
#include "workload/synthetic.hpp"
#include "workload/workload.hpp"

namespace oracle::workload {

namespace {

/// Parse "k1=v1,k2=v2" into a map; throws on malformed pairs.
std::map<std::string, std::string> parse_kv(std::string_view s,
                                            std::string_view what) {
  std::map<std::string, std::string> kv;
  if (trim(s).empty()) return kv;
  for (const auto& item : split(s, ',')) {
    const auto pair = split(item, '=');
    ORACLE_REQUIRE(pair.size() == 2,
                   std::string(what) + ": expected key=value, got '" + item + "'");
    kv[std::string(trim(pair[0]))] = std::string(trim(pair[1]));
  }
  return kv;
}

std::int64_t kv_int(const std::map<std::string, std::string>& kv,
                    const std::string& key, std::int64_t fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : parse_int(it->second, key);
}

double kv_double(const std::map<std::string, std::string>& kv,
                 const std::string& key, double fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : parse_double(it->second, key);
}

}  // namespace

std::unique_ptr<Workload> make_workload(std::string_view spec,
                                        const CostModel& costs) {
  // Optional ";leaf=..,split=..,combine=.." cost suffix.
  CostModel cm = costs;
  const auto top = split(trim(spec), ';');
  ORACLE_REQUIRE(!top.empty() && !top[0].empty(), "empty workload spec");
  if (top.size() >= 2) {
    const auto kv = parse_kv(top[1], "workload costs");
    cm.leaf_cost = kv_int(kv, "leaf", cm.leaf_cost);
    cm.split_cost = kv_int(kv, "split", cm.split_cost);
    cm.combine_cost = kv_int(kv, "combine", cm.combine_cost);
    ORACLE_REQUIRE(cm.leaf_cost >= 0 && cm.split_cost >= 0 && cm.combine_cost >= 0,
                   "workload costs must be non-negative");
  }

  const auto parts = split(top[0], ':');
  const std::string kind = to_lower(parts[0]);

  if (kind == "fib") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: fib:N");
    const auto n = parse_int(parts[1], "fib argument");
    ORACLE_REQUIRE(n >= 0, "fib argument must be >= 0");
    return std::make_unique<FibWorkload>(static_cast<std::uint32_t>(n), cm);
  }
  if (kind == "dc") {
    ORACLE_REQUIRE(parts.size() == 3, "usage: dc:M:N");
    const auto m = parse_int(parts[1], "dc M");
    const auto n = parse_int(parts[2], "dc N");
    return std::make_unique<DcWorkload>(m, n, cm);
  }
  if (kind == "synthetic") {
    ORACLE_REQUIRE(parts.size() <= 2, "usage: synthetic:k=v,...");
    const auto kv = parse_kv(parts.size() == 2 ? parts[1] : "", "synthetic");
    SyntheticParams p;
    p.seed = static_cast<std::uint64_t>(kv_int(kv, "seed", 1));
    p.max_depth = static_cast<std::uint32_t>(kv_int(kv, "depth", 10));
    p.branch_min = static_cast<std::uint32_t>(kv_int(kv, "branchmin", 2));
    p.branch_max = static_cast<std::uint32_t>(
        kv_int(kv, "branchmax", kv_int(kv, "branch", p.branch_min)));
    if (p.branch_max < p.branch_min) p.branch_max = p.branch_min;
    p.leaf_bias = kv_double(kv, "leafbias", 0.15);
    p.leaf_cost_min = kv_int(kv, "leafmin", 5);
    p.leaf_cost_max = kv_int(kv, "leafmax", 20);
    return std::make_unique<SyntheticTree>(p, cm);
  }
  if (kind == "burst") {
    ORACLE_REQUIRE(parts.size() <= 2, "usage: burst:k=v,...");
    const auto kv = parse_kv(parts.size() == 2 ? parts[1] : "", "burst");
    const auto phases = kv_int(kv, "phases", 4);
    const auto width = kv_int(kv, "width", 6);
    const auto seed = kv_int(kv, "seed", 1);
    return std::make_unique<BurstWorkload>(static_cast<std::uint32_t>(phases),
                                           static_cast<std::uint32_t>(width),
                                           static_cast<std::uint64_t>(seed), cm);
  }
  throw ConfigError("unknown workload kind '" + kind +
                    "' (expected fib|dc|synthetic|burst)");
}

std::unique_ptr<Workload> make_workload(std::string_view spec) {
  return make_workload(spec, CostModel{});
}

}  // namespace oracle::workload
