#pragma once
// Divide-and-conquer over an interval, the paper's *balanced* test tree:
//   dc(M,N) = if M = N then M else dc(M,(M+N)/2) + dc(1+(M+N)/2, N)
// Used with dc(1,X) for X = 21, 55, 144, 377, 987, 4181 (sizes chosen so
// the dc and fib trees have the same node counts).

#include <cstdint>

#include "workload/workload.hpp"

namespace oracle::workload {

class DcWorkload : public Workload {
 public:
  DcWorkload(std::int64_t m, std::int64_t n, const CostModel& costs = {});

  std::string name() const override;
  GoalSpec root() const override;
  Expansion expand(const GoalSpec& spec) const override;

  std::int64_t m() const noexcept { return m_; }
  std::int64_t n() const noexcept { return n_; }
  const CostModel& costs() const noexcept { return costs_; }

  /// Node count of dc(M,N): 2*(N-M+1) - 1 (a full binary tree over leaves).
  static std::uint64_t tree_size(std::int64_t m, std::int64_t n);

 private:
  std::int64_t m_, n_;
  CostModel costs_;
};

}  // namespace oracle::workload
