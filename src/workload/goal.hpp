#pragma once
// The goal (medium-grain task) model.
//
// Section 2 of the paper: "When activated, such a task executes for a short
// time, and then either completes, or starts some sub-tasks and awaits
// response from them. When it receives a response, it repeats the same
// cycle." A goal therefore has a *split* phase (executes, spawns children),
// a waiting period (not occupying the PE), and a *combine* phase (executes,
// responds to its parent). Leaves have a single *leaf* phase.

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace oracle::workload {

/// Runtime identity of a goal instance (assigned sequentially by the
/// machine; id 1 is the root).
using GoalId = std::uint64_t;
inline constexpr GoalId kInvalidGoal = 0;

/// Workload-level description of a goal. Interpretation of a/b is up to the
/// concrete workload (fib: a = argument; dc: [a, b] interval; synthetic:
/// a = node hash). `depth` is the tree depth (root = 0).
struct GoalSpec {
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::uint32_t depth = 0;

  friend bool operator==(const GoalSpec&, const GoalSpec&) = default;
};

/// What happens when a goal is activated: either it is a leaf (runs
/// `exec_cost` and responds) or it is an interior node (runs `exec_cost`,
/// spawns `children`, and after all responses runs `combine_cost`).
struct Expansion {
  bool is_leaf = true;
  sim::Duration exec_cost = 0;     // leaf cost or split cost
  sim::Duration combine_cost = 0;  // interior nodes only
  std::vector<GoalSpec> children;  // empty for leaves
};

/// Per-goal cost parameters shared by the built-in workloads.
///
/// Defaults are calibrated against the paper's reported scales: total
/// execution times of 1000..23000 units across problem sizes 41..8361
/// goals, with the Gradient Model's 20-unit interval described as "fairly
/// low" (i.e. several gradient cycles per goal execution). That puts the
/// medium grain at ~100 units of work per goal, with 1-unit message hops —
/// a low communication/computation ratio (Section 3: "we chose the ratio
/// ... such that communication stagnation does not occur").
struct CostModel {
  sim::Duration leaf_cost = 100;
  sim::Duration split_cost = 40;
  sim::Duration combine_cost = 40;
};

/// Static summary of a workload's computation tree, used for reporting and
/// for the work-conservation test invariants.
struct TreeSummary {
  std::uint64_t total_goals = 0;     // nodes in the tree (the paper's X axis)
  std::uint64_t leaf_goals = 0;
  std::uint32_t height = 0;          // edges on the longest root-leaf path
  sim::Duration total_work = 0;      // sum of all exec + combine costs
  sim::Duration critical_path = 0;   // minimum possible completion time
};

}  // namespace oracle::workload
