#pragma once
// Naive doubly-recursive Fibonacci: fib(M) = if M < 2 then M
// else fib(M-1) + fib(M-2). The paper uses it as the *unbalanced* test
// tree ("the fibonacci yields a not-so-well-balanced tree"), with sizes
// fib(7), 9, 11, 13, 15, 18.

#include <cstdint>

#include "workload/workload.hpp"

namespace oracle::workload {

class FibWorkload : public Workload {
 public:
  explicit FibWorkload(std::uint32_t n, const CostModel& costs = {});

  std::string name() const override;
  GoalSpec root() const override;
  Expansion expand(const GoalSpec& spec) const override;

  std::uint32_t n() const noexcept { return n_; }
  const CostModel& costs() const noexcept { return costs_; }

  /// Closed-form node count of the fib(n) call tree: 2*fib(n+1) - 1.
  static std::uint64_t tree_size(std::uint32_t n);

  /// fib(n) itself (iterative), for tree_size and for tests.
  static std::uint64_t fib_value(std::uint32_t n);

 private:
  std::uint32_t n_;
  CostModel costs_;
};

}  // namespace oracle::workload
