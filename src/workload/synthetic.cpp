#include "workload/synthetic.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace oracle::workload {

namespace {

/// Stateless mixing of a parent hash and a child index.
std::uint64_t mix(std::uint64_t h, std::uint64_t salt) {
  SplitMix64 sm(h ^ (0x9e3779b97f4a7c15ULL * (salt + 1)));
  return sm.next();
}

}  // namespace

// ---------------------------------------------------------------------------
// SyntheticTree
// ---------------------------------------------------------------------------

SyntheticTree::SyntheticTree(const SyntheticParams& params, const CostModel& costs)
    : params_(params), costs_(costs) {
  ORACLE_REQUIRE(params.branch_min >= 1, "branch_min must be >= 1");
  ORACLE_REQUIRE(params.branch_max >= params.branch_min,
                 "branch_max must be >= branch_min");
  ORACLE_REQUIRE(params.branch_max <= 16, "branch_max too large");
  ORACLE_REQUIRE(params.max_depth >= 1 && params.max_depth <= 40,
                 "max_depth must be in [1, 40]");
  ORACLE_REQUIRE(params.leaf_bias >= 0.0 && params.leaf_bias <= 1.0,
                 "leaf_bias must be in [0, 1]");
  ORACLE_REQUIRE(params.leaf_cost_min >= 1 &&
                     params.leaf_cost_max >= params.leaf_cost_min,
                 "bad leaf cost range");
  // Guard against explosive expected sizes: E[children] * (1 - bias) < 2^40
  // is not checkable in general, so cap breadth * depth instead.
  ORACLE_REQUIRE(params.branch_max == 1 || params.max_depth <= 30,
                 "max_depth > 30 with branching would explode");
}

std::string SyntheticTree::name() const {
  return strfmt("synthetic-s%llu-d%u-b%u..%u",
                static_cast<unsigned long long>(params_.seed),
                params_.max_depth, params_.branch_min, params_.branch_max);
}

GoalSpec SyntheticTree::root() const {
  return GoalSpec{static_cast<std::int64_t>(mix(params_.seed, 0)), 0, 0};
}

Expansion SyntheticTree::expand(const GoalSpec& spec) const {
  const auto h = static_cast<std::uint64_t>(spec.a);
  SplitMix64 sm(h);
  Expansion e;

  const double leaf_p =
      std::min(1.0, params_.leaf_bias * static_cast<double>(spec.depth));
  const double roll =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // uniform [0,1)
  if (spec.depth >= params_.max_depth || roll < leaf_p) {
    e.is_leaf = true;
    const auto span = static_cast<std::uint64_t>(params_.leaf_cost_max -
                                                 params_.leaf_cost_min + 1);
    e.exec_cost = params_.leaf_cost_min +
                  static_cast<sim::Duration>(sm.next() % span);
    return e;
  }

  e.is_leaf = false;
  e.exec_cost = costs_.split_cost;
  e.combine_cost = costs_.combine_cost;
  const std::uint32_t breadth =
      params_.branch_min +
      static_cast<std::uint32_t>(sm.next() %
                                 (params_.branch_max - params_.branch_min + 1));
  e.children.reserve(breadth);
  for (std::uint32_t i = 0; i < breadth; ++i) {
    e.children.push_back(GoalSpec{
        static_cast<std::int64_t>(mix(h, i + 1)), 0, spec.depth + 1});
  }
  return e;
}

// ---------------------------------------------------------------------------
// BurstWorkload
// ---------------------------------------------------------------------------
//
// Tree shape (pure function of the spec):
//   SPINE(k):  children = [CHAIN(k * stagger, k), SPINE(k+1) if k+1 < phases]
//   CHAIN(j,k): one child, CHAIN(j-1,k), until j == 0, then BURST(width,k)
//   BURST(d,k): full binary tree of depth d
// The unary chains serialize, staggering burst k by ~k*stagger split costs,
// so system parallelism rises and falls `phases` times over a run.

namespace {
enum BurstRole : std::int64_t { kSpine = 1, kChain = 2, kBurst = 3 };

std::int64_t pack(BurstRole role, std::uint32_t x, std::uint32_t y) {
  return (static_cast<std::int64_t>(role) << 48) |
         (static_cast<std::int64_t>(x) << 24) | static_cast<std::int64_t>(y);
}
BurstRole role_of(std::int64_t a) { return static_cast<BurstRole>(a >> 48); }
std::uint32_t x_of(std::int64_t a) {
  return static_cast<std::uint32_t>((a >> 24) & 0xFFFFFF);
}
std::uint32_t y_of(std::int64_t a) {
  return static_cast<std::uint32_t>(a & 0xFFFFFF);
}
}  // namespace

BurstWorkload::BurstWorkload(std::uint32_t phases, std::uint32_t width,
                             std::uint64_t seed, const CostModel& costs)
    : phases_(phases), width_(width), seed_(seed), costs_(costs) {
  ORACLE_REQUIRE(phases >= 1 && phases <= 64, "phases must be in [1, 64]");
  ORACLE_REQUIRE(width >= 1 && width <= 16, "width must be in [1, 16]");
}

std::string BurstWorkload::name() const {
  return strfmt("burst-p%u-w%u", phases_, width_);
}

GoalSpec BurstWorkload::root() const { return GoalSpec{pack(kSpine, 0, 0), 0, 0}; }

Expansion BurstWorkload::expand(const GoalSpec& spec) const {
  Expansion e;
  e.is_leaf = false;
  e.exec_cost = costs_.split_cost;
  e.combine_cost = costs_.combine_cost;
  const std::uint32_t stagger = (1u << width_) / 2 + 1;

  switch (role_of(spec.a)) {
    case kSpine: {
      const std::uint32_t k = x_of(spec.a);
      e.children.push_back(GoalSpec{pack(kChain, k * stagger, k), 0, spec.depth + 1});
      if (k + 1 < phases_)
        e.children.push_back(GoalSpec{pack(kSpine, k + 1, 0), 0, spec.depth + 1});
      return e;
    }
    case kChain: {
      const std::uint32_t j = x_of(spec.a);
      const std::uint32_t k = y_of(spec.a);
      if (j == 0) {
        e.children.push_back(GoalSpec{pack(kBurst, width_, k), 0, spec.depth + 1});
      } else {
        e.children.push_back(GoalSpec{pack(kChain, j - 1, k), 0, spec.depth + 1});
      }
      return e;
    }
    case kBurst: {
      const std::uint32_t d = x_of(spec.a);
      const std::uint32_t k = y_of(spec.a);
      if (d == 0) {
        e.is_leaf = true;
        e.children.clear();
        e.combine_cost = 0;
        // Mild per-leaf cost jitter keyed off (seed, k, depth) keeps bursts
        // from being perfectly synchronous.
        SplitMix64 sm(seed_ ^ (static_cast<std::uint64_t>(k) << 32) ^ spec.depth);
        e.exec_cost = costs_.leaf_cost + static_cast<sim::Duration>(sm.next() % 5);
        return e;
      }
      e.children.push_back(GoalSpec{pack(kBurst, d - 1, k), 0, spec.depth + 1});
      e.children.push_back(GoalSpec{pack(kBurst, d - 1, k), 1, spec.depth + 1});
      return e;
    }
  }
  ORACLE_ASSERT_MSG(false, "corrupt BurstWorkload goal spec");
  return e;
}

}  // namespace oracle::workload
