#pragma once
// Synthetic workloads beyond the paper's two test programs.
//
// Section 3 motivates them: "In real life computations, the parallelism may
// wane and rise as computation progresses ... may rise and fall in cycles."
// SyntheticTree generates random trees with controllable branching and
// imbalance; BurstWorkload chains several waves of parallelism so the
// schemes are exercised on the rise-and-fall-in-cycles pattern the paper
// only extrapolates to.
//
// Expansion is a pure function of the GoalSpec: each node carries a 64-bit
// hash (spec.a) from which its subtree shape is derived. This keeps runs
// reproducible and lets tests walk the tree independently of the machine.

#include <cstdint>

#include "workload/workload.hpp"

namespace oracle::workload {

struct SyntheticParams {
  std::uint64_t seed = 1;
  std::uint32_t max_depth = 10;     // absolute depth cap
  std::uint32_t branch_min = 2;     // children per interior node, inclusive
  std::uint32_t branch_max = 2;
  double leaf_bias = 0.15;          // extra leaf probability per level
  sim::Duration leaf_cost_min = 5;  // leaf costs drawn uniformly
  sim::Duration leaf_cost_max = 20;
};

class SyntheticTree : public Workload {
 public:
  explicit SyntheticTree(const SyntheticParams& params,
                         const CostModel& costs = {});

  std::string name() const override;
  GoalSpec root() const override;
  Expansion expand(const GoalSpec& spec) const override;

  const SyntheticParams& params() const noexcept { return params_; }

 private:
  SyntheticParams params_;
  CostModel costs_;
};

/// K sequential "phases", each a balanced binary tree of the given width:
/// the root spawns phase trees one after another (child i+1 only runs after
/// child i completes is *not* expressible in a pure tree, so instead the
/// root chains K deep spines whose subtrees bulge and shrink — parallelism
/// rises and falls K times over the run).
class BurstWorkload : public Workload {
 public:
  BurstWorkload(std::uint32_t phases, std::uint32_t width,
                std::uint64_t seed = 1, const CostModel& costs = {});

  std::string name() const override;
  GoalSpec root() const override;
  Expansion expand(const GoalSpec& spec) const override;

  std::uint32_t phases() const noexcept { return phases_; }
  std::uint32_t width() const noexcept { return width_; }

 private:
  std::uint32_t phases_;
  std::uint32_t width_;   // leaves per burst = 2^width
  std::uint64_t seed_;
  CostModel costs_;
};

}  // namespace oracle::workload
