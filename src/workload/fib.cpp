#include "workload/fib.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace oracle::workload {

FibWorkload::FibWorkload(std::uint32_t n, const CostModel& costs)
    : n_(n), costs_(costs) {
  ORACLE_REQUIRE(n <= 40, "fib argument too large (tree would be enormous)");
}

std::string FibWorkload::name() const { return strfmt("fib-%u", n_); }

GoalSpec FibWorkload::root() const { return GoalSpec{n_, 0, 0}; }

Expansion FibWorkload::expand(const GoalSpec& spec) const {
  Expansion e;
  if (spec.a < 2) {
    e.is_leaf = true;
    e.exec_cost = costs_.leaf_cost;
    return e;
  }
  e.is_leaf = false;
  e.exec_cost = costs_.split_cost;
  e.combine_cost = costs_.combine_cost;
  e.children = {GoalSpec{spec.a - 1, 0, spec.depth + 1},
                GoalSpec{spec.a - 2, 0, spec.depth + 1}};
  return e;
}

std::uint64_t FibWorkload::fib_value(std::uint32_t n) {
  std::uint64_t a = 0, b = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

std::uint64_t FibWorkload::tree_size(std::uint32_t n) {
  return 2 * fib_value(n + 1) - 1;
}

}  // namespace oracle::workload
