#include "workload/dc.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace oracle::workload {

DcWorkload::DcWorkload(std::int64_t m, std::int64_t n, const CostModel& costs)
    : m_(m), n_(n), costs_(costs) {
  ORACLE_REQUIRE(m <= n, "dc(M,N) requires M <= N");
  ORACLE_REQUIRE(n - m < (1LL << 32), "dc interval too large");
}

std::string DcWorkload::name() const {
  return strfmt("dc-%lld-%lld", static_cast<long long>(m_),
                static_cast<long long>(n_));
}

GoalSpec DcWorkload::root() const { return GoalSpec{m_, n_, 0}; }

Expansion DcWorkload::expand(const GoalSpec& spec) const {
  ORACLE_ASSERT(spec.a <= spec.b);
  Expansion e;
  if (spec.a == spec.b) {
    e.is_leaf = true;
    e.exec_cost = costs_.leaf_cost;
    return e;
  }
  const std::int64_t mid = (spec.a + spec.b) / 2;  // dc(M,(M+N)/2), dc(1+(M+N)/2, N)
  e.is_leaf = false;
  e.exec_cost = costs_.split_cost;
  e.combine_cost = costs_.combine_cost;
  e.children = {GoalSpec{spec.a, mid, spec.depth + 1},
                GoalSpec{mid + 1, spec.b, spec.depth + 1}};
  return e;
}

std::uint64_t DcWorkload::tree_size(std::int64_t m, std::int64_t n) {
  ORACLE_ASSERT(m <= n);
  return 2 * static_cast<std::uint64_t>(n - m + 1) - 1;
}

}  // namespace oracle::workload
