#pragma once
// Simulator: builds the topology, workload and strategy described by an
// ExperimentConfig, runs one Machine, and returns the aggregated RunResult.

#include "core/config.hpp"
#include "stats/run_result.hpp"

namespace oracle::core {

/// Run one experiment start-to-finish. Thread-safe in the sense that
/// concurrent calls with separate configs share no mutable state.
stats::RunResult run_experiment(const ExperimentConfig& config);

}  // namespace oracle::core
