#pragma once
// Simulator: builds the topology, workload and strategy described by an
// ExperimentConfig, runs one Machine, and returns the aggregated RunResult.

#include <vector>

#include "core/config.hpp"
#include "exp/batch.hpp"
#include "stats/run_result.hpp"

namespace oracle::core {

/// Run one experiment start-to-finish. Thread-safe in the sense that
/// concurrent calls with separate configs share no mutable state.
stats::RunResult run_experiment(const ExperimentConfig& config);

/// Run a whole batch through the experiment engine (sharded parallel
/// execution, optional JSONL/CSV stores, checkpointed resume). Equivalent
/// to exp::run_batch; see exp/batch.hpp for the options.
exp::BatchOutcome run_batch(const std::vector<ExperimentConfig>& configs,
                            const exp::BatchOptions& options = {});

}  // namespace oracle::core
