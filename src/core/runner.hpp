#pragma once
// Runner: execute a batch of independent experiments in parallel across a
// thread pool (the paper ran its 240 simulations serially on a VAX-750;
// we run them concurrently, one Machine per task).

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "exp/shard.hpp"
#include "stats/run_result.hpp"

namespace oracle::core {

/// Run all configs, preserving order. `threads` = 0 uses all hardware
/// threads. Exceptions from individual runs propagate (first one wins).
std::vector<stats::RunResult> run_all(const std::vector<ExperimentConfig>& configs,
                                      std::size_t threads = 0);

/// Build every distinct topology named by `configs` into the shared
/// topology cache (topo::prewarm_topology_cache; distinct specs build in
/// parallel). Called by run_all and the batch engine before fanning out
/// workers.
void prewarm_topologies(const std::vector<ExperimentConfig>& configs);

/// Run the configs as a crash-safe multi-process sharded batch: either the
/// static content-hash partition (one worker process per shard) or, with
/// options.steal, the supervised work-stealing lease scheduler (heartbeat
/// monitoring, auto-restart, dynamic re-leasing of heavy tails). Either
/// way the per-worker stores merge into the canonical store in job order,
/// byte-identical to a serial run. Thin forward to
/// exp::run_sharded_processes; see exp/shard.hpp for the protocol.
exp::ShardRunReport run_sharded(const std::vector<ExperimentConfig>& configs,
                                const exp::ShardRunOptions& options);

}  // namespace oracle::core
