#pragma once
// Runner: execute a batch of independent experiments in parallel across a
// thread pool (the paper ran its 240 simulations serially on a VAX-750;
// we run them concurrently, one Machine per task).

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "stats/run_result.hpp"

namespace oracle::core {

/// Run all configs, preserving order. `threads` = 0 uses all hardware
/// threads. Exceptions from individual runs propagate (first one wins).
std::vector<stats::RunResult> run_all(const std::vector<ExperimentConfig>& configs,
                                      std::size_t threads = 0);

/// Build every distinct topology named by `configs` into the shared
/// topology cache (topo::prewarm_topology_cache; distinct specs build in
/// parallel). Called by run_all and the batch engine before fanning out
/// workers.
void prewarm_topologies(const std::vector<ExperimentConfig>& configs);

}  // namespace oracle::core
