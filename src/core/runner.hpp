#pragma once
// Runner: execute a batch of independent experiments in parallel across a
// thread pool (the paper ran its 240 simulations serially on a VAX-750;
// we run them concurrently, one Machine per task).

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "exp/shard.hpp"
#include "stats/run_result.hpp"

namespace oracle::core {

/// Run all configs, preserving order. `threads` = 0 uses all hardware
/// threads. Exceptions from individual runs propagate (first one wins).
std::vector<stats::RunResult> run_all(const std::vector<ExperimentConfig>& configs,
                                      std::size_t threads = 0);

/// Build every distinct topology named by `configs` into the shared
/// topology cache (topo::prewarm_topology_cache; distinct specs build in
/// parallel). Called by run_all and the batch engine before fanning out
/// workers.
void prewarm_topologies(const std::vector<ExperimentConfig>& configs);

/// Run the configs as a crash-safe multi-process sharded batch (one worker
/// process per shard, per-shard stores merged into the canonical store in
/// job order). Thin forward to exp::run_sharded_processes; see
/// exp/shard.hpp for the protocol and options.
exp::ShardRunReport run_sharded(const std::vector<ExperimentConfig>& configs,
                                const exp::ShardRunOptions& options);

}  // namespace oracle::core
