#pragma once
// Cartesian sweep builder: the declarative way to produce the paper's
// 240-run experiment grids (and ablation planes) without hand-writing
// nested loops. Axes multiply; each point inherits the base config.

#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "exp/batch.hpp"
#include "exp/shard.hpp"

namespace oracle::core {

class SweepBuilder {
 public:
  explicit SweepBuilder(ExperimentConfig base = {}) : base_(std::move(base)) {}

  /// Axis over topology specs.
  SweepBuilder& topologies(std::vector<std::string> specs);

  /// Axis over strategy specs.
  SweepBuilder& strategies(std::vector<std::string> specs);

  /// Axis over workload specs.
  SweepBuilder& workloads(std::vector<std::string> specs);

  /// Axis over seeds (replications).
  SweepBuilder& seeds(std::vector<std::uint64_t> seeds);

  /// Arbitrary per-point mutation axis (e.g. hop latency values): each
  /// entry is a (label, mutator) pair applied to the config.
  using Mutator = std::function<void(ExperimentConfig&)>;
  SweepBuilder& axis(std::vector<std::pair<std::string, Mutator>> points);

  /// Number of configs build() will return.
  std::size_t size() const;

  /// Materialize the cartesian product. Order: the first axis added varies
  /// slowest; later axes vary faster (row-major).
  std::vector<ExperimentConfig> build() const;

  /// Materialize and execute the sweep on the batch experiment engine
  /// (sharded parallel execution, JSONL/CSV stores, checkpointed resume).
  exp::BatchOutcome run_batch(const exp::BatchOptions& options = {}) const;

  /// Materialize and execute the sweep as a multi-process sharded run:
  /// self-exec worker processes over private stores, merged into the
  /// canonical store in job order (exp::run_sharded_processes). The
  /// options choose between the static hash-modulo partition and the
  /// work-stealing lease supervisor (options.steal, heartbeat_ms,
  /// max_restarts).
  exp::ShardRunReport run_sharded(const exp::ShardRunOptions& options) const;

 private:
  ExperimentConfig base_;
  std::vector<std::vector<Mutator>> axes_;
};

/// A declarative, serializable sweep request: the preset, axis, and engine
/// knob fields that the oracle_batch CLI flags, worker self-exec command
/// lines, and the resident service's wire protocol all carry. One struct,
/// three encodings — so a sweep parsed from a query frame builds exactly
/// the config list (and therefore exactly the content hashes) that the
/// equivalent command line would.
struct SweepSpec {
  std::string preset;  ///< "" = paper baseline; "million-pe" showcase
  std::vector<std::string> topologies{"grid:6x6", "grid:10x10",
                                      "dlm:5:10x10"};
  std::vector<std::string> strategies{"cwn", "gm", "random"};
  std::vector<std::string> workloads{"fib:13"};
  std::vector<std::uint64_t> seeds{1};

  /// 0 = use the seeds axis verbatim; nonzero re-seeds each job with
  /// Rng::derive_seed(master_seed, job_index) in the batch engine.
  std::uint64_t master_seed = 0;

  /// Engine knobs; -1 keeps the preset/baseline default.
  std::int64_t sample_interval = -1;
  std::int64_t hop_latency = -1;
  std::int64_t sim_threads = -1;
  std::int64_t sim_partitions = -1;

  /// Set `preset` and overwrite the axis defaults with the preset's own
  /// topology/strategy/workload (the CLI's --preset pre-scan semantics:
  /// explicit axis flags still win by being applied afterwards). Throws
  /// ConfigError on an unknown preset name.
  void apply_preset(const std::string& name);

  /// The base config every grid point inherits: preset baseline + knobs.
  ExperimentConfig base_config() const;

  /// A SweepBuilder over base_config() with the four axes installed
  /// (topologies, strategies, workloads, seeds — seeds vary fastest).
  SweepBuilder builder() const;

  std::vector<ExperimentConfig> build() const { return builder().build(); }
  std::size_t size() const { return builder().size(); }

  /// Canonical CLI flags reproducing this spec verbatim (worker self-exec,
  /// launcher scripts). A single-seed axis is emitted with a trailing
  /// comma ("--seeds 5," not "--seeds 5") so the round-trip through
  /// parse_seed_axis never re-reads an explicit seed as a count.
  std::vector<std::string> to_args() const;

  /// The "--seeds" dialect: a bare integer N >= 1 means seeds 1..N; a
  /// comma list is taken verbatim. Throws ConfigError on malformed input.
  static std::vector<std::uint64_t> parse_seed_axis(const std::string& value);
};

}  // namespace oracle::core
