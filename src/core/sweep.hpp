#pragma once
// Cartesian sweep builder: the declarative way to produce the paper's
// 240-run experiment grids (and ablation planes) without hand-writing
// nested loops. Axes multiply; each point inherits the base config.

#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "exp/batch.hpp"
#include "exp/shard.hpp"

namespace oracle::core {

class SweepBuilder {
 public:
  explicit SweepBuilder(ExperimentConfig base = {}) : base_(std::move(base)) {}

  /// Axis over topology specs.
  SweepBuilder& topologies(std::vector<std::string> specs);

  /// Axis over strategy specs.
  SweepBuilder& strategies(std::vector<std::string> specs);

  /// Axis over workload specs.
  SweepBuilder& workloads(std::vector<std::string> specs);

  /// Axis over seeds (replications).
  SweepBuilder& seeds(std::vector<std::uint64_t> seeds);

  /// Arbitrary per-point mutation axis (e.g. hop latency values): each
  /// entry is a (label, mutator) pair applied to the config.
  using Mutator = std::function<void(ExperimentConfig&)>;
  SweepBuilder& axis(std::vector<std::pair<std::string, Mutator>> points);

  /// Number of configs build() will return.
  std::size_t size() const;

  /// Materialize the cartesian product. Order: the first axis added varies
  /// slowest; later axes vary faster (row-major).
  std::vector<ExperimentConfig> build() const;

  /// Materialize and execute the sweep on the batch experiment engine
  /// (sharded parallel execution, JSONL/CSV stores, checkpointed resume).
  exp::BatchOutcome run_batch(const exp::BatchOptions& options = {}) const;

  /// Materialize and execute the sweep as a multi-process sharded run:
  /// self-exec worker processes over private stores, merged into the
  /// canonical store in job order (exp::run_sharded_processes). The
  /// options choose between the static hash-modulo partition and the
  /// work-stealing lease supervisor (options.steal, heartbeat_ms,
  /// max_restarts).
  exp::ShardRunReport run_sharded(const exp::ShardRunOptions& options) const;

 private:
  ExperimentConfig base_;
  std::vector<std::vector<Mutator>> axes_;
};

}  // namespace oracle::core
