#include "core/sweep.hpp"

#include "util/error.hpp"

namespace oracle::core {

SweepBuilder& SweepBuilder::topologies(std::vector<std::string> specs) {
  ORACLE_REQUIRE(!specs.empty(), "empty topology axis");
  std::vector<Mutator> axis;
  for (auto& s : specs)
    axis.push_back([s](ExperimentConfig& cfg) { cfg.topology = s; });
  axes_.push_back(std::move(axis));
  return *this;
}

SweepBuilder& SweepBuilder::strategies(std::vector<std::string> specs) {
  ORACLE_REQUIRE(!specs.empty(), "empty strategy axis");
  std::vector<Mutator> axis;
  for (auto& s : specs)
    axis.push_back([s](ExperimentConfig& cfg) { cfg.strategy = s; });
  axes_.push_back(std::move(axis));
  return *this;
}

SweepBuilder& SweepBuilder::workloads(std::vector<std::string> specs) {
  ORACLE_REQUIRE(!specs.empty(), "empty workload axis");
  std::vector<Mutator> axis;
  for (auto& s : specs)
    axis.push_back([s](ExperimentConfig& cfg) { cfg.workload = s; });
  axes_.push_back(std::move(axis));
  return *this;
}

SweepBuilder& SweepBuilder::seeds(std::vector<std::uint64_t> seeds) {
  ORACLE_REQUIRE(!seeds.empty(), "empty seed axis");
  std::vector<Mutator> axis;
  for (auto seed : seeds)
    axis.push_back([seed](ExperimentConfig& cfg) { cfg.machine.seed = seed; });
  axes_.push_back(std::move(axis));
  return *this;
}

SweepBuilder& SweepBuilder::axis(
    std::vector<std::pair<std::string, Mutator>> points) {
  ORACLE_REQUIRE(!points.empty(), "empty custom axis");
  std::vector<Mutator> axis;
  for (auto& [label, fn] : points) axis.push_back(fn);
  axes_.push_back(std::move(axis));
  return *this;
}

std::size_t SweepBuilder::size() const {
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.size();
  return axes_.empty() ? 0 : n;
}

std::vector<ExperimentConfig> SweepBuilder::build() const {
  std::vector<ExperimentConfig> out;
  if (axes_.empty()) return out;
  out.reserve(size());
  // Odometer over the axes, first axis slowest.
  std::vector<std::size_t> idx(axes_.size(), 0);
  while (true) {
    ExperimentConfig cfg = base_;
    for (std::size_t a = 0; a < axes_.size(); ++a) axes_[a][idx[a]](cfg);
    out.push_back(std::move(cfg));
    // Increment odometer from the last axis.
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes_[a].size()) break;
      idx[a] = 0;
      if (a == 0) return out;
    }
  }
}

exp::BatchOutcome SweepBuilder::run_batch(
    const exp::BatchOptions& options) const {
  return exp::run_batch(build(), options);
}

exp::ShardRunReport SweepBuilder::run_sharded(
    const exp::ShardRunOptions& options) const {
  return exp::run_sharded_processes(build(), options);
}

}  // namespace oracle::core
