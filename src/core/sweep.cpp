#include "core/sweep.hpp"

#include "core/presets.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace oracle::core {

SweepBuilder& SweepBuilder::topologies(std::vector<std::string> specs) {
  ORACLE_REQUIRE(!specs.empty(), "empty topology axis");
  std::vector<Mutator> axis;
  for (auto& s : specs)
    axis.push_back([s](ExperimentConfig& cfg) { cfg.topology = s; });
  axes_.push_back(std::move(axis));
  return *this;
}

SweepBuilder& SweepBuilder::strategies(std::vector<std::string> specs) {
  ORACLE_REQUIRE(!specs.empty(), "empty strategy axis");
  std::vector<Mutator> axis;
  for (auto& s : specs)
    axis.push_back([s](ExperimentConfig& cfg) { cfg.strategy = s; });
  axes_.push_back(std::move(axis));
  return *this;
}

SweepBuilder& SweepBuilder::workloads(std::vector<std::string> specs) {
  ORACLE_REQUIRE(!specs.empty(), "empty workload axis");
  std::vector<Mutator> axis;
  for (auto& s : specs)
    axis.push_back([s](ExperimentConfig& cfg) { cfg.workload = s; });
  axes_.push_back(std::move(axis));
  return *this;
}

SweepBuilder& SweepBuilder::seeds(std::vector<std::uint64_t> seeds) {
  ORACLE_REQUIRE(!seeds.empty(), "empty seed axis");
  std::vector<Mutator> axis;
  for (auto seed : seeds)
    axis.push_back([seed](ExperimentConfig& cfg) { cfg.machine.seed = seed; });
  axes_.push_back(std::move(axis));
  return *this;
}

SweepBuilder& SweepBuilder::axis(
    std::vector<std::pair<std::string, Mutator>> points) {
  ORACLE_REQUIRE(!points.empty(), "empty custom axis");
  std::vector<Mutator> axis;
  for (auto& [label, fn] : points) axis.push_back(fn);
  axes_.push_back(std::move(axis));
  return *this;
}

std::size_t SweepBuilder::size() const {
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.size();
  return axes_.empty() ? 0 : n;
}

std::vector<ExperimentConfig> SweepBuilder::build() const {
  std::vector<ExperimentConfig> out;
  if (axes_.empty()) return out;
  out.reserve(size());
  // Odometer over the axes, first axis slowest.
  std::vector<std::size_t> idx(axes_.size(), 0);
  while (true) {
    ExperimentConfig cfg = base_;
    for (std::size_t a = 0; a < axes_.size(); ++a) axes_[a][idx[a]](cfg);
    out.push_back(std::move(cfg));
    // Increment odometer from the last axis.
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes_[a].size()) break;
      idx[a] = 0;
      if (a == 0) return out;
    }
  }
}

exp::BatchOutcome SweepBuilder::run_batch(
    const exp::BatchOptions& options) const {
  return exp::run_batch(build(), options);
}

exp::ShardRunReport SweepBuilder::run_sharded(
    const exp::ShardRunOptions& options) const {
  return exp::run_sharded_processes(build(), options);
}

void SweepSpec::apply_preset(const std::string& name) {
  ORACLE_REQUIRE(name == "million-pe" || name == "million_pe",
                 "unknown preset '" + name + "' (available: million-pe)");
  preset = "million-pe";
  const ExperimentConfig base = paper::million_pe_config();
  topologies = {base.topology};
  strategies = {base.strategy};
  workloads = {base.workload};
}

ExperimentConfig SweepSpec::base_config() const {
  ExperimentConfig cfg;
  if (preset.empty()) {
    cfg = paper::base_config();
  } else {
    ORACLE_REQUIRE(preset == "million-pe" || preset == "million_pe",
                   "unknown preset '" + preset + "' (available: million-pe)");
    cfg = paper::million_pe_config();
  }
  if (sample_interval >= 0) cfg.machine.sample_interval = sample_interval;
  if (hop_latency >= 0) cfg.machine.hop_latency = hop_latency;
  if (sim_threads >= 0) {
    ORACLE_REQUIRE(sim_threads >= 1, "--sim-threads must be >= 1");
    cfg.machine.sim_threads = static_cast<std::uint32_t>(sim_threads);
  }
  if (sim_partitions >= 0)
    cfg.machine.sim_partitions = static_cast<std::uint32_t>(sim_partitions);
  return cfg;
}

SweepBuilder SweepSpec::builder() const {
  SweepBuilder b(base_config());
  b.topologies(topologies).strategies(strategies).workloads(workloads);
  // The seeds axis always contributes the replication count; with a
  // master seed the axis values are then overwritten per job by
  // Rng::derive_seed(master, index) in the engine.
  b.seeds(seeds);
  return b;
}

std::vector<std::string> SweepSpec::to_args() const {
  std::vector<std::string> args;
  const auto flag = [&](const char* name, const std::string& value) {
    args.emplace_back(name);
    args.push_back(value);
  };
  if (!preset.empty()) flag("--preset", preset);
  flag("--topologies", join(topologies, ","));
  flag("--strategies", join(strategies, ","));
  flag("--workloads", join(workloads, ","));
  std::vector<std::string> seed_strs;
  seed_strs.reserve(seeds.size());
  for (const auto s : seeds) seed_strs.push_back(std::to_string(s));
  flag("--seeds", join(seed_strs, ",") + (seeds.size() == 1 ? "," : ""));
  if (master_seed != 0) flag("--master-seed", std::to_string(master_seed));
  if (sample_interval >= 0) flag("--sample", std::to_string(sample_interval));
  if (hop_latency >= 0) flag("--hop-latency", std::to_string(hop_latency));
  if (sim_threads >= 0) flag("--sim-threads", std::to_string(sim_threads));
  if (sim_partitions >= 0)
    flag("--sim-partitions", std::to_string(sim_partitions));
  return args;
}

std::vector<std::uint64_t> SweepSpec::parse_seed_axis(
    const std::string& value) {
  std::vector<std::uint64_t> out;
  if (value.find(',') != std::string::npos) {
    for (const auto& item : split(value, ',')) {
      const auto t = trim(item);
      if (t.empty()) continue;
      const auto s = parse_int(t, "--seeds");
      ORACLE_REQUIRE(s >= 0, "--seeds entries must be >= 0");
      out.push_back(static_cast<std::uint64_t>(s));
    }
    ORACLE_REQUIRE(!out.empty(), "--seeds needs at least one entry");
    return out;
  }
  const auto n = parse_int(trim(value), "--seeds");
  ORACLE_REQUIRE(n >= 1, "--seeds must be >= 1");
  for (std::int64_t s = 1; s <= n; ++s)
    out.push_back(static_cast<std::uint64_t>(s));
  return out;
}

}  // namespace oracle::core
