#include "core/runner.hpp"

#include "core/simulator.hpp"
#include "util/thread_pool.hpp"

namespace oracle::core {

std::vector<stats::RunResult> run_all(const std::vector<ExperimentConfig>& configs,
                                      std::size_t threads) {
  std::vector<stats::RunResult> results(configs.size());
  ThreadPool::parallel_for(configs.size(), threads, [&](std::size_t i) {
    results[i] = run_experiment(configs[i]);
  });
  return results;
}

}  // namespace oracle::core
