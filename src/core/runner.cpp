#include "core/runner.hpp"

#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "topo/factory.hpp"
#include "util/thread_pool.hpp"

namespace oracle::core {

void prewarm_topologies(const std::vector<ExperimentConfig>& configs) {
  std::vector<std::string> specs;
  specs.reserve(configs.size());
  for (const auto& config : configs) specs.push_back(config.topology);
  topo::prewarm_topology_cache(specs);
}

exp::ShardRunReport run_sharded(const std::vector<ExperimentConfig>& configs,
                                const exp::ShardRunOptions& options) {
  return exp::run_sharded_processes(configs, options);
}

std::vector<stats::RunResult> run_all(const std::vector<ExperimentConfig>& configs,
                                      std::size_t threads) {
  // Build each distinct topology (and its routing table) once up front so
  // worker threads start with warm cache hits instead of redundantly
  // building the same tables in parallel.
  prewarm_topologies(configs);
  std::vector<stats::RunResult> results(configs.size());
  ThreadPool::parallel_for(configs.size(), threads, [&](std::size_t i) {
    results[i] = run_experiment(configs[i]);
  });
  return results;
}

}  // namespace oracle::core
