#include "core/simulator.hpp"

#include "lb/strategy.hpp"
#include "machine/machine.hpp"
#include "obs/trace.hpp"
#include "topo/factory.hpp"
#include "util/string_util.hpp"
#include "workload/workload.hpp"

namespace oracle::core {

std::string ExperimentConfig::label() const {
  return topology + " / " + strategy + " / " + workload;
}

stats::RunResult run_experiment(const ExperimentConfig& config) {
  // Topology + routing come from the process-wide shared cache: jobs in a
  // sweep that differ only in seed/strategy/workload reuse one immutable
  // build instead of re-running BFS per replication.
  const topo::SharedTopology topology =
      topo::make_topology_shared(config.topology);
  const auto workload = workload::make_workload(config.workload, config.costs);
  const auto strategy = lb::make_strategy(config.strategy);

  machine::Machine machine(topology, *workload, *strategy, config.machine);
  stats::RunResult result = machine.run();

  if (obs::Tracer::enabled()) {
    // Engine health counters, one sample per run. Sampled here (not stored
    // in RunResult) so the JSONL record layout — and its byte-identity
    // guarantee across worker counts — is untouched.
    const machine::Machine::EngineStats es = machine.engine_stats();
    obs::counter("engine", "engine.events", "value",
                 static_cast<std::int64_t>(es.sched.executed));
    obs::counter("engine", "engine.cancels", "value",
                 static_cast<std::int64_t>(es.sched.cancelled));
    obs::counter("engine", "engine.sched", "wheel",
                 static_cast<std::int64_t>(es.sched.wheel_scheduled), "heap",
                 static_cast<std::int64_t>(es.sched.heap_scheduled));
    obs::counter("engine", "engine.batches", "ticks",
                 static_cast<std::int64_t>(es.sched.tick_batches), "slides",
                 static_cast<std::int64_t>(es.sched.base_slides));
    obs::counter("engine", "engine.msg_pool_reused", "value",
                 static_cast<std::int64_t>(es.msg_pool_reused));
    if (es.shards > 1) {
      // Parallel-engine health: shard count + barrier windows, per-window
      // starvation, and the cross-partition traffic volume.
      obs::counter("engine", "engine.windows", "shards",
                   static_cast<std::int64_t>(es.shards), "windows",
                   static_cast<std::int64_t>(es.windows));
      obs::counter("engine", "engine.window_stalls", "value",
                   static_cast<std::int64_t>(es.window_stalls));
      obs::counter("engine", "engine.cross_messages", "value",
                   static_cast<std::int64_t>(es.cross_messages));
    }
  }

  // Static tree facts: fill from the workload so results are self-contained.
  const workload::TreeSummary summary = workload->summarize();
  result.critical_path = summary.critical_path;
  ORACLE_ASSERT_MSG(result.goals_executed == summary.total_goals,
                    "machine executed a different number of goals than the "
                    "workload tree contains");
  return result;
}

exp::BatchOutcome run_batch(const std::vector<ExperimentConfig>& configs,
                            const exp::BatchOptions& options) {
  return exp::run_batch(configs, options);
}

}  // namespace oracle::core
