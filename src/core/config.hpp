#pragma once
// ExperimentConfig: everything that defines one simulation run. This is the
// public entry point most users interact with — build a config (or parse
// spec strings), hand it to Simulator::run(), get a RunResult back.

#include <string>

#include "machine/machine_config.hpp"
#include "workload/goal.hpp"

namespace oracle::core {

struct ExperimentConfig {
  /// Topology spec, e.g. "grid:10x10", "dlm:5:10x10", "hypercube:7".
  std::string topology = "grid:10x10";

  /// Strategy spec, e.g. "cwn:radius=9,horizon=2" or "gm:hwm=2,lwm=1".
  std::string strategy = "cwn";

  /// Workload spec, e.g. "fib:15", "dc:1:987", "burst:phases=4,width=6".
  std::string workload = "fib:15";

  /// Per-goal compute costs (applied to fib/dc/synthetic via the factory).
  workload::CostModel costs;

  /// Communication and instrumentation knobs.
  machine::MachineConfig machine;

  /// Convenience: label used in sweep reports.
  std::string label() const;
};

}  // namespace oracle::core
