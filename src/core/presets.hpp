#pragma once
// Paper presets: the exact sample points of Kale's evaluation (Section 3)
// and the tuned parameters of Table 1, so benches and examples can say
// "give me the paper's 10x10-grid CWN config" in one line.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace oracle::core::paper {

/// Topology family used in the main comparison.
enum class Family { Grid, Dlm };

/// The five system sizes: 25, 64, 100, 256, 400 PEs.
struct SizePoint {
  std::uint32_t pes;
  std::string grid_spec;   // "grid:5x5" ...
  std::string dlm_spec;    // "dlm:5:5x5" ... (bus-span from the paper: 5
                           // for 5x5/10x10/20x20, 4 for 8x8/16x16)
};
const std::vector<SizePoint>& size_points();

/// The six problem sizes per program (fib 7..18; dc(1,X) with matching
/// tree sizes 41..8361 goals).
const std::vector<std::string>& fib_specs();
const std::vector<std::string>& dc_specs();

/// Table 1 tuned parameters, as strategy specs.
std::string cwn_spec(Family family);
std::string gm_spec(Family family);

/// Hypercube dimensions of Appendix I.
const std::vector<std::uint32_t>& hypercube_dims();

/// Baseline experiment configuration: paper cost model, piggy-backing on,
/// queue-length load measure, seed 1.
ExperimentConfig base_config();

/// Convenience: a full config for one (family, size, strategy, workload)
/// sample point with the Table 1 parameters.
ExperimentConfig sample_point(Family family, const SizePoint& size, bool cwn,
                              const std::string& workload_spec);

/// Million-PE showcase: a 1000x1000 torus under CWN with a long broadcast
/// interval, divide-and-conquer over two million leaves, and the parallel
/// engine enabled (16 partitions; pair with --sim-threads). Far beyond the
/// paper's 400-PE ceiling — this is the scale the batched/partitioned
/// engine exists for. Expect minutes serial, and a large (~GB) topology.
ExperimentConfig million_pe_config();

}  // namespace oracle::core::paper
