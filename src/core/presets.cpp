#include "core/presets.hpp"

namespace oracle::core::paper {

const std::vector<SizePoint>& size_points() {
  // Bus spans: the paper names "Double Lattice-Mesh of 5 20 20",
  // "of 4 16 16", "of 5 10 10", "of 4 8 8", "of 5 5 5".
  static const std::vector<SizePoint> points = {
      {25, "grid:5x5", "dlm:5:5x5"},
      {64, "grid:8x8", "dlm:4:8x8"},
      {100, "grid:10x10", "dlm:5:10x10"},
      {256, "grid:16x16", "dlm:4:16x16"},
      {400, "grid:20x20", "dlm:5:20x20"},
  };
  return points;
}

const std::vector<std::string>& fib_specs() {
  static const std::vector<std::string> specs = {
      "fib:7", "fib:9", "fib:11", "fib:13", "fib:15", "fib:18"};
  return specs;
}

const std::vector<std::string>& dc_specs() {
  static const std::vector<std::string> specs = {
      "dc:1:21", "dc:1:55", "dc:1:144", "dc:1:377", "dc:1:987", "dc:1:4181"};
  return specs;
}

std::string cwn_spec(Family family) {
  // Table 1: radius 9 / horizon 2 on grids; radius 5 / horizon 1 on DLMs.
  return family == Family::Grid ? "cwn:radius=9,horizon=2"
                                : "cwn:radius=5,horizon=1";
}

std::string gm_spec(Family family) {
  // Table 1: high-water-mark 2 (grid) / 1 (DLM), low-water-mark 1,
  // 20-unit interval on both.
  return family == Family::Grid ? "gm:hwm=2,lwm=1,interval=20"
                                : "gm:hwm=1,lwm=1,interval=20";
}

const std::vector<std::uint32_t>& hypercube_dims() {
  static const std::vector<std::uint32_t> dims = {2, 5, 7, 8};
  return dims;
}

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.costs = workload::CostModel{};  // leaf 100 / split 40 / combine 40
  cfg.machine.hop_latency = 1;
  cfg.machine.ctrl_latency = 1;
  cfg.machine.piggyback_load = true;
  cfg.machine.load_measure = machine::LoadMeasure::QueueLength;
  cfg.machine.seed = 1;
  return cfg;
}

ExperimentConfig sample_point(Family family, const SizePoint& size, bool cwn,
                              const std::string& workload_spec) {
  ExperimentConfig cfg = base_config();
  cfg.topology = family == Family::Grid ? size.grid_spec : size.dlm_spec;
  cfg.strategy = cwn ? cwn_spec(family) : gm_spec(family);
  cfg.workload = workload_spec;
  return cfg;
}

ExperimentConfig million_pe_config() {
  ExperimentConfig cfg = base_config();
  // A torus halves the grid diameter — at 10^6 PEs diffusion distance is
  // what bounds completion. CWN with a small radius keeps goals near their
  // creators; the long broadcast interval keeps the per-PE control traffic
  // from dwarfing the computation (10^6 broadcasters add up fast).
  cfg.topology = "torus:1000x1000";
  cfg.strategy = "cwn:radius=3,horizon=2,interval=20000";
  cfg.workload = "dc:1:2000000";
  cfg.machine.hop_latency = 4;
  cfg.machine.ctrl_latency = 2;
  cfg.machine.seed = 1;
  // Parallel engine: 16 contiguous shards (auto would pick 16 here too;
  // pinning it keeps results stable if the auto heuristic ever moves).
  // The thread count is left at 1 — pass --sim-threads to actually engage
  // the workers; the trajectory only depends on the partition count.
  cfg.machine.sim_partitions = 16;
  // ~10^8-event scale; leave generous headroom over the default budget.
  cfg.machine.max_events = 4'000'000'000;
  return cfg;
}

}  // namespace oracle::core::paper
