#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "util/error.hpp"
#include "util/file_util.hpp"
#include "util/string_util.hpp"

#if !defined(_WIN32)
#include <dirent.h>
#endif

namespace oracle::obs {

namespace {

/// One thread's preallocated event buffer. Owned by the global registry
/// (not the thread): a worker thread that exits mid-run must leave its
/// events readable for the end-of-run flush.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::atomic<std::size_t> count{0};  ///< published size (emit is wait-free)
  std::size_t dropped = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::string process_name;
  std::uint32_t pid = 0;
  std::size_t capacity = 1 << 16;
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_flow_id{1};
Registry& registry() {
  static Registry r;
  return r;
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer* this_thread_buffer() {
  if (t_buffer) return t_buffer;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto buf = std::make_unique<ThreadBuffer>();
  buf->tid = static_cast<std::uint32_t>(reg.buffers.size());
  buf->events.resize(reg.capacity);
  t_buffer = buf.get();
  reg.buffers.push_back(std::move(buf));
  return t_buffer;
}

void append_args(std::string& out, const TraceEvent& ev) {
  if (!ev.arg0_name && !ev.arg1_name) return;
  out += ",\"args\":{";
  bool first = true;
  if (ev.arg0_name) {
    out += strfmt("\"%s\":%lld", ev.arg0_name,
                  static_cast<long long>(ev.arg0));
    first = false;
  }
  if (ev.arg1_name) {
    if (!first) out += ',';
    out += strfmt("\"%s\":%lld", ev.arg1_name,
                  static_cast<long long>(ev.arg1));
  }
  out += '}';
}

std::string metadata_line(const char* kind, const char* value_key,
                          const std::string& value, std::uint32_t pid,
                          std::uint32_t tid) {
  return strfmt(
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
      "\"args\":{\"%s\":\"%s\"}}",
      kind, pid, tid, value_key, value.c_str());
}

/// Write buffered events of every thread as lines through `emit_line`.
template <typename EmitLine>
std::size_t for_each_buffered_line(EmitLine&& emit_line) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  emit_line(metadata_line("process_name", "name", reg.process_name, reg.pid, 0));
  std::size_t written = 0;
  for (const auto& buf : reg.buffers) {
    emit_line(metadata_line("thread_name", "name",
                            strfmt("thread-%u", buf->tid), reg.pid, buf->tid));
    const std::size_t n =
        std::min(buf->count.load(std::memory_order_acquire),
                 buf->events.size());
    for (std::size_t i = 0; i < n; ++i) {
      emit_line(event_to_json_line(buf->events[i], reg.pid, buf->tid));
      ++written;
    }
  }
  return written;
}

}  // namespace

bool Tracer::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void Tracer::enable(std::uint32_t logical_pid, std::string process_name,
                    std::size_t per_thread_capacity) {
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.pid = logical_pid;
    reg.process_name = std::move(process_name);
    reg.capacity = std::max<std::size_t>(per_thread_capacity, 16);
    for (auto& buf : reg.buffers) {
      buf->count.store(0, std::memory_order_relaxed);
      buf->dropped = 0;
      buf->events.resize(reg.capacity);
    }
  }
  g_enabled.store(true, std::memory_order_release);
}

void Tracer::disable() noexcept {
  g_enabled.store(false, std::memory_order_release);
}

std::uint32_t Tracer::logical_pid() noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.pid;
}

std::int64_t Tracer::now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::emit(const TraceEvent& ev) noexcept {
  if (!enabled()) return;
  ThreadBuffer* buf = this_thread_buffer();
  const std::size_t i = buf->count.load(std::memory_order_relaxed);
  if (i >= buf->events.size()) {
    ++buf->dropped;
    return;
  }
  buf->events[i] = ev;
  // Release-publish the new size so a concurrent flush never reads a
  // half-written slot.
  buf->count.store(i + 1, std::memory_order_release);
}

std::uint64_t Tracer::next_flow_id() noexcept {
  return g_flow_id.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Tracer::dropped() noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& buf : reg.buffers) total += buf->dropped;
  return total;
}

std::size_t Tracer::buffered() noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& buf : reg.buffers)
    total += buf->count.load(std::memory_order_acquire);
  return total;
}

void Tracer::clear() noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& buf : reg.buffers) {
    buf->count.store(0, std::memory_order_relaxed);
    buf->dropped = 0;
  }
}

std::size_t Tracer::write_event_lines(const std::string& path, bool append) {
  std::ofstream out(path, append ? (std::ios::out | std::ios::app)
                                 : (std::ios::out | std::ios::trunc));
  if (!out)
    throw SimulationError("cannot open trace file '" + path + "' for writing");
  const std::size_t written =
      for_each_buffered_line([&](const std::string& line) {
        out << line << '\n';
      });
  out.flush();
  if (!out) throw SimulationError("trace write to '" + path + "' failed");
  return written;
}

std::size_t Tracer::write_json(const std::string& path) {
  std::string doc = "{\"traceEvents\":[\n";
  std::size_t lines = 0;
  const std::size_t written =
      for_each_buffered_line([&](const std::string& line) {
        if (lines++ > 0) doc += ",\n";
        doc += line;
      });
  doc += "\n]}\n";
  util::write_file_atomic(path, doc);
  return written;
}

// ------------------------------------------------------------- serializer --

std::string event_to_json_line(const TraceEvent& ev, std::uint32_t pid,
                               std::uint32_t tid) {
  // Timestamps are microseconds in the trace-event format; three decimals
  // keep the full nanosecond resolution.
  std::string line = strfmt(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,",
      ev.name ? ev.name : "?", ev.cat ? ev.cat : "?", ev.ph,
      static_cast<double>(ev.ts_ns) / 1000.0);
  if (ev.ph == 'X')
    line += strfmt("\"dur\":%.3f,", static_cast<double>(ev.dur_ns) / 1000.0);
  if (ev.ph == 's' || ev.ph == 'f')
    line += strfmt("\"id\":%llu,",
                   static_cast<unsigned long long>(ev.flow_id));
  if (ev.ph == 'f') line += "\"bp\":\"e\",";
  line += strfmt("\"pid\":%u,\"tid\":%u", pid, tid);
  if (ev.ph == 'i') line += ",\"s\":\"t\"";  // thread-scoped instant
  append_args(line, ev);
  line += '}';
  return line;
}

// ----------------------------------------------------------------- parser --

namespace {

/// Extract the number following `"key":` in a line written by this
/// tracer. Good for our own fixed output, not a general JSON parser.
std::optional<double> find_number(const std::string& line,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

std::optional<std::string> find_string(const std::string& line,
                                       const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(start, end - start);
}

}  // namespace

std::optional<ParsedEvent> parse_event_line(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}')
    return std::nullopt;
  ParsedEvent ev;
  const auto name = find_string(line, "name");
  const auto ph = find_string(line, "ph");
  const auto ts = find_number(line, "ts");
  const auto pid = find_number(line, "pid");
  const auto tid = find_number(line, "tid");
  if (!name || !ph || ph->size() != 1 || !pid || !tid) return std::nullopt;
  // Metadata events carry no timestamp; everything else must.
  if (!ts && (*ph)[0] != 'M') return std::nullopt;
  ev.name = *name;
  ev.ph = (*ph)[0];
  ev.ts_us = ts.value_or(0.0);
  ev.dur_us = find_number(line, "dur").value_or(0.0);
  ev.pid = static_cast<std::int64_t>(*pid);
  ev.tid = static_cast<std::int64_t>(*tid);
  return ev;
}

// ------------------------------------------------------------------ merge --

std::string worker_trace_path(const std::string& trace_base, std::size_t slot,
                              std::size_t count) {
  return trace_base + strfmt(".%zuof%zu", slot, count);
}

std::string parent_trace_path(const std::string& trace_base) {
  return trace_base + ".parent";
}

std::vector<std::string> discover_trace_files(const std::string& trace_base) {
  std::vector<std::string> out;
  if (util::file_exists(parent_trace_path(trace_base)))
    out.push_back(parent_trace_path(trace_base));
#if !defined(_WIN32)
  const auto slash = trace_base.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : trace_base.substr(0, slash);
  const std::string base =
      slash == std::string::npos ? trace_base : trace_base.substr(slash + 1);
  const std::string prefix = base + ".";
  std::vector<std::pair<std::size_t, std::string>> slots;
  if (DIR* dp = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(dp)) {
      const std::string fname = entry->d_name;
      if (fname.size() <= prefix.size() ||
          fname.compare(0, prefix.size(), prefix) != 0)
        continue;
      // Accept exactly "<digits>of<digits>" after the prefix.
      const std::string suffix = fname.substr(prefix.size());
      const auto of = suffix.find("of");
      if (of == std::string::npos || of == 0 ||
          of + 2 >= suffix.size())
        continue;
      const std::string k = suffix.substr(0, of);
      const std::string w = suffix.substr(of + 2);
      auto all_digits = [](const std::string& s) {
        return !s.empty() &&
               std::all_of(s.begin(), s.end(), [](unsigned char c) {
                 return std::isdigit(c) != 0;
               });
      };
      if (!all_digits(k) || !all_digits(w)) continue;
      slots.emplace_back(static_cast<std::size_t>(std::strtoull(
                             k.c_str(), nullptr, 10)),
                         dir + "/" + fname);
    }
    ::closedir(dp);
  }
  std::sort(slots.begin(), slots.end());
  for (auto& [slot, path] : slots) out.push_back(std::move(path));
#endif
  return out;
}

TraceMergeReport merge_trace_files(const std::vector<std::string>& inputs,
                                   const std::string& out_path) {
  TraceMergeReport report;
  struct Line {
    double ts = 0.0;
    std::string text;
  };
  std::vector<Line> metadata;  // ph:M lines keep input order, sorted first
  std::vector<Line> events;

  for (const auto& input : inputs) {
    std::ifstream in(input);
    if (!in) continue;  // a worker slot that never ran
    ++report.files_read;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto ev = parse_event_line(line);
      if (!ev) {
        ++report.corrupt_lines;
        continue;
      }
      if (ev->ph == 'M')
        metadata.push_back({0.0, line});
      else
        events.push_back({ev->ts_us, line});
      ++report.events;
    }
  }

  // Stable sort: equal timestamps keep input order, so the merge of a
  // fixed input set is byte-deterministic.
  std::stable_sort(events.begin(), events.end(),
                   [](const Line& a, const Line& b) { return a.ts < b.ts; });

  std::string doc = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& text) {
    if (!first) doc += ",\n";
    first = false;
    doc += text;
  };
  for (const auto& line : metadata) emit(line.text);
  for (const auto& line : events) emit(line.text);
  doc += "\n]}\n";
  util::write_file_atomic(out_path, doc);
  return report;
}

}  // namespace oracle::obs
