#include "obs/status.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/file_util.hpp"
#include "util/string_util.hpp"

namespace oracle::obs {

namespace {

/// Extract the number following `"key":` — sufficient for snapshots this
/// module wrote itself (flat keys, no nested duplicates before `from`).
std::optional<double> find_number(const std::string& json,
                                  const std::string& key,
                                  std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle, from);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = json.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

std::optional<bool> find_bool(const std::string& json, const std::string& key,
                              std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle, from);
  if (pos == std::string::npos) return std::nullopt;
  if (json.compare(pos + needle.size(), 4, "true") == 0) return true;
  if (json.compare(pos + needle.size(), 5, "false") == 0) return false;
  return std::nullopt;
}

std::optional<std::string> find_string(const std::string& json,
                                       const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto end = json.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return json.substr(start, end - start);
}

}  // namespace

std::string StatusSnapshot::to_json() const {
  std::string out = strfmt(
      "{\"v\":%d,\"phase\":\"%s\",\"jobs_total\":%zu,\"jobs_done\":%zu,"
      "\"jobs_per_s\":%.3f,\"eta_s\":%.3f,\"elapsed_s\":%.3f,"
      "\"steals\":%zu,\"restarts\":%zu,\"quarantined\":%zu,\"fenced\":%zu,"
      "\"retries\":%zu,\"requests\":%zu,\"cache_hits\":%zu,"
      "\"connections\":%zu,\"queue_depth\":%zu,\"in_flight\":%zu,"
      "\"evicted\":%zu,\"workers\":[",
      kVersion, phase.c_str(), jobs_total, jobs_done, jobs_per_second,
      eta_seconds, elapsed_seconds, steals, restarts, quarantined, fenced,
      retries, requests, cache_hits, connections, queue_depth, in_flight,
      evicted);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerStatus& w = workers[i];
    if (i > 0) out += ',';
    out += strfmt(
        "{\"slot\":%zu,\"live\":%s,\"lease_begin\":%zu,\"lease_end\":%zu,"
        "\"frontier\":%zu,\"restarts\":%zu,\"heartbeat_age_s\":%.3f}",
        w.slot, w.live ? "true" : "false", w.lease_begin, w.lease_end,
        w.frontier, w.restarts, w.heartbeat_age_s);
  }
  out += "]}";
  return out;
}

std::optional<StatusSnapshot> StatusSnapshot::parse(const std::string& json) {
  StatusSnapshot s;
  const auto version = find_number(json, "v");
  const auto phase = find_string(json, "phase");
  const auto total = find_number(json, "jobs_total");
  const auto done = find_number(json, "jobs_done");
  if (!version || static_cast<int>(*version) != kVersion || !phase ||
      !total || !done)
    return std::nullopt;
  s.phase = *phase;
  s.jobs_total = static_cast<std::size_t>(*total);
  s.jobs_done = static_cast<std::size_t>(*done);
  s.jobs_per_second = find_number(json, "jobs_per_s").value_or(0.0);
  s.eta_seconds = find_number(json, "eta_s").value_or(-1.0);
  s.elapsed_seconds = find_number(json, "elapsed_s").value_or(0.0);
  s.steals =
      static_cast<std::size_t>(find_number(json, "steals").value_or(0.0));
  s.restarts =
      static_cast<std::size_t>(find_number(json, "restarts").value_or(0.0));
  // Lease-service era additions; absent in snapshots from older writers.
  s.quarantined =
      static_cast<std::size_t>(find_number(json, "quarantined").value_or(0.0));
  s.fenced =
      static_cast<std::size_t>(find_number(json, "fenced").value_or(0.0));
  s.retries =
      static_cast<std::size_t>(find_number(json, "retries").value_or(0.0));
  // Resident-service era additions; absent in older snapshots.
  s.requests =
      static_cast<std::size_t>(find_number(json, "requests").value_or(0.0));
  s.cache_hits =
      static_cast<std::size_t>(find_number(json, "cache_hits").value_or(0.0));
  // Concurrent-serving era additions; absent in older snapshots.
  s.connections =
      static_cast<std::size_t>(find_number(json, "connections").value_or(0.0));
  s.queue_depth =
      static_cast<std::size_t>(find_number(json, "queue_depth").value_or(0.0));
  s.in_flight =
      static_cast<std::size_t>(find_number(json, "in_flight").value_or(0.0));
  s.evicted =
      static_cast<std::size_t>(find_number(json, "evicted").value_or(0.0));

  const auto arr = json.find("\"workers\":[");
  if (arr == std::string::npos) return std::nullopt;
  std::size_t pos = arr + std::string("\"workers\":[").size();
  while (true) {
    const auto open = json.find('{', pos);
    const auto close = json.find('}', pos);
    const auto end = json.find(']', pos);
    if (end != std::string::npos && (open == std::string::npos || end < open))
      break;  // end of array
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
      return std::nullopt;
    const std::string obj = json.substr(open, close - open + 1);
    WorkerStatus w;
    const auto slot = find_number(obj, "slot");
    if (!slot) return std::nullopt;
    w.slot = static_cast<std::size_t>(*slot);
    w.live = find_bool(obj, "live").value_or(false);
    w.lease_begin = static_cast<std::size_t>(
        find_number(obj, "lease_begin").value_or(0.0));
    w.lease_end =
        static_cast<std::size_t>(find_number(obj, "lease_end").value_or(0.0));
    w.frontier =
        static_cast<std::size_t>(find_number(obj, "frontier").value_or(0.0));
    w.restarts =
        static_cast<std::size_t>(find_number(obj, "restarts").value_or(0.0));
    w.heartbeat_age_s = find_number(obj, "heartbeat_age_s").value_or(-1.0);
    s.workers.push_back(w);
    pos = close + 1;
  }
  return s;
}

void write_status_file(const std::string& path, const StatusSnapshot& s) {
  util::write_file_atomic(path, s.to_json() + "\n");
}

std::optional<StatusSnapshot> read_status_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return StatusSnapshot::parse(os.str());
}

}  // namespace oracle::obs
