#include "obs/json_lint.hpp"

#include <cctype>
#include <cstddef>

#include "util/string_util.hpp"

namespace oracle::obs {

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty())
      error = strfmt("%s at byte %zu", what.c_str(), pos);
    return false;
  }

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c; ++c, ++pos)
      if (at_end() || text[pos] != *c) return fail("bad literal");
    return true;
  }

  bool string() {
    if (at_end() || text[pos] != '"') return fail("expected string");
    ++pos;
    while (!at_end()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c == '\\') {
        ++pos;
        if (at_end()) return fail("truncated escape");
        const char esc = text[pos];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (at_end() || !std::isxdigit(static_cast<unsigned char>(text[pos])))
              return fail("bad \\u escape");
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return fail("bad escape");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (at_end() || !std::isdigit(static_cast<unsigned char>(text[pos])))
      return fail("expected digit");
    while (!at_end() && std::isdigit(static_cast<unsigned char>(text[pos])))
      ++pos;
    return true;
  }

  bool number() {
    if (!at_end() && text[pos] == '-') ++pos;
    if (at_end()) return fail("truncated number");
    if (text[pos] == '0') {
      ++pos;  // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (!at_end() && text[pos] == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!at_end() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!at_end() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("expected value");
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':'");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == '}') {
        ++pos;
        return true;
      }
      if (peek() != ',') return fail("expected ',' or '}'");
      ++pos;
    }
  }

  bool array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ']') {
        ++pos;
        return true;
      }
      if (peek() != ',') return fail("expected ',' or ']'");
      ++pos;
    }
  }
};

}  // namespace

bool json_valid(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  if (!p.value(0)) {
    if (error) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error)
      *error = strfmt("trailing garbage at byte %zu", p.pos);
    return false;
  }
  return true;
}

}  // namespace oracle::obs
