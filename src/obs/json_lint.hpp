#pragma once
// Strict structural JSON validator. The observability artifacts (merged
// Chrome traces, status snapshots) promise "always valid JSON"; the tests
// hold them to it without shelling out to python. This checks syntax only
// (RFC 8259 grammar: matched braces, quoted keys, legal literals/numbers,
// escape sequences) — it builds no document tree.

#include <string>

namespace oracle::obs {

/// True when `text` is exactly one well-formed JSON value (plus optional
/// surrounding whitespace). On failure, `*error` (when non-null) gets a
/// short description with the byte offset.
bool json_valid(const std::string& text, std::string* error = nullptr);

}  // namespace oracle::obs
