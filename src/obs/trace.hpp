#pragma once
// Run telemetry: a lock-free per-thread span/counter tracer that emits
// Chrome trace-event JSON (loadable in chrome://tracing and Perfetto).
//
// Design constraints, in order:
//   1. *Tracing off must be free.* Every instrumentation site is a single
//      relaxed atomic load + branch (Tracer::enabled()); no timestamp is
//      read, nothing is stored, no function call is made. The off path is
//      what every production sweep runs, and bench_trace_overhead gates it
//      against the uninstrumented executor.
//   2. *Tracing on must stay off the hot-path locks.* Each thread appends
//      events to its own preallocated ring buffer (registered once, under
//      a mutex, on the thread's first event) — recording an event is a
//      clock read plus a few stores, no lock, no allocation in steady
//      state. A full buffer drops events and counts the drops rather than
//      blocking or growing.
//   3. *Crash tolerance across processes.* Multi-process runs (the shard
//      supervisor and its workers) each write a private file of trace
//      event *lines* (one JSON object per line, append-mode for workers);
//      `oracle_batch trace` stitches them into one well-formed Chrome JSON
//      timeline. A SIGKILLed worker loses only its own unflushed buffer,
//      and a torn final line is skipped at merge time exactly like the
//      JSONL result stores.
//
// Timestamps are steady-clock (CLOCK_MONOTONIC) nanoseconds. On Linux that
// clock is shared by every process on the host, so parent and worker
// events land on one comparable timeline with no offset negotiation.
//
// Process identity in the merged timeline is *logical*: the supervisor
// enables itself as pid 0 and each worker slot k as pid k+1, so a
// respawned worker lands on the same track as the process it replaced and
// the timeline reads as "what happened to slot k", not "which OS pids
// existed".

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace oracle::obs {

/// One buffered trace event. Name/category/arg-name strings must have
/// static storage duration (string literals): the hot path stores the
/// pointer only. Up to two integer args ride along (job index, slot, ...).
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  char ph = 'i';            ///< X=span, i=instant, C=counter, s/f=flow
  std::int64_t ts_ns = 0;   ///< steady-clock start time
  std::int64_t dur_ns = 0;  ///< span duration (X only)
  std::uint64_t flow_id = 0;///< binds an s event to its f event
  const char* arg0_name = nullptr;
  std::int64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::int64_t arg1 = 0;
};

/// Fields recovered from one serialized trace-event line. Only what the
/// merge/validation paths need; args stay raw in `args_json`.
struct ParsedEvent {
  std::string name;
  char ph = '?';
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::int64_t pid = 0;
  std::int64_t tid = 0;
};

/// Outcome of stitching per-process trace files into one timeline.
struct TraceMergeReport {
  std::size_t files_read = 0;
  std::size_t events = 0;
  std::size_t corrupt_lines = 0;  ///< torn tails of killed workers, skipped
};

class Tracer {
 public:
  /// The one check every instrumentation site performs. Inline relaxed
  /// load: when tracing was never enabled this is the *entire* cost.
  static bool enabled() noexcept;

  /// Turn tracing on for this process. `logical_pid` is the track the
  /// process occupies in the merged timeline (supervisor 0, worker slot k
  /// = k+1); `process_name` labels it in Perfetto. `per_thread_capacity`
  /// bounds each thread's preallocated event buffer; overflow drops events
  /// (counted) instead of allocating.
  static void enable(std::uint32_t logical_pid, std::string process_name,
                     std::size_t per_thread_capacity = 1 << 16);

  /// Stop recording. Buffered events stay readable until the next enable().
  static void disable() noexcept;

  static std::uint32_t logical_pid() noexcept;
  static std::int64_t now_ns() noexcept;  ///< steady-clock nanoseconds

  /// Append one event to the calling thread's buffer (no-op when off).
  static void emit(const TraceEvent& ev) noexcept;

  /// Process-unique id for a flow-arrow pair (steal: s at the victim,
  /// f at the thief's respawn).
  static std::uint64_t next_flow_id() noexcept;

  /// Events dropped across all threads because a buffer filled up.
  static std::size_t dropped() noexcept;
  /// Events currently buffered across all threads.
  static std::size_t buffered() noexcept;

  /// Write every buffered event as trace-event *lines* (one JSON object
  /// per line, no surrounding array) — the crash-tolerant per-process
  /// format `oracle_batch trace` stitches. Append mode lets sequential
  /// processes of one worker slot share a file. Returns events written;
  /// throws SimulationError on I/O failure. Metadata (process/thread
  /// names) is emitted first.
  static std::size_t write_event_lines(const std::string& path, bool append);

  /// Write a complete, self-contained Chrome trace JSON document
  /// ({"traceEvents":[...]}) — the single-process fast path that needs no
  /// later merge. Atomic (tmp + rename).
  static std::size_t write_json(const std::string& path);

  /// Drop all buffered events (buffers stay allocated for reuse).
  static void clear() noexcept;
};

/// RAII span: records the start time at construction and emits one
/// complete ('X') event at destruction. When tracing is off, construction
/// is one branch and destruction another — no clock reads.
class Span {
 public:
  explicit Span(const char* cat, const char* name) noexcept {
    if (!Tracer::enabled()) return;
    begin(cat, name);
  }
  Span(const char* cat, const char* name, const char* arg0_name,
       std::int64_t arg0) noexcept {
    if (!Tracer::enabled()) return;
    begin(cat, name);
    ev_.arg0_name = arg0_name;
    ev_.arg0 = arg0;
  }
  Span(const char* cat, const char* name, const char* arg0_name,
       std::int64_t arg0, const char* arg1_name, std::int64_t arg1) noexcept {
    if (!Tracer::enabled()) return;
    begin(cat, name);
    ev_.arg0_name = arg0_name;
    ev_.arg0 = arg0;
    ev_.arg1_name = arg1_name;
    ev_.arg1 = arg1;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Set/overwrite an arg after construction (e.g. a result computed
  /// inside the span). No-op when the span is inactive.
  void set_arg0(const char* name, std::int64_t value) noexcept {
    if (!active_) return;
    ev_.arg0_name = name;
    ev_.arg0 = value;
  }
  void set_arg1(const char* name, std::int64_t value) noexcept {
    if (!active_) return;
    ev_.arg1_name = name;
    ev_.arg1 = value;
  }

  ~Span() {
    if (!active_) return;
    ev_.dur_ns = Tracer::now_ns() - ev_.ts_ns;
    Tracer::emit(ev_);
  }

 private:
  void begin(const char* cat, const char* name) noexcept {
    active_ = true;
    ev_.cat = cat;
    ev_.name = name;
    ev_.ph = 'X';
    ev_.ts_ns = Tracer::now_ns();
  }

  TraceEvent ev_;
  bool active_ = false;
};

/// Instant event (thread-scoped tick mark in the timeline).
inline void instant(const char* cat, const char* name,
                    const char* arg0_name = nullptr, std::int64_t arg0 = 0,
                    const char* arg1_name = nullptr,
                    std::int64_t arg1 = 0) noexcept {
  if (!Tracer::enabled()) return;
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.ph = 'i';
  ev.ts_ns = Tracer::now_ns();
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  Tracer::emit(ev);
}

/// Counter sample: Perfetto draws one counter track per (name, arg) pair.
inline void counter(const char* cat, const char* name, const char* arg0_name,
                    std::int64_t arg0, const char* arg1_name = nullptr,
                    std::int64_t arg1 = 0) noexcept {
  if (!Tracer::enabled()) return;
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.ph = 'C';
  ev.ts_ns = Tracer::now_ns();
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  Tracer::emit(ev);
}

/// Flow-arrow endpoints: emit 's' (start) at the source instant and 'f'
/// (finish) with the same id at the destination. Perfetto renders the
/// pair as an arrow — the steal visualization.
inline void flow(char ph, std::uint64_t id, const char* cat, const char* name,
                 const char* arg0_name = nullptr, std::int64_t arg0 = 0,
                 const char* arg1_name = nullptr,
                 std::int64_t arg1 = 0) noexcept {
  if (!Tracer::enabled()) return;
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.ph = ph;
  ev.flow_id = id;
  ev.ts_ns = Tracer::now_ns();
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  Tracer::emit(ev);
}

/// Serialize one event to its JSON line (exposed for tests).
std::string event_to_json_line(const TraceEvent& ev, std::uint32_t pid,
                               std::uint32_t tid);

/// Parse the fields merge/validation need from one trace-event line
/// written by this tracer; nullopt for corrupt/torn lines.
std::optional<ParsedEvent> parse_event_line(const std::string& line);

/// Stitch per-process trace-line files into one Chrome JSON document at
/// `out_path` (atomic write). Events are stably sorted by timestamp, so
/// the merge of a fixed input set is byte-deterministic. Missing inputs
/// are skipped; corrupt lines (a killed worker's torn tail) are counted
/// and dropped. Throws SimulationError when the output cannot be written.
TraceMergeReport merge_trace_files(const std::vector<std::string>& inputs,
                                   const std::string& out_path);

/// Discover the per-process trace files of a distributed run from the
/// parent path `trace_base`: "<base>.parent" plus every
/// "<base>.<k>of<W>" sibling present on disk, in deterministic (parent
/// first, then slot-number) order.
std::vector<std::string> discover_trace_files(const std::string& trace_base);

/// Per-worker trace-line file: "<base>.<k>of<W>" beside the parent's
/// "<base>.parent".
std::string worker_trace_path(const std::string& trace_base, std::size_t slot,
                              std::size_t count);
std::string parent_trace_path(const std::string& trace_base);

}  // namespace oracle::obs
