#pragma once
// Live run status: a small JSON snapshot the supervisor (and the
// single-process executor) atomically rewrites every progress tick, so
// anything — a dashboard, the future cross-host lease server, a human
// with `watch cat` — can follow a running sweep without parsing logs.
//
// Atomicity contract: the file is replaced via tmp + rename
// (util::write_file_atomic), so a reader always sees one complete
// snapshot, never a torn write. The fault-injection tests poll-read the
// file while a supervised run crashes and restarts workers underneath it
// and require every read to parse.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace oracle::obs {

/// Per-worker-slot state inside a supervised (steal-mode) run.
struct WorkerStatus {
  std::size_t slot = 0;
  bool live = false;              ///< a process currently runs this slot
  std::size_t lease_begin = 0;    ///< current lease [begin, end)
  std::size_t lease_end = 0;
  std::size_t frontier = 0;       ///< first job not yet durably committed
  std::size_t restarts = 0;       ///< respawns consumed by this slot
  double heartbeat_age_s = -1.0;  ///< since last observed progress; -1 n/a
};

struct StatusSnapshot {
  static constexpr int kVersion = 1;

  std::string phase = "running";  ///< running | merging | done | failed
  std::size_t jobs_total = 0;
  std::size_t jobs_done = 0;
  double jobs_per_second = 0.0;
  double eta_seconds = -1.0;  ///< -1 = unknown (no committed jobs yet)
  double elapsed_seconds = 0.0;
  std::size_t steals = 0;
  std::size_t restarts = 0;
  std::size_t quarantined = 0;  ///< poison jobs skipped (see exp/shard.hpp)
  std::size_t fenced = 0;       ///< stale-epoch commits rejected (lease server)
  std::size_t retries = 0;      ///< client request retries seen (lease server)
  std::size_t requests = 0;     ///< frames answered (resident oracle service)
  std::size_t cache_hits = 0;   ///< grid points served from the store index
  std::size_t connections = 0;  ///< open client connections (oracle service)
  std::size_t queue_depth = 0;  ///< queries waiting for a worker slice
  std::size_t in_flight = 0;    ///< queries executing on workers right now
  std::size_t evicted = 0;      ///< stalled/dead connections dropped
  std::vector<WorkerStatus> workers;  ///< empty for single-process runs

  /// One-line JSON document (always valid JSON; schema in README).
  std::string to_json() const;

  /// Parse a snapshot written by to_json(); nullopt on malformed input.
  static std::optional<StatusSnapshot> parse(const std::string& json);
};

/// Atomically replace `path` with the snapshot (tmp + rename). Throws
/// SimulationError when the write fails.
void write_status_file(const std::string& path, const StatusSnapshot& s);

/// Read and parse `path`; nullopt when missing or malformed.
std::optional<StatusSnapshot> read_status_file(const std::string& path);

}  // namespace oracle::obs
