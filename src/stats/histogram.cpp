#include "stats/histogram.hpp"

#include <sstream>

#include "util/error.hpp"

namespace oracle::stats {

void Histogram::add(std::size_t value, std::uint64_t weight) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += weight;
  total_ += weight;
  weighted_sum_ += static_cast<std::uint64_t>(value) * weight;
}

double Histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(weighted_sum_) / static_cast<double>(total_);
}

std::size_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cum = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    cum += counts_[v];
    if (cum >= target && cum > 0) return v;
  }
  return counts_.empty() ? 0 : counts_.size() - 1;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t v = 0; v < other.counts_.size(); ++v) counts_[v] += other.counts_[v];
  total_ += other.total_;
  weighted_sum_ += other.weighted_sum_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (v) os << ' ';
    os << v << ':' << counts_[v];
  }
  return os.str();
}

}  // namespace oracle::stats
