#include "stats/load_monitor.hpp"

#include "stats/metrics_recorder.hpp"
#include "util/error.hpp"

namespace oracle::stats {

LoadMonitor::LoadMonitor(const MetricsRecorder& recorder)
    : LoadMonitor(recorder.load_monitor()) {}

sim::SimTime LoadMonitor::time_of(std::size_t frame) const {
  ORACLE_ASSERT(frame < frames_);
  return times_[frame];
}

std::span<const double> LoadMonitor::frame(std::size_t i) const {
  ORACLE_ASSERT(i < frames_);
  return {utilization_ + i * num_pes_, num_pes_};
}

std::vector<double> LoadMonitor::pe_series(std::uint32_t pe) const {
  ORACLE_ASSERT(pe < num_pes_);
  std::vector<double> series;
  series.reserve(frames_);
  for (std::size_t f = 0; f < frames_; ++f)
    series.push_back(utilization_[f * num_pes_ + pe]);
  return series;
}

char LoadMonitor::shade(double utilization) {
  static const char kRamp[] = {'.', ':', '-', '=', '+', 'o', 'x', '*', '%', '@'};
  if (utilization <= 0.0) return kRamp[0];
  if (utilization >= 1.0) return kRamp[9];
  return kRamp[static_cast<int>(utilization * 10.0)];
}

std::string LoadMonitor::render_frame(std::size_t i, std::uint32_t rows,
                                      std::uint32_t cols) const {
  ORACLE_ASSERT(i < frames_);
  ORACLE_ASSERT_MSG(static_cast<std::uint64_t>(rows) * cols == num_pes_,
                    "rows*cols must equal the PE count");
  const double* f = utilization_ + i * num_pes_;
  std::string out;
  out.reserve(static_cast<std::size_t>(rows) * (cols + 1));
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c)
      out += shade(f[static_cast<std::size_t>(r) * cols + c]);
    out += '\n';
  }
  return out;
}

}  // namespace oracle::stats
