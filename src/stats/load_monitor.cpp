#include "stats/load_monitor.hpp"

#include "util/error.hpp"

namespace oracle::stats {

void LoadMonitor::add_frame(sim::SimTime t, std::vector<double> utilization) {
  if (num_pes_ == 0) num_pes_ = static_cast<std::uint32_t>(utilization.size());
  ORACLE_ASSERT_MSG(utilization.size() == num_pes_,
                    "frame size does not match PE count");
  ORACLE_ASSERT_MSG(times_.empty() || t >= times_.back(),
                    "frames must be recorded in time order");
  times_.push_back(t);
  frames_.push_back(std::move(utilization));
}

std::vector<double> LoadMonitor::pe_series(std::uint32_t pe) const {
  ORACLE_ASSERT(pe < num_pes_);
  std::vector<double> series;
  series.reserve(frames_.size());
  for (const auto& f : frames_) series.push_back(f[pe]);
  return series;
}

char LoadMonitor::shade(double utilization) {
  static const char kRamp[] = {'.', ':', '-', '=', '+', 'o', 'x', '*', '%', '@'};
  if (utilization <= 0.0) return kRamp[0];
  if (utilization >= 1.0) return kRamp[9];
  return kRamp[static_cast<int>(utilization * 10.0)];
}

std::string LoadMonitor::render_frame(std::size_t i, std::uint32_t rows,
                                      std::uint32_t cols) const {
  ORACLE_ASSERT(i < frames_.size());
  ORACLE_ASSERT_MSG(static_cast<std::uint64_t>(rows) * cols == num_pes_,
                    "rows*cols must equal the PE count");
  const auto& f = frames_[i];
  std::string out;
  out.reserve(static_cast<std::size_t>(rows) * (cols + 1));
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c)
      out += shade(f[static_cast<std::size_t>(r) * cols + c]);
    out += '\n';
  }
  return out;
}

}  // namespace oracle::stats
