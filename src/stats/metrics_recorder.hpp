#pragma once
// MetricsRecorder: the columnar (structure-of-arrays) store behind every
// per-run metric — per-PE utilization frames ("the utilization of each PE
// is output at every sampling interval"), per-PE queue depths, named
// scalar time series (the utilization-vs-time data of Plots 11-16), and
// named event counters (goal/response/control transmissions).
//
// The recorder is sized up front via reserve(num_pes, expected_frames) —
// called from Machine setup alongside Scheduler::reserve — so steady-state
// sampling performs zero heap allocations: a frame is one timestamp append
// plus in-place writes into preallocated columns, where the legacy path
// constructed a fresh std::vector<double> per frame. Capacity overruns
// grow geometrically (runs longer than the estimate stay correct, they
// just pay a rare amortized reallocation).
//
// LoadMonitor (stats/load_monitor.hpp) and TimeSeries (stats/timeseries.hpp)
// are non-owning views over these columns; their rendering/CSV output is
// byte-identical to the pre-recorder implementations.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "stats/load_monitor.hpp"
#include "stats/timeseries.hpp"

namespace oracle::stats {

using SeriesId = std::uint32_t;
using CounterId = std::uint32_t;

class MetricsRecorder {
 public:
  /// One sampling interval's writable slots: `utilization[pe]` in [0, 1]
  /// and `queue_depth[pe]` (the strategy-visible load), each `num_pes()`
  /// wide. Pointers stay valid until the next begin_frame call.
  struct FrameRef {
    double* utilization;
    std::int64_t* queue_depth;
  };

  MetricsRecorder() = default;

  /// Size every frame column for `expected_frames` samples over `num_pes`
  /// PEs. The PE count is fixed from here on; `expected_frames` is a
  /// capacity hint (also the default reservation for later add_series
  /// calls), not a limit.
  void reserve(std::uint32_t num_pes, std::size_t expected_frames);

  std::uint32_t num_pes() const noexcept { return num_pes_; }
  std::size_t frames() const noexcept { return times_.size(); }
  bool has_frames() const noexcept { return !times_.empty(); }

  /// Drop every recorded sample and zero the counters while keeping the
  /// layout (PE count, registered series/counters) and every column's
  /// capacity — reusing one recorder across runs stays allocation-free.
  void clear() noexcept;

  /// Trim column storage to the recorded sample count (drops the unused
  /// reserve tail). Called once per run when the recorder is handed to the
  /// RunResult, so copies of finished results don't carry slack capacity.
  void compact();

  // --- per-PE frame columns ----------------------------------------------

  /// Append one sampling interval at time `t` and return its writable
  /// column slots. Frames must be recorded in non-decreasing time order.
  FrameRef begin_frame(sim::SimTime t);

  sim::SimTime frame_time(std::size_t frame) const;
  std::span<const double> utilization_frame(std::size_t frame) const;
  std::span<const std::int64_t> queue_depth_frame(std::size_t frame) const;

  /// Utilization of one PE across all frames (strided gather).
  std::vector<double> pe_utilization_series(std::uint32_t pe) const;

  /// Non-owning heat-map view over the utilization frames. Valid while the
  /// recorder exists and no further frames are recorded.
  stats::LoadMonitor load_monitor() const noexcept;

  // --- scalar time series -------------------------------------------------

  /// Register a named series; `expected_samples` = 0 falls back to the
  /// reserve() frame hint. Returns the id used by append().
  SeriesId add_series(std::string name, std::size_t expected_samples = 0);

  void append(SeriesId id, sim::SimTime t, double value) {
    Series& s = series_[id];
    s.times.push_back(t);
    s.values.push_back(value);
  }

  std::size_t num_series() const noexcept { return series_.size(); }
  const std::string& series_name(SeriesId id) const {
    return series_[id].name;
  }
  std::size_t series_size(SeriesId id) const { return series_[id].times.size(); }

  /// Non-owning view of one series (same caveats as load_monitor()). Not
  /// noexcept: the view carries a copy of the series name.
  stats::TimeSeries series(SeriesId id) const;

  /// Lookup by name; an empty default view when absent.
  stats::TimeSeries series(std::string_view name) const;

  // --- counters ------------------------------------------------------------

  CounterId add_counter(std::string name);

  void add(CounterId id, std::uint64_t delta = 1) noexcept {
    counter_values_[id] += delta;
  }

  std::size_t num_counters() const noexcept { return counter_values_.size(); }
  const std::string& counter_name(CounterId id) const {
    return counter_names_[id];
  }
  std::uint64_t counter_value(CounterId id) const noexcept {
    return counter_values_[id];
  }

  /// Lookup by name; 0 when absent.
  std::uint64_t counter_value(std::string_view name) const noexcept;

 private:
  struct Series {
    std::string name;
    std::vector<sim::SimTime> times;
    std::vector<double> values;
  };

  std::uint32_t num_pes_ = 0;
  std::size_t frame_hint_ = 0;

  // Frame columns: times_[f] stamps frame f (and its size is the frame
  // count); utilization_/queue_depth_ hold frames contiguously, frame f at
  // [f * num_pes_, (f+1) * num_pes_). The column vectors are sized like
  // capacity — begin_frame hands out the next num_pes_ slots without
  // value-initializing them (the caller writes every slot), so a frame
  // costs no memset and, inside the reserve, no allocation.
  std::vector<sim::SimTime> times_;
  std::vector<double> utilization_;
  std::vector<std::int64_t> queue_depth_;

  std::vector<Series> series_;

  std::vector<std::string> counter_names_;
  std::vector<std::uint64_t> counter_values_;
};

}  // namespace oracle::stats
