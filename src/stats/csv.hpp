#pragma once
// CSV export for run results and sweeps, so the regenerated tables and
// series can be fed to external plotting tools (the modern stand-in for
// ORACLE's "specially formatted output that can be used to drive a
// graphics program").

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/run_result.hpp"

namespace oracle::stats {

/// Header row matching run_result_csv_row().
std::string run_result_csv_header();

/// One run as a CSV row (identification, outcome, communication columns).
std::string run_result_csv_row(const RunResult& r);

/// A whole sweep as a CSV document.
std::string sweep_to_csv(const std::vector<RunResult>& results);

/// The utilization time series of one run: "time,utilization_percent".
std::string series_to_csv(const RunResult& r);

/// The hop histogram of one run: "hops,count".
std::string hops_to_csv(const RunResult& r);

/// Write `content` to `path`; throws SimulationError on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace oracle::stats
