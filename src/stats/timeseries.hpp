#pragma once
// Sampled time series: utilization-vs-time data behind the paper's Plots
// 11-16 and its color load monitor ("the utilization of each PE is output
// at every sampling interval").
//
// TimeSeries is a non-owning view over one MetricsRecorder scalar column
// pair (stats/metrics_recorder.hpp): the recorder owns the preallocated
// (time, value) columns, this class carries the read/interpolate/CSV API.
// to_csv output is byte-identical to the pre-recorder implementation.

#include <cstdint>
#include <span>
#include <string>

#include "sim/time.hpp"

namespace oracle::stats {

/// A view of a sequence of (time, value) samples taken at a fixed interval.
class TimeSeries {
 public:
  /// Empty view.
  TimeSeries() = default;

  /// Named empty view (a series that recorded no samples keeps its name).
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  /// Raw-column view (used by the recorder and by frozen-legacy tests).
  TimeSeries(std::string name, const sim::SimTime* times, const double* values,
             std::size_t size)
      : name_(std::move(name)), times_(times), values_(values), size_(size) {}

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  sim::SimTime time_at(std::size_t i) const;
  double value_at(std::size_t i) const;

  std::span<const sim::SimTime> times() const noexcept {
    return {times_, size_};
  }
  std::span<const double> values() const noexcept { return {values_, size_}; }

  double max_value() const noexcept;
  double mean_value() const noexcept;

  /// Linear interpolation at time t (clamped to the sampled range).
  double interpolate(sim::SimTime t) const;

  /// Render as two CSV columns "time,<name>".
  std::string to_csv() const;

 private:
  std::string name_;
  const sim::SimTime* times_ = nullptr;
  const double* values_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace oracle::stats
