#pragma once
// Sampled time series: utilization-vs-time data behind the paper's Plots
// 11-16 and its color load monitor ("the utilization of each PE is output
// at every sampling interval").

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace oracle::stats {

/// A sequence of (time, value) samples taken at a fixed interval.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(sim::SimTime t, double value) {
    times_.push_back(t);
    values_.push_back(value);
  }

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return times_.size(); }
  bool empty() const noexcept { return times_.empty(); }

  sim::SimTime time_at(std::size_t i) const { return times_.at(i); }
  double value_at(std::size_t i) const { return values_.at(i); }

  const std::vector<sim::SimTime>& times() const noexcept { return times_; }
  const std::vector<double>& values() const noexcept { return values_; }

  double max_value() const noexcept;
  double mean_value() const noexcept;

  /// Linear interpolation at time t (clamped to the sampled range).
  double interpolate(sim::SimTime t) const;

  /// Render as two CSV columns "time,<name>".
  std::string to_csv() const;

 private:
  std::string name_;
  std::vector<sim::SimTime> times_;
  std::vector<double> values_;
};

}  // namespace oracle::stats
