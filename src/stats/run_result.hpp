#pragma once
// Aggregated result of one simulation run — everything the paper reports:
// completion time, average and per-PE utilization, speedup, message-distance
// distribution, message counts, channel utilization, and the sampled
// utilization time series.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/metrics_recorder.hpp"

namespace oracle::stats {

struct RunResult {
  // Identification.
  std::string topology;
  std::string strategy;
  std::string workload;
  std::uint32_t num_pes = 0;
  std::uint64_t seed = 0;

  // Outcome.
  sim::SimTime completion_time = 0;
  std::uint64_t goals_executed = 0;    // the paper's "No. of Goals" axis
  sim::Duration total_work = 0;        // sequential execution time
  sim::Duration critical_path = 0;     // lower bound on completion time

  // Utilization (fractions in [0,1]).
  double avg_utilization = 0.0;
  std::vector<double> pe_utilization;

  /// The paper's speedup: num_pes * avg_utilization (== total busy time /
  /// completion time, i.e. work done per unit time vs one PE).
  double speedup = 0.0;

  // Distribution quality ("the load must be distributed uniformly to all
  // the processors" — the paper's opening requirement).
  std::vector<std::uint64_t> pe_goals;   // goals executed per PE
  double utilization_cv = 0.0;           // stddev/mean of per-PE utilization
  double max_min_utilization_gap = 0.0;  // max - min per-PE utilization

  // Communication behaviour.
  Histogram goal_hops;                 // distance travelled per goal (Table 3)
  double avg_goal_distance = 0.0;
  std::uint64_t goal_transmissions = 0;      // channel acquisitions by goals
  std::uint64_t response_transmissions = 0;  // ... by responses
  std::uint64_t control_transmissions = 0;   // ... by control traffic
  double avg_channel_utilization = 0.0;
  double max_channel_utilization = 0.0;

  // The run's sampled metrics, moved out of the Machine's recorder: the
  // utilization time series (when sample_interval > 0), per-PE utilization
  // and queue-depth frames (when monitor_per_pe is set), and the raw
  // transmission counters.
  MetricsRecorder metrics;

  // Simulator internals (for the engine microbenches / sanity checks).
  std::uint64_t events_executed = 0;

  /// Convenience: percent utilization as plotted in the paper.
  double utilization_percent() const noexcept { return avg_utilization * 100.0; }

  /// View of the sampled utilization-vs-time series (empty when sampling
  /// was off). Valid while this RunResult is alive and unmodified.
  TimeSeries utilization_series() const {
    return metrics.series("utilization_percent");
  }

  /// View of the per-PE utilization frames (empty unless monitor_per_pe).
  LoadMonitor load_monitor() const noexcept { return metrics.load_monitor(); }
};

}  // namespace oracle::stats
