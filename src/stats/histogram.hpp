#pragma once
// Integer-bucket histogram, used for the paper's Table 3 (distribution of
// distances travelled by goal messages: buckets are hop counts 0..radius).

#include <cstdint>
#include <string>
#include <vector>

namespace oracle::stats {

class Histogram {
 public:
  /// Buckets are integers [0, max_value]; values beyond max_value grow the
  /// histogram on demand.
  explicit Histogram(std::size_t initial_buckets = 0)
      : counts_(initial_buckets, 0) {}

  void add(std::size_t value, std::uint64_t weight = 1);

  std::uint64_t count(std::size_t value) const noexcept {
    return value < counts_.size() ? counts_[value] : 0;
  }

  /// Number of buckets (= highest recorded value + 1, or the initial size).
  std::size_t buckets() const noexcept { return counts_.size(); }

  std::uint64_t total() const noexcept { return total_; }

  /// Weighted mean of recorded values (the paper's "Average" column).
  double mean() const noexcept;

  /// Smallest v such that at least `q` fraction of the mass is at <= v.
  std::size_t quantile(double q) const noexcept;

  void merge(const Histogram& other);

  /// One-line rendering "v0:c0 v1:c1 ..." for logs and tests.
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t weighted_sum_ = 0;
};

}  // namespace oracle::stats
