#include "stats/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace oracle::stats {

std::string run_result_csv_header() {
  return "topology,strategy,workload,num_pes,seed,completion_time,"
         "goals_executed,total_work,critical_path,avg_utilization,speedup,"
         "avg_goal_distance,goal_transmissions,response_transmissions,"
         "control_transmissions,avg_channel_utilization,"
         "max_channel_utilization,events_executed";
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}
}  // namespace

std::string run_result_csv_row(const RunResult& r) {
  return strfmt(
      "%s,%s,%s,%u,%llu,%lld,%llu,%lld,%lld,%.6f,%.4f,%.4f,%llu,%llu,%llu,"
      "%.6f,%.6f,%llu",
      csv_escape(r.topology).c_str(), csv_escape(r.strategy).c_str(),
      csv_escape(r.workload).c_str(), r.num_pes,
      static_cast<unsigned long long>(r.seed),
      static_cast<long long>(r.completion_time),
      static_cast<unsigned long long>(r.goals_executed),
      static_cast<long long>(r.total_work),
      static_cast<long long>(r.critical_path), r.avg_utilization, r.speedup,
      r.avg_goal_distance,
      static_cast<unsigned long long>(r.goal_transmissions),
      static_cast<unsigned long long>(r.response_transmissions),
      static_cast<unsigned long long>(r.control_transmissions),
      r.avg_channel_utilization, r.max_channel_utilization,
      static_cast<unsigned long long>(r.events_executed));
}

std::string sweep_to_csv(const std::vector<RunResult>& results) {
  std::ostringstream os;
  os << run_result_csv_header() << '\n';
  for (const auto& r : results) os << run_result_csv_row(r) << '\n';
  return os.str();
}

std::string series_to_csv(const RunResult& r) {
  std::ostringstream os;
  os << "time,utilization_percent\n";
  const auto ts = r.utilization_series();
  for (std::size_t i = 0; i < ts.size(); ++i)
    os << ts.time_at(i) << ',' << ts.value_at(i) << '\n';
  return os.str();
}

std::string hops_to_csv(const RunResult& r) {
  std::ostringstream os;
  os << "hops,count\n";
  for (std::size_t h = 0; h < r.goal_hops.buckets(); ++h)
    os << h << ',' << r.goal_hops.count(h) << '\n';
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SimulationError("cannot open '" + path + "' for writing");
  out << content;
  if (!out) throw SimulationError("write to '" + path + "' failed");
}

}  // namespace oracle::stats
