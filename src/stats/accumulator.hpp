#pragma once
// Streaming statistics accumulator (count/mean/variance/min/max) using
// Welford's algorithm. SIMSCRIPT's "excellent statistical support" boils
// down to accumulators like this one attached to model variables.

#include <cstdint>
#include <limits>

namespace oracle::stats {

class Accumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  void merge(const Accumulator& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }

  /// Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  /// Sample (Bessel-corrected) variance; 0 for fewer than 2 samples.
  double sample_variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double stddev() const noexcept;

  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  void reset() noexcept { *this = Accumulator(); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace oracle::stats
