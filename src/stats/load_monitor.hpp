#pragma once
// Per-PE utilization frames — the data behind ORACLE's load monitor:
// "the utilization of each PE is output at every sampling interval. This
// data is displayed on the graphics device with a continuum of colors
// representing relative activity on each PE. (red: busy, blue: idle)."
//
// LoadMonitor is a non-owning view over MetricsRecorder's columnar frame
// store (stats/metrics_recorder.hpp): the recorder owns the preallocated
// utilization columns, this class renders them as ASCII heat maps (terminal
// stand-in for the graphics device; see examples/visualize_load.cpp). The
// rendered output is byte-identical to the pre-recorder implementation.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace oracle::stats {

class MetricsRecorder;

class LoadMonitor {
 public:
  /// Empty view (no frames).
  LoadMonitor() = default;

  /// View over a recorder's utilization frames. The recorder must outlive
  /// the view, and recording further frames invalidates it.
  explicit LoadMonitor(const MetricsRecorder& recorder);

  /// Raw-column view (used by the recorder and by frozen-legacy tests):
  /// `utilization` holds `frames * num_pes` values, frame-major.
  LoadMonitor(const sim::SimTime* times, const double* utilization,
              std::size_t frames, std::uint32_t num_pes) noexcept
      : times_(times),
        utilization_(utilization),
        frames_(frames),
        num_pes_(num_pes) {}

  std::uint32_t num_pes() const noexcept { return num_pes_; }
  std::size_t frames() const noexcept { return frames_; }
  bool empty() const noexcept { return frames_ == 0; }

  sim::SimTime time_of(std::size_t frame) const;
  std::span<const double> frame(std::size_t i) const;

  /// Utilization of one PE across all frames.
  std::vector<double> pe_series(std::uint32_t pe) const;

  /// Render frame `i` as a rows x cols character grid; PEs are mapped
  /// row-major (matching Grid2D and DLM node numbering). Uses a 10-level
  /// shade ramp from '.' (idle) to '@' (busy) — the red..blue continuum.
  std::string render_frame(std::size_t i, std::uint32_t rows,
                           std::uint32_t cols) const;

  /// Character for a utilization level (exposed for tests).
  static char shade(double utilization);

 private:
  const sim::SimTime* times_ = nullptr;
  const double* utilization_ = nullptr;
  std::size_t frames_ = 0;
  std::uint32_t num_pes_ = 0;
};

}  // namespace oracle::stats
