#pragma once
// Per-PE utilization frames — the data behind ORACLE's load monitor:
// "the utilization of each PE is output at every sampling interval. This
// data is displayed on the graphics device with a continuum of colors
// representing relative activity on each PE. (red: busy, blue: idle)."
//
// We record the same data and render it as ASCII heat maps (terminal
// stand-in for the graphics device; see examples/visualize_load.cpp).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace oracle::stats {

class LoadMonitor {
 public:
  LoadMonitor() = default;
  explicit LoadMonitor(std::uint32_t num_pes) : num_pes_(num_pes) {}

  std::uint32_t num_pes() const noexcept { return num_pes_; }
  std::size_t frames() const noexcept { return times_.size(); }
  bool empty() const noexcept { return times_.empty(); }

  /// Record one sampling interval: `utilization[pe]` in [0, 1].
  void add_frame(sim::SimTime t, std::vector<double> utilization);

  sim::SimTime time_of(std::size_t frame) const { return times_.at(frame); }
  const std::vector<double>& frame(std::size_t i) const { return frames_.at(i); }

  /// Utilization of one PE across all frames.
  std::vector<double> pe_series(std::uint32_t pe) const;

  /// Render frame `i` as a rows x cols character grid; PEs are mapped
  /// row-major (matching Grid2D and DLM node numbering). Uses a 10-level
  /// shade ramp from '.' (idle) to '@' (busy) — the red..blue continuum.
  std::string render_frame(std::size_t i, std::uint32_t rows,
                           std::uint32_t cols) const;

  /// Character for a utilization level (exposed for tests).
  static char shade(double utilization);

 private:
  std::uint32_t num_pes_ = 0;
  std::vector<sim::SimTime> times_;
  std::vector<std::vector<double>> frames_;
};

}  // namespace oracle::stats
