#include "stats/metrics_recorder.hpp"

#include "util/error.hpp"

namespace oracle::stats {

void MetricsRecorder::reserve(std::uint32_t num_pes,
                              std::size_t expected_frames) {
  ORACLE_REQUIRE(num_pes_ == 0 || num_pes_ == num_pes,
                 "MetricsRecorder PE count is fixed once reserved");
  num_pes_ = num_pes;
  frame_hint_ = expected_frames;
  if (expected_frames > 0) {
    times_.reserve(expected_frames);
    if (utilization_.size() < expected_frames * num_pes) {
      utilization_.resize(expected_frames * num_pes);
      queue_depth_.resize(expected_frames * num_pes);
    }
  }
}

void MetricsRecorder::clear() noexcept {
  // The frame columns stay sized: they are capacity, not content (the
  // frame count lives in times_).
  times_.clear();
  for (Series& s : series_) {
    s.times.clear();
    s.values.clear();
  }
  for (auto& v : counter_values_) v = 0;
}

void MetricsRecorder::compact() {
  utilization_.resize(times_.size() * num_pes_);
  utilization_.shrink_to_fit();
  queue_depth_.resize(times_.size() * num_pes_);
  queue_depth_.shrink_to_fit();
  times_.shrink_to_fit();
  for (Series& s : series_) {
    s.times.shrink_to_fit();
    s.values.shrink_to_fit();
  }
}

MetricsRecorder::FrameRef MetricsRecorder::begin_frame(sim::SimTime t) {
  ORACLE_ASSERT_MSG(num_pes_ > 0,
                    "reserve() must size the recorder before begin_frame()");
  ORACLE_ASSERT_MSG(times_.empty() || t >= times_.back(),
                    "frames must be recorded in time order");
  const std::size_t base = times_.size() * num_pes_;
  times_.push_back(t);
  if (utilization_.size() < base + num_pes_) {
    // Outgrew the reserve: double the columns (rare, amortized O(1)).
    const std::size_t grown = std::max(base + num_pes_, 2 * utilization_.size());
    utilization_.resize(grown);
    queue_depth_.resize(grown);
  }
  return FrameRef{utilization_.data() + base, queue_depth_.data() + base};
}

sim::SimTime MetricsRecorder::frame_time(std::size_t frame) const {
  ORACLE_ASSERT(frame < times_.size());
  return times_[frame];
}

std::span<const double> MetricsRecorder::utilization_frame(
    std::size_t frame) const {
  ORACLE_ASSERT(frame < times_.size());
  return {utilization_.data() + frame * num_pes_, num_pes_};
}

std::span<const std::int64_t> MetricsRecorder::queue_depth_frame(
    std::size_t frame) const {
  ORACLE_ASSERT(frame < times_.size());
  return {queue_depth_.data() + frame * num_pes_, num_pes_};
}

std::vector<double> MetricsRecorder::pe_utilization_series(
    std::uint32_t pe) const {
  ORACLE_ASSERT(pe < num_pes_);
  std::vector<double> out;
  out.reserve(times_.size());
  for (std::size_t f = 0; f < times_.size(); ++f)
    out.push_back(utilization_[f * num_pes_ + pe]);
  return out;
}

LoadMonitor MetricsRecorder::load_monitor() const noexcept {
  return LoadMonitor(times_.data(), utilization_.data(), times_.size(),
                     num_pes_);
}

SeriesId MetricsRecorder::add_series(std::string name,
                                     std::size_t expected_samples) {
  const std::size_t cap =
      expected_samples > 0 ? expected_samples : frame_hint_;
  Series s;
  s.name = std::move(name);
  if (cap > 0) {
    s.times.reserve(cap);
    s.values.reserve(cap);
  }
  series_.push_back(std::move(s));
  return static_cast<SeriesId>(series_.size() - 1);
}

TimeSeries MetricsRecorder::series(SeriesId id) const {
  const Series& s = series_[id];
  return TimeSeries(s.name, s.times.data(), s.values.data(), s.times.size());
}

TimeSeries MetricsRecorder::series(std::string_view name) const {
  for (std::size_t i = 0; i < series_.size(); ++i)
    if (series_[i].name == name) return series(static_cast<SeriesId>(i));
  return TimeSeries(std::string(name));
}

CounterId MetricsRecorder::add_counter(std::string name) {
  counter_names_.push_back(std::move(name));
  counter_values_.push_back(0);
  return static_cast<CounterId>(counter_values_.size() - 1);
}

std::uint64_t MetricsRecorder::counter_value(
    std::string_view name) const noexcept {
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    if (counter_names_[i] == name) return counter_values_[i];
  return 0;
}

}  // namespace oracle::stats
