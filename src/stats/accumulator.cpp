#include "stats/accumulator.hpp"

#include <algorithm>
#include <cmath>

namespace oracle::stats {

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination of Welford states.
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * (n2 / n);
  m2_ += other.m2_ + delta * delta * (n1 * n2 / n);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace oracle::stats
