#include "stats/timeseries.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace oracle::stats {

double TimeSeries::max_value() const noexcept {
  double best = 0.0;
  for (double v : values_) best = std::max(best, v);
  return best;
}

double TimeSeries::mean_value() const noexcept {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double TimeSeries::interpolate(sim::SimTime t) const {
  ORACLE_ASSERT(!times_.empty());
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::lower_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = static_cast<double>(times_[hi] - times_[lo]);
  if (span <= 0.0) return values_[hi];
  const double w = static_cast<double>(t - times_[lo]) / span;
  return values_[lo] * (1.0 - w) + values_[hi] * w;
}

std::string TimeSeries::to_csv() const {
  std::ostringstream os;
  os << "time," << (name_.empty() ? "value" : name_) << '\n';
  for (std::size_t i = 0; i < times_.size(); ++i)
    os << times_[i] << ',' << values_[i] << '\n';
  return os.str();
}

}  // namespace oracle::stats
