#include "stats/timeseries.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace oracle::stats {

sim::SimTime TimeSeries::time_at(std::size_t i) const {
  ORACLE_ASSERT(i < size_);
  return times_[i];
}

double TimeSeries::value_at(std::size_t i) const {
  ORACLE_ASSERT(i < size_);
  return values_[i];
}

double TimeSeries::max_value() const noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < size_; ++i) best = std::max(best, values_[i]);
  return best;
}

double TimeSeries::mean_value() const noexcept {
  if (size_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < size_; ++i) sum += values_[i];
  return sum / static_cast<double>(size_);
}

double TimeSeries::interpolate(sim::SimTime t) const {
  ORACLE_ASSERT(size_ > 0);
  if (t <= times_[0]) return values_[0];
  if (t >= times_[size_ - 1]) return values_[size_ - 1];
  const auto* it = std::lower_bound(times_, times_ + size_, t);
  const std::size_t hi = static_cast<std::size_t>(it - times_);
  const std::size_t lo = hi - 1;
  const double span = static_cast<double>(times_[hi] - times_[lo]);
  if (span <= 0.0) return values_[hi];
  const double w = static_cast<double>(t - times_[lo]) / span;
  return values_[lo] * (1.0 - w) + values_[hi] * w;
}

std::string TimeSeries::to_csv() const {
  std::ostringstream os;
  os << "time," << (name_.empty() ? "value" : name_) << '\n';
  for (std::size_t i = 0; i < size_; ++i)
    os << times_[i] << ',' << values_[i] << '\n';
  return os.str();
}

}  // namespace oracle::stats
