#include "exp/commands.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <thread>

#include "exp/aggregate.hpp"
#include "exp/checkpoint.hpp"
#include "exp/service_protocol.hpp"
#include "obs/trace.hpp"
#include "stats/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/net.hpp"
#include "util/string_util.hpp"

namespace oracle::exp {

namespace {

using NetClock = util::NetClock;

}  // namespace

// ---------------------------------------------------------------- aggregate

std::vector<std::string> resolve_metrics(std::vector<std::string> metrics) {
  if (metrics.empty()) metrics.push_back("speedup");
  if (std::find(metrics.begin(), metrics.end(), "all") != metrics.end())
    return Aggregator::metric_names();
  for (const auto& m : metrics) {
    const auto& known = Aggregator::metric_names();
    ORACLE_REQUIRE(std::find(known.begin(), known.end(), m) != known.end(),
                   "unknown metric '" + m + "' (try --metric list)");
  }
  return metrics;
}

int run_aggregate_command(const AggregateCommand& cmd) {
  const auto metrics = resolve_metrics(cmd.metrics);
  ORACLE_REQUIRE(!cmd.stores.empty(), "aggregate needs a JSONL store path");

  try {
    const auto agg = Aggregator::from_jsonl_files(cmd.stores);
    const auto groups = agg.summarize();
    if (groups.empty()) {
      std::fprintf(stderr, "oracle_batch: no parseable records in %s\n",
                   join(cmd.stores, " ").c_str());
      return 1;
    }
    std::printf("%s: %zu runs, %zu grid points", join(cmd.stores, " ").c_str(),
                agg.rows(), agg.groups());
    if (agg.skipped_lines() > 0)
      std::printf(" (%zu corrupt lines skipped)", agg.skipped_lines());
    if (agg.duplicate_rows() > 0)
      std::printf(" (%zu duplicate records ignored)", agg.duplicate_rows());
    std::printf("\n\n");
    for (const auto& m : metrics) {
      std::printf("-- %s --\n%s\n", m.c_str(),
                  Aggregator::to_table(groups, m).c_str());
    }
    if (!cmd.csv_path.empty()) {
      const std::string csv = Aggregator::to_csv(groups);
      if (cmd.csv_path == "-") {
        std::fputs(csv.c_str(), stdout);
      } else {
        stats::write_file(cmd.csv_path, csv);
        std::printf("csv: %s\n", cmd.csv_path.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

// -------------------------------------------------------------------- trace

int run_trace_command(const TraceCommand& cmd) {
  ORACLE_REQUIRE(!cmd.base.empty(), "trace needs the --trace base path");
  const std::string out = cmd.out.empty() ? cmd.base : cmd.out;

  try {
    const auto inputs = obs::discover_trace_files(cmd.base);
    if (inputs.empty()) {
      std::fprintf(stderr,
                   "oracle_batch: no trace files found for '%s' (expected "
                   "%s.parent and/or %s.<k>of<W>)\n",
                   cmd.base.c_str(), cmd.base.c_str(), cmd.base.c_str());
      return 1;
    }
    const auto report = obs::merge_trace_files(inputs, out);
    std::printf("%s: merged %zu event(s) from %zu file(s)", out.c_str(),
                report.events, report.files_read);
    if (report.corrupt_lines > 0)
      std::printf(" (%zu corrupt line(s) skipped)", report.corrupt_lines);
    std::printf("\nload it at https://ui.perfetto.dev\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

// ------------------------------------------------------------- serve-leases

namespace {

LeaseService* g_lease_service = nullptr;

void stop_lease_service(int) {
  if (g_lease_service != nullptr) g_lease_service->stop();
}

}  // namespace

int run_serve_leases_command(const ServeLeasesCommand& cmd) {
  ORACLE_REQUIRE(cmd.workers > 0,
                 "serve-leases needs --workers W (the worker slot count)");
  ORACLE_REQUIRE(!cmd.options.journal_path.empty(),
                 "serve-leases needs --journal PATH (the recovery journal)");

  try {
    LeaseServiceOptions sopt = cmd.options;
    const auto configs = cmd.sweep.build();
    sopt.jobs = configs.size();
    // Identical clamp to the run parent's: slot_count must agree between
    // server and every worker or acquire is rejected.
    sopt.slots = std::max<std::size_t>(1, std::min(cmd.workers, sopt.jobs));

    log::set_tag("lease-server");
    LeaseService service(sopt);
    service.start();
    // Line-buffered contract for launchers: the port is the first token a
    // wrapper (or the CI smoke script) needs, flushed before serving.
    std::printf("serving %zu job(s) to %zu slot(s) on %s:%u (journal %s)\n",
                sopt.jobs, sopt.slots, sopt.listen.host.c_str(),
                static_cast<unsigned>(service.port()),
                sopt.journal_path.c_str());
    std::fflush(stdout);

    g_lease_service = &service;
    std::signal(SIGINT, stop_lease_service);
    std::signal(SIGTERM, stop_lease_service);
    const auto stats = service.run();
    g_lease_service = nullptr;

    std::printf(
        "%s: %zu request(s), %zu grant(s), %zu steal(s), %zu reassign(s), "
        "%zu expiration(s), %zu fenced, %zu journal record(s) "
        "(%zu replayed, %zu torn skipped)\n",
        stats.completed ? "sweep complete" : "stopped", stats.requests,
        stats.grants, stats.steals, stats.reassigns, stats.expirations,
        stats.fenced, stats.journal_records, stats.replayed_records,
        stats.torn_journal_records);
    return stats.completed ? 0 : 1;
  } catch (const ConfigError&) {
    throw;  // pre-flight problem: the CLI renders it as a usage error
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

// -------------------------------------------------------------------- serve

namespace {

Service* g_service = nullptr;

void stop_service(int) {
  if (g_service != nullptr) g_service->stop();
}

}  // namespace

int run_serve_command(const ServeCommand& cmd) {
  ORACLE_REQUIRE(!cmd.options.store.empty(),
                 "serve needs --store PATH (the canonical result store)");

  try {
    log::set_tag("oracle-serve");
    if (!cmd.trace_path.empty()) obs::Tracer::enable(0, "oracle-serve");

    Service service(cmd.options);
    service.start();
    // Same launcher contract as serve-leases: the bound port is the first
    // line on stdout, flushed before the poll loop starts.
    std::printf(
        "serving store %s (%zu cached record(s) across %zu store(s)) "
        "on %s:%u\n",
        cmd.options.store.c_str(), service.index().size(),
        service.index().store_count(), cmd.options.listen.host.c_str(),
        static_cast<unsigned>(service.port()));
    std::fflush(stdout);

    g_service = &service;
    std::signal(SIGINT, stop_service);
    std::signal(SIGTERM, stop_service);
    const auto stats = service.run();
    g_service = nullptr;

    std::printf(
        "%s: %zu request(s), %zu query(ies), %zu cache hit(s), "
        "%zu job(s) scheduled, %zu bad request(s), %zu evicted\n",
        stats.shutdown_requested ? "shutdown" : "stopped", stats.requests,
        stats.queries, stats.cache_hits, stats.jobs_scheduled,
        stats.bad_requests, stats.evicted);
    if (!cmd.trace_path.empty()) {
      const std::size_t events = obs::Tracer::write_json(cmd.trace_path);
      if (obs::Tracer::dropped() > 0)
        ORACLE_LOG_WARN(strfmt("trace buffer overflow: %zu event(s) dropped",
                               obs::Tracer::dropped()));
      std::printf("trace: %s (%zu events; load at https://ui.perfetto.dev)\n",
                  cmd.trace_path.c_str(), events);
    }
    return 0;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

// -------------------------------------------------------------------- query

int run_query_command(const QueryCommand& cmd) {
  const auto hp = util::HostPort::parse(cmd.server);
  ORACLE_REQUIRE(hp.has_value(), "query needs --server HOST:PORT");

  const auto frame_deadline = [&] {
    return NetClock::now() + std::chrono::milliseconds(cmd.timeout_ms);
  };

  try {
    auto sock = util::connect_tcp(*hp, frame_deadline());
    if (!sock.valid()) {
      std::fprintf(stderr, "oracle_batch: cannot connect to %s\n",
                   hp->str().c_str());
      return 1;
    }

    ServiceRequest req;
    req.seq = 1;
    req.op = ServiceOp::kQuery;
    req.query = cmd.query;
    if (!util::send_frame(sock.fd(), req.encode(), frame_deadline(),
                          kServiceMaxFrameBytes)) {
      std::fprintf(stderr, "oracle_batch: send to %s failed\n",
                   hp->str().c_str());
      return 1;
    }

    QueryStats stats;
    bool done = false;
    while (!done) {
      // Per-frame deadline: jobs may run for a while between frames, but a
      // server that stops talking entirely is a dead server.
      const auto payload =
          util::recv_frame(sock.fd(), frame_deadline(), kServiceMaxFrameBytes);
      if (!payload) {
        std::fprintf(stderr,
                     "oracle_batch: connection to %s lost mid-query\n",
                     hp->str().c_str());
        return 1;
      }
      const auto rsp = ServiceResponse::parse(*payload);
      if (!rsp || rsp->seq != req.seq) {
        std::fprintf(stderr, "oracle_batch: malformed response from %s\n",
                     hp->str().c_str());
        return 1;
      }
      switch (rsp->kind) {
        case ServiceResponseKind::kError:
          std::fprintf(stderr, "oracle_batch: server: %s\n",
                       rsp->text.c_str());
          return 1;
        case ServiceResponseKind::kProgress:
          std::fprintf(stderr,
                       "progress: %llu/%llu point(s) (%llu cached, "
                       "%llu scheduled)\n",
                       static_cast<unsigned long long>(rsp->completed),
                       static_cast<unsigned long long>(rsp->total),
                       static_cast<unsigned long long>(rsp->cached),
                       static_cast<unsigned long long>(rsp->scheduled));
          break;
        case ServiceResponseKind::kStats:
          stats.total = rsp->total;
          stats.cached = rsp->cached;
          stats.scheduled = rsp->scheduled;
          stats.failed = rsp->failed;
          stats.rounds = rsp->rounds;
          stats.wall_us = rsp->wall_us;
          break;
        case ServiceResponseKind::kTable:
          // stdout carries exactly what `oracle_batch aggregate` prints
          // for the same metric — byte-identical, that is the contract.
          std::printf("-- %s --\n%s\n", rsp->metric.c_str(),
                      rsp->text.c_str());
          break;
        case ServiceResponseKind::kCsv:
          if (cmd.csv_path.empty() || cmd.csv_path == "-") {
            std::fputs(rsp->text.c_str(), stdout);
          } else {
            stats::write_file(cmd.csv_path, rsp->text);
            std::fprintf(stderr, "csv: %s\n", cmd.csv_path.c_str());
          }
          break;
        case ServiceResponseKind::kDone:
          done = true;
          break;
        case ServiceResponseKind::kOk:
        case ServiceResponseKind::kStatus:
          break;  // not part of a query stream; ignore
      }
    }
    std::fflush(stdout);
    std::fprintf(stderr,
                 "query: %zu point(s), %zu cached, %zu scheduled, "
                 "%zu failed, %zu round(s), %.2fs\n",
                 stats.total, stats.cached, stats.scheduled, stats.failed,
                 stats.rounds, static_cast<double>(stats.wall_us) / 1e6);
    return stats.ok() ? 0 : 1;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

// ---------------------------------------------------------------- run/sweep

namespace {

/// The worker self-exec command line: the sweep re-encoded canonically
/// (core::SweepSpec::to_args) plus the engine flags workers need. The
/// shard supervisor appends the worker identity (--shard i/N /
/// --worker-slot k/W) and --resume itself.
std::vector<std::string> worker_command_line(const SweepCommand& cmd) {
  std::vector<std::string> args;
  args.push_back("run");
  for (auto& a : cmd.sweep.to_args()) args.push_back(std::move(a));
  args.push_back("--out");
  args.push_back(cmd.out);
  if (cmd.claim_shard_size > 0) {
    args.push_back("--shard");
    args.push_back(std::to_string(cmd.claim_shard_size));
  }
  if (cmd.jobs_given) {
    args.push_back("--jobs");
    args.push_back(std::to_string(cmd.jobs));
  } else {
    // Split the hardware threads across the workers instead of letting
    // every worker oversubscribe the whole machine.
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    args.push_back("--jobs");
    args.push_back(std::to_string(
        std::max<std::size_t>(1, hw / std::max<std::size_t>(1, cmd.workers))));
  }
  if (!cmd.lease_server.empty()) {
    args.push_back("--lease-timeout-ms");
    args.push_back(std::to_string(cmd.lease_timeout_ms));
    args.push_back("--lease-retries");
    args.push_back(std::to_string(cmd.lease_retries));
  }
  if (!cmd.log_level.empty()) {
    // Workers inherit the chosen verbosity.
    args.push_back("--log-level");
    args.push_back(cmd.log_level);
  }
  if (!cmd.trace_path.empty()) {
    // Forwarded so each spawned worker appends its own "<base>.<k>of<W>"
    // trace-line file beside the parent's.
    args.push_back("--trace");
    args.push_back(cmd.trace_path);
  }
  args.push_back("--no-progress");
  return args;
}

}  // namespace

int run_sweep_command(const SweepCommand& cmd) {
  const bool distributed = cmd.workers > 0 || cmd.shard.has_value() ||
                           cmd.worker_slot.has_value();
  if (distributed) {
    ORACLE_REQUIRE(!cmd.out.empty() && cmd.out != "-",
                   "distributed runs need a canonical --out store file");
    ORACLE_REQUIRE(
        cmd.csv_path.empty(),
        "--csv is not supported for distributed runs; derive a CSV from "
        "the merged store via `oracle_batch aggregate --csv`");
    ORACLE_REQUIRE(
        !(cmd.workers > 0 &&
          (cmd.shard.has_value() || cmd.worker_slot.has_value())),
        "--workers (parent) and --shard i/N / --worker-slot k/W (worker) "
        "are exclusive");
    ORACLE_REQUIRE(!(cmd.shard.has_value() && cmd.worker_slot.has_value()),
                   "--shard i/N and --worker-slot k/W are exclusive");
  }
  ORACLE_REQUIRE(
      !(cmd.steal && cmd.workers == 0 && !cmd.worker_slot.has_value()),
      "--steal needs --workers N (the supervisor forks them)");
  ORACLE_REQUIRE(!(!cmd.lease_server.empty() && cmd.workers == 0 &&
                   !cmd.worker_slot.has_value()),
                 "--lease-server needs --workers N (parent) or "
                 "--worker-slot k/W (one worker)");
  ORACLE_REQUIRE(!(!cmd.lease_server.empty() && cmd.shard.has_value()),
                 "--lease-server and --shard i/N are exclusive");
  ORACLE_REQUIRE(!(cmd.retry_quarantined && !cmd.resume),
                 "--retry-quarantined needs --resume");
  ORACLE_REQUIRE(!(cmd.resume && cmd.out == "-"),
                 "--resume needs a JSONL store to resume from; it cannot "
                 "be combined with --out -");

  BatchOptions opt;
  opt.jsonl_path = cmd.out;
  opt.csv_path = cmd.csv_path;
  opt.resume = cmd.resume;
  opt.master_seed = cmd.sweep.master_seed;
  if (cmd.jobs_given) opt.exec.workers = cmd.jobs;
  opt.exec.shard_size = cmd.claim_shard_size;
  opt.exec.progress = cmd.progress;

  bool stdout_records = false;
  if (opt.jsonl_path == "-") {
    opt.jsonl_path.clear();
    stdout_records = true;
    opt.jsonl_stream = &std::cout;
    opt.exec.progress = false;  // keep stdout pure JSONL
  }

  try {
    const core::SweepBuilder sweep = cmd.sweep.builder();
    opt.collect = false;  // sweeps can be huge; the store is the output

    if (cmd.workers > 0) {
      // Parent of a multi-process run: self-exec one worker per shard.
      // The supervisor's own lifecycle events (spawns, steals, reaps)
      // record on logical pid 0; workers take pid k+1 for slot k.
      if (!cmd.trace_path.empty()) obs::Tracer::enable(0, "supervisor");
      ShardRunOptions sopt;
      sopt.workers = cmd.workers;
      sopt.out = opt.jsonl_path;
      sopt.resume = opt.resume;
      sopt.keep_shard_stores = cmd.keep_shards;
      sopt.master_seed = opt.master_seed;
      sopt.steal = cmd.steal;
      sopt.heartbeat_ms = cmd.heartbeat_ms;
      // No explicit --heartbeat-ms in a supervised (steal or lease-server)
      // run: stall detection defaults to the adaptive, pace-tracking
      // timeout instead of a fixed guess.
      sopt.adaptive_heartbeat = (cmd.steal || !cmd.lease_server.empty()) &&
                                !cmd.heartbeat_given;
      sopt.max_restarts = cmd.max_restarts;
      sopt.retry_quarantined = cmd.retry_quarantined;
      sopt.lease_server = cmd.lease_server;
      sopt.status_path = cmd.status_path;
      sopt.trace_path = cmd.trace_path;
      sopt.exec_path = self_exec_path(cmd.self);
      sopt.worker_args = worker_command_line(cmd);

      const auto report = sweep.run_sharded(sopt);
      std::printf("%s\n", report.summary().c_str());
      for (const auto& w : report.workers) {
        if (w.ok()) continue;
        // In steal mode a failed exit may have been absorbed by an
        // auto-restart; the summary above already says so. Still surface
        // each failure for the log.
        const char* hint =
            report.merged ? "auto-restarted"
                          : "its completed jobs are safe; --resume finishes "
                            "the rest";
        const auto lvl = report.merged ? log::Level::Warn : log::Level::Error;
        if (w.term_signal != 0)
          ORACLE_LOG(lvl,
                     strfmt("shard %zu/%zu worker killed by signal %d (%s)",
                            w.shard, cmd.workers, w.term_signal, hint));
        else
          ORACLE_LOG(lvl,
                     strfmt("shard %zu/%zu worker exited with status %d (%s)",
                            w.shard, cmd.workers, w.exit_code, hint));
      }
      if (report.merged)
        std::printf("store: %s (+ checkpoint %s)\n", sopt.out.c_str(),
                    Checkpoint::default_path(sopt.out).c_str());
      if (!cmd.trace_path.empty()) {
        // Parent events go to "<base>.parent" as trace-event lines; the
        // trace subcommand stitches them with the worker files.
        obs::Tracer::write_event_lines(obs::parent_trace_path(cmd.trace_path),
                                       /*append=*/false);
        if (obs::Tracer::dropped() > 0)
          ORACLE_LOG_WARN(
              strfmt("trace buffer overflow: %zu event(s) dropped",
                     obs::Tracer::dropped()));
        std::printf(
            "trace: %s.{parent,<k>of<W>} (stitch with "
            "`oracle_batch trace %s`)\n",
            cmd.trace_path.c_str(), cmd.trace_path.c_str());
      }
      if (!cmd.status_path.empty())
        std::printf("status: %s\n", cmd.status_path.c_str());
      return report.ok() ? 0 : 1;
    }

    if (cmd.worker_slot.has_value()) {
      // Steal-mode worker: run this slot's current lease into its private
      // store, re-reading the lease before every job.
      const ShardSpec& slot = *cmd.worker_slot;
      log::set_tag(strfmt("worker %zu/%zu", slot.index, slot.count));
      if (!cmd.trace_path.empty())
        obs::Tracer::enable(static_cast<std::uint32_t>(slot.index + 1),
                            strfmt("worker %zu", slot.index));
      LeaseWorkerOptions wopt;
      wopt.canonical_out = opt.jsonl_path;
      wopt.slot = slot.index;
      wopt.slot_count = slot.count;
      wopt.merge_resume = opt.resume;
      wopt.master_seed = opt.master_seed;
      wopt.threads = cmd.jobs_given ? opt.exec.workers : 1;
      // CI fault injection: ORACLE_SHARD_FAULT="die|kill|stall:<slot>:<n>"
      // arms a one-shot fault in the matching slot ("kill" raises SIGKILL,
      // "die" _exit(1)s, "stall" sleeps through the heartbeat timeout).
      // The one-shot marker lives beside the canonical store, so the
      // supervisor's respawn of the same slot runs clean.
      if (const char* fault = std::getenv("ORACLE_SHARD_FAULT")) {
        const auto parts = split(fault, ':');
        const bool slot_match =
            parts.size() >= 3 &&
            (parts[1] == "*" ||
             static_cast<std::size_t>(parse_int(parts[1], "fault slot")) ==
                 wopt.slot);
        if (slot_match) {
          const auto n =
              static_cast<std::size_t>(parse_int(parts[2], "fault job count"));
          if (parts[0] == "poison") {
            // A poison *job*: kills whichever worker starts sweep index n,
            // every time — deliberately no once-marker, so only the
            // quarantine verdict stops the carnage.
            wopt.hooks.die_on_job_index = n;
            wopt.hooks.die_with_sigkill = true;
          } else {
            wopt.hooks.once_marker = opt.jsonl_path + ".fault_fired";
            if (parts[0] == "die" || parts[0] == "kill") {
              wopt.hooks.die_after_n_jobs = n;
              wopt.hooks.die_with_sigkill = parts[0] == "kill";
            } else if (parts[0] == "stall") {
              wopt.hooks.stall_after_n_jobs = n;
              if (parts.size() >= 4)
                wopt.hooks.stall_ms = static_cast<std::uint32_t>(
                    parse_int(parts[3], "fault stall ms"));
            }
          }
        }
      }

      auto write_worker_trace = [&] {
        if (cmd.trace_path.empty()) return;
        // Append: a respawned slot continues the same per-slot file, so
        // the merged timeline shows the whole slot history. The durable
        // prefix was flushed by the previous incarnation at its exit; a
        // SIGKILLed one just loses its own buffer.
        obs::Tracer::write_event_lines(
            obs::worker_trace_path(cmd.trace_path, slot.index, slot.count),
            /*append=*/true);
      };

      if (!cmd.lease_server.empty()) {
        // Cross-host mode: fenced leases over TCP instead of lease files.
        wopt.lease_server = cmd.lease_server;
        wopt.op_timeout_ms = cmd.lease_timeout_ms;
        wopt.retry_budget = cmd.lease_retries;
        const auto report = run_lease_client_worker(sweep.build(), wopt);
        ORACLE_LOG_INFO(strfmt(
            "%zu lease(s) run, %zu job(s) executed, %zu skipped; "
            "%llu retries, %llu reconnects%s%s",
            report.leases_run, report.batch.executed, report.batch.skipped,
            static_cast<unsigned long long>(report.retries),
            static_cast<unsigned long long>(report.reconnects),
            report.fenced ? "; fenced" : "",
            report.orphaned ? "; ORPHANED" : ""));
        for (const auto& err : report.batch.errors)
          ORACLE_LOG_ERROR("failed: " + err);
        write_worker_trace();
        if (report.orphaned) return kOrphanedExitCode;
        return report.batch.ok() ? 0 : 1;
      }

      const auto report = run_lease_worker(sweep.build(), wopt);
      ORACLE_LOG_INFO(report.summary());
      ORACLE_LOG_DEBUG(report.job_wall.summary());
      for (const auto& err : report.errors)
        ORACLE_LOG_ERROR("failed: " + err);
      write_worker_trace();
      return report.ok() ? 0 : 1;
    }

    if (cmd.shard.has_value()) {
      // Worker: run only this shard's slice into its private store.
      const ShardSpec& shard = *cmd.shard;
      log::set_tag(strfmt("shard %zu/%zu", shard.index, shard.count));
      if (!cmd.trace_path.empty())
        obs::Tracer::enable(static_cast<std::uint32_t>(shard.index + 1),
                            strfmt("shard %zu", shard.index));
      opt.shard_index = shard.index;
      opt.shard_count = shard.count;
      const std::string canonical = opt.jsonl_path;
      opt.jsonl_path = shard_store_path(canonical, shard.index, shard.count);
      if (opt.resume) opt.extra_resume_stores.push_back(canonical);
      opt.exec.progress = false;  // parents interleave many workers

      const auto outcome = sweep.run_batch(opt);
      ORACLE_LOG_INFO(outcome.report.summary());
      ORACLE_LOG_DEBUG(outcome.report.job_wall.summary());
      for (const auto& err : outcome.report.errors)
        ORACLE_LOG_ERROR("failed: " + err);
      if (!cmd.trace_path.empty()) {
        // Static shards are spawned exactly once per run, so truncate
        // rather than append — a re-run replaces the slot's trace.
        obs::Tracer::write_event_lines(
            obs::worker_trace_path(cmd.trace_path, shard.index, shard.count),
            /*append=*/false);
      }
      return outcome.report.ok() ? 0 : 1;
    }

    // Plain (threaded) run: the tracer records on logical pid 0 and the
    // complete Chrome JSON document is written directly — no merge step.
    if (!cmd.trace_path.empty()) obs::Tracer::enable(0, "oracle_batch");
    opt.exec.status_path = cmd.status_path;

    const auto outcome = sweep.run_batch(opt);
    const auto& rep = outcome.report;
    if (!stdout_records) {
      std::printf("%s\n", rep.summary().c_str());
      std::printf(
          "throughput: %.1f jobs/s, %.3fM events/s (%llu simulation events "
          "in %.2fs)\n",
          rep.jobs_per_second, rep.events_per_second() / 1e6,
          static_cast<unsigned long long>(rep.total_events),
          rep.elapsed_seconds);
      if (rep.job_wall.count > 0)
        std::printf("%s\n", rep.job_wall.summary().c_str());
      if (!opt.jsonl_path.empty())
        std::printf("store: %s (+ checkpoint %s)\n", opt.jsonl_path.c_str(),
                    Checkpoint::default_path(opt.jsonl_path).c_str());
      if (!opt.csv_path.empty())
        std::printf("csv:   %s\n", opt.csv_path.c_str());
    }
    if (!cmd.trace_path.empty()) {
      const std::size_t events = obs::Tracer::write_json(cmd.trace_path);
      if (obs::Tracer::dropped() > 0)
        ORACLE_LOG_WARN(strfmt("trace buffer overflow: %zu event(s) dropped",
                               obs::Tracer::dropped()));
      if (!stdout_records)
        std::printf(
            "trace: %s (%zu events; load at https://ui.perfetto.dev)\n",
            cmd.trace_path.c_str(), events);
    }
    for (const auto& err : rep.errors)
      ORACLE_LOG_ERROR("failed: " + err);
    return rep.ok() ? 0 : 1;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oracle_batch: %s\n", e.what());
    return 1;
  }
}

}  // namespace oracle::exp
