#pragma once
// Wire protocol for the resident oracle service (oracle_batch serve /
// query). Same dialect family as exp/lease_protocol.hpp — length-prefixed
// frames (util::send_frame) carrying versioned space-separated text — and
// the same shared util::TextFrame tokenizer underneath, so the two
// protocols are one framing implementation with different vocabularies.
//
//   request  := "s1 <seq> <op> ..."
//   response := "s1 <seq> <kind> ..."
//
// `seq` is chosen by the client and echoed in every response frame of the
// exchange, so a stale or replayed frame is recognised and dropped.
//
// Ops:
//   ping                         -> ok
//   status                       -> status <json>
//   shutdown                     -> ok (server drains and exits)
//   query <k=v>...               -> progress* stats table* [csv] done
//                                   (or error <text>)
//
// Query keys (values are comma lists / scalars; none may contain spaces):
//   preset=NAME     topos=A,B    strats=A,B    works=A,B    seeds=CSV
//   master=M        sample=N     hoplat=N      simthreads=N simparts=K
//   metrics=A,B     csv=0|1      target=METRIC:HALFWIDTH
//
// Response kinds:
//   ok                                            request accepted
//   error <text>                                  rejected (text explains)
//   status <json>                                 obs::StatusSnapshot JSON
//   progress <total> <cached> <scheduled> <done>  one per executed round
//   stats <total> <cached> <scheduled> <failed> <rounds> <wall_us>
//   table <metric> <text>                         rendered summary table
//   csv <text>                                    long-format summary CSV
//   done                                          end of the query stream
//
// Tables and CSV bodies are free text (spaces, newlines) transported
// byte-exactly — the client's output must match `oracle_batch aggregate`
// to the byte, that being the whole point of the cache.
//
// Concurrency semantics (the daemon serves many connections at once):
//   - Within ONE connection, requests are answered strictly in the order
//     they were sent; a second request sent while a query streams is
//     queued behind it, so response frames of different exchanges never
//     interleave on a connection.
//   - Across connections there is no ordering; queries execute
//     concurrently on a worker pool and ping/status answer immediately
//     even while heavy queries run.
//   - A client that stops reading while the server has responses queued
//     for it is EVICTED after a deadline: the connection is closed (the
//     client sees EOF, possibly mid-frame), never the daemon blocked.
//   - On shutdown mid-query the server either completes the stream or
//     sends `error` with kServiceShuttingDown and closes after flushing
//     — a client never observes a torn half-frame from a graceful stop.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace oracle::exp {

inline constexpr const char* kServiceProtoVersion = "s1";

/// Aggregate tables over large grids outgrow the lease protocol's 64 KiB
/// frame cap; both service peers agree on this one instead.
inline constexpr std::size_t kServiceMaxFrameBytes = 4u << 20;

/// `error` text a query aborted by daemon shutdown carries; clients match
/// on it to distinguish "server going away" from a rejected request.
inline constexpr const char* kServiceShuttingDown = "service shutting down";

enum class ServiceOp { kPing, kStatus, kQuery, kShutdown };

/// One sweep/aggregate request: which grid, which output, and optionally
/// a precision target (keep scheduling fresh seeds until every grid
/// point's 95% CI half-width for `target_metric` is <= target_ci95).
struct ServiceQuery {
  core::SweepSpec sweep;
  std::vector<std::string> metrics{"speedup"};
  bool want_csv = false;
  std::string target_metric;  ///< "" = no precision target
  double target_ci95 = 0.0;
};

struct ServiceRequest {
  std::uint64_t seq = 0;
  ServiceOp op = ServiceOp::kPing;
  ServiceQuery query;  ///< op == kQuery only

  std::string encode() const;
  static std::optional<ServiceRequest> parse(const std::string& payload);
};

enum class ServiceResponseKind {
  kOk,
  kError,
  kStatus,
  kProgress,
  kStats,
  kTable,
  kCsv,
  kDone
};

struct ServiceResponse {
  std::uint64_t seq = 0;
  ServiceResponseKind kind = ServiceResponseKind::kError;

  // progress / stats counters (subset used per kind; see header comment).
  std::uint64_t total = 0;
  std::uint64_t cached = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rounds = 0;
  std::uint64_t wall_us = 0;

  std::string metric;  ///< table only
  std::string text;    ///< error / status / table / csv body (byte-exact)

  std::string encode() const;
  static std::optional<ServiceResponse> parse(const std::string& payload);
};

}  // namespace oracle::exp
