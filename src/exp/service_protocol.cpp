#include "exp/service_protocol.hpp"

#include "util/error.hpp"
#include "util/net.hpp"
#include "util/string_util.hpp"

namespace oracle::exp {

namespace {

std::string csv_of(const std::vector<std::string>& items) {
  return join(items, ",");
}

std::vector<std::string> list_of(const std::string& value) {
  std::vector<std::string> out;
  for (const auto& item : split(value, ',')) {
    const auto t = trim(item);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string seeds_csv(const std::vector<std::uint64_t>& seeds) {
  std::vector<std::string> strs;
  strs.reserve(seeds.size());
  for (const auto s : seeds) strs.push_back(std::to_string(s));
  // Trailing comma keeps a single seed parsing as an explicit list.
  return join(strs, ",") + (seeds.size() == 1 ? "," : "");
}

const char* kind_name(ServiceResponseKind k) {
  switch (k) {
    case ServiceResponseKind::kOk: return "ok";
    case ServiceResponseKind::kError: return "error";
    case ServiceResponseKind::kStatus: return "status";
    case ServiceResponseKind::kProgress: return "progress";
    case ServiceResponseKind::kStats: return "stats";
    case ServiceResponseKind::kTable: return "table";
    case ServiceResponseKind::kCsv: return "csv";
    case ServiceResponseKind::kDone: return "done";
  }
  return "?";
}

}  // namespace

std::string ServiceRequest::encode() const {
  const auto head = strfmt("%s %llu", kServiceProtoVersion,
                           static_cast<unsigned long long>(seq));
  switch (op) {
    case ServiceOp::kPing: return head + " ping";
    case ServiceOp::kStatus: return head + " status";
    case ServiceOp::kShutdown: return head + " shutdown";
    case ServiceOp::kQuery: break;
  }
  const core::SweepSpec& s = query.sweep;
  std::string out = head + " query";
  const auto kv = [&](const char* key, const std::string& value) {
    out += ' ';
    out += key;
    out += '=';
    out += value;
  };
  if (!s.preset.empty()) kv("preset", s.preset);
  kv("topos", csv_of(s.topologies));
  kv("strats", csv_of(s.strategies));
  kv("works", csv_of(s.workloads));
  kv("seeds", seeds_csv(s.seeds));
  if (s.master_seed != 0) kv("master", std::to_string(s.master_seed));
  if (s.sample_interval >= 0) kv("sample", std::to_string(s.sample_interval));
  if (s.hop_latency >= 0) kv("hoplat", std::to_string(s.hop_latency));
  if (s.sim_threads >= 0) kv("simthreads", std::to_string(s.sim_threads));
  if (s.sim_partitions >= 0)
    kv("simparts", std::to_string(s.sim_partitions));
  kv("metrics", csv_of(query.metrics));
  if (query.want_csv) kv("csv", "1");
  if (!query.target_metric.empty())
    kv("target", query.target_metric + ":" +
                     strfmt("%.17g", query.target_ci95));
  return out;
}

std::optional<ServiceRequest> ServiceRequest::parse(
    const std::string& payload) {
  const auto frame = util::TextFrame::parse(payload, kServiceProtoVersion);
  if (!frame) return std::nullopt;
  ServiceRequest req;
  req.seq = frame->seq;
  const std::string& op = frame->tok(2);
  if (op == "ping" || op == "status" || op == "shutdown") {
    if (frame->size() != 3) return std::nullopt;
    req.op = op == "ping" ? ServiceOp::kPing
             : op == "status" ? ServiceOp::kStatus
                              : ServiceOp::kShutdown;
    return req;
  }
  if (op != "query") return std::nullopt;
  req.op = ServiceOp::kQuery;

  // Collect first, apply in fixed order: preset resets the axis defaults,
  // explicit axes/knobs then win regardless of their token order.
  std::string preset;
  std::optional<std::vector<std::string>> topos, strats, works, metrics;
  std::optional<std::vector<std::uint64_t>> seeds;
  std::optional<std::uint64_t> master;
  std::optional<std::int64_t> sample, hoplat, simthreads, simparts;
  bool want_csv = false;
  std::string target_metric;
  double target_ci95 = 0.0;

  const auto parse_knob = [](const std::string& v,
                             const char* what) -> std::optional<std::int64_t> {
    try {
      const auto n = parse_int(v, what);
      return n >= 0 ? std::optional<std::int64_t>(n) : std::nullopt;
    } catch (const ConfigError&) {
      return std::nullopt;
    }
  };

  for (std::size_t i = 3; i < frame->size(); ++i) {
    const std::string& tok = frame->tok(i);
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (value.empty()) return std::nullopt;
    if (key == "preset") {
      preset = value;
    } else if (key == "topos") {
      topos = list_of(value);
    } else if (key == "strats") {
      strats = list_of(value);
    } else if (key == "works") {
      works = list_of(value);
    } else if (key == "metrics") {
      metrics = list_of(value);
    } else if (key == "seeds") {
      try {
        seeds = core::SweepSpec::parse_seed_axis(value);
      } catch (const ConfigError&) {
        return std::nullopt;
      }
    } else if (key == "master") {
      master = util::parse_u64_token(value);
      if (!master || *master == 0) return std::nullopt;
    } else if (key == "sample") {
      if (!(sample = parse_knob(value, "sample"))) return std::nullopt;
    } else if (key == "hoplat") {
      if (!(hoplat = parse_knob(value, "hoplat"))) return std::nullopt;
    } else if (key == "simthreads") {
      if (!(simthreads = parse_knob(value, "simthreads"))) return std::nullopt;
      if (*simthreads < 1) return std::nullopt;
    } else if (key == "simparts") {
      if (!(simparts = parse_knob(value, "simparts"))) return std::nullopt;
    } else if (key == "csv") {
      if (value != "0" && value != "1") return std::nullopt;
      want_csv = value == "1";
    } else if (key == "target") {
      const auto colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0) return std::nullopt;
      target_metric = value.substr(0, colon);
      try {
        target_ci95 = parse_double(value.substr(colon + 1), "target");
      } catch (const ConfigError&) {
        return std::nullopt;
      }
      if (!(target_ci95 > 0.0)) return std::nullopt;
    } else {
      return std::nullopt;  // unknown key: reject, don't guess
    }
  }

  core::SweepSpec& s = req.query.sweep;
  if (!preset.empty()) {
    try {
      s.apply_preset(preset);
    } catch (const ConfigError&) {
      return std::nullopt;
    }
  }
  if (topos) {
    if (topos->empty()) return std::nullopt;
    s.topologies = *topos;
  }
  if (strats) {
    if (strats->empty()) return std::nullopt;
    s.strategies = *strats;
  }
  if (works) {
    if (works->empty()) return std::nullopt;
    s.workloads = *works;
  }
  if (seeds) s.seeds = *seeds;
  if (master) s.master_seed = *master;
  if (sample) s.sample_interval = *sample;
  if (hoplat) s.hop_latency = *hoplat;
  if (simthreads) s.sim_threads = *simthreads;
  if (simparts) s.sim_partitions = *simparts;
  if (metrics) {
    if (metrics->empty()) return std::nullopt;
    req.query.metrics = *metrics;
  }
  req.query.want_csv = want_csv;
  req.query.target_metric = target_metric;
  req.query.target_ci95 = target_ci95;
  return req;
}

std::string ServiceResponse::encode() const {
  const auto head = strfmt("%s %llu %s", kServiceProtoVersion,
                           static_cast<unsigned long long>(seq),
                           kind_name(kind));
  switch (kind) {
    case ServiceResponseKind::kOk:
    case ServiceResponseKind::kDone:
      return head;
    case ServiceResponseKind::kError:
    case ServiceResponseKind::kStatus:
    case ServiceResponseKind::kCsv:
      return head + " " + text;
    case ServiceResponseKind::kProgress:
      return head + strfmt(" %llu %llu %llu %llu",
                           static_cast<unsigned long long>(total),
                           static_cast<unsigned long long>(cached),
                           static_cast<unsigned long long>(scheduled),
                           static_cast<unsigned long long>(completed));
    case ServiceResponseKind::kStats:
      return head + strfmt(" %llu %llu %llu %llu %llu %llu",
                           static_cast<unsigned long long>(total),
                           static_cast<unsigned long long>(cached),
                           static_cast<unsigned long long>(scheduled),
                           static_cast<unsigned long long>(failed),
                           static_cast<unsigned long long>(rounds),
                           static_cast<unsigned long long>(wall_us));
    case ServiceResponseKind::kTable:
      return head + " " + metric + " " + text;
  }
  return {};
}

std::optional<ServiceResponse> ServiceResponse::parse(
    const std::string& payload) {
  // Table/CSV bodies are free text: stop tokenising before them so a
  // megabyte of table is never shredded into tokens.
  const auto frame =
      util::TextFrame::parse(payload, kServiceProtoVersion, /*max_tokens=*/4);
  if (!frame) return std::nullopt;
  ServiceResponse rsp;
  rsp.seq = frame->seq;
  const std::string& kind = frame->tok(2);
  if (kind == "ok" || kind == "done") {
    if (frame->size() != 3) return std::nullopt;
    rsp.kind =
        kind == "ok" ? ServiceResponseKind::kOk : ServiceResponseKind::kDone;
    return rsp;
  }
  if (kind == "error" || kind == "status" || kind == "csv") {
    rsp.kind = kind == "error"    ? ServiceResponseKind::kError
               : kind == "status" ? ServiceResponseKind::kStatus
                                  : ServiceResponseKind::kCsv;
    rsp.text = frame->text_after(2);
    return rsp;
  }
  if (kind == "table") {
    if (frame->size() < 4) return std::nullopt;
    rsp.kind = ServiceResponseKind::kTable;
    rsp.metric = frame->tok(3);
    rsp.text = frame->text_after(3);
    return rsp;
  }
  if (kind == "progress" || kind == "stats") {
    // Counter frames have no free text: re-tokenise fully and be strict.
    const auto full = util::TextFrame::parse(payload, kServiceProtoVersion);
    if (!full) return std::nullopt;
    const auto u64_at = [&](std::size_t i) { return full->u64(i); };
    if (kind == "progress") {
      if (full->size() != 7) return std::nullopt;
      const auto a = u64_at(3), b = u64_at(4), c = u64_at(5), d = u64_at(6);
      if (!a || !b || !c || !d) return std::nullopt;
      rsp.kind = ServiceResponseKind::kProgress;
      rsp.total = *a;
      rsp.cached = *b;
      rsp.scheduled = *c;
      rsp.completed = *d;
      return rsp;
    }
    if (full->size() != 9) return std::nullopt;
    const auto a = u64_at(3), b = u64_at(4), c = u64_at(5), d = u64_at(6),
               e = u64_at(7), f = u64_at(8);
    if (!a || !b || !c || !d || !e || !f) return std::nullopt;
    rsp.kind = ServiceResponseKind::kStats;
    rsp.total = *a;
    rsp.cached = *b;
    rsp.scheduled = *c;
    rsp.failed = *d;
    rsp.rounds = *e;
    rsp.wall_us = *f;
    return rsp;
  }
  return std::nullopt;
}

}  // namespace oracle::exp
