#pragma once
// Sharded parallel executor for batch experiments.
//
// Workers (util/thread_pool.hpp threads, one single-threaded Machine per
// job as machine.hpp prescribes) claim contiguous shards from the JobQueue
// and run core::run_experiment on each. Finished runs pass through an
// *ordered commit* stage: results are buffered until every earlier job has
// committed, then written to the sink and recorded in the checkpoint. Two
// consequences:
//   1. the JSONL/CSV output of a sweep is byte-identical whatever the
//      worker count (--jobs 1 vs --jobs 8), and
//   2. an interrupted run leaves a clean job-order prefix on disk, so
//      resume only ever re-runs a suffix plus the in-flight window.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/job_queue.hpp"
#include "exp/result_sink.hpp"

namespace oracle::exp {

struct ExecutorOptions {
  /// Worker threads; 0 = hardware concurrency (capped at the job count).
  std::size_t workers = 0;

  /// Jobs claimed per shard; 0 = auto (queue size / workers / 8, min 1) —
  /// coarse enough to amortize the claim, fine enough to load-balance the
  /// heavy tail of large-topology runs.
  std::size_t shard_size = 0;

  /// Emit live jobs/s + ETA lines (to `progress_stream` or stderr).
  bool progress = false;
  std::ostream* progress_stream = nullptr;
  double progress_interval_s = 0.5;

  /// Ticker rendering: -1 = auto (carriage-return overwrite only when the
  /// ticker goes to stderr and stderr is a terminal), 0 = force plain
  /// lines, 1 = force overwrite. Plain mode throttles to >= 10s between
  /// lines so CI logs don't fill with ticker output; both modes end with
  /// one newline-terminated summary line.
  int progress_tty = -1;

  /// When non-empty, atomically rewrite this file with a one-line JSON
  /// obs::StatusSnapshot on every progress tick (and a final "done" /
  /// "failed" snapshot when the run ends), independent of `progress`.
  std::string status_path;

  /// Keep at most this many failure messages in the report.
  std::size_t max_errors = 8;

  /// Cooperative cancellation hook: called with each job immediately
  /// before it would run; returning true skips that job and stops the run
  /// (no further jobs are claimed; in-flight jobs finish and their
  /// contiguous prefix still commits). Work-stealing lease workers use it
  /// to observe a lease the parent shrank mid-run: jobs at or beyond the
  /// new lease end are abandoned for the thief to pick up. The hook runs
  /// on worker threads, so it must be thread-safe.
  std::function<bool(const ExperimentJob&)> stop_before;
};

/// Order statistics over per-job wall-clock times. Computed from every job
/// whose simulation ran to completion this process (committed or not);
/// skipped/cached jobs contribute nothing.
struct DurationStats {
  std::size_t count = 0;
  double min_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;

  /// Nearest-rank percentiles over the sample set (consumes/sorts it).
  static DurationStats from_samples(std::vector<double> seconds);
  /// One line, e.g. "job wall: min 1.2ms / p50 3.4ms / ... (n=120)".
  std::string summary() const;
};

struct BatchReport {
  std::size_t total_jobs = 0;  ///< sweep size before resume skipping
  std::size_t skipped = 0;     ///< satisfied by the checkpoint/result cache
  std::size_t executed = 0;    ///< simulations actually run and committed
  std::size_t failed = 0;      ///< jobs whose simulation threw
  std::size_t cancelled = 0;   ///< jobs not committed: stop_before ended the
                               ///< run early (lease shrunk by the parent)
  /// Simulation events dispatched across all committed jobs (the sum of
  /// Scheduler::executed() per run) — the engine-level throughput measure.
  std::uint64_t total_events = 0;
  double elapsed_seconds = 0.0;
  double jobs_per_second = 0.0;
  DurationStats job_wall;           ///< per-job wall-time distribution
  std::vector<std::string> errors;  ///< first max_errors failure messages

  bool ok() const noexcept { return failed == 0; }
  double events_per_second() const noexcept {
    return elapsed_seconds > 0
               ? static_cast<double>(total_events) / elapsed_seconds
               : 0.0;
  }
  std::string summary() const;
};

class Executor {
 public:
  explicit Executor(ExecutorOptions opts = {}) : opts_(opts) {}

  /// Run every job remaining in `queue`. Sink writes and checkpoint
  /// records happen in ascending job-index order, serialized internally
  /// (sinks need no locking). A job that throws is reported in the
  /// BatchReport and neither written nor checkpointed (so a later resume
  /// retries it); sink/checkpoint I/O errors propagate.
  BatchReport run(JobQueue& queue, ResultSink& sink,
                  Checkpoint* checkpoint = nullptr);

 private:
  ExecutorOptions opts_;
};

}  // namespace oracle::exp
