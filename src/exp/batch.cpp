#include "exp/batch.hpp"

#include <fstream>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "exp/checkpoint.hpp"
#include "topo/factory.hpp"
#include "util/file_util.hpp"

namespace oracle::exp {

BatchOutcome run_batch(const std::vector<core::ExperimentConfig>& configs,
                       const BatchOptions& options) {
  JobQueue queue(configs);
  if (options.master_seed != 0) queue.derive_seeds(options.master_seed);
  if (options.shard_count > 1)
    queue.retain_shard(options.shard_index, options.shard_count);
  if (options.lease_end != BatchOptions::kNoLease)
    queue.retain_range(options.lease_begin, options.lease_end);
  // From here on "the sweep" means this shard's/lease's slice of it.
  const std::size_t planned = queue.size();

  std::string ckpt_path = options.checkpoint_path;
  if (ckpt_path.empty() && !options.jsonl_path.empty())
    ckpt_path = Checkpoint::default_path(options.jsonl_path);
  // CSV-only sweeps get a checkpoint beside the CSV, so resume works (and
  // cannot silently duplicate rows) without a JSONL store.
  if (ckpt_path.empty() && !options.csv_path.empty())
    ckpt_path = Checkpoint::default_path(options.csv_path);
  Checkpoint checkpoint(ckpt_path);
  if (!options.heartbeat_path.empty()) {
    // First touch before any work: the supervisor's liveness baseline must
    // cover the window before the first job commits.
    util::touch_file(options.heartbeat_path);
    checkpoint.set_heartbeat_path(options.heartbeat_path);
  }

  std::size_t skipped = 0;
  if (options.resume) {
    checkpoint.load();
    if (!options.jsonl_path.empty())
      checkpoint.merge(load_completed_hashes(options.jsonl_path));
    if (!options.csv_path.empty())
      checkpoint.merge(load_completed_hashes_csv(options.csv_path));
    for (const auto& store : options.extra_resume_stores)
      checkpoint.merge(load_completed_hashes(store));
    skipped = queue.skip_completed(checkpoint.completed());
  }
  if (!options.skip_hashes.empty()) {
    // Quarantined poison jobs: dropped even on a fresh run — the record of
    // the verdict lives outside the checkpoint on purpose.
    const std::unordered_set<std::uint64_t> poison(
        options.skip_hashes.begin(), options.skip_hashes.end());
    skipped += queue.skip_completed(poison);
  }

  // A fresh (non-resume) run starts a fresh checkpoint too, and must do so
  // *before* the sinks truncate the stores: killed between the two, a stale
  // checkpoint over empty stores would make a later --resume skip jobs
  // whose records no longer exist.
  if (!options.resume && checkpoint.enabled()) {
    std::ofstream truncate(checkpoint.path(), std::ios::out | std::ios::trunc);
  }

  TeeSink tee;
  std::unique_ptr<JsonlSink> jsonl_file;
  std::unique_ptr<JsonlSink> jsonl_stream;
  std::unique_ptr<CsvSink> csv_file;
  MemorySink memory;
  if (!options.jsonl_path.empty()) {
    jsonl_file =
        std::make_unique<JsonlSink>(options.jsonl_path, options.resume);
    tee.add(*jsonl_file);
  }
  if (options.jsonl_stream) {
    jsonl_stream = std::make_unique<JsonlSink>(*options.jsonl_stream);
    tee.add(*jsonl_stream);
  }
  if (!options.csv_path.empty()) {
    csv_file = std::make_unique<CsvSink>(options.csv_path, options.resume);
    tee.add(*csv_file);
  }
  if (options.collect) tee.add(memory);

  // Pre-build each distinct topology remaining in the queue into the
  // shared cache, so workers hit warm routing tables instead of racing to
  // build the same ones (a 64-seed ensemble builds each topology once).
  {
    std::vector<std::string> specs;
    specs.reserve(queue.size());
    for (std::size_t pos = 0; pos < queue.size(); ++pos)
      specs.push_back(queue.job(pos).config.topology);
    topo::prewarm_topology_cache(specs);
  }

  Executor executor(options.exec);
  BatchOutcome outcome;
  outcome.report = executor.run(queue, tee, &checkpoint);
  outcome.report.total_jobs = planned;
  outcome.report.skipped = skipped;
  if (options.collect) outcome.results = memory.results();
  return outcome;
}

}  // namespace oracle::exp
