#include "exp/job_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/rng.hpp"

namespace oracle::exp {

JobQueue::JobQueue(const std::vector<core::ExperimentConfig>& configs) {
  jobs_.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ExperimentJob job;
    job.index = i;
    job.config = configs[i];
    job.content_hash = job_content_hash(job.config);
    jobs_.push_back(std::move(job));
  }
}

JobQueue::JobQueue(JobQueue&& other) noexcept
    : jobs_(std::move(other.jobs_)),
      cursor_(other.cursor_.load(std::memory_order_relaxed)) {}

JobQueue& JobQueue::operator=(JobQueue&& other) noexcept {
  jobs_ = std::move(other.jobs_);
  cursor_.store(other.cursor_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  return *this;
}

void JobQueue::derive_seeds(std::uint64_t master) {
  for (auto& job : jobs_) {
    job.config.machine.seed = Rng::derive_seed(master, job.index);
    job.content_hash = job_content_hash(job.config);
  }
}

std::size_t JobQueue::skip_completed(
    const std::unordered_set<std::uint64_t>& completed) {
  const std::size_t before = jobs_.size();
  std::erase_if(jobs_, [&](const ExperimentJob& job) {
    return completed.contains(job.content_hash);
  });
  reset_cursor();
  return before - jobs_.size();
}

std::size_t JobQueue::retain_shard(std::size_t index, std::size_t count) {
  if (count <= 1) return 0;
  const std::size_t before = jobs_.size();
  std::erase_if(jobs_, [&](const ExperimentJob& job) {
    return job.content_hash % count != index;
  });
  reset_cursor();
  return before - jobs_.size();
}

std::size_t JobQueue::retain_range(std::size_t begin, std::size_t end) {
  const std::size_t before = jobs_.size();
  std::erase_if(jobs_, [&](const ExperimentJob& job) {
    return job.index < begin || job.index >= end;
  });
  reset_cursor();
  return before - jobs_.size();
}

JobQueue::Shard JobQueue::claim(std::size_t max_jobs) noexcept {
  if (max_jobs == 0) max_jobs = 1;
  const std::size_t begin =
      cursor_.fetch_add(max_jobs, std::memory_order_relaxed);
  if (begin >= jobs_.size()) return {};
  return {begin, std::min(begin + max_jobs, jobs_.size())};
}

}  // namespace oracle::exp
