#include "exp/checkpoint.hpp"

#include <fstream>

#include "exp/job.hpp"
#include "exp/result_sink.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/file_util.hpp"
#include "util/posix_io.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace oracle::exp {

Checkpoint::~Checkpoint() {
#if !defined(_WIN32)
  if (out_fd_ >= 0) ::close(out_fd_);
#endif
}

std::size_t Checkpoint::load() {
  if (!enabled()) return 0;
  std::ifstream in(path_);
  if (!in) return 0;
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::uint64_t hash = 0;
    if (parse_hash_hex(line, hash) && completed_.insert(hash).second)
      ++loaded;
  }
  return loaded;
}

void Checkpoint::merge(const std::unordered_set<std::uint64_t>& hashes) {
  completed_.insert(hashes.begin(), hashes.end());
}

void Checkpoint::record(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  completed_.insert(hash);
  if (!enabled()) return;
  if (out_fd_ < 0) open_for_append();
  const std::string line = hash_hex(hash) + '\n';
  // The fsync dominates commit latency; a span per record makes that cost
  // visible next to the job spans it serializes behind. write_full retries
  // EINTR/short writes — a SIGCHLD from the supervisor landing mid-append
  // must not truncate the record; the fsync is best-effort (some
  // filesystems reject it) but also EINTR-proof.
  obs::Span fsync_span("exec", "checkpoint.fsync");
  if (!util::write_full(out_fd_, line.data(), line.size()))
    throw SimulationError("checkpoint write to '" + path_ + "' failed");
  util::fsync_retry(out_fd_);
  // Heartbeat after the durable append: the supervisor may only conclude
  // "alive" from progress that is already safe on disk.
  if (!heartbeat_path_.empty()) util::touch_file(heartbeat_path_);
}

void Checkpoint::open_for_append() {
#if defined(_WIN32)
  throw SimulationError("checkpointing requires a POSIX host");
#else
  const bool partial_tail = has_partial_last_line(path_);
  out_fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (out_fd_ < 0)
    throw SimulationError("cannot open checkpoint '" + path_ + "' for writing");
  // Terminate a killed run's partial final hash line before appending.
  if (partial_tail && !util::write_full(out_fd_, "\n", 1))
    throw SimulationError("checkpoint write to '" + path_ + "' failed");
#endif
}

}  // namespace oracle::exp
