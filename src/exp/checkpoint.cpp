#include "exp/checkpoint.hpp"

#include <fstream>

#include "exp/job.hpp"
#include "exp/result_sink.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/file_util.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace oracle::exp {

namespace {

/// Push one appended line all the way to stable storage. fflush moves it
/// from the stdio buffer into the OS (enough to survive kill -9); fsync
/// persists it across power loss where the platform/filesystem allows.
bool flush_and_sync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#if !defined(_WIN32)
  const int fd = ::fileno(f);
  if (fd >= 0) ::fsync(fd);  // best-effort: some filesystems reject fsync
#endif
  return true;
}

}  // namespace

Checkpoint::~Checkpoint() {
  if (out_ != nullptr) std::fclose(out_);
}

std::size_t Checkpoint::load() {
  if (!enabled()) return 0;
  std::ifstream in(path_);
  if (!in) return 0;
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::uint64_t hash = 0;
    if (parse_hash_hex(line, hash) && completed_.insert(hash).second)
      ++loaded;
  }
  return loaded;
}

void Checkpoint::merge(const std::unordered_set<std::uint64_t>& hashes) {
  completed_.insert(hashes.begin(), hashes.end());
}

void Checkpoint::record(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  completed_.insert(hash);
  if (!enabled()) return;
  if (out_ == nullptr) open_for_append();
  const std::string line = hash_hex(hash) + '\n';
  // The fsync dominates commit latency; a span per record makes that cost
  // visible next to the job spans it serializes behind.
  obs::Span fsync_span("exec", "checkpoint.fsync");
  const bool wrote =
      std::fwrite(line.data(), 1, line.size(), out_) == line.size();
  if (!wrote || !flush_and_sync(out_))
    throw SimulationError("checkpoint write to '" + path_ + "' failed");
  // Heartbeat after the durable append: the supervisor may only conclude
  // "alive" from progress that is already safe on disk.
  if (!heartbeat_path_.empty()) util::touch_file(heartbeat_path_);
}

void Checkpoint::open_for_append() {
  const bool partial_tail = has_partial_last_line(path_);
  out_ = std::fopen(path_.c_str(), "ab");
  if (out_ == nullptr)
    throw SimulationError("cannot open checkpoint '" + path_ + "' for writing");
  // Terminate a killed run's partial final hash line before appending.
  if (partial_tail) std::fputc('\n', out_);
}

}  // namespace oracle::exp
