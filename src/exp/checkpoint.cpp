#include "exp/checkpoint.hpp"

#include "exp/job.hpp"
#include "exp/result_sink.hpp"
#include "util/error.hpp"

namespace oracle::exp {

std::size_t Checkpoint::load() {
  if (!enabled()) return 0;
  std::ifstream in(path_);
  if (!in) return 0;
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::uint64_t hash = 0;
    if (parse_hash_hex(line, hash) && completed_.insert(hash).second)
      ++loaded;
  }
  return loaded;
}

void Checkpoint::merge(const std::unordered_set<std::uint64_t>& hashes) {
  completed_.insert(hashes.begin(), hashes.end());
}

void Checkpoint::record(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  completed_.insert(hash);
  if (!enabled()) return;
  if (!out_.is_open()) open_for_append();
  out_ << hash_hex(hash) << '\n';
  out_.flush();
  if (!out_) throw SimulationError("checkpoint write to '" + path_ + "' failed");
}

void Checkpoint::open_for_append() {
  const bool partial_tail = has_partial_last_line(path_);
  out_.open(path_, std::ios::out | std::ios::app);
  if (!out_)
    throw SimulationError("cannot open checkpoint '" + path_ + "' for writing");
  // Terminate a killed run's partial final hash line before appending.
  if (partial_tail) out_ << '\n';
}

}  // namespace oracle::exp
