#pragma once
// exp::LeaseClient — the worker side of the lease service. Wraps every
// request in a per-call deadline plus jittered exponential backoff with
// an explicit retry budget; reconnects transparently; filters stale or
// duplicated responses by the echoed sequence number. Exhausting the
// budget on *consecutive* failures throws LeaseOrphanedError — the
// caller's cue to finish its committed prefix and exit with the
// distinct orphaned status.

#include <cstdint>
#include <optional>
#include <string>

#include "exp/lease_protocol.hpp"
#include "util/error.hpp"
#include "util/net.hpp"

namespace oracle::exp {

/// The server stayed unreachable past the retry budget.
struct LeaseOrphanedError : SimulationError {
  using SimulationError::SimulationError;
};

struct LeaseClientOptions {
  util::HostPort server;
  std::size_t slot = 0;
  std::size_t slot_count = 1;
  std::size_t jobs = 0;  ///< sweep size, validated by the server on acquire

  std::uint32_t op_timeout_ms = 2'000;  ///< per-attempt deadline
  std::size_t retry_budget = 10;        ///< consecutive failures → orphaned
  std::uint32_t backoff_base_ms = 50;
  std::uint32_t backoff_cap_ms = 2'000;
  std::uint64_t jitter_seed = 1;  ///< deterministic backoff jitter (tests)
};

/// A fenced lease as granted by the server.
struct LeaseGrant {
  std::uint64_t epoch = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

class LeaseClient {
 public:
  explicit LeaseClient(LeaseClientOptions options);
  ~LeaseClient();

  LeaseClient(const LeaseClient&) = delete;
  LeaseClient& operator=(const LeaseClient&) = delete;

  /// Acquire this slot's current lease (a fresh fencing epoch is issued;
  /// any previous holder of the slot is fenced). nullopt = the sweep is
  /// done. An `empty` verdict (nothing to hand out yet) is retried
  /// internally under backoff until the server says lease or done.
  std::optional<LeaseGrant> acquire();

  /// Ask for more work after draining a lease (the steal op). Same
  /// return/retry contract as acquire().
  std::optional<LeaseGrant> next_lease(std::uint64_t drained_epoch);

  enum class CommitResult { kOk, kFenced, kDone };

  /// Commit the durable frontier (doubles as the progress heartbeat).
  /// `wall_us` is the wall time of the job just finished (0 = none);
  /// kOk updates *current_end to the possibly steal-shrunk lease end.
  CommitResult commit(std::uint64_t epoch, std::size_t frontier,
                      std::uint64_t wall_us, std::size_t* current_end);

  /// Liveness probe between jobs/leases; same fencing semantics.
  CommitResult heartbeat(std::uint64_t epoch, std::size_t* current_end);

  /// Server state snapshot (the raw status JSON); nullopt on error
  /// (status is best-effort: it never throws LeaseOrphanedError).
  std::optional<std::string> status();

  std::uint64_t retries() const noexcept { return retries_; }
  std::uint64_t reconnects() const noexcept { return reconnects_; }
  std::uint64_t fenced() const noexcept { return fenced_; }

 private:
  /// One reliable round-trip: connect if needed, send, await the matching
  /// seq. Retries under backoff; throws LeaseOrphanedError past budget.
  LeaseResponse call(LeaseRequest req);
  bool attempt(const LeaseRequest& req, LeaseResponse* rsp);
  void backoff_sleep(std::size_t attempt);
  std::optional<LeaseGrant> work_request(LeaseRequest req);

  LeaseClientOptions options_;
  util::Socket conn_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t fenced_ = 0;
  std::uint64_t jitter_state_ = 1;
};

}  // namespace oracle::exp
