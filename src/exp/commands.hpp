#pragma once
// Library entry points behind every oracle_batch subcommand. The CLI
// (examples/oracle_batch.cpp) only parses argv into these request structs
// and dispatches; all run/aggregate/serve/query behaviour lives here so
// other entry points (cluster launchers, plugins, tests) are library
// clients instead of forks of the CLI.
//
// Convention: constructing an invalid command (contradictory flags,
// missing required paths) throws ConfigError from the run_* function
// before any work starts — the CLI maps that to a usage error (exit 2).
// Failures during execution are reported on stderr/log and become the
// nonzero int return (exit 1), like every subcommand always behaved.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "exp/batch.hpp"
#include "exp/lease_service.hpp"
#include "exp/service.hpp"
#include "exp/shard.hpp"

namespace oracle::exp {

/// `oracle_batch aggregate <stores...> [--metric ...] [--csv PATH|-]`.
struct AggregateCommand {
  std::vector<std::string> stores;
  std::vector<std::string> metrics;  ///< may contain "all"; empty = speedup
  std::string csv_path;              ///< "" = none, "-" = stdout
};
int run_aggregate_command(const AggregateCommand& cmd);

/// Expand/validate a --metric list ("all", "list" handled by the CLI).
std::vector<std::string> resolve_metrics(std::vector<std::string> metrics);

/// `oracle_batch trace <base> [--out PATH]`.
struct TraceCommand {
  std::string base;
  std::string out;  ///< "" = base
};
int run_trace_command(const TraceCommand& cmd);

/// `oracle_batch serve-leases ...` — the cross-host lease server.
struct ServeLeasesCommand {
  core::SweepSpec sweep;
  LeaseServiceOptions options;  ///< listen/journal/status/linger from flags
  std::size_t workers = 0;      ///< worker slot count (required)
};
int run_serve_leases_command(const ServeLeasesCommand& cmd);

/// `oracle_batch serve --store S --listen H:P ...` — the resident oracle
/// service daemon (exp::Service over the service_protocol frames).
struct ServeCommand {
  ServiceOptions options;
  std::string trace_path;  ///< Chrome trace JSON written at daemon exit
};
int run_serve_command(const ServeCommand& cmd);

/// `oracle_batch query --server H:P [sweep flags] ...` — thin client: one
/// query frame out, progress/tables/stats frames back. Tables print to
/// stdout exactly as `oracle_batch aggregate` renders them; progress and
/// stats go to stderr.
struct QueryCommand {
  std::string server;            ///< HOST:PORT (required)
  ServiceQuery query;            ///< metrics already resolved
  std::string csv_path;          ///< "" = none, "-" = stdout
  std::uint32_t timeout_ms = 600'000;  ///< per-response-frame deadline
};
int run_query_command(const QueryCommand& cmd);

/// `oracle_batch [run] ...` — the sweep/run mode in all its shapes: plain
/// threaded run, static multi-process shards, work-stealing supervisor,
/// cross-host lease client, and the internal worker roles.
struct SweepCommand {
  core::SweepSpec sweep;

  std::string out = "results.jsonl";  ///< "-" streams records to stdout
  std::string csv_path;
  bool resume = false;
  std::size_t jobs = 0;  ///< executor threads; meaningful when jobs_given
  bool jobs_given = false;
  std::size_t claim_shard_size = 0;  ///< thread-level "--shard N"
  bool progress = true;

  // Distributed mode.
  std::size_t workers = 0;                   ///< parent: fork this many
  std::optional<ShardSpec> shard;            ///< worker: static shard i/N
  std::optional<ShardSpec> worker_slot;      ///< steal worker: slot k/W
  bool keep_shards = false;
  bool steal = false;
  std::uint32_t heartbeat_ms = 0;
  bool heartbeat_given = false;  ///< absent => adaptive stall detection
  std::size_t max_restarts = 2;
  bool retry_quarantined = false;
  std::string lease_server;  ///< "" = single-host file-lease protocol
  std::uint32_t lease_timeout_ms = 2'000;
  std::size_t lease_retries = 10;

  std::string trace_path;
  std::string status_path;
  std::string log_level;  ///< forwarded to spawned workers when non-empty

  std::string self;  ///< argv[0] for worker self-exec
};
int run_sweep_command(const SweepCommand& cmd);

}  // namespace oracle::exp
