#pragma once
// Umbrella header for the batch experiment engine (src/exp/): sharded
// parallel sweep execution with streaming JSONL/CSV result stores,
// content-hash checkpointing, resume, and a multi-seed aggregation/query
// layer over the stores (exp/aggregate.hpp).
//
// Quickstart:
//   auto configs = oracle::core::SweepBuilder(base)
//                      .topologies({"grid:10x10", "dlm:5:10x10"})
//                      .strategies({"cwn", "gm"})
//                      .seeds({1, 2, 3})
//                      .build();
//   oracle::exp::BatchOptions opt;
//   opt.jsonl_path = "results.jsonl";
//   opt.resume = true;  // safe on first run too: nothing to skip yet
//   auto outcome = oracle::exp::run_batch(configs, opt);

#include "exp/aggregate.hpp"
#include "exp/batch.hpp"
#include "exp/checkpoint.hpp"
#include "exp/commands.hpp"
#include "exp/executor.hpp"
#include "exp/job.hpp"
#include "exp/job_queue.hpp"
#include "exp/lease_client.hpp"
#include "exp/lease_protocol.hpp"
#include "exp/lease_service.hpp"
#include "exp/result_sink.hpp"
#include "exp/service.hpp"
#include "exp/service_protocol.hpp"
#include "exp/shard.hpp"
#include "exp/store_index.hpp"
