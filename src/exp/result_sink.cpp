#include "exp/result_sink.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "stats/csv.hpp"
#include "util/error.hpp"
#include "util/file_util.hpp"
#include "util/string_util.hpp"

namespace oracle::exp {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g prints doubles losslessly and, crucially for byte-identical
/// output, identically for identical values.
std::string json_double(double v) { return strfmt("%.17g", v); }

}  // namespace

bool has_partial_last_line(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size <= 0) return false;
  in.seekg(-1, std::ios::end);
  char last = '\n';
  in.get(last);
  return last != '\n';
}

namespace {

// --- minimal JSONL field extraction (we only parse records we wrote) -----

/// Find the raw value substring following `"key":`; npos-pair on absence.
bool find_value(const std::string& line, const char* key, std::size_t& begin,
                std::size_t& end) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  begin = at + needle.size();
  if (begin >= line.size()) return false;
  if (line[begin] == '"') {
    // String value: scan to the closing unescaped quote.
    std::size_t i = begin + 1;
    while (i < line.size() && (line[i] != '"' || line[i - 1] == '\\')) ++i;
    if (i >= line.size()) return false;
    end = i + 1;
  } else {
    std::size_t i = begin;
    while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
    if (i >= line.size()) return false;
    end = i;
  }
  return true;
}

bool get_string(const std::string& line, const char* key, std::string& out) {
  std::size_t b = 0, e = 0;
  if (!find_value(line, key, b, e)) return false;
  if (line[b] != '"' || e - b < 2) return false;
  const std::string raw = line.substr(b + 1, e - b - 2);
  out.clear();
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size()) {
      const char c = raw[++i];
      switch (c) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: out += c;
      }
    } else {
      out += raw[i];
    }
  }
  return true;
}

bool get_u64(const std::string& line, const char* key, std::uint64_t& out) {
  std::size_t b = 0, e = 0;
  if (!find_value(line, key, b, e)) return false;
  errno = 0;
  char* endp = nullptr;
  const auto v = std::strtoull(line.c_str() + b, &endp, 10);
  if (errno != 0 || endp != line.c_str() + e) return false;
  out = v;
  return true;
}

bool get_i64(const std::string& line, const char* key, std::int64_t& out) {
  std::size_t b = 0, e = 0;
  if (!find_value(line, key, b, e)) return false;
  errno = 0;
  char* endp = nullptr;
  const auto v = std::strtoll(line.c_str() + b, &endp, 10);
  if (errno != 0 || endp != line.c_str() + e) return false;
  out = v;
  return true;
}

bool get_double(const std::string& line, const char* key, double& out) {
  std::size_t b = 0, e = 0;
  if (!find_value(line, key, b, e)) return false;
  errno = 0;
  char* endp = nullptr;
  const double v = std::strtod(line.c_str() + b, &endp);
  if (errno != 0 || endp != line.c_str() + e) return false;
  out = v;
  return true;
}

}  // namespace

std::string jsonl_record(const ExperimentJob& job, const stats::RunResult& r) {
  std::ostringstream os;
  os << "{\"job\":" << job.index                                     //
     << ",\"hash\":\"" << hash_hex(job.content_hash) << '"'          //
     << ",\"topology\":\"" << json_escape(r.topology) << '"'         //
     << ",\"strategy\":\"" << json_escape(r.strategy) << '"'         //
     << ",\"workload\":\"" << json_escape(r.workload) << '"'         //
     << ",\"num_pes\":" << r.num_pes                                 //
     << ",\"seed\":" << r.seed                                       //
     << ",\"completion_time\":" << r.completion_time                 //
     << ",\"goals_executed\":" << r.goals_executed                   //
     << ",\"total_work\":" << r.total_work                           //
     << ",\"critical_path\":" << r.critical_path                     //
     << ",\"avg_utilization\":" << json_double(r.avg_utilization)    //
     << ",\"speedup\":" << json_double(r.speedup)                    //
     << ",\"utilization_cv\":" << json_double(r.utilization_cv)      //
     << ",\"max_min_utilization_gap\":"
     << json_double(r.max_min_utilization_gap)                       //
     << ",\"avg_goal_distance\":" << json_double(r.avg_goal_distance)//
     << ",\"goal_transmissions\":" << r.goal_transmissions           //
     << ",\"response_transmissions\":" << r.response_transmissions   //
     << ",\"control_transmissions\":" << r.control_transmissions     //
     << ",\"avg_channel_utilization\":"
     << json_double(r.avg_channel_utilization)                       //
     << ",\"max_channel_utilization\":"
     << json_double(r.max_channel_utilization)                       //
     << ",\"events_executed\":" << r.events_executed << '}';
  return os.str();
}

std::optional<JsonlRecord> parse_jsonl_record(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}')
    return std::nullopt;
  JsonlRecord rec;
  std::string hash_str;
  if (!get_u64(line, "job", rec.job_index)) return std::nullopt;
  if (!get_string(line, "hash", hash_str) ||
      !parse_hash_hex(hash_str, rec.content_hash))
    return std::nullopt;
  auto& r = rec.result;
  std::uint64_t num_pes = 0;
  if (!get_string(line, "topology", r.topology) ||
      !get_string(line, "strategy", r.strategy) ||
      !get_string(line, "workload", r.workload) ||
      !get_u64(line, "num_pes", num_pes) || !get_u64(line, "seed", r.seed) ||
      !get_i64(line, "completion_time", r.completion_time) ||
      !get_u64(line, "goals_executed", r.goals_executed) ||
      !get_i64(line, "total_work", r.total_work) ||
      !get_i64(line, "critical_path", r.critical_path) ||
      !get_double(line, "avg_utilization", r.avg_utilization) ||
      !get_double(line, "speedup", r.speedup) ||
      !get_double(line, "utilization_cv", r.utilization_cv) ||
      !get_double(line, "max_min_utilization_gap", r.max_min_utilization_gap) ||
      !get_double(line, "avg_goal_distance", r.avg_goal_distance) ||
      !get_u64(line, "goal_transmissions", r.goal_transmissions) ||
      !get_u64(line, "response_transmissions", r.response_transmissions) ||
      !get_u64(line, "control_transmissions", r.control_transmissions) ||
      !get_double(line, "avg_channel_utilization",
                  r.avg_channel_utilization) ||
      !get_double(line, "max_channel_utilization",
                  r.max_channel_utilization) ||
      !get_u64(line, "events_executed", r.events_executed))
    return std::nullopt;
  r.num_pes = static_cast<std::uint32_t>(num_pes);
  return rec;
}

std::unordered_set<std::uint64_t> load_completed_hashes(
    const std::string& path) {
  std::unordered_set<std::uint64_t> done;
  std::ifstream in(path);
  if (!in) return done;
  std::string line;
  while (std::getline(in, line)) {
    if (const auto rec = parse_jsonl_record(line)) done.insert(rec->content_hash);
  }
  return done;
}

std::unordered_set<std::uint64_t> load_completed_hashes_csv(
    const std::string& path) {
  std::unordered_set<std::uint64_t> done;
  std::ifstream in(path);
  if (!in) return done;
  // Field-separating commas only: commas inside quoted fields (escaped
  // strategy specs like "cwn(r=9,h=2)") don't count. The "" escape inside
  // a quoted field toggles the flag twice, which is harmless.
  const auto fields = [](const std::string& s) {
    long n = 0;
    bool quoted = false;
    for (const char c : s) {
      if (c == '"') {
        quoted = !quoted;
      } else if (c == ',' && !quoted) {
        ++n;
      }
    }
    return n;
  };
  const auto expected = fields(CsvSink::header());
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("job,hash,", 0) == 0) continue;  // header
    if (fields(line) != expected) continue;         // truncated/foreign row
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) continue;
    std::uint64_t hash = 0;
    if (parse_hash_hex(line.substr(c1 + 1, c2 - c1 - 1), hash))
      done.insert(hash);
  }
  return done;
}

// ------------------------------------------------------------- JsonlSink --

JsonlSink::JsonlSink(const std::string& path, bool append) : path_(path) {
  const bool partial_tail = append && has_partial_last_line(path);
  file_.open(path, append ? (std::ios::out | std::ios::app)
                          : (std::ios::out | std::ios::trunc));
  if (!file_) throw SimulationError("cannot open '" + path + "' for writing");
  // Terminate a killed run's partial final line so the first appended
  // record starts on its own line (the partial line itself stays ignored
  // by parse_jsonl_record, exactly as during the resume scan).
  if (partial_tail) file_ << '\n';
  os_ = &file_;
}

void JsonlSink::write(const ExperimentJob& job, const stats::RunResult& r) {
  *os_ << jsonl_record(job, r) << '\n';
  if (!*os_) throw SimulationError("JSONL write failed");
}

void JsonlSink::flush() {
  os_->flush();
  if (!path_.empty()) util::fsync_path(path_);
}

// --------------------------------------------------------------- CsvSink --

CsvSink::CsvSink(const std::string& path, bool append) : path_(path) {
  bool partial_tail = false;
  if (append) {
    // Only emit the header when the file is empty / absent.
    std::ifstream probe(path);
    header_written_ = probe.good() && probe.peek() != std::ifstream::traits_type::eof();
    partial_tail = has_partial_last_line(path);
  }
  file_.open(path, append ? (std::ios::out | std::ios::app)
                          : (std::ios::out | std::ios::trunc));
  if (!file_) throw SimulationError("cannot open '" + path + "' for writing");
  if (partial_tail) file_ << '\n';
  os_ = &file_;
}

std::string CsvSink::header() {
  return "job,hash," + stats::run_result_csv_header();
}

std::string CsvSink::row(const ExperimentJob& job, const stats::RunResult& r) {
  return strfmt("%llu,%s,", static_cast<unsigned long long>(job.index),
                hash_hex(job.content_hash).c_str()) +
         stats::run_result_csv_row(r);
}

void CsvSink::write(const ExperimentJob& job, const stats::RunResult& r) {
  if (!header_written_) {
    *os_ << header() << '\n';
    header_written_ = true;
  }
  *os_ << row(job, r) << '\n';
  if (!*os_) throw SimulationError("CSV write failed");
}

void CsvSink::flush() {
  os_->flush();
  if (!path_.empty()) util::fsync_path(path_);
}

// ------------------------------------------------------------ MemorySink --

std::vector<stats::RunResult> MemorySink::results() const {
  std::vector<stats::RunResult> out;
  out.reserve(runs_.size());
  for (const auto& [job, r] : runs_) out.push_back(r);
  return out;
}

}  // namespace oracle::exp
