#pragma once
// exp::Service — the resident oracle: a memoized serving layer over the
// content-hash result stores. A query names a sweep (grid spec + seeds +
// optional precision target); the service answers every (config, seed)
// point already present in its StoreIndex straight from disk, schedules
// ONLY the missing jobs through the existing batch executor (resume-mode
// run into the canonical store, so new records commit durably and
// byte-identically ordered), refreshes the index, and streams progress +
// final aggregates back through a ServiceSink.
//
// Cost model, which is the point: a repeated query is pure index lookups
// — zero jobs scheduled, aggregates byte-identical to `oracle_batch
// aggregate` over the same store — and a novel query costs exactly its
// missing grid points.
//
// Two front ends share the same query engine:
//   - in-process: library clients construct a Service and call query()
//     with their own sink (the tests do this);
//   - the daemon: start()/run() serve the service_protocol frames over
//     TCP to MANY clients at once.
//
// Daemon concurrency model (PR 10): one poll thread owns every socket and
// runs per-connection non-blocking state machines — partial reads
// accumulate in a FrameSplitter, responses queue in a per-connection
// write buffer flushed under POLLOUT, and a peer that stalls either
// direction past its deadline is evicted (only that connection drops;
// see ServiceStats::evicted). ping/status/shutdown answer inline on the
// poll thread, so they are never behind a heavy query. Query execution
// happens on a small worker pool: each query advances in SLICES of at
// most `job_budget` scheduled jobs, and unfinished queries go to the back
// of a round-robin run queue — a million-point cold sweep cannot starve a
// one-point warm hit, it merely shares. Workers never touch sockets; they
// hand completed frames to the poll thread through a completion queue +
// wake pipe. Store appends are serialized (the batch executor already
// uses every core), and the StoreIndex is behind a readers-writer lock:
// aggregation reads share, the post-commit refresh() is exclusive, so
// concurrent queries always see a consistent snapshot. Concurrency
// changes scheduling, never results: warm tables stay byte-identical to
// `oracle_batch aggregate` regardless of client count.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/service_protocol.hpp"
#include "exp/store_index.hpp"
#include "util/net.hpp"

namespace oracle::exp {

struct ServiceOptions {
  /// Canonical JSONL store: cache source AND destination for scheduled
  /// jobs (required).
  std::string store;

  /// Additional read-only stores indexed as cache sources (e.g. per-host
  /// shard stores collected from a fleet run). Never written.
  std::vector<std::string> extra_stores;

  util::HostPort listen{"127.0.0.1", 0};  ///< daemon bind; port 0 ephemeral

  std::size_t exec_threads = 0;  ///< executor workers; 0 = hardware
  std::size_t shard_size = 0;    ///< executor shard size; 0 = auto

  /// Optional obs::StatusSnapshot file, atomically rewritten every
  /// status_interval_ms while the daemon runs (phase "serving", request +
  /// cache-hit + connection/queue-depth/in-flight counters).
  std::string status_path;
  std::uint32_t status_interval_ms = 500;

  std::uint32_t poll_ms = 50;  ///< daemon poll tick

  /// Precision-target queries stop extending the seed axis after this
  /// many extra rounds even if some grid point is still wider than asked.
  std::size_t max_target_rounds = 8;

  // ---- daemon concurrency knobs ----

  /// Worker threads executing query slices. 0 = auto (min(hardware, 8)).
  /// 1 still keeps the poll loop responsive — queries just execute one
  /// slice at a time.
  std::size_t query_threads = 0;

  /// Fairness budget: max jobs one query may schedule per worker slice
  /// before it yields the worker to the next queued query.
  std::size_t job_budget = 64;

  /// A connection with queued response bytes that accepts none of them
  /// for this long is evicted (the stalled-client bound).
  std::uint32_t write_timeout_ms = 10'000;

  /// A connection holding a partial request frame that sends no further
  /// bytes for this long is evicted.
  std::uint32_t read_timeout_ms = 10'000;

  /// On shutdown, how long run() keeps flushing queued response bytes to
  /// well-behaved clients before closing their connections anyway.
  std::uint32_t drain_timeout_ms = 2'000;

  /// SO_SNDBUF for accepted connections; 0 = OS default. Bounds the bytes
  /// a stalled client can sink into the kernel before write_timeout_ms
  /// governs (also what the eviction tests use to stall cheaply).
  int sndbuf_bytes = 0;
};

/// Outcome of one query.
struct QueryStats {
  std::size_t total = 0;      ///< grid points requested (final round)
  std::size_t cached = 0;     ///< answered from the index, first round
  std::size_t scheduled = 0;  ///< jobs actually executed (all rounds)
  std::size_t failed = 0;     ///< scheduled jobs whose simulation threw
  std::size_t rounds = 1;     ///< sweep rounds (1 + precision extensions)
  std::uint64_t wall_us = 0;

  bool ok() const noexcept { return failed == 0; }
};

/// Streaming back-channel for query(): progress while jobs run, then the
/// rendered outputs. The daemon implements this as frame writes; the CLI
/// query client prints; tests collect.
class ServiceSink {
 public:
  virtual ~ServiceSink() = default;
  virtual void on_progress(std::size_t /*total*/, std::size_t /*cached*/,
                           std::size_t /*scheduled*/,
                           std::size_t /*completed*/) {}
  virtual void on_table(const std::string& /*metric*/,
                        const std::string& /*table*/) {}
  virtual void on_csv(const std::string& /*csv*/) {}
  virtual void on_stats(const QueryStats& /*stats*/) {}
};

/// Aggregate daemon counters (also surfaced via the status op/file).
struct ServiceStats {
  std::size_t requests = 0;      ///< frames parsed and answered
  std::size_t queries = 0;       ///< query ops served
  std::size_t bad_requests = 0;  ///< unparseable/invalid frames
  std::size_t cache_hits = 0;    ///< grid points answered from the index
  std::size_t jobs_scheduled = 0;  ///< jobs executed on behalf of queries
  std::size_t jobs_requested = 0;  ///< grid points asked across queries
  std::size_t evicted = 0;  ///< connections dropped for stalling a deadline
  bool shutdown_requested = false;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Build the index over store + extra_stores. Idempotent (re-entry
  /// refreshes). Throws ConfigError when no store is configured.
  void open();

  /// Serve one sweep request in-process. Throws ConfigError on an invalid
  /// query (unknown metric, precision target on a master-seed sweep, a
  /// target whose rounds cannot make progress or whose metric is NaN).
  /// Store I/O failures propagate as SimulationError.
  QueryStats query(const ServiceQuery& q, ServiceSink& sink);

  const StoreIndex& index() const;

  // ---- daemon mode ----
  /// open() + bind + listen. Throws SimulationError on bind failure.
  void start();

  /// The actually-bound port (after start(); resolves listen.port == 0).
  std::uint16_t port() const;

  /// Serve frames until stop() or a shutdown request, then drain: queued
  /// queries are failed with a shutdown error, in-flight slices finish,
  /// response buffers flush (bounded by drain_timeout_ms). Returns the
  /// final counters. Call start() first.
  ServiceStats run();

  /// Thread-safe shutdown request: run() begins draining within one poll
  /// tick (commands.cpp installs this as the SIGINT/SIGTERM action).
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  const ServiceStats& stats() const { return stats_; }

 private:
  struct Impl;
  Impl* impl_;
  ServiceOptions options_;
  ServiceStats stats_;
  std::atomic<bool> stop_{false};
};

}  // namespace oracle::exp
