#pragma once
// exp::Service — the resident oracle: a memoized serving layer over the
// content-hash result stores. A query names a sweep (grid spec + seeds +
// optional precision target); the service answers every (config, seed)
// point already present in its StoreIndex straight from disk, schedules
// ONLY the missing jobs through the existing batch executor (resume-mode
// run into the canonical store, so new records commit durably and
// byte-identically ordered), refreshes the index, and streams progress +
// final aggregates back through a ServiceSink.
//
// Cost model, which is the point: a repeated query is pure index lookups
// — zero jobs scheduled, aggregates byte-identical to `oracle_batch
// aggregate` over the same store — and a novel query costs exactly its
// missing grid points.
//
// Two front ends share query():
//   - in-process: library clients construct a Service and call query()
//     with their own sink (the tests do this);
//   - the daemon: start()/run() serve the service_protocol frames over
//     TCP with the same single-threaded poll loop as exp::LeaseService,
//     one request at a time (queries run inline; the executor already
//     uses every core, so concurrent queries would only fight over it).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/service_protocol.hpp"
#include "exp/store_index.hpp"
#include "util/net.hpp"

namespace oracle::exp {

struct ServiceOptions {
  /// Canonical JSONL store: cache source AND destination for scheduled
  /// jobs (required).
  std::string store;

  /// Additional read-only stores indexed as cache sources (e.g. per-host
  /// shard stores collected from a fleet run). Never written.
  std::vector<std::string> extra_stores;

  util::HostPort listen{"127.0.0.1", 0};  ///< daemon bind; port 0 ephemeral

  std::size_t exec_threads = 0;  ///< executor workers; 0 = hardware
  std::size_t shard_size = 0;    ///< executor shard size; 0 = auto

  /// Optional obs::StatusSnapshot file, atomically rewritten every
  /// status_interval_ms while the daemon runs (phase "serving", request +
  /// cache-hit counters).
  std::string status_path;
  std::uint32_t status_interval_ms = 500;

  std::uint32_t poll_ms = 50;  ///< daemon poll tick

  /// Precision-target queries stop extending the seed axis after this
  /// many extra rounds even if some grid point is still wider than asked.
  std::size_t max_target_rounds = 8;
};

/// Outcome of one query.
struct QueryStats {
  std::size_t total = 0;      ///< grid points requested (final round)
  std::size_t cached = 0;     ///< answered from the index, first round
  std::size_t scheduled = 0;  ///< jobs actually executed (all rounds)
  std::size_t failed = 0;     ///< scheduled jobs whose simulation threw
  std::size_t rounds = 1;     ///< sweep rounds (1 + precision extensions)
  std::uint64_t wall_us = 0;

  bool ok() const noexcept { return failed == 0; }
};

/// Streaming back-channel for query(): progress while jobs run, then the
/// rendered outputs. The daemon implements this as frame writes; the CLI
/// query client prints; tests collect.
class ServiceSink {
 public:
  virtual ~ServiceSink() = default;
  virtual void on_progress(std::size_t /*total*/, std::size_t /*cached*/,
                           std::size_t /*scheduled*/,
                           std::size_t /*completed*/) {}
  virtual void on_table(const std::string& /*metric*/,
                        const std::string& /*table*/) {}
  virtual void on_csv(const std::string& /*csv*/) {}
  virtual void on_stats(const QueryStats& /*stats*/) {}
};

/// Aggregate daemon counters (also surfaced via the status op/file).
struct ServiceStats {
  std::size_t requests = 0;      ///< frames parsed and answered
  std::size_t queries = 0;       ///< query ops served
  std::size_t bad_requests = 0;  ///< unparseable/invalid frames
  std::size_t cache_hits = 0;    ///< grid points answered from the index
  std::size_t jobs_scheduled = 0;  ///< jobs executed on behalf of queries
  std::size_t jobs_requested = 0;  ///< grid points asked across queries
  bool shutdown_requested = false;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Build the index over store + extra_stores. Idempotent (re-entry
  /// refreshes). Throws ConfigError when no store is configured.
  void open();

  /// Serve one sweep request in-process. Throws ConfigError on an invalid
  /// query (unknown metric, precision target on a master-seed sweep).
  /// Store I/O failures propagate as SimulationError.
  QueryStats query(const ServiceQuery& q, ServiceSink& sink);

  const StoreIndex& index() const;

  // ---- daemon mode ----
  /// open() + bind + listen. Throws SimulationError on bind failure.
  void start();

  /// The actually-bound port (after start(); resolves listen.port == 0).
  std::uint16_t port() const;

  /// Serve frames until stop() or a shutdown request. Returns the final
  /// counters. Call start() first.
  ServiceStats run();

  /// Thread-safe shutdown request: run() returns within one poll tick.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  const ServiceStats& stats() const { return stats_; }

 private:
  struct Impl;
  Impl* impl_;
  ServiceOptions options_;
  ServiceStats stats_;
  std::atomic<bool> stop_{false};
};

}  // namespace oracle::exp
