#include "exp/store_index.hpp"

#include <cstring>
#include <fstream>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "exp/job.hpp"

namespace oracle::exp {

namespace {

/// Stores below this size (and growth suffixes) use plain buffered reads;
/// above it the initial scan goes through a read-only mmap window.
constexpr std::uint64_t kMmapThreshold = 4u << 20;

/// Extract the content hash from one raw JSONL record line without paying
/// for a full record parse: the writer (exp::jsonl_record) always emits
/// `"hash":"<16 lower hex>"`.
std::optional<std::uint64_t> line_hash(const char* data, std::size_t size) {
  static constexpr char kNeedle[] = "\"hash\":\"";
  constexpr std::size_t kNeedleLen = sizeof(kNeedle) - 1;
  if (size < kNeedleLen + 16) return std::nullopt;
  const char* end = data + size - (kNeedleLen + 16);
  for (const char* p = data; p <= end; ++p) {
    if (std::memcmp(p, kNeedle, kNeedleLen) != 0) continue;
    std::uint64_t hash = 0;
    if (!parse_hash_hex(std::string(p + kNeedleLen, 16), hash))
      return std::nullopt;
    return hash;
  }
  return std::nullopt;
}

std::uint64_t file_size_of(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  const auto pos = in.tellg();
  return pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
}

}  // namespace

std::optional<StoreIndex::Entry> StoreIndex::lookup(std::uint64_t hash) const {
  const auto it = index_.find(hash);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t StoreIndex::indexed_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : stores_) total += s.frontier;
  return total;
}

std::size_t StoreIndex::index_chunk(std::size_t store_idx, const char* data,
                                    std::size_t size,
                                    std::uint64_t base_offset) {
  std::size_t added = 0;
  std::size_t pos = 0;
  while (pos < size) {
    const void* nl = std::memchr(data + pos, '\n', size - pos);
    if (nl == nullptr) break;  // torn tail: not indexed, frontier stays put
    const std::size_t len =
        static_cast<std::size_t>(static_cast<const char*>(nl) - (data + pos));
    if (len > 0) {
      const auto hash = line_hash(data + pos, len);
      if (!hash) {
        ++corrupt_lines_;
      } else if (index_.contains(*hash)) {
        ++duplicates_;
      } else {
        Entry e;
        e.store = static_cast<std::uint32_t>(store_idx);
        e.offset = base_offset + pos;
        e.length = static_cast<std::uint32_t>(len);
        index_.emplace(*hash, e);
        ++added;
      }
    }
    pos += len + 1;
    stores_[store_idx].frontier = base_offset + pos;
  }
  return added;
}

std::size_t StoreIndex::scan_store(std::size_t store_idx) {
  Store& store = stores_[store_idx];
  const std::uint64_t size = file_size_of(store.path);
  if (size < store.frontier) {
    // The store shrank underneath us (truncated / rewritten): drop every
    // entry pointing into it and start the scan over. fetch_line would
    // return garbage bytes otherwise.
    std::erase_if(index_, [&](const auto& kv) {
      return kv.second.store == store_idx;
    });
    store.frontier = 0;
  }
  if (size <= store.frontier) return 0;

#if !defined(_WIN32)
  if (size - store.frontier >= kMmapThreshold) {
    const int fd = ::open(store.path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                         MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        const char* data = static_cast<const char*>(map);
        const std::uint64_t from = store.frontier;
        const std::size_t added = index_chunk(
            store_idx, data + from, static_cast<std::size_t>(size - from),
            from);
        ::munmap(map, static_cast<std::size_t>(size));
        return added;
      }
    }
    // mmap refused (FS without mmap support, exotic mount): stream below.
  }
#endif

  std::ifstream in(store.path, std::ios::binary);
  if (!in) return 0;
  in.seekg(static_cast<std::streamoff>(store.frontier));
  if (!in) return 0;
  std::size_t added = 0;
  std::string line;
  std::uint64_t offset = store.frontier;
  while (std::getline(in, line)) {
    if (in.eof()) break;  // no terminating newline: torn tail, not indexed
    if (!line.empty()) {
      const auto hash = line_hash(line.data(), line.size());
      if (!hash) {
        ++corrupt_lines_;
      } else if (index_.contains(*hash)) {
        ++duplicates_;
      } else {
        Entry e;
        e.store = static_cast<std::uint32_t>(store_idx);
        e.offset = offset;
        e.length = static_cast<std::uint32_t>(line.size());
        index_.emplace(*hash, e);
        ++added;
      }
    }
    offset += line.size() + 1;
    store.frontier = offset;
  }
  return added;
}

std::size_t StoreIndex::add_store(const std::string& path) {
  for (std::size_t i = 0; i < stores_.size(); ++i)
    if (stores_[i].path == path) return scan_store(i);
  stores_.push_back(Store{path, 0});
  return scan_store(stores_.size() - 1);
}

std::size_t StoreIndex::refresh() {
  std::size_t added = 0;
  for (std::size_t i = 0; i < stores_.size(); ++i) added += scan_store(i);
  if (added > 0) ++generation_;
  return added;
}

std::optional<std::string> StoreIndex::fetch_line(std::uint64_t hash) const {
  const auto entry = lookup(hash);
  if (!entry) return std::nullopt;
  std::ifstream in(stores_[entry->store].path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(static_cast<std::streamoff>(entry->offset));
  std::string line(entry->length, '\0');
  if (!in.read(line.data(), static_cast<std::streamsize>(entry->length)))
    return std::nullopt;
  return line;
}

}  // namespace oracle::exp
