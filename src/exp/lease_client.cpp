#include "exp/lease_client.hpp"

#include <chrono>
#include <thread>

#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace oracle::exp {

namespace {

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

LeaseClient::LeaseClient(LeaseClientOptions options)
    : options_(std::move(options)),
      jitter_state_(options_.jitter_seed ? options_.jitter_seed : 1) {}

LeaseClient::~LeaseClient() = default;

void LeaseClient::backoff_sleep(std::size_t attempt) {
  // Exponential with full jitter: sleep a uniformly random fraction of
  // min(base * 2^attempt, cap). Deterministic per client (seeded xorshift)
  // so the fault-injection tests replay the same schedule.
  const std::uint64_t base = options_.backoff_base_ms;
  const std::uint64_t cap = std::max<std::uint64_t>(options_.backoff_cap_ms, 1);
  std::uint64_t ceiling = base;
  for (std::size_t i = 0; i < attempt && ceiling < cap; ++i) ceiling *= 2;
  ceiling = std::min(ceiling, cap);
  const std::uint64_t ms =
      ceiling == 0 ? 0 : 1 + xorshift64(jitter_state_) % ceiling;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool LeaseClient::attempt(const LeaseRequest& req, LeaseResponse* rsp) {
  const auto deadline = util::NetClock::now() +
                        std::chrono::milliseconds(options_.op_timeout_ms);
  if (!conn_.valid()) {
    conn_ = util::connect_tcp(options_.server, deadline);
    if (!conn_.valid()) return false;
    ++reconnects_;
    obs::instant("lease", "client.reconnect", "slot",
                 static_cast<std::int64_t>(options_.slot));
  }
  if (!util::send_frame(conn_.fd(), req.encode(), deadline)) {
    conn_.close();
    return false;
  }
  // Drain frames until the matching seq: stale frames (a duplicated or
  // delayed response to an attempt we already gave up on) are discarded.
  while (true) {
    const auto frame = util::recv_frame(conn_.fd(), deadline);
    if (!frame) {
      conn_.close();
      return false;
    }
    const auto parsed = LeaseResponse::parse(*frame);
    if (!parsed) {
      conn_.close();  // corrupt frame: the stream cannot be trusted
      return false;
    }
    if (parsed->seq != req.seq) continue;  // stale/duplicate response
    *rsp = *parsed;
    return true;
  }
}

LeaseResponse LeaseClient::call(LeaseRequest req) {
  req.seq = next_seq_++;
  obs::Span span("lease", "client.call", "op",
                 static_cast<std::int64_t>(req.op));
  LeaseResponse rsp;
  for (std::size_t failures = 0;; ++failures) {
    if (attempt(req, &rsp)) {
      if (failures > 0)
        obs::counter("lease", "client.retries", "total",
                     static_cast<std::int64_t>(retries_));
      if (rsp.kind == LeaseResponseKind::kFenced) ++fenced_;
      return rsp;
    }
    if (failures >= options_.retry_budget) {
      ORACLE_LOG_WARN(strfmt(
          "lease slot %zu: server %s unreachable after %zu attempts; "
          "orphaning (committed prefix is durable)",
          options_.slot, options_.server.str().c_str(), failures + 1));
      throw LeaseOrphanedError(
          strfmt("lease server %s unreachable (retry budget %zu exhausted)",
                 options_.server.str().c_str(), options_.retry_budget));
    }
    ++retries_;
    backoff_sleep(failures);
  }
}

std::optional<LeaseGrant> LeaseClient::work_request(LeaseRequest req) {
  // `empty` means "someone is still running; nothing to steal *yet*" —
  // poll gently until the verdict becomes lease or done.
  for (std::size_t idle = 0;; ++idle) {
    const LeaseResponse rsp = call(req);
    switch (rsp.kind) {
      case LeaseResponseKind::kLease:
        return LeaseGrant{rsp.epoch, rsp.begin, rsp.end};
      case LeaseResponseKind::kDone:
        return std::nullopt;
      case LeaseResponseKind::kEmpty:
        backoff_sleep(std::min<std::size_t>(idle, 4));
        break;
      case LeaseResponseKind::kFenced:
        // Only a stale-epoch steal can land here; re-acquiring the slot
        // issues a fresh epoch.
        req.op = LeaseOp::kAcquire;
        req.slot_count = options_.slot_count;
        req.jobs = options_.jobs;
        break;
      default:
        throw SimulationError("lease server rejected " +
                              std::string(req.op == LeaseOp::kAcquire
                                              ? "acquire"
                                              : "steal") +
                              ": " + rsp.text);
    }
  }
}

std::optional<LeaseGrant> LeaseClient::acquire() {
  LeaseRequest req;
  req.op = LeaseOp::kAcquire;
  req.slot = options_.slot;
  req.slot_count = options_.slot_count;
  req.jobs = options_.jobs;
  return work_request(req);
}

std::optional<LeaseGrant> LeaseClient::next_lease(std::uint64_t drained_epoch) {
  LeaseRequest req;
  req.op = LeaseOp::kSteal;
  req.slot = options_.slot;
  req.epoch = drained_epoch;
  return work_request(req);
}

LeaseClient::CommitResult LeaseClient::commit(std::uint64_t epoch,
                                              std::size_t frontier,
                                              std::uint64_t wall_us,
                                              std::size_t* current_end) {
  LeaseRequest req;
  req.op = LeaseOp::kCommit;
  req.slot = options_.slot;
  req.epoch = epoch;
  req.frontier = frontier;
  req.wall_us = wall_us;
  req.retries = retries_;
  const LeaseResponse rsp = call(req);
  if (rsp.kind == LeaseResponseKind::kFenced) return CommitResult::kFenced;
  if (rsp.kind == LeaseResponseKind::kDone) return CommitResult::kDone;
  if (rsp.kind != LeaseResponseKind::kOk)
    throw SimulationError("lease server rejected commit: " + rsp.text);
  if (current_end) *current_end = rsp.end;
  return CommitResult::kOk;
}

LeaseClient::CommitResult LeaseClient::heartbeat(std::uint64_t epoch,
                                                 std::size_t* current_end) {
  LeaseRequest req;
  req.op = LeaseOp::kHeartbeat;
  req.slot = options_.slot;
  req.epoch = epoch;
  const LeaseResponse rsp = call(req);
  if (rsp.kind == LeaseResponseKind::kFenced) return CommitResult::kFenced;
  if (rsp.kind == LeaseResponseKind::kDone) return CommitResult::kDone;
  if (rsp.kind != LeaseResponseKind::kOk)
    throw SimulationError("lease server rejected heartbeat: " + rsp.text);
  if (current_end) *current_end = rsp.end;
  return CommitResult::kOk;
}

std::optional<std::string> LeaseClient::status() {
  LeaseRequest req;
  req.op = LeaseOp::kStatus;
  try {
    const LeaseResponse rsp = call(req);
    if (rsp.kind != LeaseResponseKind::kStatus) return std::nullopt;
    return rsp.text;
  } catch (const LeaseOrphanedError&) {
    return std::nullopt;
  }
}

}  // namespace oracle::exp
