#include "exp/lease_service.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>
#endif

#include "exp/lease_protocol.hpp"
#include "exp/result_sink.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/file_util.hpp"
#include "util/log.hpp"
#include "util/posix_io.hpp"
#include "util/string_util.hpp"

namespace oracle::exp {

namespace {
constexpr const char* kJournalTag = "J1";
}

struct LeaseService::Impl {
  using Clock = std::chrono::steady_clock;

  explicit Impl(const LeaseServiceOptions& opt)
      : table(opt.jobs, opt.slots), timeout(opt.timeout) {
    slots.resize(std::max<std::size_t>(opt.slots, 1));
    for (std::size_t k = 0; k < slots.size(); ++k)
      slots[k].frontier = table.lease(k).begin;
  }

  struct SlotState {
    std::uint64_t epoch = 0;     ///< current fencing epoch (0 = never granted)
    std::size_t frontier = 0;    ///< highest committed frontier reported
    bool expired = false;        ///< adaptive timeout fired; epoch is fenced
    std::size_t grants = 0;      ///< epochs issued to this slot
    std::uint64_t last_retries = 0;  ///< client-reported retry counter
    Clock::time_point last_life{};   ///< last message seen from this slot
  };

  LeaseTable table;
  std::vector<SlotState> slots;
  AdaptiveTimeout timeout;
  util::Socket listener;
  std::vector<util::Socket> conns;
  int journal_fd = -1;
  bool completed = false;

  ~Impl() {
#if !defined(_WIN32)
    if (journal_fd >= 0) ::close(journal_fd);
#endif
  }
};

LeaseService::LeaseService(LeaseServiceOptions options)
    : impl_(new Impl(options)), options_(std::move(options)) {}

LeaseService::~LeaseService() { delete impl_; }

std::uint16_t LeaseService::port() const {
  return impl_->listener.valid() ? util::local_port(impl_->listener.fd()) : 0;
}

#if defined(_WIN32)

void LeaseService::start() {
  throw SimulationError("the lease service requires a POSIX host");
}

LeaseServiceStats LeaseService::run() { return stats_; }

#else

namespace {

using Clock = std::chrono::steady_clock;

struct JournalRecord {
  std::string op;
  std::vector<std::uint64_t> args;
};

std::optional<JournalRecord> parse_journal_line(const std::string& line) {
  const auto tok = split(trim(line), ' ');
  if (tok.size() < 2 || tok[0] != kJournalTag) return std::nullopt;
  JournalRecord rec;
  rec.op = tok[1];
  for (std::size_t i = 2; i < tok.size(); ++i) {
    try {
      const std::int64_t v = parse_int(tok[i], "journal field");
      if (v < 0) return std::nullopt;
      rec.args.push_back(static_cast<std::uint64_t>(v));
    } catch (const ConfigError&) {
      return std::nullopt;
    }
  }
  return rec;
}

}  // namespace

void LeaseService::start() {
  Impl& im = *impl_;
  ORACLE_REQUIRE(!options_.journal_path.empty(),
                 "the lease service requires a --journal path");
  ORACLE_REQUIRE(options_.jobs > 0, "lease service over an empty sweep");

  // ---- journal replay --------------------------------------------------
  // The journal is write-ahead: every record below was fsynced before the
  // transition it describes was applied or acknowledged, so replaying the
  // readable prefix reconstructs exactly the state every worker could have
  // observed. A torn final record (server killed mid-append) describes a
  // transition nobody was ever told about — skipping it is correct, and
  // the terminating newline we add below keeps it inert forever.
  {
    std::ifstream in(options_.journal_path);
    std::string line;
    bool saw_init = false;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      const auto rec = parse_journal_line(line);
      if (!rec) {
        ++stats_.torn_journal_records;
        continue;
      }
      auto& a = rec->args;
      if (rec->op == "init") {
        if (a.size() != 3)
          throw SimulationError("corrupt journal init record in '" +
                                options_.journal_path + "'");
        if (a[0] != options_.jobs || a[1] != impl_->slots.size() ||
            a[2] != options_.master_seed)
          throw SimulationError(strfmt(
              "journal '%s' belongs to a different run (%llu jobs / %llu "
              "slots / seed %llu vs %zu/%zu/%llu); remove it to start over",
              options_.journal_path.c_str(),
              static_cast<unsigned long long>(a[0]),
              static_cast<unsigned long long>(a[1]),
              static_cast<unsigned long long>(a[2]), options_.jobs,
              impl_->slots.size(),
              static_cast<unsigned long long>(options_.master_seed)));
        saw_init = true;
        continue;
      }
      if (!saw_init) {
        ++stats_.torn_journal_records;
        continue;
      }
      ++stats_.replayed_records;
      if (rec->op == "grant" && a.size() == 2 && a[0] < im.slots.size()) {
        im.slots[a[0]].epoch = a[1];
        im.slots[a[0]].expired = false;
        ++im.slots[a[0]].grants;
      } else if (rec->op == "frontier" && a.size() == 2 &&
                 a[0] < im.slots.size()) {
        im.slots[a[0]].frontier =
            std::max(im.slots[a[0]].frontier, static_cast<std::size_t>(a[1]));
      } else if (rec->op == "drained" && a.size() == 1 &&
                 a[0] < im.slots.size()) {
        im.table.mark_drained(a[0]);
      } else if (rec->op == "expire" && a.size() == 2 &&
                 a[0] < im.slots.size()) {
        im.slots[a[0]].epoch = a[1];
        im.slots[a[0]].expired = true;
      } else if (rec->op == "reassign" && a.size() == 4 &&
                 a[0] < im.slots.size() && a[1] < im.slots.size()) {
        im.table.reassign(a[0], a[1], static_cast<std::size_t>(a[2]));
        im.slots[a[0]].expired = false;
        auto& thief = im.slots[a[1]];
        thief.epoch = a[3];
        thief.expired = false;
        thief.frontier = static_cast<std::size_t>(a[2]);
        ++thief.grants;
      } else if (rec->op == "steal" && a.size() == 4 &&
                 a[0] < im.slots.size() && a[1] < im.slots.size()) {
        im.table.steal(a[0], a[1], static_cast<std::size_t>(a[2]));
        auto& thief = im.slots[a[1]];
        thief.epoch = a[3];
        thief.expired = false;
        thief.frontier = static_cast<std::size_t>(a[2]);
        ++thief.grants;
      } else if (rec->op == "done" && a.empty()) {
        im.completed = true;
      } else {
        ++stats_.torn_journal_records;  // unknown/short record: skip
        --stats_.replayed_records;
      }
    }
    if (stats_.replayed_records > 0 || saw_init)
      ORACLE_LOG_INFO(strfmt(
          "lease journal replayed: %zu record(s), %zu torn/skipped",
          stats_.replayed_records, stats_.torn_journal_records));
  }

  const bool partial_tail = has_partial_last_line(options_.journal_path);
  const bool fresh = !util::file_exists(options_.journal_path);
  im.journal_fd = ::open(options_.journal_path.c_str(),
                         O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (im.journal_fd < 0)
    throw SimulationError("cannot open lease journal '" +
                          options_.journal_path + "' for append");
  if (partial_tail) {
    const char nl = '\n';
    util::write_full(im.journal_fd, &nl, 1);
  }
  if (fresh) {
    const std::string init = strfmt(
        "%s init %zu %zu %llu\n", kJournalTag, options_.jobs,
        im.slots.size(), static_cast<unsigned long long>(options_.master_seed));
    if (!util::write_full(im.journal_fd, init.data(), init.size()) ||
        !util::fsync_retry(im.journal_fd))
      throw SimulationError("lease journal write failed");
  }

  im.listener = util::listen_tcp(options_.listen);
  if (!im.listener.valid())
    throw SimulationError("lease service cannot listen on " +
                          options_.listen.str());

  const auto now = Clock::now();
  for (auto& s : im.slots) s.last_life = now;
  ORACLE_LOG_INFO(strfmt("lease service listening on %s:%u (%zu jobs, %zu "
                         "slots, journal %s)",
                         options_.listen.host.c_str(),
                         static_cast<unsigned>(port()), options_.jobs,
                         im.slots.size(), options_.journal_path.c_str()));
}

LeaseServiceStats LeaseService::run() {
  Impl& im = *impl_;
  ORACLE_REQUIRE(im.listener.valid(), "LeaseService::start() not called");

  const std::size_t n = options_.jobs;
  const std::size_t w = im.slots.size();
  const std::size_t min_steal =
      std::max<std::size_t>(options_.min_steal_jobs, 1);

  // Append one record durably; write-ahead of the state change it names.
  auto journal = [&](const std::string& body) {
    const std::string line = std::string(kJournalTag) + " " + body + "\n";
    obs::Span span("lease", "journal.fsync");
    if (!util::write_full(im.journal_fd, line.data(), line.size()) ||
        !util::fsync_retry(im.journal_fd))
      throw SimulationError("lease journal write failed");
    ++stats_.journal_records;
  };

  auto remaining_jobs = [&] {
    std::size_t remaining = 0;
    for (std::size_t k = 0; k < w; ++k)
      if (!im.table.drained(k))
        remaining += im.table.lease(k).end -
                     std::min(im.slots[k].frontier, im.table.lease(k).end);
    return std::min(remaining, n);
  };

  const auto run_start = Clock::now();
  auto snapshot = [&] {
    const auto now = Clock::now();
    obs::StatusSnapshot st;
    st.phase = im.completed ? "done" : "serving";
    st.jobs_total = n;
    st.jobs_done = n - remaining_jobs();
    st.elapsed_seconds = std::chrono::duration<double>(now - run_start).count();
    st.jobs_per_second =
        st.elapsed_seconds > 0
            ? static_cast<double>(st.jobs_done) / st.elapsed_seconds
            : 0.0;
    st.eta_seconds =
        st.jobs_per_second > 0
            ? static_cast<double>(n - st.jobs_done) / st.jobs_per_second
            : -1.0;
    st.steals = stats_.steals + stats_.reassigns;
    st.fenced = stats_.fenced;
    st.retries = stats_.client_retries;
    for (std::size_t k = 0; k < w; ++k) {
      const auto& s = im.slots[k];
      obs::WorkerStatus ws;
      ws.slot = k;
      ws.live = !im.table.drained(k) && !s.expired && s.epoch > 0;
      ws.lease_begin = im.table.lease(k).begin;
      ws.lease_end = im.table.lease(k).end;
      ws.frontier = im.table.drained(k) ? im.table.lease(k).end
                                        : std::min(s.frontier,
                                                   im.table.lease(k).end);
      ws.restarts = s.grants > 0 ? s.grants - 1 : 0;
      ws.heartbeat_age_s =
          s.epoch > 0
              ? std::chrono::duration<double>(now - s.last_life).count()
              : -1.0;
      st.workers.push_back(ws);
    }
    return st;
  };

  auto sum_client_retries = [&] {
    std::uint64_t total = 0;
    for (const auto& s : im.slots) total += s.last_retries;
    stats_.client_retries = total;
  };

  auto mark_done_if_drained = [&] {
    if (!im.completed && im.table.all_drained()) {
      journal("done");
      im.completed = true;
      ORACLE_LOG_INFO("lease service: sweep complete (all leases drained)");
      obs::instant("lease", "sweep.done");
    }
  };

  // Hand work to a drained slot: expired leases first (takeover), then the
  // biggest live unclaimed tail (steal), else empty/done.
  auto find_work = [&](std::size_t thief) {
    LeaseResponse rsp;
    // 1. Take over an expired lease: its committed head retires, its tail
    //    moves to the thief under a fresh epoch; the expired holder is
    //    permanently fenced.
    for (std::size_t v = 0; v < w; ++v) {
      if (v == thief || !im.slots[v].expired || im.table.drained(v)) continue;
      const std::size_t f =
          std::min(im.slots[v].frontier, im.table.lease(v).end);
      const std::uint64_t epoch = im.slots[thief].epoch + 1;
      journal(strfmt("reassign %zu %zu %zu %llu", v, thief, f,
                     static_cast<unsigned long long>(epoch)));
      const auto lease = im.table.reassign(v, thief, f);
      im.slots[v].expired = false;
      if (!lease) {
        // Everything in the expired lease was already committed: it just
        // retired. Keep looking.
        mark_done_if_drained();
        continue;
      }
      auto& t = im.slots[thief];
      t.epoch = epoch;
      t.expired = false;
      t.frontier = lease->begin;
      ++t.grants;
      ++stats_.reassigns;
      obs::instant("lease", "reassign", "victim", static_cast<std::int64_t>(v),
                   "thief", static_cast<std::int64_t>(thief));
      ORACLE_LOG_INFO(strfmt(
          "slot %zu took over expired lease [%zu,%zu) from slot %zu (epoch "
          "%llu)",
          thief, lease->begin, lease->end, v,
          static_cast<unsigned long long>(epoch)));
      rsp.kind = LeaseResponseKind::kLease;
      rsp.epoch = epoch;
      rsp.begin = lease->begin;
      rsp.end = lease->end;
      return rsp;
    }
    // 2. Steal the biggest unclaimed tail among live leases.
    std::size_t best_victim = w, best_split = 0, best_take = 0;
    for (std::size_t v = 0; v < w; ++v) {
      if (v == thief || im.table.drained(v) || im.slots[v].expired) continue;
      const Lease& lease = im.table.lease(v);
      const std::size_t f = std::min(im.slots[v].frontier, lease.end);
      if (lease.end - f < min_steal + 1) continue;  // head must stay
      const std::size_t split = f + (lease.end - f + 1) / 2;
      const std::size_t take = lease.end - split;
      if (take >= min_steal && take > best_take) {
        best_victim = v;
        best_split = split;
        best_take = take;
      }
    }
    if (best_victim < w) {
      const std::uint64_t epoch = im.slots[thief].epoch + 1;
      journal(strfmt("steal %zu %zu %zu %llu", best_victim, thief, best_split,
                     static_cast<unsigned long long>(epoch)));
      const auto lease = im.table.steal(best_victim, thief, best_split);
      ORACLE_ASSERT(lease.has_value());
      auto& t = im.slots[thief];
      t.epoch = epoch;
      t.expired = false;
      t.frontier = lease->begin;
      ++t.grants;
      ++stats_.steals;
      const std::uint64_t flow_id = obs::Tracer::next_flow_id();
      obs::flow('s', flow_id, "lease", "steal", "victim",
                static_cast<std::int64_t>(best_victim), "split",
                static_cast<std::int64_t>(best_split));
      obs::flow('f', flow_id, "lease", "steal", "thief",
                static_cast<std::int64_t>(thief), "take",
                static_cast<std::int64_t>(best_take));
      ORACLE_LOG_INFO(strfmt("slot %zu stole [%zu,%zu) from slot %zu", thief,
                             lease->begin, lease->end, best_victim));
      // The victim keeps committing into its shrunk head; it learns the
      // new end from its next commit/heartbeat response.
      rsp.kind = LeaseResponseKind::kLease;
      rsp.epoch = epoch;
      rsp.begin = lease->begin;
      rsp.end = lease->end;
      return rsp;
    }
    // 3. Nothing to hand out: done if everything drained, else "not yet".
    mark_done_if_drained();
    rsp.kind =
        im.completed ? LeaseResponseKind::kDone : LeaseResponseKind::kEmpty;
    return rsp;
  };

  auto handle = [&](const LeaseRequest& req) {
    LeaseResponse rsp;
    rsp.seq = req.seq;
    ++stats_.requests;
    obs::Span span("lease", "request", "op",
                   static_cast<std::int64_t>(req.op), "slot",
                   static_cast<std::int64_t>(req.slot));

    if (req.op == LeaseOp::kStatus) {
      rsp.kind = LeaseResponseKind::kStatus;
      rsp.text = snapshot().to_json();
      return rsp;
    }
    if (req.slot >= w) {
      rsp.kind = LeaseResponseKind::kError;
      rsp.text = strfmt("slot %zu out of range (%zu slots)", req.slot, w);
      ++stats_.bad_requests;
      return rsp;
    }
    auto& slot = im.slots[req.slot];
    slot.last_life = Clock::now();

    switch (req.op) {
      case LeaseOp::kAcquire: {
        if (req.slot_count != w || req.jobs != n) {
          rsp.kind = LeaseResponseKind::kError;
          rsp.text = strfmt(
              "sweep mismatch: worker says %zu slots / %zu jobs, server has "
              "%zu / %zu",
              req.slot_count, req.jobs, w, n);
          ++stats_.bad_requests;
          return rsp;
        }
        if (im.completed) {
          rsp.kind = LeaseResponseKind::kDone;
          return rsp;
        }
        if (im.table.drained(req.slot)) return find_work(req.slot);
        // Grant (or re-grant after a crash/expiry) under a fresh epoch:
        // whatever process held this slot before is fenced from here on.
        const std::uint64_t epoch = slot.epoch + 1;
        journal(strfmt("grant %zu %llu", req.slot,
                       static_cast<unsigned long long>(epoch)));
        slot.epoch = epoch;
        slot.expired = false;
        ++slot.grants;
        ++stats_.grants;
        obs::instant("lease", "grant", "slot",
                     static_cast<std::int64_t>(req.slot), "epoch",
                     static_cast<std::int64_t>(epoch));
        rsp.kind = LeaseResponseKind::kLease;
        rsp.epoch = epoch;
        rsp.begin = im.table.lease(req.slot).begin;
        rsp.end = im.table.lease(req.slot).end;
        return rsp;
      }
      case LeaseOp::kCommit:
      case LeaseOp::kHeartbeat: {
        if (im.completed) {
          rsp.kind = LeaseResponseKind::kDone;
          return rsp;
        }
        if (req.epoch != slot.epoch || slot.expired) {
          // The fencing check: a reaped-then-resurrected worker (or one
          // whose lease was expired and reassigned) may not advance the
          // frontier of a range it no longer owns.
          ++stats_.fenced;
          obs::counter("lease", "fenced", "total",
                       static_cast<std::int64_t>(stats_.fenced));
          ORACLE_LOG_WARN(strfmt(
              "slot %zu: stale epoch %llu (current %llu) rejected", req.slot,
              static_cast<unsigned long long>(req.epoch),
              static_cast<unsigned long long>(slot.epoch)));
          rsp.kind = LeaseResponseKind::kFenced;
          return rsp;
        }
        if (req.op == LeaseOp::kCommit) {
          const Lease& lease = im.table.lease(req.slot);
          const std::size_t f =
              std::min(req.frontier, lease.end);
          if (f > slot.frontier) {
            journal(strfmt("frontier %zu %zu", req.slot, f));
            slot.frontier = f;
          }
          if (req.wall_us > 0)
            im.timeout.record(static_cast<double>(req.wall_us) / 1e6);
          slot.last_retries = req.retries;
          sum_client_retries();
        }
        rsp.kind = LeaseResponseKind::kOk;
        rsp.begin = im.table.lease(req.slot).begin;
        rsp.end = im.table.lease(req.slot).end;
        return rsp;
      }
      case LeaseOp::kSteal: {
        if (im.completed) {
          rsp.kind = LeaseResponseKind::kDone;
          return rsp;
        }
        if (!im.table.drained(req.slot)) {
          const Lease& lease = im.table.lease(req.slot);
          const std::size_t f = std::min(slot.frontier, lease.end);
          if (f < lease.end && req.epoch == slot.epoch && !slot.expired) {
            // The worker believes it drained but the server still sees a
            // tail — a lost/reordered final commit. Re-grant the remainder
            // under the same epoch; resume-skip makes the re-run cheap.
            rsp.kind = LeaseResponseKind::kLease;
            rsp.epoch = slot.epoch;
            rsp.begin = f;
            rsp.end = lease.end;
            return rsp;
          }
          if (req.epoch != slot.epoch || slot.expired) {
            ++stats_.fenced;
            rsp.kind = LeaseResponseKind::kFenced;
            return rsp;
          }
          journal(strfmt("drained %zu", req.slot));
          im.table.mark_drained(req.slot);
          obs::instant("lease", "drained", "slot",
                       static_cast<std::int64_t>(req.slot));
        }
        return find_work(req.slot);
      }
      default: {
        rsp.kind = LeaseResponseKind::kError;
        rsp.text = "unsupported op";
        ++stats_.bad_requests;
        return rsp;
      }
    }
  };

  auto last_status = Clock::now();
  std::optional<Clock::time_point> linger_until;

  auto write_status = [&] {
    if (options_.status_path.empty()) return;
    obs::write_status_file(options_.status_path, snapshot());
  };
  write_status();

  while (!stop_.load(std::memory_order_relaxed)) {
    const auto now = Clock::now();
    if (im.completed) {
      if (!linger_until)
        linger_until = now + std::chrono::milliseconds(options_.linger_ms);
      else if (now >= *linger_until)
        break;
    }

    // Adaptive expiry: a granted, undrained slot silent for longer than
    // the observed-pace timeout is presumed wedged/dead. Its epoch bumps
    // — the journal record *is* the fencing event — and the next idle
    // worker takes the uncommitted tail over.
    if (!im.completed) {
      const double timeout_s = im.timeout.timeout_seconds();
      for (std::size_t k = 0; k < w; ++k) {
        auto& slot = im.slots[k];
        if (im.table.drained(k) || slot.expired) continue;
        if (slot.epoch == 0 && im.timeout.samples() == 0) continue;
        const double age =
            std::chrono::duration<double>(now - slot.last_life).count();
        if (age > timeout_s) {
          const std::uint64_t epoch = slot.epoch + 1;
          journal(strfmt("expire %zu %llu", k,
                         static_cast<unsigned long long>(epoch)));
          slot.epoch = epoch;
          slot.expired = true;
          ++stats_.expirations;
          obs::instant("lease", "expire", "slot", static_cast<std::int64_t>(k),
                       "age_ms", static_cast<std::int64_t>(age * 1e3));
          ORACLE_LOG_WARN(strfmt(
              "slot %zu expired after %.1fs silence (timeout %.1fs); lease "
              "[%zu,%zu) f=%zu up for takeover",
              k, age, timeout_s, im.table.lease(k).begin,
              im.table.lease(k).end, slot.frontier));
        }
      }
    }

    if (now - last_status >=
        std::chrono::milliseconds(
            std::max<std::uint32_t>(options_.status_interval_ms, 1))) {
      last_status = now;
      write_status();
    }

    // ---- poll listen + client sockets ---------------------------------
    std::vector<pollfd> fds;
    fds.reserve(im.conns.size() + 1);
    fds.push_back({im.listener.fd(), POLLIN, 0});
    for (const auto& c : im.conns) fds.push_back({c.fd(), POLLIN, 0});
    const int ready = util::poll_retry(
        fds.data(), fds.size(), static_cast<int>(options_.poll_ms));
    if (ready <= 0) continue;

    // Conns accepted below were not part of this poll: fds only covers
    // the first `polled` entries, and indexing past it is UB (the bug
    // mode: a fresh conn inherits garbage revents and is dropped on
    // arrival). They are served from the next tick on.
    const std::size_t polled = im.conns.size();
    if (fds[0].revents & POLLIN) {
      while (true) {
        auto conn = util::accept_tcp(im.listener.fd());
        if (!conn.valid()) break;
        im.conns.push_back(std::move(conn));
      }
    }

    for (std::size_t i = 0; i < polled;) {
      const short rev = fds[i + 1].revents;
      if (rev == 0) {
        ++i;
        continue;
      }
      bool drop = (rev & (POLLERR | POLLNVAL)) != 0;
      if (!drop && (rev & (POLLIN | POLLHUP))) {
        // Frames are tiny; a peer that cannot complete one inside this
        // deadline is dropped (it reconnects and retries — the protocol
        // is retry-safe by construction).
        const auto frame = util::recv_frame(
            im.conns[i].fd(), Clock::now() + std::chrono::milliseconds(250));
        if (!frame) {
          drop = true;
        } else if (const auto req = LeaseRequest::parse(*frame)) {
          LeaseResponse rsp = handle(*req);
          // The seq echo is the client's stale-frame filter; enforce the
          // invariant here so no handler path (find_work in particular)
          // can return a frame the client would discard.
          rsp.seq = req->seq;
          if (!util::send_frame(im.conns[i].fd(), rsp.encode(),
                                Clock::now() + std::chrono::seconds(2)))
            drop = true;
        } else {
          ++stats_.bad_requests;
          drop = true;  // unparseable request: the stream is not trusted
        }
      }
      if (drop) {
        im.conns.erase(im.conns.begin() + static_cast<std::ptrdiff_t>(i));
        // fds is rebuilt next tick; indices past i are off by one now, so
        // finish this tick conservatively by re-polling.
        break;
      }
      ++i;
    }
  }

  stats_.completed = im.completed;
  write_status();
  return stats_;
}

#endif

}  // namespace oracle::exp
