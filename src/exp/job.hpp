#pragma once
// A batch job: one ExperimentConfig plus its position in the sweep and a
// content hash over every field that influences the simulation outcome.
//
// The hash is the identity used by the result cache / checkpoint: two jobs
// with the same hash would produce the same RunResult (the simulator is
// deterministic in its config), so a completed hash never needs re-running.
// Conversely, touching any knob — even a cost-model field — changes the
// hash and invalidates stale cache entries.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace oracle::exp {

struct ExperimentJob {
  /// Position in the originating sweep (stable across resume: skipped jobs
  /// keep their index, so records always identify the same grid point).
  std::size_t index = 0;

  core::ExperimentConfig config;

  /// job_content_hash(config), cached at queue-build time.
  std::uint64_t content_hash = 0;
};

/// Canonical serialization of every outcome-relevant config field, in a
/// fixed order. This string — not the struct layout — defines job identity,
/// so it must change whenever a new knob is added to ExperimentConfig.
std::string job_canonical_string(const core::ExperimentConfig& config);

/// FNV-1a (64-bit) over job_canonical_string().
std::uint64_t job_content_hash(const core::ExperimentConfig& config);

/// Fixed-width lower-case hex rendering used in JSONL records and
/// checkpoint files.
std::string hash_hex(std::uint64_t hash);

/// Inverse of hash_hex; returns false on malformed input.
bool parse_hash_hex(const std::string& hex, std::uint64_t& out);

}  // namespace oracle::exp
