#include "exp/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <poll.h>
#endif

#include "exp/aggregate.hpp"
#include "exp/batch.hpp"
#include "exp/job_queue.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/posix_io.hpp"
#include "util/string_util.hpp"

namespace oracle::exp {

// Internal machinery lives in a named (not anonymous) namespace because
// Service::Impl holds these types as members.
namespace svc_detail {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kUnbudgeted = std::numeric_limits<std::size_t>::max();

/// One query as a resumable state machine. Both front ends drive it:
/// Service::query() loops step() to completion with an unlimited budget
/// (exactly the old inline behaviour — one batch run per round); the
/// daemon's worker pool calls step() with options.job_budget, so each
/// call schedules at most that many jobs before yielding the worker.
///
/// Every step touches the StoreIndex under the readers-writer lock
/// (shared for lookups/aggregation, exclusive for the post-commit
/// refresh) and serializes store appends behind the store mutex — the
/// batch executor already uses every core, so one append-batch at a time
/// is the fast configuration, not a compromise.
class QueryRun {
 public:
  QueryRun(StoreIndex& index, std::shared_mutex& index_mu,
           std::mutex& store_mu, const ServiceOptions& options, ServiceQuery q)
      : index_(index),
        index_mu_(index_mu),
        store_mu_(store_mu),
        options_(options),
        q_(std::move(q)),
        spec_(q_.sweep),
        targeted_(!q_.target_metric.empty()),
        t0_(Clock::now()) {
    validate();
  }

  /// Advance by one slice: schedule up to `budget` missing jobs (or, with
  /// no jobs left this round, aggregate and either extend the seed axis
  /// or render). Returns true when the query is complete.
  bool step(ServiceSink& sink, std::size_t budget);

  const QueryStats& stats() const { return st_; }

 private:
  void validate() const;
  void plan(ServiceSink& sink);
  bool run_chunk(ServiceSink& sink, std::size_t budget);
  void aggregate();
  bool target_satisfied_or_capped();
  void render(ServiceSink& sink);

  StoreIndex& index_;
  std::shared_mutex& index_mu_;
  std::mutex& store_mu_;
  const ServiceOptions& options_;
  ServiceQuery q_;
  core::SweepSpec spec_;
  bool targeted_;
  Clock::time_point t0_;

  QueryStats st_;
  std::size_t round_ = 0;
  bool planned_ = false;
  std::optional<JobQueue> queue_;
  std::size_t cursor_ = 0;        ///< next job index to examine this round
  std::size_t round_cached_ = 0;  ///< cache hits counted at this round's plan
  std::size_t round_done_ = 0;    ///< jobs executed so far this round
  std::vector<GridPointSummary> groups_;
  // Per-group sample counts of the target metric after the previous
  // round — the no-progress diagnostic compares against these.
  std::vector<std::size_t> prev_group_n_;
  bool have_prev_ = false;
};

void QueryRun::validate() const {
  const auto& known = Aggregator::metric_names();
  const auto known_metric = [&](const std::string& m) {
    return std::find(known.begin(), known.end(), m) != known.end();
  };
  for (const auto& m : q_.metrics)
    ORACLE_REQUIRE(known_metric(m),
                   "unknown metric '" + m + "' (try --metric list)");
  if (targeted_) {
    ORACLE_REQUIRE(known_metric(q_.target_metric),
                   "unknown target metric '" + q_.target_metric + "'");
    ORACLE_REQUIRE(q_.target_ci95 > 0.0, "precision target must be > 0");
    // With a master seed, job seeds derive from sweep *indices*; growing
    // the seed axis renumbers every job, changes every content hash, and
    // re-runs the whole grid each round — refuse rather than thrash.
    ORACLE_REQUIRE(q_.sweep.master_seed == 0,
                   "a precision target cannot be combined with a master "
                   "seed (derived seeds change with the axis length)");
  }
}

void QueryRun::plan(ServiceSink& sink) {
  // The jobs (and hashes) exactly as the batch engine would number and
  // derive them — JobQueue is the single source of job identity.
  queue_.emplace(spec_.build());
  if (spec_.master_seed != 0) queue_->derive_seeds(spec_.master_seed);
  ORACLE_REQUIRE(!queue_->jobs().empty(), "query names an empty sweep");

  std::size_t cached = 0;
  {
    std::shared_lock<std::shared_mutex> lk(index_mu_);
    for (const auto& job : queue_->jobs())
      if (index_.contains(job.content_hash)) ++cached;
  }
  st_.total = queue_->jobs().size();
  if (round_ == 0) st_.cached = cached;
  st_.rounds = round_ + 1;
  cursor_ = 0;
  round_cached_ = cached;
  round_done_ = 0;
  planned_ = true;
  sink.on_progress(st_.total, st_.cached, st_.scheduled, cached);
}

bool QueryRun::run_chunk(ServiceSink& sink, std::size_t budget) {
  const auto& jobs = queue_->jobs();
  if (cursor_ >= jobs.size()) return false;
  if (budget == 0) budget = 1;

  // The chunk is the job-index range covering the next `budget` missing
  // jobs. Scheduling through a [lease_begin, lease_end) window over the
  // FULL config list keeps job numbering (and so master-seed derivation
  // and store append order) identical to an unchunked run.
  std::size_t first_missing = jobs.size();
  std::size_t end = cursor_;
  std::size_t missing = 0;
  {
    std::shared_lock<std::shared_mutex> lk(index_mu_);
    for (std::size_t i = cursor_; i < jobs.size(); ++i) {
      if (!index_.contains(jobs[i].content_hash)) {
        if (missing == 0) first_missing = i;
        ++missing;
        end = i + 1;
        if (missing >= budget) break;
      }
    }
  }
  if (missing == 0) {
    cursor_ = jobs.size();
    return false;
  }

  // Schedule only the missing jobs: a resume-mode batch run into the
  // canonical store skips every hash the store already holds and appends
  // the rest in job order (ordered commit keeps the store deterministic;
  // the extra stores contribute their hashes too).
  BatchOptions opt;
  opt.exec.workers = options_.exec_threads;
  opt.exec.shard_size = options_.shard_size;
  opt.exec.progress = false;
  opt.jsonl_path = options_.store;
  opt.resume = true;
  opt.extra_resume_stores = options_.extra_stores;
  opt.master_seed = spec_.master_seed;
  opt.collect = false;
  opt.lease_begin = first_missing;
  opt.lease_end = end;
  BatchOutcome outcome;
  {
    std::lock_guard<std::mutex> lk(store_mu_);
    outcome = run_batch(spec_.build(), opt);
  }
  st_.scheduled += outcome.report.executed + outcome.report.failed;
  st_.failed += outcome.report.failed;
  round_done_ += outcome.report.executed;
  for (const auto& err : outcome.report.errors)
    ORACLE_LOG_ERROR("query job failed: " + err);
  {
    std::unique_lock<std::shared_mutex> lk(index_mu_);
    index_.refresh();
  }
  cursor_ = end;
  sink.on_progress(st_.total, st_.cached, st_.scheduled,
                   round_cached_ + round_done_);
  return true;
}

void QueryRun::aggregate() {
  // Aggregate the requested points in sweep order (== store commit order
  // for a store this sweep produced, so tables are byte-identical to
  // `oracle_batch aggregate` over it). Failed jobs have no record and
  // silently contribute nothing, exactly like aggregate-over-store.
  Aggregator agg;
  {
    std::shared_lock<std::shared_mutex> lk(index_mu_);
    for (const auto& job : queue_->jobs())
      if (const auto line = index_.fetch_line(job.content_hash))
        agg.add_line(*line);
  }
  groups_ = agg.summarize();
}

bool QueryRun::target_satisfied_or_capped() {
  // A NaN target metric poisons every comparison (NaN > target is false,
  // so a NaN interval would silently count as "met") — refuse loudly.
  for (const auto& g : groups_) {
    const auto* m = g.metric(q_.target_metric);
    if (m != nullptr && m->n > 0 &&
        (!std::isfinite(m->mean) || !std::isfinite(m->ci95)))
      throw ConfigError(strfmt(
          "precision target on '%s' cannot be evaluated: the metric is not "
          "finite (NaN) for grid point %s/%s/%s — inspect the store records",
          q_.target_metric.c_str(), g.topology.c_str(), g.strategy.c_str(),
          g.workload.c_str()));
  }

  if (round_ >= options_.max_target_rounds) return true;

  bool met = !groups_.empty();
  for (const auto& g : groups_) {
    const auto* m = g.metric(q_.target_metric);
    // One sample has no interval (ci95 = 0); it never satisfies a
    // target — more seeds are needed to even estimate the width.
    if (m == nullptr || m->n < 2 || m->ci95 > q_.target_ci95) {
      met = false;
      break;
    }
  }
  if (met) return true;

  // Unmet and about to extend: if the previous extension round added no
  // samples anywhere (its scheduled jobs all failed or produced no
  // records), further rounds cannot converge either — a single pinned
  // sample or a grid point whose jobs always throw would otherwise burn
  // every round before reporting nothing.
  std::vector<std::size_t> group_n;
  group_n.reserve(groups_.size());
  for (const auto& g : groups_) {
    const auto* m = g.metric(q_.target_metric);
    group_n.push_back(m != nullptr ? m->n : 0);
  }
  if (have_prev_ && group_n == prev_group_n_)
    throw ConfigError(strfmt(
        "precision target on '%s' cannot make progress: the last extension "
        "round added no new samples (%zu scheduled job(s) failed so far) — "
        "fix the failing configs or drop the target",
        q_.target_metric.c_str(), st_.failed));
  prev_group_n_ = std::move(group_n);
  have_prev_ = true;
  return false;
}

void QueryRun::render(ServiceSink& sink) {
  for (const auto& m : q_.metrics)
    sink.on_table(m, Aggregator::to_table(groups_, m));
  if (q_.want_csv) sink.on_csv(Aggregator::to_csv(groups_));
  st_.wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0_)
          .count());
  sink.on_stats(st_);
}

bool QueryRun::step(ServiceSink& sink, std::size_t budget) {
  if (!planned_) plan(sink);
  if (run_chunk(sink, budget)) return false;  // yield after scheduling work
  aggregate();
  if (targeted_ && !target_satisfied_or_capped()) {
    // Extend the replication axis with the next fresh seed and go again;
    // every already-run (config, seed) point stays a cache hit.
    const std::uint64_t next =
        *std::max_element(spec_.seeds.begin(), spec_.seeds.end()) + 1;
    spec_.seeds.push_back(next);
    ++round_;
    planned_ = false;
    return false;
  }
  render(sink);
  return true;
}

// ------------------------------------------------------- daemon plumbing --

/// What workers hand the poll thread: encoded response frames to queue on
/// a connection, and query-completion notices that release the
/// connection for its next request and settle the daemon counters.
struct SvcEvent {
  enum class Kind { kFrame, kQueryDone };
  Kind kind = Kind::kFrame;
  std::uint64_t conn_id = 0;
  std::string wire;        ///< kFrame: [len][payload] bytes ready to write
  bool drop_conn = false;  ///< kFrame: response unencodable — drop the peer
  QueryStats stats;        ///< kQueryDone
  bool config_error = false;  ///< kQueryDone: rejected (counts bad_requests)
  bool errored = false;       ///< kQueryDone: ended with an error frame
};

/// One queued query. `run` is created lazily on the first worker slice so
/// request validation (which throws ConfigError) happens on a worker, not
/// the poll thread.
struct QueryTask {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  ServiceQuery query;
  std::unique_ptr<QueryRun> run;
};

/// Everything the poll thread and the workers share.
struct DaemonState {
  // Query execution context (set once before workers start).
  StoreIndex* index = nullptr;
  std::shared_mutex* index_mu = nullptr;
  std::mutex* store_mu = nullptr;
  const ServiceOptions* options = nullptr;

  std::mutex mu;  ///< guards ready/in_flight/draining/exit_workers/events
  std::condition_variable cv;
  std::deque<std::unique_ptr<QueryTask>> ready;  ///< round-robin run queue
  std::size_t in_flight = 0;
  bool draining = false;      ///< abort queued queries with a shutdown error
  bool exit_workers = false;  ///< workers return once the queue is empty
  std::deque<SvcEvent> events;
  util::WakePipe wake;

  void push_event(SvcEvent ev) {
    {
      std::lock_guard<std::mutex> lk(mu);
      events.push_back(std::move(ev));
    }
    wake.notify();
  }
};

/// ServiceSink that encodes each event as one response frame and hands it
/// to the poll thread. Workers never touch sockets.
class EmitSink : public ServiceSink {
 public:
  EmitSink(DaemonState& ds, std::uint64_t conn_id, std::uint64_t seq)
      : ds_(ds), conn_id_(conn_id), seq_(seq) {}

  void on_progress(std::size_t total, std::size_t cached,
                   std::size_t scheduled, std::size_t completed) override {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kProgress;
    rsp.total = total;
    rsp.cached = cached;
    rsp.scheduled = scheduled;
    rsp.completed = completed;
    send(rsp);
  }

  void on_table(const std::string& metric, const std::string& table) override {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kTable;
    rsp.metric = metric;
    rsp.text = table;
    send(rsp);
  }

  void on_csv(const std::string& csv) override {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kCsv;
    rsp.text = csv;
    send(rsp);
  }

  void on_stats(const QueryStats& stats) override {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kStats;
    rsp.total = stats.total;
    rsp.cached = stats.cached;
    rsp.scheduled = stats.scheduled;
    rsp.failed = stats.failed;
    rsp.rounds = stats.rounds;
    rsp.wall_us = stats.wall_us;
    send(rsp);
  }

  void send_error(const std::string& text) {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kError;
    rsp.text = text;
    send(rsp);
  }

  void send_done() {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kDone;
    send(rsp);
  }

  void send(ServiceResponse rsp) {
    rsp.seq = seq_;
    SvcEvent ev;
    ev.kind = SvcEvent::Kind::kFrame;
    ev.conn_id = conn_id_;
    ev.wire = util::frame_bytes(rsp.encode(), kServiceMaxFrameBytes);
    // An over-cap frame cannot be sent partially; the old blocking path
    // dropped the connection, and so do we.
    if (ev.wire.empty()) ev.drop_conn = true;
    ds_.push_event(std::move(ev));
  }

 private:
  DaemonState& ds_;
  std::uint64_t conn_id_;
  std::uint64_t seq_;
};

/// Worker thread: pop the front query, advance it ONE slice, re-enqueue
/// at the back if unfinished. Round-robin across queries is the fairness
/// guarantee — a giant cold sweep shares the pool slice-by-slice with
/// every warm one-point hit behind it.
void worker_main(DaemonState& ds) {
  while (true) {
    std::unique_ptr<QueryTask> task;
    bool draining = false;
    {
      std::unique_lock<std::mutex> lk(ds.mu);
      ds.cv.wait(lk, [&] { return ds.exit_workers || !ds.ready.empty(); });
      if (ds.ready.empty()) {
        if (ds.exit_workers) return;
        continue;
      }
      task = std::move(ds.ready.front());
      ds.ready.pop_front();
      ++ds.in_flight;
      draining = ds.draining;
    }

    EmitSink sink(ds, task->conn_id, task->seq);
    bool done = false;
    bool config_error = false;
    bool errored = false;
    if (draining) {
      // Shutdown: whatever this query still owed its client becomes one
      // clean error frame — never a torn table.
      sink.send_error(kServiceShuttingDown);
      done = true;
      errored = true;
    } else {
      obs::Span span("serve", "query", "conn",
                     static_cast<std::int64_t>(task->conn_id));
      try {
        if (!task->run)
          task->run = std::make_unique<QueryRun>(
              *ds.index, *ds.index_mu, *ds.store_mu, *ds.options,
              std::move(task->query));
        done = task->run->step(sink, ds.options->job_budget);
        if (done) sink.send_done();
      } catch (const ConfigError& e) {
        sink.send_error(e.what());
        done = true;
        config_error = true;
        errored = true;
      } catch (const std::exception& e) {
        // Store I/O or executor failure: this client gets the error; the
        // daemon keeps serving everyone else.
        sink.send_error(e.what());
        done = true;
        errored = true;
      }
    }

    if (!done) {
      std::lock_guard<std::mutex> lk(ds.mu);
      --ds.in_flight;
      ds.ready.push_back(std::move(task));
      ds.cv.notify_one();
      continue;
    }
    SvcEvent ev;
    ev.kind = SvcEvent::Kind::kQueryDone;
    ev.conn_id = task->conn_id;
    if (task->run) ev.stats = task->run->stats();
    ev.config_error = config_error;
    ev.errored = errored;
    {
      std::lock_guard<std::mutex> lk(ds.mu);
      --ds.in_flight;
      ds.events.push_back(std::move(ev));
    }
    ds.wake.notify();
  }
}

/// Per-connection state machine owned exclusively by the poll thread.
struct Conn {
  util::Socket sock;
  std::uint64_t id = 0;
  util::FrameSplitter in{kServiceMaxFrameBytes};
  std::string out;            ///< queued response bytes (whole frames)
  std::size_t out_off = 0;    ///< already-written prefix of `out`
  Clock::time_point write_stall_since{};  ///< last write progress (out != "")
  Clock::time_point read_stall_since{};   ///< partial inbound frame started
  bool read_stalled = false;
  bool busy = false;  ///< a query of this connection is queued/in flight
  std::deque<std::string> backlog;  ///< frames parsed while busy (FIFO)
  bool close_after_flush = false;
  bool dead = false;
  std::size_t requests = 0;
  std::int64_t trace_t0 = 0;
};

std::size_t resolve_query_threads(std::size_t configured) {
  if (configured != 0) return configured;
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(hw != 0 ? hw : 1, 8);
}

}  // namespace svc_detail

using svc_detail::Clock;

struct Service::Impl {
  StoreIndex index;
  std::shared_mutex index_mu;
  std::mutex store_mu;
  bool opened = false;
  util::Socket listener;
  Clock::time_point started{};
  svc_detail::DaemonState ds;
  std::vector<std::thread> workers;
  std::vector<svc_detail::Conn> conns;
  std::uint64_t next_conn_id = 1;
};

Service::Service(ServiceOptions options)
    : impl_(new Impl), options_(std::move(options)) {}

Service::~Service() { delete impl_; }

const StoreIndex& Service::index() const { return impl_->index; }

void Service::open() {
  ORACLE_REQUIRE(!options_.store.empty(),
                 "the oracle service requires a --store path");
  std::unique_lock<std::shared_mutex> lk(impl_->index_mu);
  if (!impl_->opened) {
    impl_->index.add_store(options_.store);
    for (const auto& extra : options_.extra_stores)
      impl_->index.add_store(extra);
    impl_->opened = true;
    ORACLE_LOG_INFO(strfmt(
        "store index: %zu record(s) over %zu store(s), %.1f MiB indexed "
        "(%zu duplicate(s), %zu corrupt line(s))",
        impl_->index.size(), impl_->index.store_count(),
        static_cast<double>(impl_->index.indexed_bytes()) / (1 << 20),
        impl_->index.duplicates(), impl_->index.corrupt_lines()));
  } else {
    impl_->index.refresh();
  }
}

QueryStats Service::query(const ServiceQuery& q, ServiceSink& sink) {
  open();
  svc_detail::QueryRun run(impl_->index, impl_->index_mu, impl_->store_mu,
                           options_, q);
  while (!run.step(sink, svc_detail::kUnbudgeted)) {
  }
  return run.stats();
}

std::uint16_t Service::port() const {
  return impl_->listener.valid() ? util::local_port(impl_->listener.fd()) : 0;
}

#if defined(_WIN32)

void Service::start() {
  throw SimulationError("the oracle service daemon requires a POSIX host");
}

ServiceStats Service::run() { return stats_; }

#else

void Service::start() {
  open();
  impl_->listener = util::listen_tcp(options_.listen);
  if (!impl_->listener.valid())
    throw SimulationError("oracle service cannot listen on " +
                          options_.listen.str());
  impl_->started = Clock::now();
  ORACLE_LOG_INFO(strfmt(
      "oracle service listening on %s:%u (store %s, %zu cached record(s))",
      options_.listen.host.c_str(), static_cast<unsigned>(port()),
      options_.store.c_str(), impl_->index.size()));
}

ServiceStats Service::run() {
  using svc_detail::Conn;
  using svc_detail::SvcEvent;

  Impl& im = *impl_;
  ORACLE_REQUIRE(im.listener.valid(), "Service::start() not called");
  ORACLE_REQUIRE(im.ds.wake.valid(),
                 "oracle service cannot create its wake pipe");

  im.ds.index = &im.index;
  im.ds.index_mu = &im.index_mu;
  im.ds.store_mu = &im.store_mu;
  im.ds.options = &options_;
  const std::size_t nworkers =
      svc_detail::resolve_query_threads(options_.query_threads);
  for (std::size_t i = 0; i < nworkers; ++i)
    im.workers.emplace_back(svc_detail::worker_main, std::ref(im.ds));

  auto snapshot = [&] {
    obs::StatusSnapshot st;
    st.phase = stats_.shutdown_requested ? "done" : "serving";
    st.jobs_total = stats_.jobs_requested;
    st.jobs_done = stats_.cache_hits + stats_.jobs_scheduled;
    st.elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - im.started).count();
    st.requests = stats_.requests;
    st.cache_hits = stats_.cache_hits;
    st.connections = im.conns.size();
    st.evicted = stats_.evicted;
    {
      std::lock_guard<std::mutex> lk(im.ds.mu);
      st.queue_depth = im.ds.ready.size();
      st.in_flight = im.ds.in_flight;
    }
    return st;
  };
  auto write_status = [&] {
    if (options_.status_path.empty()) return;
    obs::write_status_file(options_.status_path, snapshot());
  };

  auto find_conn = [&](std::uint64_t id) -> Conn* {
    for (auto& c : im.conns)
      if (c.id == id) return &c;
    return nullptr;
  };

  // Try to push a connection's queued bytes out right now (called on
  // POLLOUT and opportunistically after queueing, so a responsive client
  // never waits a poll tick for its answer).
  auto flush_conn = [&](Conn& c) {
    if (c.dead || c.out_off >= c.out.size()) return;
    std::size_t written = 0;
    const auto r = util::write_some(c.sock.fd(), c.out.data() + c.out_off,
                                    c.out.size() - c.out_off, &written);
    if (r == util::IoResult::kClosed) {
      c.dead = true;
      return;
    }
    if (written > 0) {
      c.out_off += written;
      c.write_stall_since = Clock::now();
    }
    if (c.out_off >= c.out.size()) {
      c.out.clear();
      c.out_off = 0;
      if (c.close_after_flush) c.dead = true;
    } else if (c.out_off > (1u << 20)) {
      c.out.erase(0, c.out_off);
      c.out_off = 0;
    }
  };

  auto queue_bytes = [&](Conn& c, std::string wire) {
    if (c.dead) return;
    if (c.out.empty()) c.write_stall_since = Clock::now();
    c.out += wire;
    flush_conn(c);
  };

  auto queue_response = [&](Conn& c, ServiceResponse rsp, std::uint64_t seq) {
    rsp.seq = seq;
    auto wire = util::frame_bytes(rsp.encode(), kServiceMaxFrameBytes);
    if (wire.empty()) {
      c.dead = true;
      return;
    }
    queue_bytes(c, std::move(wire));
  };

  // Dispatch one parsed request. ping/status/shutdown answer inline on
  // the poll thread (never behind a query); queries go to the worker
  // pool, one in flight per connection (further frames wait in the
  // backlog so response streams of one connection never interleave).
  auto dispatch = [&](Conn& c, const ServiceRequest& req) {
    ++stats_.requests;
    ++c.requests;
    obs::Span span("serve", "request", "op",
                   static_cast<std::int64_t>(req.op));
    ServiceResponse rsp;
    switch (req.op) {
      case ServiceOp::kPing: {
        rsp.kind = ServiceResponseKind::kOk;
        queue_response(c, rsp, req.seq);
        return;
      }
      case ServiceOp::kStatus: {
        rsp.kind = ServiceResponseKind::kStatus;
        rsp.text = snapshot().to_json();
        queue_response(c, rsp, req.seq);
        return;
      }
      case ServiceOp::kShutdown: {
        stats_.shutdown_requested = true;
        stop();
        rsp.kind = ServiceResponseKind::kOk;
        queue_response(c, rsp, req.seq);
        return;
      }
      case ServiceOp::kQuery: {
        ++stats_.queries;
        c.busy = true;
        auto task = std::make_unique<svc_detail::QueryTask>();
        task->conn_id = c.id;
        task->seq = req.seq;
        task->query = req.query;
        {
          std::lock_guard<std::mutex> lk(im.ds.mu);
          im.ds.ready.push_back(std::move(task));
        }
        im.ds.cv.notify_one();
        return;
      }
    }
  };

  auto handle_frame = [&](Conn& c, const std::string& payload) {
    if (c.busy || !c.backlog.empty()) {
      // Strictly ordered per connection; a flooding client is bounded.
      if (c.backlog.size() >= 64) {
        c.dead = true;
        return;
      }
      c.backlog.push_back(payload);
      return;
    }
    const auto req = ServiceRequest::parse(payload);
    if (!req) {
      ++stats_.bad_requests;
      c.dead = true;  // unparseable request: the stream is not trusted
      return;
    }
    dispatch(c, *req);
  };

  auto apply_event = [&](SvcEvent& ev) {
    Conn* c = find_conn(ev.conn_id);
    switch (ev.kind) {
      case SvcEvent::Kind::kFrame: {
        if (c == nullptr) return;  // peer already gone; drop the frame
        if (ev.drop_conn) {
          c->dead = true;
          return;
        }
        queue_bytes(*c, std::move(ev.wire));
        return;
      }
      case SvcEvent::Kind::kQueryDone: {
        if (ev.config_error) ++stats_.bad_requests;
        if (!ev.errored) {
          const QueryStats& qs = ev.stats;
          stats_.jobs_requested += qs.total;
          stats_.cache_hits += qs.cached;
          stats_.jobs_scheduled += qs.scheduled;
          ORACLE_LOG_INFO(strfmt(
              "query: %zu point(s), %zu cached, %zu scheduled, %zu failed, "
              "%zu round(s), %.1f ms",
              qs.total, qs.cached, qs.scheduled, qs.failed, qs.rounds,
              static_cast<double>(qs.wall_us) / 1e3));
        }
        if (c == nullptr) return;
        c->busy = false;
        // The backlog drains until empty or the next query claims the
        // connection again.
        while (!c->busy && !c->dead && !c->backlog.empty()) {
          const std::string payload = std::move(c->backlog.front());
          c->backlog.pop_front();
          const auto req = ServiceRequest::parse(payload);
          if (!req) {
            ++stats_.bad_requests;
            c->dead = true;
            break;
          }
          dispatch(*c, *req);
        }
        return;
      }
    }
  };

  auto close_conn_trace = [&](const Conn& c) {
    if (!obs::Tracer::enabled()) return;
    obs::TraceEvent ev;
    ev.cat = "serve";
    ev.name = "connection";
    ev.ph = 'X';
    ev.ts_ns = c.trace_t0;
    ev.dur_ns = obs::Tracer::now_ns() - c.trace_t0;
    ev.arg0_name = "conn";
    ev.arg0 = static_cast<std::int64_t>(c.id);
    ev.arg1_name = "requests";
    ev.arg1 = static_cast<std::int64_t>(c.requests);
    obs::Tracer::emit(ev);
  };

  auto last_status = Clock::now();
  write_status();

  bool draining = false;
  Clock::time_point drain_deadline{};
  const auto write_timeout =
      std::chrono::milliseconds(std::max<std::uint32_t>(1, options_.write_timeout_ms));
  const auto read_timeout =
      std::chrono::milliseconds(std::max<std::uint32_t>(1, options_.read_timeout_ms));

  while (true) {
    const auto now = Clock::now();

    if (!draining && stop_.load(std::memory_order_relaxed)) {
      // Shutdown: stop accepting, fail queued queries, let in-flight
      // slices finish, flush what clients will take, then leave.
      draining = true;
      drain_deadline =
          now + std::chrono::milliseconds(options_.drain_timeout_ms);
      {
        std::lock_guard<std::mutex> lk(im.ds.mu);
        im.ds.draining = true;
      }
      im.ds.cv.notify_all();
    }
    if (draining) {
      bool engine_idle = false;
      bool events_pending = true;
      {
        std::lock_guard<std::mutex> lk(im.ds.mu);
        engine_idle = im.ds.ready.empty() && im.ds.in_flight == 0;
        events_pending = !im.ds.events.empty();
      }
      bool flushed = true;
      for (const auto& c : im.conns)
        if (!c.dead && c.out_off < c.out.size()) flushed = false;
      if ((engine_idle && !events_pending && flushed) || now >= drain_deadline)
        break;
    }

    if (now - last_status >=
        std::chrono::milliseconds(
            std::max<std::uint32_t>(options_.status_interval_ms, 1))) {
      last_status = now;
      write_status();
    }

    std::vector<pollfd> fds;
    fds.reserve(im.conns.size() + 2);
    fds.push_back({im.listener.fd(),
                   static_cast<short>(draining ? 0 : POLLIN), 0});
    fds.push_back({im.ds.wake.poll_fd(), POLLIN, 0});
    for (const auto& c : im.conns) {
      short events = POLLIN;
      if (c.out_off < c.out.size()) events |= POLLOUT;
      fds.push_back({c.sock.fd(), events, 0});
    }
    util::poll_retry(fds.data(), fds.size(),
                     static_cast<int>(options_.poll_ms));

    // Worker completions first: frames queue onto their connections and
    // finished queries release them before new input is read.
    if (fds[1].revents & POLLIN) im.ds.wake.drain();
    {
      std::deque<SvcEvent> events;
      {
        std::lock_guard<std::mutex> lk(im.ds.mu);
        events.swap(im.ds.events);
      }
      for (auto& ev : events) apply_event(ev);
    }

    if (fds[0].revents & POLLIN) {
      while (true) {
        auto sock = util::accept_tcp(im.listener.fd());
        if (!sock.valid()) break;
        util::set_send_buffer(sock.fd(), options_.sndbuf_bytes);
        Conn c;
        c.sock = std::move(sock);
        c.id = im.next_conn_id++;
        c.trace_t0 = obs::Tracer::enabled() ? obs::Tracer::now_ns() : 0;
        obs::instant("serve", "conn.accept", "conn",
                     static_cast<std::int64_t>(c.id));
        im.conns.push_back(std::move(c));
      }
    }

    // Per-connection I/O. fds entry i+2 tracks conns[i] for the first
    // `polled` connections (later accepts wait one tick).
    const std::size_t polled =
        std::min(im.conns.size(), fds.size() - 2);
    for (std::size_t i = 0; i < polled; ++i) {
      Conn& c = im.conns[i];
      const short rev = fds[i + 2].revents;
      if (c.dead) continue;
      if (rev & (POLLERR | POLLNVAL)) {
        c.dead = true;
        continue;
      }
      if (rev & (POLLIN | POLLHUP)) {
        std::string buf;
        const auto r = util::read_some(c.sock.fd(), buf);
        if (r == util::IoResult::kClosed) {
          c.dead = true;
          continue;
        }
        if (!buf.empty()) {
          c.in.feed(buf);
          while (true) {
            const auto frame = c.in.next();
            if (!frame) break;
            handle_frame(c, *frame);
            if (c.dead) break;
          }
          if (c.in.corrupt()) c.dead = true;
          if (c.dead) continue;
          if (c.in.partial() && !c.read_stalled) {
            c.read_stalled = true;
            c.read_stall_since = Clock::now();
          } else if (!c.in.partial()) {
            c.read_stalled = false;
          }
        }
      }
      if (rev & POLLOUT) flush_conn(c);
    }

    // Deadline sweeps: a peer that takes none of its queued bytes, or
    // leaves a request frame half-sent, is evicted — only that
    // connection pays, never the daemon or its other clients.
    const auto sweep_now = Clock::now();
    for (auto& c : im.conns) {
      if (c.dead) continue;
      if (c.out_off < c.out.size() &&
          sweep_now - c.write_stall_since > write_timeout) {
        ++stats_.evicted;
        ORACLE_LOG_WARN(strfmt("evicting stalled client (conn %llu): %zu "
                               "response byte(s) unaccepted",
                               static_cast<unsigned long long>(c.id),
                               c.out.size() - c.out_off));
        c.dead = true;
        continue;
      }
      if (c.read_stalled && sweep_now - c.read_stall_since > read_timeout) {
        ++stats_.evicted;
        ORACLE_LOG_WARN(strfmt("evicting stalled client (conn %llu): "
                               "partial request frame",
                               static_cast<unsigned long long>(c.id)));
        c.dead = true;
      }
    }

    for (std::size_t i = 0; i < im.conns.size();) {
      if (im.conns[i].dead) {
        close_conn_trace(im.conns[i]);
        im.conns.erase(im.conns.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  // Stop the pool. Workers drain the (now draining-flagged) queue by
  // answering each remaining query with a shutdown error, then exit.
  {
    std::lock_guard<std::mutex> lk(im.ds.mu);
    im.ds.exit_workers = true;
  }
  im.ds.cv.notify_all();
  for (auto& w : im.workers) w.join();
  im.workers.clear();

  // Settle counters from any completions that raced the drain decision
  // (their frames have no takers; the stats still count).
  {
    std::deque<SvcEvent> events;
    {
      std::lock_guard<std::mutex> lk(im.ds.mu);
      events.swap(im.ds.events);
    }
    for (auto& ev : events)
      if (ev.kind == SvcEvent::Kind::kQueryDone) apply_event(ev);
  }

  for (auto& c : im.conns) close_conn_trace(c);
  im.conns.clear();

  write_status();
  return stats_;
}

#endif

}  // namespace oracle::exp
