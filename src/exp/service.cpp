#include "exp/service.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#if !defined(_WIN32)
#include <poll.h>
#endif

#include "exp/aggregate.hpp"
#include "exp/batch.hpp"
#include "exp/job_queue.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/posix_io.hpp"
#include "util/string_util.hpp"

namespace oracle::exp {

namespace {
using Clock = std::chrono::steady_clock;
}

struct Service::Impl {
  StoreIndex index;
  bool opened = false;
  util::Socket listener;
  std::vector<util::Socket> conns;
  Clock::time_point started{};
};

Service::Service(ServiceOptions options)
    : impl_(new Impl), options_(std::move(options)) {}

Service::~Service() { delete impl_; }

const StoreIndex& Service::index() const { return impl_->index; }

void Service::open() {
  ORACLE_REQUIRE(!options_.store.empty(),
                 "the oracle service requires a --store path");
  if (!impl_->opened) {
    impl_->index.add_store(options_.store);
    for (const auto& extra : options_.extra_stores)
      impl_->index.add_store(extra);
    impl_->opened = true;
    ORACLE_LOG_INFO(strfmt(
        "store index: %zu record(s) over %zu store(s), %.1f MiB indexed "
        "(%zu duplicate(s), %zu corrupt line(s))",
        impl_->index.size(), impl_->index.store_count(),
        static_cast<double>(impl_->index.indexed_bytes()) / (1 << 20),
        impl_->index.duplicates(), impl_->index.corrupt_lines()));
  } else {
    impl_->index.refresh();
  }
}

QueryStats Service::query(const ServiceQuery& q, ServiceSink& sink) {
  open();
  const auto& known = Aggregator::metric_names();
  const auto known_metric = [&](const std::string& m) {
    return std::find(known.begin(), known.end(), m) != known.end();
  };
  for (const auto& m : q.metrics)
    ORACLE_REQUIRE(known_metric(m),
                   "unknown metric '" + m + "' (try --metric list)");
  const bool targeted = !q.target_metric.empty();
  if (targeted) {
    ORACLE_REQUIRE(known_metric(q.target_metric),
                   "unknown target metric '" + q.target_metric + "'");
    ORACLE_REQUIRE(q.target_ci95 > 0.0, "precision target must be > 0");
    // With a master seed, job seeds derive from sweep *indices*; growing
    // the seed axis renumbers every job, changes every content hash, and
    // re-runs the whole grid each round — refuse rather than thrash.
    ORACLE_REQUIRE(q.sweep.master_seed == 0,
                   "a precision target cannot be combined with a master "
                   "seed (derived seeds change with the axis length)");
  }

  const auto t0 = Clock::now();
  QueryStats st;
  core::SweepSpec spec = q.sweep;
  Aggregator agg;
  std::vector<GridPointSummary> groups;

  for (std::size_t round = 0;; ++round) {
    // The jobs (and hashes) exactly as the batch engine would number and
    // derive them — JobQueue is the single source of job identity.
    JobQueue queue(spec.build());
    if (spec.master_seed != 0) queue.derive_seeds(spec.master_seed);
    const auto& jobs = queue.jobs();
    ORACLE_REQUIRE(!jobs.empty(), "query names an empty sweep");

    std::size_t cached = 0;
    for (const auto& job : jobs)
      if (impl_->index.contains(job.content_hash)) ++cached;
    st.total = jobs.size();
    if (round == 0) st.cached = cached;
    st.rounds = round + 1;
    sink.on_progress(st.total, st.cached, st.scheduled, cached);

    if (cached < jobs.size()) {
      // Schedule only the missing jobs: a resume-mode batch run into the
      // canonical store skips every hash the store already holds and
      // appends the rest in job order (ordered commit keeps the store
      // deterministic; the extra stores contribute their hashes too).
      BatchOptions opt;
      opt.exec.workers = options_.exec_threads;
      opt.exec.shard_size = options_.shard_size;
      opt.exec.progress = false;
      opt.jsonl_path = options_.store;
      opt.resume = true;
      opt.extra_resume_stores = options_.extra_stores;
      opt.master_seed = spec.master_seed;
      opt.collect = false;
      const auto outcome = run_batch(spec.build(), opt);
      st.scheduled += outcome.report.executed + outcome.report.failed;
      st.failed += outcome.report.failed;
      for (const auto& err : outcome.report.errors)
        ORACLE_LOG_ERROR("query job failed: " + err);
      impl_->index.refresh();
      sink.on_progress(st.total, st.cached, st.scheduled,
                       st.total - outcome.report.failed);
    }

    // Aggregate the requested points in sweep order (== store commit
    // order for a store this sweep produced, so tables are byte-identical
    // to `oracle_batch aggregate` over it). Failed jobs have no record
    // and silently contribute nothing, exactly like aggregate-over-store.
    agg = Aggregator();
    for (const auto& job : jobs)
      if (const auto line = impl_->index.fetch_line(job.content_hash))
        agg.add_line(*line);
    groups = agg.summarize();

    if (!targeted || round >= options_.max_target_rounds) break;
    bool met = !groups.empty();
    for (const auto& g : groups) {
      const auto* m = g.metric(q.target_metric);
      // One sample has no interval (ci95 = 0); it never satisfies a
      // target — more seeds are needed to even estimate the width.
      if (m == nullptr || m->n < 2 || m->ci95 > q.target_ci95) {
        met = false;
        break;
      }
    }
    if (met) break;
    // Extend the replication axis with the next fresh seed and go again;
    // every already-run (config, seed) point stays a cache hit.
    const std::uint64_t next =
        *std::max_element(spec.seeds.begin(), spec.seeds.end()) + 1;
    spec.seeds.push_back(next);
  }

  for (const auto& m : q.metrics)
    sink.on_table(m, Aggregator::to_table(groups, m));
  if (q.want_csv) sink.on_csv(Aggregator::to_csv(groups));

  st.wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
  sink.on_stats(st);
  return st;
}

std::uint16_t Service::port() const {
  return impl_->listener.valid() ? util::local_port(impl_->listener.fd()) : 0;
}

#if defined(_WIN32)

void Service::start() {
  throw SimulationError("the oracle service daemon requires a POSIX host");
}

ServiceStats Service::run() { return stats_; }

#else

void Service::start() {
  open();
  impl_->listener = util::listen_tcp(options_.listen);
  if (!impl_->listener.valid())
    throw SimulationError("oracle service cannot listen on " +
                          options_.listen.str());
  impl_->started = Clock::now();
  ORACLE_LOG_INFO(strfmt(
      "oracle service listening on %s:%u (store %s, %zu cached record(s))",
      options_.listen.host.c_str(), static_cast<unsigned>(port()),
      options_.store.c_str(), impl_->index.size()));
}

namespace {

/// ServiceSink that streams each event as one response frame on a
/// connection. A dead/slow peer marks the sink failed; the query still
/// runs to completion (its records are committed and cached either way).
class FrameSink : public ServiceSink {
 public:
  FrameSink(int fd, std::uint64_t seq) : fd_(fd), seq_(seq) {}

  bool failed() const { return failed_; }

  void on_progress(std::size_t total, std::size_t cached,
                   std::size_t scheduled, std::size_t completed) override {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kProgress;
    rsp.total = total;
    rsp.cached = cached;
    rsp.scheduled = scheduled;
    rsp.completed = completed;
    send(rsp);
  }

  void on_table(const std::string& metric, const std::string& table) override {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kTable;
    rsp.metric = metric;
    rsp.text = table;
    send(rsp);
  }

  void on_csv(const std::string& csv) override {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kCsv;
    rsp.text = csv;
    send(rsp);
  }

  void on_stats(const QueryStats& stats) override {
    ServiceResponse rsp;
    rsp.kind = ServiceResponseKind::kStats;
    rsp.total = stats.total;
    rsp.cached = stats.cached;
    rsp.scheduled = stats.scheduled;
    rsp.failed = stats.failed;
    rsp.rounds = stats.rounds;
    rsp.wall_us = stats.wall_us;
    send(rsp);
  }

  void send(ServiceResponse rsp) {
    if (failed_) return;
    rsp.seq = seq_;
    if (!util::send_frame(fd_, rsp.encode(),
                          Clock::now() + std::chrono::seconds(10),
                          kServiceMaxFrameBytes))
      failed_ = true;
  }

 private:
  int fd_;
  std::uint64_t seq_;
  bool failed_ = false;
};

}  // namespace

ServiceStats Service::run() {
  Impl& im = *impl_;
  ORACLE_REQUIRE(im.listener.valid(), "Service::start() not called");

  auto snapshot = [&] {
    obs::StatusSnapshot st;
    st.phase = stats_.shutdown_requested ? "done" : "serving";
    st.jobs_total = stats_.jobs_requested;
    st.jobs_done = stats_.cache_hits + stats_.jobs_scheduled;
    st.elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - im.started).count();
    st.requests = stats_.requests;
    st.cache_hits = stats_.cache_hits;
    return st;
  };
  auto write_status = [&] {
    if (options_.status_path.empty()) return;
    obs::write_status_file(options_.status_path, snapshot());
  };

  // One request, one (possibly streamed) answer. Returns false when the
  // connection should be dropped.
  auto handle = [&](int fd, const ServiceRequest& req) -> bool {
    ++stats_.requests;
    obs::Span span("serve", "request", "op",
                   static_cast<std::int64_t>(req.op));
    const auto reply = [&](ServiceResponse rsp) {
      rsp.seq = req.seq;
      return util::send_frame(fd, rsp.encode(),
                              Clock::now() + std::chrono::seconds(10),
                              kServiceMaxFrameBytes);
    };
    ServiceResponse rsp;
    switch (req.op) {
      case ServiceOp::kPing: {
        rsp.kind = ServiceResponseKind::kOk;
        return reply(rsp);
      }
      case ServiceOp::kStatus: {
        rsp.kind = ServiceResponseKind::kStatus;
        rsp.text = snapshot().to_json();
        return reply(rsp);
      }
      case ServiceOp::kShutdown: {
        stats_.shutdown_requested = true;
        stop();
        rsp.kind = ServiceResponseKind::kOk;
        return reply(rsp);
      }
      case ServiceOp::kQuery: {
        ++stats_.queries;
        obs::Span qspan("serve", "query");
        FrameSink sink(fd, req.seq);
        try {
          const QueryStats qs = query(req.query, sink);
          stats_.jobs_requested += qs.total;
          stats_.cache_hits += qs.cached;
          stats_.jobs_scheduled += qs.scheduled;
          qspan.set_arg0("cache_hits", static_cast<std::int64_t>(qs.cached));
          qspan.set_arg1("scheduled",
                         static_cast<std::int64_t>(qs.scheduled));
          ORACLE_LOG_INFO(strfmt(
              "query: %zu point(s), %zu cached, %zu scheduled, %zu failed, "
              "%zu round(s), %.1f ms",
              qs.total, qs.cached, qs.scheduled, qs.failed, qs.rounds,
              static_cast<double>(qs.wall_us) / 1e3));
        } catch (const ConfigError& e) {
          ++stats_.bad_requests;
          rsp.kind = ServiceResponseKind::kError;
          rsp.text = e.what();
          return reply(rsp);
        }
        if (sink.failed()) return false;
        rsp.kind = ServiceResponseKind::kDone;
        return reply(rsp);
      }
    }
    return false;
  };

  auto last_status = Clock::now();
  write_status();

  while (!stop_.load(std::memory_order_relaxed)) {
    const auto now = Clock::now();
    if (now - last_status >=
        std::chrono::milliseconds(
            std::max<std::uint32_t>(options_.status_interval_ms, 1))) {
      last_status = now;
      write_status();
    }

    std::vector<pollfd> fds;
    fds.reserve(im.conns.size() + 1);
    fds.push_back({im.listener.fd(), POLLIN, 0});
    for (const auto& c : im.conns) fds.push_back({c.fd(), POLLIN, 0});
    const int ready = util::poll_retry(fds.data(), fds.size(),
                                       static_cast<int>(options_.poll_ms));
    if (ready <= 0) continue;

    // Conns accepted below were not part of this poll (fds covers only
    // the first `polled` entries); they are served from the next tick on.
    const std::size_t polled = im.conns.size();
    if (fds[0].revents & POLLIN) {
      while (true) {
        auto conn = util::accept_tcp(im.listener.fd());
        if (!conn.valid()) break;
        im.conns.push_back(std::move(conn));
      }
    }

    for (std::size_t i = 0; i < polled;) {
      const short rev = fds[i + 1].revents;
      if (rev == 0) {
        ++i;
        continue;
      }
      bool drop = (rev & (POLLERR | POLLNVAL)) != 0;
      if (!drop && (rev & (POLLIN | POLLHUP))) {
        const auto frame = util::recv_frame(
            im.conns[i].fd(), Clock::now() + std::chrono::milliseconds(250),
            kServiceMaxFrameBytes);
        if (!frame) {
          drop = true;
        } else if (const auto req = ServiceRequest::parse(*frame)) {
          if (!handle(im.conns[i].fd(), *req)) drop = true;
        } else {
          ++stats_.bad_requests;
          drop = true;  // unparseable request: the stream is not trusted
        }
      }
      if (drop) {
        im.conns.erase(im.conns.begin() + static_cast<std::ptrdiff_t>(i));
        // fds is rebuilt next tick; indices past i are off by one now, so
        // finish this tick conservatively by re-polling.
        break;
      }
      ++i;
    }
  }

  write_status();
  return stats_;
}

#endif

}  // namespace oracle::exp
