#include "exp/job.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace oracle::exp {

std::string job_canonical_string(const core::ExperimentConfig& config) {
  const auto& c = config.costs;
  const auto& m = config.machine;
  // v1: bump the version tag if the serialization ever changes meaning, so
  // old checkpoints cannot silently satisfy new jobs.
  return strfmt(
      "v1|topo=%s|strat=%s|wl=%s|leaf=%lld|split=%lld|combine=%lld|"
      "hop=%lld|ctrl=%lld|word=%lld|gsz=%u|rsz=%u|csz=%u|lm=%u|coproc=%d|"
      "piggy=%d|start=%u|seed=%llu|sample=%lld|perpe=%d|maxev=%llu|"
      "slowpct=%u|slowf=%u",
      config.topology.c_str(), config.strategy.c_str(),
      config.workload.c_str(), static_cast<long long>(c.leaf_cost),
      static_cast<long long>(c.split_cost),
      static_cast<long long>(c.combine_cost),
      static_cast<long long>(m.hop_latency),
      static_cast<long long>(m.ctrl_latency),
      static_cast<long long>(m.word_time), m.goal_msg_size,
      m.response_msg_size, m.ctrl_msg_size,
      static_cast<unsigned>(m.load_measure), m.lb_coprocessor ? 1 : 0,
      m.piggyback_load ? 1 : 0, m.start_pe,
      static_cast<unsigned long long>(m.seed),
      static_cast<long long>(m.sample_interval), m.monitor_per_pe ? 1 : 0,
      static_cast<unsigned long long>(m.max_events), m.slow_pe_percent,
      m.slow_factor);
}

std::uint64_t job_content_hash(const core::ExperimentConfig& config) {
  return fnv1a64(job_canonical_string(config));
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf, 16);
}

bool parse_hash_hex(const std::string& hex, std::uint64_t& out) {
  if (hex.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char ch : hex) {
    v <<= 4;
    if (ch >= '0' && ch <= '9') {
      v |= static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      v |= static_cast<std::uint64_t>(ch - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

}  // namespace oracle::exp
