#pragma once
// exp::StoreIndex — the in-memory index behind the resident oracle
// service's content-hash result cache: hash -> (store, byte offset,
// length) over one or more JSONL result stores.
//
// The index is built once at startup by scanning each registered store,
// and updated incrementally by refresh(): every store remembers the byte
// frontier up to which it has been indexed, and only the appended suffix
// is rescanned. Scanning stops at the last complete (newline-terminated)
// line — a torn tail left by a killed writer is not indexed, and is
// naturally picked up by the next refresh() once the line is completed
// (or re-skipped forever if it never is; resume appends terminate such
// tails with a newline first, turning them into one counted corrupt line).
//
// Loading is mmap-or-stream: large stores are scanned through a read-only
// mmap window (no double-buffering a multi-GB file through ifstream);
// small stores, growth suffixes, and platforms without mmap fall back to
// plain buffered reads. Lookups never keep file data resident — only the
// ~32 bytes/entry of index state — and fetch_line() seeks out the exact
// recorded bytes, so a warm cache hit returns the stored record
// byte-identically.
//
// Duplicate hashes (the same job present in several registered stores, or
// twice in one after an overlapping merge) keep the FIRST occurrence, in
// store registration + file order — matching Aggregator::add_line's dedup
// so a cache answer and a full re-aggregation agree.
//
// Threading contract: the index itself is NOT internally synchronized.
// contains()/lookup()/fetch_line()/size() are safe to call concurrently
// from many readers (fetch_line opens its own file handle per call), but
// add_store()/refresh() mutate the map and must be exclusive with every
// reader. exp::Service wraps the index in a readers-writer lock: queries
// aggregate under the shared side, and the one refresh() after each
// committed batch chunk takes the exclusive side — because the stores are
// append-only, a reader between refreshes still sees a consistent (merely
// slightly stale) snapshot, never a torn one.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace oracle::exp {

class StoreIndex {
 public:
  struct Entry {
    std::uint32_t store = 0;    ///< index into stores() registration order
    std::uint64_t offset = 0;   ///< byte offset of the line in the store
    std::uint32_t length = 0;   ///< line length, excluding the newline
  };

  /// Register a JSONL store and index its current contents. A missing
  /// file registers with zero entries (the store may be created later by
  /// the first scheduled run; refresh() will pick it up). Returns the
  /// number of new hashes indexed. Registering the same path twice is a
  /// no-op beyond a refresh of that store.
  std::size_t add_store(const std::string& path);

  /// Rescan every registered store from its indexed frontier; returns the
  /// number of new hashes indexed.
  std::size_t refresh();

  bool contains(std::uint64_t hash) const { return index_.contains(hash); }
  std::optional<Entry> lookup(std::uint64_t hash) const;

  /// Read back the exact stored JSONL line for `hash` (no trailing
  /// newline). nullopt when the hash is unknown or the store has been
  /// truncated/rewritten underneath the index.
  std::optional<std::string> fetch_line(std::uint64_t hash) const;

  std::size_t size() const { return index_.size(); }      ///< distinct hashes
  std::size_t store_count() const { return stores_.size(); }
  const std::string& store_path(std::size_t i) const { return stores_[i].path; }

  /// Later occurrences of an already-indexed hash (first one wins).
  std::size_t duplicates() const { return duplicates_; }

  /// Complete lines that did not parse as a JSONL record (counted once;
  /// never rescanned).
  std::size_t corrupt_lines() const { return corrupt_lines_; }

  /// Total bytes of complete lines indexed across all stores.
  std::uint64_t indexed_bytes() const;

  /// Monotone snapshot version: bumped by every refresh() that indexed at
  /// least one new record. Two reads under the same generation saw the
  /// same index contents (appends only become visible through refresh).
  std::uint64_t generation() const { return generation_; }

 private:
  struct Store {
    std::string path;
    std::uint64_t frontier = 0;  ///< bytes indexed so far (complete lines)
  };

  std::size_t scan_store(std::size_t store_idx);
  std::size_t index_chunk(std::size_t store_idx, const char* data,
                          std::size_t size, std::uint64_t base_offset);

  std::vector<Store> stores_;
  std::unordered_map<std::uint64_t, Entry> index_;
  std::size_t duplicates_ = 0;
  std::size_t corrupt_lines_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace oracle::exp
