#pragma once
// Wire protocol for the lease service. Frames are length-prefixed
// (util::send_frame); payloads are versioned space-separated text so the
// journal, traces, and a human with netcat all read the same dialect.
//
//   request  := "v1 <seq> <op> ..."
//   response := "v1 <seq> <kind> ..."
//
// `seq` is chosen by the client and echoed verbatim in the response, so a
// duplicated or stale response (retry racing the original, a proxy
// replaying frames) is recognised and dropped client-side — the protocol
// is safe to retry blindly.
//
// Ops:
//   acquire  <slot> <slot_count> <jobs>            -> lease|empty|done|error
//   heartbeat <slot> <epoch>                       -> ok|fenced|done
//   commit   <slot> <epoch> <frontier> <wall_us> <retries>
//                                                  -> ok|fenced|done
//   steal    <slot> <epoch>                        -> lease|empty|done|fenced
//   status                                         -> status <json>
//
// Response kinds:
//   lease  <epoch> <begin> <end>   a (possibly re-granted) lease
//   ok     <begin> <end>           accepted; echoes current lease bounds so
//                                  a steal-shrunk end propagates promptly
//   fenced                         stale epoch — caller must stop writing
//   empty                          nothing to hand out *yet*; retry later
//   done                           sweep complete, worker may exit
//   status <json>                  server state snapshot
//   error  <message>               malformed/unacceptable request

#include <cstdint>
#include <optional>
#include <string>

namespace oracle::exp {

inline constexpr const char* kLeaseProtoVersion = "v1";

enum class LeaseOp { kAcquire, kHeartbeat, kCommit, kSteal, kStatus };

struct LeaseRequest {
  std::uint64_t seq = 0;
  LeaseOp op = LeaseOp::kStatus;
  std::size_t slot = 0;
  std::size_t slot_count = 0;  // acquire only
  std::size_t jobs = 0;        // acquire only: total sweep size, validated
  std::uint64_t epoch = 0;
  std::size_t frontier = 0;    // commit only
  std::uint64_t wall_us = 0;   // commit only: wall of the last finished job
  std::uint64_t retries = 0;   // commit only: client-side retry counter

  std::string encode() const;
  static std::optional<LeaseRequest> parse(const std::string& payload);
};

enum class LeaseResponseKind {
  kLease,
  kOk,
  kFenced,
  kEmpty,
  kDone,
  kStatus,
  kError
};

struct LeaseResponse {
  std::uint64_t seq = 0;
  LeaseResponseKind kind = LeaseResponseKind::kError;
  std::uint64_t epoch = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string text;  // status json / error message

  std::string encode() const;
  static std::optional<LeaseResponse> parse(const std::string& payload);
};

}  // namespace oracle::exp
