#pragma once
// JobQueue: the unit of work the batch engine executes. Built from a list
// of ExperimentConfigs (typically core::SweepBuilder::build()), it assigns
// stable indices, computes content hashes, optionally derives independent
// per-job seeds from one master seed, and hands out contiguous *shards* of
// jobs to executor workers through a thread-safe claim cursor.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "exp/job.hpp"

namespace oracle::exp {

class JobQueue {
 public:
  JobQueue() = default;

  /// Index, hash and enqueue every config in order.
  explicit JobQueue(const std::vector<core::ExperimentConfig>& configs);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;
  JobQueue(JobQueue&& other) noexcept;
  JobQueue& operator=(JobQueue&& other) noexcept;

  /// Overwrite every job's seed with an independent stream derived from
  /// `master` and the job's sweep index (Rng::derive_seed). Same sweep +
  /// same master ⇒ the same per-job seeds, regardless of job count or
  /// execution order. Content hashes are recomputed.
  void derive_seeds(std::uint64_t master);

  /// Drop jobs whose content hash is in `completed` (checkpoint resume).
  /// Surviving jobs keep their original sweep indices. Returns the number
  /// of jobs removed. Resets the claim cursor.
  std::size_t skip_completed(const std::unordered_set<std::uint64_t>& completed);

  /// Keep only the jobs of shard `index` out of `count` (content hash
  /// modulo count — the distributed sharding rule). The slice is a pure
  /// function of job identity, so it is stable across invocations,
  /// resumes, and hosts: the same job always lands in the same shard.
  /// Surviving jobs keep their sweep indices. Returns the number of jobs
  /// removed; count <= 1 keeps everything. Resets the claim cursor.
  std::size_t retain_shard(std::size_t index, std::size_t count);

  /// Keep only the jobs whose *sweep index* lies in [begin, end) — the
  /// work-stealing lease rule. Unlike retain_shard's hash modulus, a lease
  /// is a contiguous slice of the job order, so the parent can shrink it
  /// (steal its tail) while a worker runs: jobs already committed keep
  /// their identity and the stolen tail re-slices cleanly elsewhere.
  /// Surviving jobs keep their sweep indices. Returns the number of jobs
  /// removed. Resets the claim cursor.
  std::size_t retain_range(std::size_t begin, std::size_t end);

  std::size_t size() const noexcept { return jobs_.size(); }
  bool empty() const noexcept { return jobs_.empty(); }
  const ExperimentJob& job(std::size_t pos) const { return jobs_[pos]; }
  const std::vector<ExperimentJob>& jobs() const noexcept { return jobs_; }

  /// A claimed contiguous range of queue positions [begin, end).
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
    bool empty() const noexcept { return begin >= end; }
    std::size_t size() const noexcept { return end - begin; }
  };

  /// Atomically claim the next shard of up to `max_jobs` jobs (>= 1).
  /// Returns an empty shard once the queue is drained. Safe to call from
  /// any number of worker threads.
  Shard claim(std::size_t max_jobs) noexcept;

  /// Rewind the claim cursor (e.g. to run the same queue again).
  void reset_cursor() noexcept { cursor_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<ExperimentJob> jobs_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace oracle::exp
