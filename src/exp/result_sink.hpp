#pragma once
// Streaming result persistence for batch runs. The Executor commits results
// strictly in job-index order and calls sinks from one thread at a time, so
// sinks need no internal locking and an interrupted run always leaves a
// clean prefix of the sweep on disk.
//
// JSONL is the primary store: one self-describing record per run, carrying
// the job index and content hash so a later --resume invocation can tell
// exactly which grid points are already done. CSV mirrors stats/csv.cpp's
// schema for spreadsheet/plotting pipelines. MemorySink collects results
// in-process (the library-level run_batch return value), and TeeSink fans
// one stream out to several backends (e.g. JSONL file + memory).

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exp/job.hpp"
#include "stats/run_result.hpp"

namespace oracle::exp {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Persist one finished run. Calls arrive in ascending job.index order,
  /// serialized by the executor's commit lock.
  virtual void write(const ExperimentJob& job, const stats::RunResult& r) = 0;

  /// Push buffered data to durable storage (called after every commit so a
  /// kill -9 loses at most the in-flight record).
  virtual void flush() {}
};

/// One run as a single-line JSON object (no trailing newline). Numeric
/// fields use %.17g so equal doubles always render identically — the basis
/// of the byte-identical-JSONL determinism guarantee.
std::string jsonl_record(const ExperimentJob& job, const stats::RunResult& r);

/// The fields recoverable from one JSONL line. `result` carries everything
/// the record stores; fields the record does not persist (histograms, time
/// series) are left default.
struct JsonlRecord {
  std::uint64_t job_index = 0;
  std::uint64_t content_hash = 0;
  stats::RunResult result;
};

/// Parse one JSONL line; std::nullopt on malformed/truncated input (a
/// killed run's final partial line must not poison a resume).
std::optional<JsonlRecord> parse_jsonl_record(const std::string& line);

/// Scan an existing JSONL file and collect the content hashes of completed
/// jobs. Missing file ⇒ empty set; corrupt lines are skipped.
std::unordered_set<std::uint64_t> load_completed_hashes(
    const std::string& path);

/// Same recovery scan for a CsvSink file: collects the `hash` column of
/// every complete row (field count must match the header; truncated tail
/// rows are ignored). Missing file ⇒ empty set.
std::unordered_set<std::uint64_t> load_completed_hashes_csv(
    const std::string& path);

/// True if `path` exists, is non-empty, and does not end in a newline —
/// i.e. a previous run was killed mid-write. Append-mode sinks and the
/// checkpoint terminate such a partial line first so the next record
/// starts clean (the partial line itself stays ignored by the parsers).
bool has_partial_last_line(const std::string& path);

/// Append-mode JSONL file (or caller-owned stream) sink.
class JsonlSink : public ResultSink {
 public:
  /// Writes to `path`; `append` keeps existing records (resume mode).
  explicit JsonlSink(const std::string& path, bool append = false);
  /// Writes to a caller-owned stream (tests, stdout piping).
  explicit JsonlSink(std::ostream& os) : os_(&os) {}

  void write(const ExperimentJob& job, const stats::RunResult& r) override;

  /// Flush to the OS and (file-backed sinks only) fsync: the executor
  /// syncs the store *before* the checkpoint claims its jobs, so even a
  /// power loss cannot persist a completion whose record vanished.
  void flush() override;

 private:
  std::ofstream file_;
  std::string path_;  ///< empty for caller-owned streams (no fsync target)
  std::ostream* os_ = nullptr;
};

/// CSV sink with the stats/csv.cpp column schema plus leading job/hash
/// columns. Emits the header once (skipped when appending to a non-empty
/// file).
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(const std::string& path, bool append = false);
  explicit CsvSink(std::ostream& os) : os_(&os) {}

  void write(const ExperimentJob& job, const stats::RunResult& r) override;
  void flush() override;

  static std::string header();
  static std::string row(const ExperimentJob& job, const stats::RunResult& r);

 private:
  std::ofstream file_;
  std::string path_;  ///< empty for caller-owned streams (no fsync target)
  std::ostream* os_ = nullptr;
  bool header_written_ = false;
};

/// Collects (job, result) pairs in memory, in commit (= job index) order.
class MemorySink : public ResultSink {
 public:
  void write(const ExperimentJob& job, const stats::RunResult& r) override {
    runs_.emplace_back(job, r);
  }

  const std::vector<std::pair<ExperimentJob, stats::RunResult>>& runs() const {
    return runs_;
  }

  /// Just the results, in job order.
  std::vector<stats::RunResult> results() const;

 private:
  std::vector<std::pair<ExperimentJob, stats::RunResult>> runs_;
};

/// Forwards every write/flush to each child sink in order.
class TeeSink : public ResultSink {
 public:
  void add(ResultSink& sink) { sinks_.push_back(&sink); }

  void write(const ExperimentJob& job, const stats::RunResult& r) override {
    for (auto* s : sinks_) s->write(job, r);
  }
  void flush() override {
    for (auto* s : sinks_) s->flush();
  }

 private:
  std::vector<ResultSink*> sinks_;
};

}  // namespace oracle::exp
