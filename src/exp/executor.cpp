#include "exp/executor.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <mutex>
#include <optional>
#include <thread>

#include "core/simulator.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace oracle::exp {

namespace {

std::string format_eta(double seconds) {
  if (seconds < 0) return "?";
  const auto s = static_cast<long long>(seconds + 0.5);
  if (s < 60) return strfmt("%llds", s);
  if (s < 3600) return strfmt("%lldm%02llds", s / 60, s % 60);
  return strfmt("%lldh%02lldm", s / 3600, (s % 3600) / 60);
}

}  // namespace

DurationStats DurationStats::from_samples(std::vector<double> seconds) {
  DurationStats d;
  if (seconds.empty()) return d;
  std::sort(seconds.begin(), seconds.end());
  d.count = seconds.size();
  d.min_s = seconds.front();
  d.max_s = seconds.back();
  double sum = 0.0;
  for (const double s : seconds) sum += s;
  d.mean_s = sum / static_cast<double>(d.count);
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        std::llround(q * static_cast<double>(d.count - 1)));
    return seconds[idx];
  };
  d.p50_s = at(0.50);
  d.p95_s = at(0.95);
  d.p99_s = at(0.99);
  return d;
}

std::string DurationStats::summary() const {
  if (count == 0) return "job wall: n/a";
  return strfmt(
      "job wall: min %.2fms / mean %.2fms / p50 %.2fms / p95 %.2fms / "
      "p99 %.2fms / max %.2fms (n=%zu)",
      min_s * 1e3, mean_s * 1e3, p50_s * 1e3, p95_s * 1e3, p99_s * 1e3,
      max_s * 1e3, count);
}

std::string BatchReport::summary() const {
  std::string s = strfmt(
      "%zu jobs: %zu executed, %zu skipped (cached), %zu failed in %.2fs "
      "(%.1f jobs/s)",
      total_jobs, executed, skipped, failed, elapsed_seconds,
      jobs_per_second);
  if (cancelled > 0) s += strfmt(", %zu released (lease shrunk)", cancelled);
  return s;
}

BatchReport Executor::run(JobQueue& queue, ResultSink& sink,
                          Checkpoint* checkpoint) {
  using Clock = std::chrono::steady_clock;

  const std::size_t n = queue.size();
  BatchReport report;
  report.total_jobs = n;
  if (n == 0) return report;

  std::size_t workers = opts_.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, n);

  std::size_t shard_size = opts_.shard_size;
  if (shard_size == 0) shard_size = std::max<std::size_t>(1, n / workers / 8);

  // Ordered-commit state, guarded by commit_mutex. Slot i corresponds to
  // queue position i (ascending job index); a slot holds the finished
  // result, or nullopt + failed flag for a job that threw. `draining`
  // marks that one thread is currently writing the committable prefix to
  // the sink *outside* the lock, so workers never queue up behind disk
  // I/O — they deposit their slot and go claim the next shard.
  std::mutex commit_mutex;
  std::vector<std::optional<stats::RunResult>> pending(n);
  std::vector<char> failed(n, 0);
  std::vector<char> finished(n, 0);
  std::size_t next_commit = 0;
  std::size_t committed = 0;
  bool draining = false;
  // Set when a sink/checkpoint write throws: workers stop claiming work so
  // a dead store fails the run fast instead of simulating the whole
  // remaining queue into memory nobody will ever drain.
  std::atomic<bool> aborted{false};
  // Set when opts_.stop_before vetoes a job: the run winds down cleanly —
  // in-flight jobs commit, nothing new starts. The commit frontier halts
  // at the first skipped position, so the store keeps its clean-prefix
  // shape and the abandoned tail stays unclaimed for another worker.
  std::atomic<bool> stopped{false};

  const auto start = Clock::now();
  auto last_progress = start;
  auto last_status = start;
  std::ostream* prog =
      opts_.progress_stream ? opts_.progress_stream : &std::cerr;
  // Overwrite-in-place only when a human is watching: piped/CI stderr gets
  // plain lines, throttled so the log doesn't fill with ticker output.
  const bool tty = opts_.progress_tty < 0
                       ? (prog == &std::cerr && ::isatty(2) != 0)
                       : opts_.progress_tty > 0;
  const double interval = tty ? opts_.progress_interval_s
                              : std::max(opts_.progress_interval_s, 10.0);

  auto maybe_report_progress = [&](bool force) {
    if (!opts_.progress && opts_.status_path.empty()) return;
    const auto now = Clock::now();
    // The status file keeps the un-throttled cadence even when the plain-
    // line ticker is throttled for CI logs: a dashboard polling the file
    // must see progress at progress_interval_s, not every 10s.
    const bool do_line =
        opts_.progress &&
        (force ||
         std::chrono::duration<double>(now - last_progress).count() >=
             interval);
    const bool do_status =
        !opts_.status_path.empty() &&
        (force || std::chrono::duration<double>(now - last_status).count() >=
                      opts_.progress_interval_s);
    if (!do_line && !do_status) return;
    const double elapsed = std::chrono::duration<double>(now - start).count();
    const double rate = elapsed > 0 ? static_cast<double>(committed) / elapsed
                                    : 0.0;
    const double eta =
        rate > 0 ? static_cast<double>(n - committed) / rate : -1.0;
    if (do_line) {
      last_progress = now;
      const std::string line =
          strfmt("[exp] %zu/%zu jobs (%.1f%%) | %.1f jobs/s | ETA %s",
                 committed, n, 100.0 * static_cast<double>(committed) / n,
                 rate, format_eta(eta).c_str());
      if (tty) {
        // Trailing pad clears residue when the line shrinks; the final
        // (forced) line is newline-terminated so the next write starts
        // clean.
        *prog << '\r' << line << "   ";
        if (force) *prog << '\n';
        prog->flush();
      } else {
        *prog << line << '\n';
      }
    }
    if (do_status) {
      last_status = now;
      obs::StatusSnapshot st;
      st.phase = "running";
      st.jobs_total = n;
      st.jobs_done = committed;
      st.jobs_per_second = rate;
      st.eta_seconds = eta;
      st.elapsed_seconds = elapsed;
      obs::write_status_file(opts_.status_path, st);
    }
  };

  // Called with `lock` held after slot `pos` is filled: advance the commit
  // frontier as far as contiguous finished slots allow. Only one thread
  // drains at a time; it extracts the committable batch under the lock but
  // performs the sink/checkpoint I/O with the lock released, then rechecks
  // for slots that finished meanwhile.
  auto drain_commits = [&](std::unique_lock<std::mutex>& lock) {
    if (draining) return;  // the active drainer will pick our slot up
    draining = true;
    while (true) {
      std::vector<std::pair<const ExperimentJob*, stats::RunResult>> batch;
      while (next_commit < n && finished[next_commit]) {
        const std::size_t pos = next_commit++;
        ++committed;
        if (failed[pos]) continue;
        ++report.executed;
        report.total_events += pending[pos]->events_executed;
        batch.emplace_back(&queue.job(pos), std::move(*pending[pos]));
        pending[pos].reset();  // free the result memory promptly
      }
      if (batch.empty()) {
        draining = false;
        maybe_report_progress(false);
        return;
      }
      lock.unlock();
      try {
        obs::Span commit_span("exec", "commit", "jobs",
                              static_cast<std::int64_t>(batch.size()));
        for (const auto& [job, result] : batch) sink.write(*job, result);
        // Durability order matters: the store is flushed *before* the
        // checkpoint claims the jobs. A crash in between leaves records in
        // the store that the checkpoint misses — resume re-discovers them
        // by scanning the store. The reverse order would let the checkpoint
        // claim jobs whose records never reached disk, silently losing
        // them.
        sink.flush();
        if (checkpoint)
          for (const auto& [job, result] : batch)
            checkpoint->record(job->content_hash);
      } catch (...) {
        aborted.store(true, std::memory_order_relaxed);
        lock.lock();
        draining = false;
        throw;  // propagates through parallel_for (first exception wins)
      }
      lock.lock();
    }
  };

  // Per-job wall times, written lock-free: each queue position is run by
  // exactly one worker thread.
  std::vector<double> wall_s(n, 0.0);

  ThreadPool::parallel_for(workers, workers, [&](std::size_t) {
    // Steady-clock mark of when this thread last finished useful work;
    // the gap to the next job's start is its queue-wait (claim contention
    // plus commit-lock time), recorded as an arg on the job span.
    std::int64_t idle_since_ns =
        obs::Tracer::enabled() ? obs::Tracer::now_ns() : 0;
    while (!aborted.load(std::memory_order_relaxed) &&
           !stopped.load(std::memory_order_relaxed)) {
      const auto shard = queue.claim(shard_size);
      if (shard.empty()) return;
      for (std::size_t pos = shard.begin;
           pos < shard.end && !aborted.load(std::memory_order_relaxed);
           ++pos) {
        if (opts_.stop_before && opts_.stop_before(queue.job(pos))) {
          stopped.store(true, std::memory_order_relaxed);
          return;
        }
        std::optional<stats::RunResult> result;
        std::string error;
        std::int64_t wait_us = 0;
        if (obs::Tracer::enabled())
          wait_us = (obs::Tracer::now_ns() - idle_since_ns) / 1000;
        const auto job_start = Clock::now();
        {
          obs::Span job_span(
              "exec", "job", "index",
              static_cast<std::int64_t>(queue.job(pos).index), "wait_us",
              wait_us);
          try {
            result = core::run_experiment(queue.job(pos).config);
          } catch (const std::exception& e) {
            error = e.what();
          }
        }
        wall_s[pos] =
            std::chrono::duration<double>(Clock::now() - job_start).count();
        if (obs::Tracer::enabled()) idle_since_ns = obs::Tracer::now_ns();
        std::unique_lock<std::mutex> lock(commit_mutex);
        if (result) {
          pending[pos] = std::move(result);
        } else {
          failed[pos] = 1;
          ++report.failed;
          if (report.errors.size() < opts_.max_errors) {
            report.errors.push_back(strfmt(
                "job %zu (%s): %s", queue.job(pos).index,
                queue.job(pos).config.label().c_str(), error.c_str()));
          }
        }
        finished[pos] = 1;
        drain_commits(lock);
      }
    }
  });

  // `executed` was counted at the commit frontier; everything the frontier
  // never reached (skipped by stop_before, or finished behind a skipped
  // position and therefore not committed) counts as cancelled and will be
  // re-run by whichever worker the parent re-leases it to.
  report.cancelled = n - committed;
  report.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.jobs_per_second =
      report.elapsed_seconds > 0
          ? static_cast<double>(committed) / report.elapsed_seconds
          : 0.0;
  {
    // Every job whose simulation ran to completion contributes a sample,
    // committed or not (an uncommitted run still took that long).
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      if (finished[i] && !failed[i]) samples.push_back(wall_s[i]);
    report.job_wall = DurationStats::from_samples(std::move(samples));
  }
  maybe_report_progress(true);
  if (!opts_.status_path.empty()) {
    obs::StatusSnapshot st;
    st.phase = report.ok() ? "done" : "failed";
    st.jobs_total = n;
    st.jobs_done = committed;
    st.jobs_per_second = report.jobs_per_second;
    st.eta_seconds = 0.0;
    st.elapsed_seconds = report.elapsed_seconds;
    obs::write_status_file(opts_.status_path, st);
  }
  return report;
}

}  // namespace oracle::exp
