#include "exp/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <optional>
#include <thread>

#include "core/simulator.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace oracle::exp {

namespace {

std::string format_eta(double seconds) {
  if (seconds < 0) return "?";
  const auto s = static_cast<long long>(seconds + 0.5);
  if (s < 60) return strfmt("%llds", s);
  if (s < 3600) return strfmt("%lldm%02llds", s / 60, s % 60);
  return strfmt("%lldh%02lldm", s / 3600, (s % 3600) / 60);
}

}  // namespace

std::string BatchReport::summary() const {
  std::string s = strfmt(
      "%zu jobs: %zu executed, %zu skipped (cached), %zu failed in %.2fs "
      "(%.1f jobs/s)",
      total_jobs, executed, skipped, failed, elapsed_seconds,
      jobs_per_second);
  if (cancelled > 0) s += strfmt(", %zu released (lease shrunk)", cancelled);
  return s;
}

BatchReport Executor::run(JobQueue& queue, ResultSink& sink,
                          Checkpoint* checkpoint) {
  using Clock = std::chrono::steady_clock;

  const std::size_t n = queue.size();
  BatchReport report;
  report.total_jobs = n;
  if (n == 0) return report;

  std::size_t workers = opts_.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, n);

  std::size_t shard_size = opts_.shard_size;
  if (shard_size == 0) shard_size = std::max<std::size_t>(1, n / workers / 8);

  // Ordered-commit state, guarded by commit_mutex. Slot i corresponds to
  // queue position i (ascending job index); a slot holds the finished
  // result, or nullopt + failed flag for a job that threw. `draining`
  // marks that one thread is currently writing the committable prefix to
  // the sink *outside* the lock, so workers never queue up behind disk
  // I/O — they deposit their slot and go claim the next shard.
  std::mutex commit_mutex;
  std::vector<std::optional<stats::RunResult>> pending(n);
  std::vector<char> failed(n, 0);
  std::vector<char> finished(n, 0);
  std::size_t next_commit = 0;
  std::size_t committed = 0;
  bool draining = false;
  // Set when a sink/checkpoint write throws: workers stop claiming work so
  // a dead store fails the run fast instead of simulating the whole
  // remaining queue into memory nobody will ever drain.
  std::atomic<bool> aborted{false};
  // Set when opts_.stop_before vetoes a job: the run winds down cleanly —
  // in-flight jobs commit, nothing new starts. The commit frontier halts
  // at the first skipped position, so the store keeps its clean-prefix
  // shape and the abandoned tail stays unclaimed for another worker.
  std::atomic<bool> stopped{false};

  const auto start = Clock::now();
  auto last_progress = start;
  std::ostream* prog =
      opts_.progress_stream ? opts_.progress_stream : &std::cerr;

  auto maybe_report_progress = [&](bool force) {
    if (!opts_.progress) return;
    const auto now = Clock::now();
    const double since_last =
        std::chrono::duration<double>(now - last_progress).count();
    if (!force && since_last < opts_.progress_interval_s) return;
    last_progress = now;
    const double elapsed = std::chrono::duration<double>(now - start).count();
    const double rate = elapsed > 0 ? static_cast<double>(committed) / elapsed
                                    : 0.0;
    const double eta =
        rate > 0 ? static_cast<double>(n - committed) / rate : -1.0;
    *prog << strfmt("[exp] %zu/%zu jobs (%.1f%%) | %.1f jobs/s | ETA %s\n",
                    committed, n, 100.0 * static_cast<double>(committed) / n,
                    rate, format_eta(eta).c_str());
  };

  // Called with `lock` held after slot `pos` is filled: advance the commit
  // frontier as far as contiguous finished slots allow. Only one thread
  // drains at a time; it extracts the committable batch under the lock but
  // performs the sink/checkpoint I/O with the lock released, then rechecks
  // for slots that finished meanwhile.
  auto drain_commits = [&](std::unique_lock<std::mutex>& lock) {
    if (draining) return;  // the active drainer will pick our slot up
    draining = true;
    while (true) {
      std::vector<std::pair<const ExperimentJob*, stats::RunResult>> batch;
      while (next_commit < n && finished[next_commit]) {
        const std::size_t pos = next_commit++;
        ++committed;
        if (failed[pos]) continue;
        ++report.executed;
        report.total_events += pending[pos]->events_executed;
        batch.emplace_back(&queue.job(pos), std::move(*pending[pos]));
        pending[pos].reset();  // free the result memory promptly
      }
      if (batch.empty()) {
        draining = false;
        maybe_report_progress(false);
        return;
      }
      lock.unlock();
      try {
        for (const auto& [job, result] : batch) sink.write(*job, result);
        // Durability order matters: the store is flushed *before* the
        // checkpoint claims the jobs. A crash in between leaves records in
        // the store that the checkpoint misses — resume re-discovers them
        // by scanning the store. The reverse order would let the checkpoint
        // claim jobs whose records never reached disk, silently losing
        // them.
        sink.flush();
        if (checkpoint)
          for (const auto& [job, result] : batch)
            checkpoint->record(job->content_hash);
      } catch (...) {
        aborted.store(true, std::memory_order_relaxed);
        lock.lock();
        draining = false;
        throw;  // propagates through parallel_for (first exception wins)
      }
      lock.lock();
    }
  };

  ThreadPool::parallel_for(workers, workers, [&](std::size_t) {
    while (!aborted.load(std::memory_order_relaxed) &&
           !stopped.load(std::memory_order_relaxed)) {
      const auto shard = queue.claim(shard_size);
      if (shard.empty()) return;
      for (std::size_t pos = shard.begin;
           pos < shard.end && !aborted.load(std::memory_order_relaxed);
           ++pos) {
        if (opts_.stop_before && opts_.stop_before(queue.job(pos))) {
          stopped.store(true, std::memory_order_relaxed);
          return;
        }
        std::optional<stats::RunResult> result;
        std::string error;
        try {
          result = core::run_experiment(queue.job(pos).config);
        } catch (const std::exception& e) {
          error = e.what();
        }
        std::unique_lock<std::mutex> lock(commit_mutex);
        if (result) {
          pending[pos] = std::move(result);
        } else {
          failed[pos] = 1;
          ++report.failed;
          if (report.errors.size() < opts_.max_errors) {
            report.errors.push_back(strfmt(
                "job %zu (%s): %s", queue.job(pos).index,
                queue.job(pos).config.label().c_str(), error.c_str()));
          }
        }
        finished[pos] = 1;
        drain_commits(lock);
      }
    }
  });

  // `executed` was counted at the commit frontier; everything the frontier
  // never reached (skipped by stop_before, or finished behind a skipped
  // position and therefore not committed) counts as cancelled and will be
  // re-run by whichever worker the parent re-leases it to.
  report.cancelled = n - committed;
  report.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.jobs_per_second =
      report.elapsed_seconds > 0
          ? static_cast<double>(committed) / report.elapsed_seconds
          : 0.0;
  maybe_report_progress(true);
  return report;
}

}  // namespace oracle::exp
