#pragma once
// Crash-safe sweep checkpoint: an append-only file of content hashes, one
// per completed job, flushed *and fsynced* at every record — a kill -9 (or
// power loss) immediately after record() returns can never lose that
// completion, so --resume never re-runs (or, for CSV sinks, double-appends)
// a finished job. Resuming a killed sweep costs one linear scan of this
// file (plus, for belt-and-braces, the JSONL store itself via
// load_completed_hashes) instead of re-running anything.
//
// The checkpoint deliberately stores *content* hashes, not job indices: if
// the sweep definition changes between invocations, stale entries simply
// match nothing and the changed jobs re-run.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>

namespace oracle::exp {

class Checkpoint {
 public:
  /// Disabled checkpoint: contains() is always false, record() is a no-op.
  Checkpoint() = default;

  /// Backed by `path`; call load() to ingest previous progress before
  /// opening for appending via open_for_append().
  explicit Checkpoint(std::string path) : path_(std::move(path)) {}

  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;
  ~Checkpoint();

  /// Conventional checkpoint path for a result store: "<out>.ckpt".
  static std::string default_path(const std::string& out_path) {
    return out_path + ".ckpt";
  }

  bool enabled() const noexcept { return !path_.empty(); }
  const std::string& path() const noexcept { return path_; }

  /// Read previously completed hashes from the file (missing file is fine;
  /// malformed lines are ignored). Returns the number of hashes loaded.
  std::size_t load();

  /// Fold externally discovered completions (e.g. hashes recovered from an
  /// existing JSONL store) into the completed set.
  void merge(const std::unordered_set<std::uint64_t>& hashes);

  bool contains(std::uint64_t hash) const {
    return completed_.contains(hash);
  }

  const std::unordered_set<std::uint64_t>& completed() const noexcept {
    return completed_;
  }

  /// Mark a job completed and (when enabled) append + flush + fsync its
  /// hash: when record() returns, the completion is durable on disk.
  /// Thread-safe; the executor calls this at the ordered-commit point.
  void record(std::uint64_t hash);

  /// Liveness signal for the shard supervisor: when set, every record()
  /// also bumps this file's mtime (util::touch_file), so a parent watching
  /// the heartbeat can distinguish "worker still committing jobs" from
  /// "worker wedged mid-simulation" without any pipe back to it.
  void set_heartbeat_path(std::string path) { heartbeat_path_ = std::move(path); }

 private:
  void open_for_append();

  std::string path_;
  std::string heartbeat_path_;  ///< touched per record when non-empty
  std::unordered_set<std::uint64_t> completed_;
  int out_fd_ = -1;  ///< raw append fd: EINTR-safe write_full + fsync_retry
  std::mutex mutex_;
};

}  // namespace oracle::exp
