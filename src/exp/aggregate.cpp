#include "exp/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace oracle::exp {

namespace {

/// One extractable metric of a JSONL record.
struct MetricField {
  const char* name;
  double (*get)(const stats::RunResult&);
};

constexpr MetricField kMetrics[] = {
    {"completion_time",
     [](const stats::RunResult& r) {
       return static_cast<double>(r.completion_time);
     }},
    {"speedup", [](const stats::RunResult& r) { return r.speedup; }},
    {"avg_utilization",
     [](const stats::RunResult& r) { return r.avg_utilization; }},
    {"utilization_cv",
     [](const stats::RunResult& r) { return r.utilization_cv; }},
    {"max_min_utilization_gap",
     [](const stats::RunResult& r) { return r.max_min_utilization_gap; }},
    {"goals_executed",
     [](const stats::RunResult& r) {
       return static_cast<double>(r.goals_executed);
     }},
    {"total_work",
     [](const stats::RunResult& r) { return static_cast<double>(r.total_work); }},
    {"critical_path",
     [](const stats::RunResult& r) {
       return static_cast<double>(r.critical_path);
     }},
    {"avg_goal_distance",
     [](const stats::RunResult& r) { return r.avg_goal_distance; }},
    {"goal_transmissions",
     [](const stats::RunResult& r) {
       return static_cast<double>(r.goal_transmissions);
     }},
    {"response_transmissions",
     [](const stats::RunResult& r) {
       return static_cast<double>(r.response_transmissions);
     }},
    {"control_transmissions",
     [](const stats::RunResult& r) {
       return static_cast<double>(r.control_transmissions);
     }},
    {"avg_channel_utilization",
     [](const stats::RunResult& r) { return r.avg_channel_utilization; }},
    {"max_channel_utilization",
     [](const stats::RunResult& r) { return r.max_channel_utilization; }},
    {"events_executed",
     [](const stats::RunResult& r) {
       return static_cast<double>(r.events_executed);
     }},
};

constexpr std::size_t kNumMetrics = std::size(kMetrics);

}  // namespace

double student_t95(std::size_t df) {
  // Two-sided 97.5% quantiles of the t distribution, df = 1..30; every
  // df beyond the table's last entry gets the normal-approximation
  // asymptote 1.960 (never an out-of-bounds table read). Standard table
  // values.
  static constexpr double kT[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  constexpr std::size_t kTableSize = std::size(kT);
  if (df == 0) return 0.0;  // a single sample has no interval
  if (df <= kTableSize) return kT[df - 1];
  return 1.960;
}

double MetricSummary::percentile(double p) const {
  if (sorted_samples.empty()) return 0.0;
  // Clamp p into [0, 100]; a NaN p has no meaningful rank and propagates
  // as NaN rather than indexing with an undefined float->int cast.
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  if (p <= 0.0) return sorted_samples.front();
  if (p >= 100.0) return sorted_samples.back();
  const double rank =
      p / 100.0 * static_cast<double>(sorted_samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double w = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_samples.size()) return sorted_samples.back();
  return sorted_samples[lo] * (1.0 - w) + sorted_samples[lo + 1] * w;
}

const MetricSummary* GridPointSummary::metric(std::string_view name) const {
  for (const auto& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

const std::vector<std::string>& Aggregator::metric_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    out.reserve(kNumMetrics);
    for (const auto& m : kMetrics) out.emplace_back(m.name);
    return out;
  }();
  return names;
}

std::uint64_t Aggregator::grid_key(const stats::RunResult& r) {
  return fnv1a64(strfmt("topo=%s|strat=%s|wl=%s|pes=%u", r.topology.c_str(),
                        r.strategy.c_str(), r.workload.c_str(), r.num_pes));
}

Aggregator::Group& Aggregator::group_for(const stats::RunResult& r) {
  const std::uint64_t key = grid_key(r);
  const auto [it, fresh] = index_.try_emplace(key, groups_.size());
  if (fresh) {
    Group g;
    g.key = key;
    g.topology = r.topology;
    g.strategy = r.strategy;
    g.workload = r.workload;
    g.num_pes = r.num_pes;
    g.samples.resize(kNumMetrics);
    groups_.push_back(std::move(g));
  }
  return groups_[it->second];
}

void Aggregator::add(const stats::RunResult& r) {
  Group& g = group_for(r);
  ++g.runs;
  ++rows_;
  for (std::size_t m = 0; m < kNumMetrics; ++m)
    g.samples[m].push_back(kMetrics[m].get(r));
}

bool Aggregator::add_line(const std::string& line) {
  if (line.empty()) return true;
  const auto rec = parse_jsonl_record(line);
  if (!rec) {
    ++skipped_;
    return false;
  }
  // The content hash is the job's identity: a second record with the same
  // hash is the same run seen through another store (canonical + kept
  // shard store, the same host store passed twice, ...). Counting it
  // again would inflate n and deflate every confidence interval.
  if (!seen_hashes_.insert(rec->content_hash).second) {
    ++duplicates_;
    return true;
  }
  add(rec->result);
  return true;
}

void Aggregator::read(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) add_line(line);
}

Aggregator Aggregator::from_jsonl_file(const std::string& path) {
  return from_jsonl_files({path});
}

Aggregator Aggregator::from_jsonl_files(const std::vector<std::string>& paths) {
  Aggregator agg;
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in)
      throw SimulationError("cannot open result store '" + path + "'");
    agg.read(in);
  }
  return agg;
}

std::vector<GridPointSummary> Aggregator::summarize() const {
  std::vector<GridPointSummary> out;
  out.reserve(groups_.size());
  for (const Group& g : groups_) {
    GridPointSummary s;
    s.key = g.key;
    s.topology = g.topology;
    s.strategy = g.strategy;
    s.workload = g.workload;
    s.num_pes = g.num_pes;
    s.runs = g.runs;
    s.metrics.reserve(kNumMetrics);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      MetricSummary ms;
      ms.name = kMetrics[m].name;
      ms.sorted_samples = g.samples[m];
      std::sort(ms.sorted_samples.begin(), ms.sorted_samples.end());
      ms.n = ms.sorted_samples.size();
      if (ms.n > 0) {
        ms.min = ms.sorted_samples.front();
        ms.max = ms.sorted_samples.back();
        double sum = 0.0;
        for (const double v : ms.sorted_samples) sum += v;
        ms.mean = sum / static_cast<double>(ms.n);
        if (ms.n > 1) {
          double m2 = 0.0;
          for (const double v : ms.sorted_samples)
            m2 += (v - ms.mean) * (v - ms.mean);
          ms.stddev = std::sqrt(m2 / static_cast<double>(ms.n - 1));
          ms.ci95 = student_t95(ms.n - 1) * ms.stddev /
                    std::sqrt(static_cast<double>(ms.n));
        }
        // n == 1: sample stddev / CI are undefined; both stay exactly 0.0
        // (initialized above) so single-replication grid points render as
        // "mean +/- 0" instead of garbage.
      }
      s.metrics.push_back(std::move(ms));
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}
}  // namespace

std::string Aggregator::to_csv(const std::vector<GridPointSummary>& groups) {
  std::ostringstream os;
  os << "topology,strategy,workload,num_pes,metric,n,mean,stddev,ci95,min,"
        "max,p50,p90,p99\n";
  for (const auto& g : groups) {
    for (const auto& m : g.metrics) {
      os << csv_escape(g.topology) << ',' << csv_escape(g.strategy) << ','
         << csv_escape(g.workload) << ',' << g.num_pes << ',' << m.name << ','
         << m.n << ','
         << strfmt("%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g", m.mean,
                   m.stddev, m.ci95, m.min, m.max, m.percentile(50),
                   m.percentile(90), m.percentile(99))
         << '\n';
    }
  }
  return os.str();
}

std::string Aggregator::to_table(const std::vector<GridPointSummary>& groups,
                                 std::string_view metric) {
  // ASCII only: TextTable pads by byte count, so a multibyte "±" would
  // shift every subsequent column.
  TextTable t({"topology", "strategy", "workload", "PEs", "runs", "mean",
               "stddev", "95% CI +/-", "min", "max", "p50"});
  for (const auto& g : groups) {
    const MetricSummary* m = g.metric(metric);
    if (m == nullptr) continue;
    t.add_row({g.topology, g.strategy, g.workload, std::to_string(g.num_pes),
               std::to_string(m->n), strfmt("%.4g", m->mean),
               strfmt("%.4g", m->stddev), strfmt("%.4g", m->ci95),
               strfmt("%.4g", m->min), strfmt("%.4g", m->max),
               strfmt("%.4g", m->percentile(50))});
  }
  return t.to_string();
}

}  // namespace oracle::exp
