#include "exp/lease_protocol.hpp"

#include <vector>

#include "util/string_util.hpp"

namespace oracle::exp {

namespace {

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

const char* kind_name(LeaseResponseKind k) {
  switch (k) {
    case LeaseResponseKind::kLease: return "lease";
    case LeaseResponseKind::kOk: return "ok";
    case LeaseResponseKind::kFenced: return "fenced";
    case LeaseResponseKind::kEmpty: return "empty";
    case LeaseResponseKind::kDone: return "done";
    case LeaseResponseKind::kStatus: return "status";
    case LeaseResponseKind::kError: return "error";
  }
  return "?";
}

}  // namespace

std::string LeaseRequest::encode() const {
  switch (op) {
    case LeaseOp::kAcquire:
      return strfmt("%s %llu acquire %zu %zu %zu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), slot, slot_count,
                    jobs);
    case LeaseOp::kHeartbeat:
      return strfmt("%s %llu heartbeat %zu %llu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), slot,
                    static_cast<unsigned long long>(epoch));
    case LeaseOp::kCommit:
      return strfmt("%s %llu commit %zu %llu %zu %llu %llu",
                    kLeaseProtoVersion, static_cast<unsigned long long>(seq),
                    slot, static_cast<unsigned long long>(epoch), frontier,
                    static_cast<unsigned long long>(wall_us),
                    static_cast<unsigned long long>(retries));
    case LeaseOp::kSteal:
      return strfmt("%s %llu steal %zu %llu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), slot,
                    static_cast<unsigned long long>(epoch));
    case LeaseOp::kStatus:
      return strfmt("%s %llu status", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq));
  }
  return {};
}

std::optional<LeaseRequest> LeaseRequest::parse(const std::string& payload) {
  const auto tok = split(trim(payload), ' ');
  if (tok.size() < 3 || tok[0] != kLeaseProtoVersion) return std::nullopt;
  const auto seq = parse_u64(tok[1]);
  if (!seq) return std::nullopt;
  LeaseRequest req;
  req.seq = *seq;
  const std::string& op = tok[2];
  const auto u64_at = [&](std::size_t i) -> std::optional<std::uint64_t> {
    return i < tok.size() ? parse_u64(tok[i]) : std::nullopt;
  };
  if (op == "acquire") {
    req.op = LeaseOp::kAcquire;
    const auto a = u64_at(3), b = u64_at(4), c = u64_at(5);
    if (!a || !b || !c || tok.size() != 6) return std::nullopt;
    req.slot = static_cast<std::size_t>(*a);
    req.slot_count = static_cast<std::size_t>(*b);
    req.jobs = static_cast<std::size_t>(*c);
    return req;
  }
  if (op == "heartbeat" || op == "steal") {
    req.op = op == "heartbeat" ? LeaseOp::kHeartbeat : LeaseOp::kSteal;
    const auto a = u64_at(3), b = u64_at(4);
    if (!a || !b || tok.size() != 5) return std::nullopt;
    req.slot = static_cast<std::size_t>(*a);
    req.epoch = *b;
    return req;
  }
  if (op == "commit") {
    req.op = LeaseOp::kCommit;
    const auto a = u64_at(3), b = u64_at(4), c = u64_at(5), d = u64_at(6),
               e = u64_at(7);
    if (!a || !b || !c || !d || !e || tok.size() != 8) return std::nullopt;
    req.slot = static_cast<std::size_t>(*a);
    req.epoch = *b;
    req.frontier = static_cast<std::size_t>(*c);
    req.wall_us = *d;
    req.retries = *e;
    return req;
  }
  if (op == "status") {
    if (tok.size() != 3) return std::nullopt;
    req.op = LeaseOp::kStatus;
    return req;
  }
  return std::nullopt;
}

std::string LeaseResponse::encode() const {
  switch (kind) {
    case LeaseResponseKind::kLease:
      return strfmt("%s %llu lease %llu %zu %zu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(epoch), begin, end);
    case LeaseResponseKind::kOk:
      return strfmt("%s %llu ok %zu %zu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), begin, end);
    case LeaseResponseKind::kFenced:
    case LeaseResponseKind::kEmpty:
    case LeaseResponseKind::kDone:
      return strfmt("%s %llu %s", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), kind_name(kind));
    case LeaseResponseKind::kStatus:
    case LeaseResponseKind::kError:
      return strfmt("%s %llu %s %s", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), kind_name(kind),
                    text.c_str());
  }
  return {};
}

std::optional<LeaseResponse> LeaseResponse::parse(
    const std::string& payload) {
  const auto tok = split(trim(payload), ' ');
  if (tok.size() < 3 || tok[0] != kLeaseProtoVersion) return std::nullopt;
  const auto seq = parse_u64(tok[1]);
  if (!seq) return std::nullopt;
  LeaseResponse rsp;
  rsp.seq = *seq;
  const std::string& kind = tok[2];
  const auto u64_at = [&](std::size_t i) -> std::optional<std::uint64_t> {
    return i < tok.size() ? parse_u64(tok[i]) : std::nullopt;
  };
  if (kind == "lease") {
    rsp.kind = LeaseResponseKind::kLease;
    const auto a = u64_at(3), b = u64_at(4), c = u64_at(5);
    if (!a || !b || !c || tok.size() != 6) return std::nullopt;
    rsp.epoch = *a;
    rsp.begin = static_cast<std::size_t>(*b);
    rsp.end = static_cast<std::size_t>(*c);
    return rsp;
  }
  if (kind == "ok") {
    rsp.kind = LeaseResponseKind::kOk;
    const auto a = u64_at(3), b = u64_at(4);
    if (!a || !b || tok.size() != 5) return std::nullopt;
    rsp.begin = static_cast<std::size_t>(*a);
    rsp.end = static_cast<std::size_t>(*b);
    return rsp;
  }
  if (kind == "fenced" || kind == "empty" || kind == "done") {
    if (tok.size() != 3) return std::nullopt;
    rsp.kind = kind == "fenced"  ? LeaseResponseKind::kFenced
               : kind == "empty" ? LeaseResponseKind::kEmpty
                                 : LeaseResponseKind::kDone;
    return rsp;
  }
  if (kind == "status" || kind == "error") {
    rsp.kind = kind == "status" ? LeaseResponseKind::kStatus
                                : LeaseResponseKind::kError;
    // The remainder of the payload (may itself contain spaces).
    const auto pos = payload.find(kind);
    rsp.text = std::string(trim(payload.substr(pos + kind.size())));
    return rsp;
  }
  return std::nullopt;
}

}  // namespace oracle::exp
