#include "exp/lease_protocol.hpp"

#include <vector>

#include "util/net.hpp"
#include "util/string_util.hpp"

namespace oracle::exp {

namespace {

const char* kind_name(LeaseResponseKind k) {
  switch (k) {
    case LeaseResponseKind::kLease: return "lease";
    case LeaseResponseKind::kOk: return "ok";
    case LeaseResponseKind::kFenced: return "fenced";
    case LeaseResponseKind::kEmpty: return "empty";
    case LeaseResponseKind::kDone: return "done";
    case LeaseResponseKind::kStatus: return "status";
    case LeaseResponseKind::kError: return "error";
  }
  return "?";
}

}  // namespace

std::string LeaseRequest::encode() const {
  switch (op) {
    case LeaseOp::kAcquire:
      return strfmt("%s %llu acquire %zu %zu %zu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), slot, slot_count,
                    jobs);
    case LeaseOp::kHeartbeat:
      return strfmt("%s %llu heartbeat %zu %llu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), slot,
                    static_cast<unsigned long long>(epoch));
    case LeaseOp::kCommit:
      return strfmt("%s %llu commit %zu %llu %zu %llu %llu",
                    kLeaseProtoVersion, static_cast<unsigned long long>(seq),
                    slot, static_cast<unsigned long long>(epoch), frontier,
                    static_cast<unsigned long long>(wall_us),
                    static_cast<unsigned long long>(retries));
    case LeaseOp::kSteal:
      return strfmt("%s %llu steal %zu %llu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), slot,
                    static_cast<unsigned long long>(epoch));
    case LeaseOp::kStatus:
      return strfmt("%s %llu status", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq));
  }
  return {};
}

std::optional<LeaseRequest> LeaseRequest::parse(const std::string& payload) {
  const auto frame = util::TextFrame::parse(payload, kLeaseProtoVersion);
  if (!frame) return std::nullopt;
  const util::TextFrame& tok = *frame;
  LeaseRequest req;
  req.seq = tok.seq;
  const std::string& op = tok.tok(2);
  const auto u64_at = [&](std::size_t i) { return tok.u64(i); };
  if (op == "acquire") {
    req.op = LeaseOp::kAcquire;
    const auto a = u64_at(3), b = u64_at(4), c = u64_at(5);
    if (!a || !b || !c || tok.size() != 6) return std::nullopt;
    req.slot = static_cast<std::size_t>(*a);
    req.slot_count = static_cast<std::size_t>(*b);
    req.jobs = static_cast<std::size_t>(*c);
    return req;
  }
  if (op == "heartbeat" || op == "steal") {
    req.op = op == "heartbeat" ? LeaseOp::kHeartbeat : LeaseOp::kSteal;
    const auto a = u64_at(3), b = u64_at(4);
    if (!a || !b || tok.size() != 5) return std::nullopt;
    req.slot = static_cast<std::size_t>(*a);
    req.epoch = *b;
    return req;
  }
  if (op == "commit") {
    req.op = LeaseOp::kCommit;
    const auto a = u64_at(3), b = u64_at(4), c = u64_at(5), d = u64_at(6),
               e = u64_at(7);
    if (!a || !b || !c || !d || !e || tok.size() != 8) return std::nullopt;
    req.slot = static_cast<std::size_t>(*a);
    req.epoch = *b;
    req.frontier = static_cast<std::size_t>(*c);
    req.wall_us = *d;
    req.retries = *e;
    return req;
  }
  if (op == "status") {
    if (tok.size() != 3) return std::nullopt;
    req.op = LeaseOp::kStatus;
    return req;
  }
  return std::nullopt;
}

std::string LeaseResponse::encode() const {
  switch (kind) {
    case LeaseResponseKind::kLease:
      return strfmt("%s %llu lease %llu %zu %zu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(epoch), begin, end);
    case LeaseResponseKind::kOk:
      return strfmt("%s %llu ok %zu %zu", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), begin, end);
    case LeaseResponseKind::kFenced:
    case LeaseResponseKind::kEmpty:
    case LeaseResponseKind::kDone:
      return strfmt("%s %llu %s", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), kind_name(kind));
    case LeaseResponseKind::kStatus:
    case LeaseResponseKind::kError:
      return strfmt("%s %llu %s %s", kLeaseProtoVersion,
                    static_cast<unsigned long long>(seq), kind_name(kind),
                    text.c_str());
  }
  return {};
}

std::optional<LeaseResponse> LeaseResponse::parse(
    const std::string& payload) {
  const auto frame = util::TextFrame::parse(payload, kLeaseProtoVersion);
  if (!frame) return std::nullopt;
  const util::TextFrame& tok = *frame;
  LeaseResponse rsp;
  rsp.seq = tok.seq;
  const std::string& kind = tok.tok(2);
  const auto u64_at = [&](std::size_t i) { return tok.u64(i); };
  if (kind == "lease") {
    rsp.kind = LeaseResponseKind::kLease;
    const auto a = u64_at(3), b = u64_at(4), c = u64_at(5);
    if (!a || !b || !c || tok.size() != 6) return std::nullopt;
    rsp.epoch = *a;
    rsp.begin = static_cast<std::size_t>(*b);
    rsp.end = static_cast<std::size_t>(*c);
    return rsp;
  }
  if (kind == "ok") {
    rsp.kind = LeaseResponseKind::kOk;
    const auto a = u64_at(3), b = u64_at(4);
    if (!a || !b || tok.size() != 5) return std::nullopt;
    rsp.begin = static_cast<std::size_t>(*a);
    rsp.end = static_cast<std::size_t>(*b);
    return rsp;
  }
  if (kind == "fenced" || kind == "empty" || kind == "done") {
    if (tok.size() != 3) return std::nullopt;
    rsp.kind = kind == "fenced"  ? LeaseResponseKind::kFenced
               : kind == "empty" ? LeaseResponseKind::kEmpty
                                 : LeaseResponseKind::kDone;
    return rsp;
  }
  if (kind == "status" || kind == "error") {
    rsp.kind = kind == "status" ? LeaseResponseKind::kStatus
                                : LeaseResponseKind::kError;
    // The remainder of the payload (may itself contain spaces).
    rsp.text = std::string(trim(tok.text_after(2)));
    return rsp;
  }
  return std::nullopt;
}

}  // namespace oracle::exp
