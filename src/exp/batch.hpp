#pragma once
// One-call façade over the batch engine: configs in, results out, with
// optional JSONL/CSV stores, checkpointing, and resume. This is what
// core::run_batch / SweepBuilder::run_batch and the oracle_batch CLI sit
// on; use the JobQueue/Executor/ResultSink pieces directly for custom
// pipelines (extra sinks, pre-filtered queues, ...).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "exp/executor.hpp"

namespace oracle::exp {

struct BatchOptions {
  ExecutorOptions exec;

  /// Primary result store ("" = none). When set, a checkpoint file
  /// (`jsonl_path + ".ckpt"` unless overridden) is maintained alongside.
  std::string jsonl_path;

  /// Secondary CSV mirror ("" = none).
  std::string csv_path;

  /// Explicit checkpoint path; "" derives from jsonl_path.
  std::string checkpoint_path;

  /// Resume: load the checkpoint and scan the existing JSONL store, skip
  /// jobs whose content hash is already completed, and append the rest.
  /// When false, existing store/checkpoint files are truncated.
  bool resume = false;

  /// Additional JSONL stores whose completed hashes also count during
  /// resume (read-only; never written). The multi-process shard runner
  /// points workers at the canonical merged store so jobs already folded
  /// into it are not re-run after the per-shard stores were cleaned up.
  std::vector<std::string> extra_resume_stores;

  /// Content hashes to drop from the queue unconditionally (resume or
  /// not) — quarantined poison jobs this worker must never run. Dropped
  /// jobs count as skipped in the report.
  std::vector<std::uint64_t> skip_hashes;

  /// Distributed shard slice: run only the jobs whose content hash
  /// satisfies hash % shard_count == shard_index (see
  /// JobQueue::retain_shard). shard_count <= 1 runs the whole sweep.
  /// The report's total_jobs/skipped then refer to this shard's slice.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  /// Work-stealing lease slice: run only the jobs with sweep index in
  /// [lease_begin, lease_end) (JobQueue::retain_range). lease_end at its
  /// default (npos) disables lease slicing. Composable with the exec
  /// stop_before hook so a parent can shrink the live range mid-run.
  static constexpr std::size_t kNoLease = ~std::size_t{0};
  std::size_t lease_begin = 0;
  std::size_t lease_end = kNoLease;

  /// When non-empty, this file's mtime is bumped at run start and after
  /// every durable checkpoint record — the worker-side heartbeat of the
  /// shard supervisor (see exp/shard.hpp).
  std::string heartbeat_path;

  /// When nonzero, re-seed each job with Rng::derive_seed(master_seed, i)
  /// — independent reproducible streams without enumerating seeds by hand.
  std::uint64_t master_seed = 0;

  /// Also collect results in memory and return them (in job order;
  /// resumed-over jobs are absent). Disable for huge disk-only sweeps.
  bool collect = true;

  /// Test/piping hook: additionally stream JSONL records here.
  std::ostream* jsonl_stream = nullptr;
};

struct BatchOutcome {
  BatchReport report;
  std::vector<stats::RunResult> results;  ///< only when collect = true
};

/// Execute every config as one batch. Throws SimulationError on store I/O
/// failure; individual simulation failures land in outcome.report instead.
BatchOutcome run_batch(const std::vector<core::ExperimentConfig>& configs,
                       const BatchOptions& options = {});

}  // namespace oracle::exp
