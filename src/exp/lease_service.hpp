#pragma once
// exp::LeaseService — the cross-host promotion of the shard supervisor's
// lease files: a small single-threaded TCP server that owns the
// LeaseTable and hands out fenced job-range leases over the versioned
// frame protocol in lease_protocol.hpp.
//
// Fault model, in the order things die in practice:
//   - Worker crashes: its slot store keeps a durable prefix; the respawned
//     worker re-acquires, gets a fresh fencing epoch, and resumes. A
//     reaped-then-resurrected worker still holding the old epoch gets
//     `fenced` on every commit — it can never clobber a stolen range.
//   - Worker wedges: the adaptive timeout (seeded/updated online from
//     committed job walls) expires the slot, bumps its epoch (fencing the
//     wedged process), and the next idle worker takes over the
//     uncommitted tail of its lease.
//   - Server crashes: every state transition was journaled (fsynced,
//     write-ahead) before it was applied or acknowledged; restarting the
//     server replays the journal — a torn final record is skipped, like
//     the trace/JSONL stores — and live workers reconnect and continue
//     under their existing epochs without losing a job.
//   - Network flakes: requests are idempotent-by-design (acquire/steal
//     re-grant, commit is monotonic max, responses echo the client seq so
//     duplicates are discarded), so the client retries blindly under
//     backoff.
//
// The server never touches the result stores: it tracks *index ranges*
// and fencing epochs only, so one instance can coordinate workers on any
// number of hosts; byte-identical convergence still comes from the
// deterministic simulator + content-hash dedup at merge time.

#include <atomic>
#include <cstdint>
#include <string>

#include "exp/shard.hpp"
#include "util/net.hpp"

namespace oracle::exp {

struct LeaseServiceOptions {
  util::HostPort listen{"127.0.0.1", 0};  ///< port 0 = ephemeral (see port())
  std::size_t jobs = 0;   ///< sweep size; acquire requests must match
  std::size_t slots = 1;  ///< worker slot count; acquire requests must match
  std::uint64_t master_seed = 0;  ///< recorded in the journal init line

  /// Write-ahead journal (required): every state transition is appended +
  /// fsynced here before it takes effect. If the file already holds a
  /// matching init record, the server *replays* it and resumes the run;
  /// an init mismatch (different sweep shape) is a hard error — remove
  /// the journal to start over.
  std::string journal_path;

  /// Optional obs::StatusSnapshot file, atomically rewritten every
  /// status_interval_ms (phase "serving", per-slot lease/frontier/epoch
  /// liveness, fenced + retry counters).
  std::string status_path;
  std::uint32_t status_interval_ms = 500;

  /// Adaptive per-slot expiry: a granted, undrained slot with no message
  /// for longer than the adaptive timeout is expired (epoch bumped — the
  /// fencing event). Disabled until enough job-wall samples arrive.
  AdaptiveTimeoutConfig timeout;

  /// Don't shave tails smaller than this off live leases.
  std::size_t min_steal_jobs = 1;

  /// How long to keep answering `done` after the sweep completes, so
  /// every worker hears the verdict instead of timing out.
  std::uint32_t linger_ms = 1500;

  std::uint32_t poll_ms = 50;  ///< poll loop tick (expiry + status cadence)
};

struct LeaseServiceStats {
  std::size_t requests = 0;
  std::size_t grants = 0;        ///< acquire grants (fresh epochs issued)
  std::size_t steals = 0;        ///< live-lease tails re-leased
  std::size_t reassigns = 0;     ///< expired leases taken over
  std::size_t expirations = 0;   ///< slots expired by the adaptive timeout
  std::size_t fenced = 0;        ///< stale-epoch requests rejected
  std::size_t bad_requests = 0;  ///< unparseable/invalid frames
  std::size_t journal_records = 0;         ///< records appended this run
  std::size_t replayed_records = 0;        ///< records applied at startup
  std::size_t torn_journal_records = 0;    ///< malformed lines skipped
  std::uint64_t client_retries = 0;  ///< sum of client-reported retry counts
  bool completed = false;            ///< every lease drained
};

class LeaseService {
 public:
  explicit LeaseService(LeaseServiceOptions options);
  ~LeaseService();

  LeaseService(const LeaseService&) = delete;
  LeaseService& operator=(const LeaseService&) = delete;

  /// Bind + listen + replay the journal. Throws SimulationError on bind
  /// failure or a journal/init mismatch.
  void start();

  /// The actually-bound port (after start(); resolves listen.port == 0).
  std::uint16_t port() const;

  /// Serve until the sweep completes (then linger linger_ms) or stop() is
  /// called. Returns the final stats. Call start() first.
  LeaseServiceStats run();

  /// Thread-safe shutdown request for in-process tests: run() returns
  /// within one poll tick.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  const LeaseServiceStats& stats() const { return stats_; }

 private:
  struct Impl;
  Impl* impl_;
  LeaseServiceOptions options_;
  LeaseServiceStats stats_;
  std::atomic<bool> stop_{false};
};

}  // namespace oracle::exp
