#include "exp/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "exp/checkpoint.hpp"
#include "exp/job_queue.hpp"
#include "exp/result_sink.hpp"
#include "util/error.hpp"
#include "util/file_util.hpp"
#include "util/string_util.hpp"

#if !defined(_WIN32)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace oracle::exp {

// -------------------------------------------------------------- ShardSpec --

std::optional<ShardSpec> ShardSpec::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size())
    return std::nullopt;
  std::int64_t index = 0, count = 0;
  try {
    index = parse_int(trim(text.substr(0, slash)), "shard index");
    count = parse_int(trim(text.substr(slash + 1)), "shard count");
  } catch (const ConfigError&) {
    return std::nullopt;
  }
  // Validate on the signed values: a negative count must not wrap into a
  // huge modulus that silently assigns (almost) no jobs to any worker.
  if (index < 0 || count < 1 || index >= count) return std::nullopt;
  return ShardSpec{static_cast<std::size_t>(index),
                   static_cast<std::size_t>(count)};
}

std::string ShardSpec::to_string() const {
  return strfmt("%zu/%zu", index, count);
}

std::string shard_store_path(const std::string& canonical_store,
                             std::size_t index, std::size_t count) {
  return canonical_store + strfmt(".shard%zuof%zu", index, count);
}

// -------------------------------------------------------------- ShardPlan --

ShardPlan::ShardPlan(const JobQueue& queue, std::size_t count)
    : hashes_(std::max<std::size_t>(count, 1)), total_(queue.size()) {
  for (const auto& job : queue.jobs())
    hashes_[shard_of_hash(job.content_hash, hashes_.size())].push_back(
        job.content_hash);
}

std::vector<std::size_t> ShardPlan::incomplete_shards(
    const std::string& canonical_store,
    const std::unordered_set<std::uint64_t>& already_done) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    if (hashes_[i].empty()) continue;
    const std::string store = shard_store_path(canonical_store, i,
                                               hashes_.size());
    auto done = load_completed_hashes(store);
    Checkpoint ckpt(Checkpoint::default_path(store));
    ckpt.load();
    const bool incomplete = std::any_of(
        hashes_[i].begin(), hashes_[i].end(), [&](std::uint64_t h) {
          return !done.contains(h) && !ckpt.contains(h) &&
                 !already_done.contains(h);
        });
    if (incomplete) out.push_back(i);
  }
  return out;
}

// ------------------------------------------------------------ ShardMerger --

void ShardMerger::add_store(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // a shard with no work never creates its store
  ++report_.stores_read;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto rec = parse_jsonl_record(line);
    if (!rec) {
      ++report_.corrupt_lines;  // a killed worker's partial tail line
      continue;
    }
    records_.push_back({rec->job_index, rec->content_hash, line});
  }
}

MergeReport ShardMerger::merge_to(const std::string& canonical_path) {
  // Job order is the serial engine's commit order, so sorting by job index
  // reproduces a serial run byte-for-byte (records themselves are written
  // deterministically by the sinks). stable_sort keeps first-seen order
  // for duplicate hashes, which the dedup below then collapses.
  std::stable_sort(records_.begin(), records_.end(),
                   [](const Record& a, const Record& b) {
                     return a.job_index < b.job_index;
                   });

  const std::string tmp = canonical_path + ".merge.tmp";
  {
    std::ofstream store(tmp, std::ios::out | std::ios::trunc);
    if (!store)
      throw SimulationError("cannot open '" + tmp + "' for writing");
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(records_.size());
    std::vector<std::uint64_t> order;
    order.reserve(records_.size());
    for (const auto& rec : records_) {
      if (!seen.insert(rec.content_hash).second) {
        ++report_.duplicates_dropped;
        continue;
      }
      store << rec.line << '\n';
      order.push_back(rec.content_hash);
      ++report_.records;
    }
    store.flush();
    if (!store)
      throw SimulationError("merge write to '" + tmp + "' failed");
    store.close();

    // Canonical checkpoint, rebuilt to exactly mirror the merged store so
    // a later serial --resume over the canonical store needs no rescans.
    const std::string ckpt_tmp = tmp + ".ckpt";
    std::ofstream ckpt(ckpt_tmp, std::ios::out | std::ios::trunc);
    if (!ckpt)
      throw SimulationError("cannot open '" + ckpt_tmp + "' for writing");
    for (const auto hash : order) ckpt << hash_hex(hash) << '\n';
    ckpt.flush();
    if (!ckpt)
      throw SimulationError("merge write to '" + ckpt_tmp + "' failed");
    ckpt.close();

    // Store first, checkpoint second: a crash in between leaves a stale
    // checkpoint beside a complete store, and resume rescans the store.
    util::atomic_replace(tmp, canonical_path);
    util::atomic_replace(ckpt_tmp, Checkpoint::default_path(canonical_path));
  }
  return report_;
}

// ---------------------------------------------------------- process layer --

#if defined(_WIN32)

std::vector<WorkerExit> spawn_and_wait(
    const std::vector<std::vector<std::string>>&,
    const std::vector<std::size_t>&) {
  throw SimulationError("multi-process sharded runs require a POSIX host");
}

std::string self_exec_path(const std::string& argv0) { return argv0; }

#else

std::vector<WorkerExit> spawn_and_wait(
    const std::vector<std::vector<std::string>>& argvs,
    const std::vector<std::size_t>& shards) {
  ORACLE_ASSERT(argvs.size() == shards.size());
  std::vector<pid_t> pids(argvs.size(), -1);
  std::vector<WorkerExit> exits(argvs.size());

  for (std::size_t k = 0; k < argvs.size(); ++k) {
    exits[k].shard = shards[k];
    std::vector<char*> argv;
    argv.reserve(argvs[k].size() + 1);
    for (const auto& arg : argvs[k])
      argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      // Don't strand the workers already launched: a concurrent retry
      // (--resume) would otherwise race them on the same shard stores.
      for (std::size_t j = 0; j < k; ++j) {
        if (pids[j] <= 0) continue;
        ::kill(pids[j], SIGKILL);
        int status = 0;
        ::waitpid(pids[j], &status, 0);
      }
      throw SimulationError("fork failed for shard worker " +
                            std::to_string(shards[k]));
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      // exec failed: report through the conventional "command not
      // runnable" exit code without running any parent-side cleanup.
      std::fprintf(stderr, "oracle_batch: cannot exec '%s'\n", argv[0]);
      ::_exit(127);
    }
    pids[k] = pid;
  }

  for (std::size_t k = 0; k < pids.size(); ++k) {
    int status = 0;
    if (::waitpid(pids[k], &status, 0) < 0) {
      exits[k].exit_code = 126;  // lost track of the child: treat as failed
      continue;
    }
    if (WIFEXITED(status)) {
      exits[k].exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      exits[k].term_signal = WTERMSIG(status);
    } else {
      exits[k].exit_code = 126;
    }
  }
  return exits;
}

std::string self_exec_path(const std::string& argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return argv0;
}

#endif

// ------------------------------------------------- run_sharded_processes --

bool ShardRunReport::ok() const noexcept {
  if (!merged) return false;
  for (const auto& w : workers)
    if (!w.ok()) return false;
  return true;
}

std::string ShardRunReport::summary() const {
  std::size_t failed = 0;
  for (const auto& w : workers)
    if (!w.ok()) ++failed;
  std::string s = strfmt(
      "%zu jobs over %zu worker(s): %zu launched, %zu shard(s) already "
      "complete",
      planned_jobs, shards_launched + shards_skipped, shards_launched,
      shards_skipped);
  if (failed > 0) s += strfmt(", %zu worker(s) failed", failed);
  if (merged)
    s += strfmt("; merged %zu record(s) (%zu duplicate(s) dropped)",
                merge.records, merge.duplicates_dropped);
  else
    s += "; merge skipped (re-run with --resume to finish)";
  return s;
}

ShardRunReport run_sharded_processes(
    const std::vector<core::ExperimentConfig>& configs,
    const ShardRunOptions& options) {
  ORACLE_REQUIRE(!options.out.empty(),
                 "sharded runs need a canonical --out store");
  ORACLE_REQUIRE(options.workers >= 1, "--workers must be >= 1");
  ORACLE_REQUIRE(!options.exec_path.empty(),
                 "sharded runs need the worker executable path");
  ORACLE_REQUIRE(!configs.empty(), "sharded run over an empty sweep");

  JobQueue queue(configs);
  if (options.master_seed != 0) queue.derive_seeds(options.master_seed);
  const ShardPlan plan(queue, options.workers);

  ShardRunReport report;
  report.planned_jobs = plan.total_jobs();

  // Which shards need a worker? Fresh runs: every shard with jobs (their
  // workers truncate any stale per-shard state). Resume: only shards with
  // jobs not already durable in their own store/checkpoint or in the
  // previously merged canonical store.
  std::vector<std::size_t> to_run;
  if (options.resume) {
    to_run = plan.incomplete_shards(options.out,
                                    load_completed_hashes(options.out));
  } else {
    for (std::size_t i = 0; i < plan.count(); ++i)
      if (!plan.shard_hashes(i).empty()) to_run.push_back(i);
  }
  std::size_t nonempty = 0;
  for (std::size_t i = 0; i < plan.count(); ++i)
    if (!plan.shard_hashes(i).empty()) ++nonempty;
  report.shards_launched = to_run.size();
  report.shards_skipped = nonempty - to_run.size();

  // A fresh run must not inherit stale per-shard state from an older,
  // different sweep: clear every shard store/checkpoint of this layout up
  // front (workers would truncate their own anyway; shards that get no
  // worker this time must not leak stale records into the merge).
  if (!options.resume) {
    for (std::size_t i = 0; i < plan.count(); ++i) {
      const std::string store = shard_store_path(options.out, i, plan.count());
      util::remove_file(store);
      util::remove_file(Checkpoint::default_path(store));
    }
  }

  if (!to_run.empty()) {
    std::vector<std::vector<std::string>> argvs;
    argvs.reserve(to_run.size());
    for (const std::size_t shard : to_run) {
      std::vector<std::string> argv;
      argv.push_back(options.exec_path);
      argv.insert(argv.end(), options.worker_args.begin(),
                  options.worker_args.end());
      argv.push_back("--shard");
      argv.push_back(ShardSpec{shard, plan.count()}.to_string());
      if (options.resume) argv.push_back("--resume");
      argvs.push_back(std::move(argv));
    }
    report.workers = spawn_and_wait(argvs, to_run);
  }

  for (const auto& w : report.workers)
    if (!w.ok()) return report;  // merge skipped; every store stays put

  // All workers finished cleanly: fold the per-shard stores (plus, when
  // resuming, the previously merged canonical store) into the canonical
  // store. A fresh run replaces the canonical store outright, mirroring
  // the serial engine's truncate-on-fresh-run semantics.
  ShardMerger merger;
  if (options.resume) merger.add_store(options.out);
  for (std::size_t i = 0; i < plan.count(); ++i)
    merger.add_store(shard_store_path(options.out, i, plan.count()));
  report.merge = merger.merge_to(options.out);
  report.merged = true;

  if (!options.keep_shard_stores) {
    for (std::size_t i = 0; i < plan.count(); ++i) {
      const std::string store = shard_store_path(options.out, i, plan.count());
      util::remove_file(store);
      util::remove_file(Checkpoint::default_path(store));
    }
  }
  return report;
}

}  // namespace oracle::exp
