#include "exp/shard.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "exp/batch.hpp"
#include "exp/checkpoint.hpp"
#include "exp/job_queue.hpp"
#include "exp/lease_client.hpp"
#include "exp/result_sink.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/file_util.hpp"
#include "util/log.hpp"
#include "util/posix_io.hpp"
#include "util/string_util.hpp"

#if !defined(_WIN32)
#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace oracle::exp {

// -------------------------------------------------------------- ShardSpec --

std::optional<ShardSpec> ShardSpec::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size())
    return std::nullopt;
  std::int64_t index = 0, count = 0;
  try {
    index = parse_int(trim(text.substr(0, slash)), "shard index");
    count = parse_int(trim(text.substr(slash + 1)), "shard count");
  } catch (const ConfigError&) {
    return std::nullopt;
  }
  // Validate on the signed values: a negative count must not wrap into a
  // huge modulus that silently assigns (almost) no jobs to any worker.
  if (index < 0 || count < 1 || index >= count) return std::nullopt;
  return ShardSpec{static_cast<std::size_t>(index),
                   static_cast<std::size_t>(count)};
}

std::string ShardSpec::to_string() const {
  return strfmt("%zu/%zu", index, count);
}

std::string shard_store_path(const std::string& canonical_store,
                             std::size_t index, std::size_t count) {
  return canonical_store + strfmt(".shard%zuof%zu", index, count);
}

std::string worker_store_path(const std::string& canonical_store,
                              std::size_t slot, std::size_t count) {
  return canonical_store + strfmt(".worker%zuof%zu", slot, count);
}

std::string worker_lease_path(const std::string& canonical_store,
                              std::size_t slot, std::size_t count) {
  return canonical_store + strfmt(".lease%zuof%zu", slot, count);
}

std::string worker_heartbeat_path(const std::string& canonical_store,
                                  std::size_t slot, std::size_t count) {
  return canonical_store + strfmt(".hb%zuof%zu", slot, count);
}

// ------------------------------------------------------------ lease files --

namespace {

std::atomic<std::size_t> g_lease_torn_reads{0};

/// Checksum over the lease payload: catches a torn write whose prefix
/// still parses as plausible numbers (observed on filesystems where the
/// tmp+rename dance is not atomic against concurrent readers).
std::uint64_t lease_checksum(const Lease& lease) {
  return fnv1a64(strfmt("%llu %zu %zu",
                        static_cast<unsigned long long>(lease.generation),
                        lease.begin, lease.end));
}

}  // namespace

std::size_t lease_file_torn_reads() noexcept {
  return g_lease_torn_reads.load(std::memory_order_relaxed);
}

void write_lease_file(const std::string& path, const Lease& lease) {
  util::write_file_atomic(
      path, strfmt("v2 %llu %zu %zu %016llx\n",
                   static_cast<unsigned long long>(lease.generation),
                   lease.begin, lease.end,
                   static_cast<unsigned long long>(lease_checksum(lease))));
}

std::optional<Lease> read_lease_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  const auto torn = [] {
    g_lease_torn_reads.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  std::string tag;
  unsigned long long generation = 0, begin = 0, end = 0;
  if (!(in >> tag >> generation >> begin >> end)) return torn();
  Lease lease;
  lease.generation = generation;
  lease.begin = static_cast<std::size_t>(begin);
  lease.end = static_cast<std::size_t>(end);
  if (begin > end) return torn();
  if (tag == "v1") return lease;  // pre-checksum files stay readable
  if (tag != "v2") return torn();
  std::string cksum_hex;
  unsigned long long cksum = 0;
  if (!(in >> cksum_hex) ||
      std::sscanf(cksum_hex.c_str(), "%llx", &cksum) != 1 ||
      cksum != lease_checksum(lease))
    return torn();
  return lease;
}

// ------------------------------------------------------------- LeaseTable --

LeaseTable::LeaseTable(std::size_t jobs, std::size_t slots) : jobs_(jobs) {
  slots_.resize(std::max<std::size_t>(slots, 1));
  const std::size_t w = slots_.size();
  for (std::size_t i = 0; i < w; ++i) {
    slots_[i].current.begin = jobs * i / w;
    slots_[i].current.end = jobs * (i + 1) / w;
    // A zero-size lease (more slots than jobs) is born drained: its worker
    // has nothing to do and any steal immediately re-arms it.
    slots_[i].drained = slots_[i].current.empty();
  }
}

void LeaseTable::mark_drained(std::size_t slot) {
  slots_[slot].drained = true;
}

bool LeaseTable::all_drained() const {
  return std::all_of(slots_.begin(), slots_.end(),
                     [](const Slot& s) { return s.drained; });
}

std::optional<Lease> LeaseTable::steal(std::size_t victim, std::size_t thief,
                                       std::size_t split) {
  if (victim >= slots_.size() || thief >= slots_.size() || victim == thief)
    return std::nullopt;
  Slot& v = slots_[victim];
  Slot& t = slots_[thief];
  // Only a live victim has an unclaimed tail, and only a drained thief may
  // abandon its old lease; `split` must leave the victim a non-empty head
  // and the thief a non-empty tail.
  if (v.drained || !t.drained) return std::nullopt;
  if (split <= v.current.begin || split >= v.current.end) return std::nullopt;

  if (!t.current.empty())
    retired_.emplace_back(t.current.begin, t.current.end);
  t.current.generation += 1;
  t.current.begin = split;
  t.current.end = v.current.end;
  t.drained = false;
  v.current.generation += 1;
  v.current.end = split;
  return t.current;
}

std::optional<Lease> LeaseTable::reassign(std::size_t victim,
                                          std::size_t thief,
                                          std::size_t frontier) {
  if (victim >= slots_.size() || thief >= slots_.size() || victim == thief)
    return std::nullopt;
  Slot& v = slots_[victim];
  Slot& t = slots_[thief];
  if (v.drained || !t.drained) return std::nullopt;
  if (frontier < v.current.begin || frontier > v.current.end)
    return std::nullopt;

  // The committed head retires; the victim's lease collapses to empty at
  // the split point so the partition invariant keeps holding.
  if (frontier > v.current.begin)
    retired_.emplace_back(v.current.begin, frontier);
  const std::size_t end = v.current.end;
  v.current.generation += 1;
  v.current.begin = frontier;
  v.current.end = frontier;
  v.drained = true;

  if (frontier == end) return std::nullopt;  // fully committed: no tail

  if (!t.current.empty())
    retired_.emplace_back(t.current.begin, t.current.end);
  t.current.generation += 1;
  t.current.begin = frontier;
  t.current.end = end;
  t.drained = false;
  return t.current;
}

bool LeaseTable::partitions_queue() const {
  std::vector<std::pair<std::size_t, std::size_t>> ranges = retired_;
  for (const auto& s : slots_)
    if (!s.current.empty())
      ranges.emplace_back(s.current.begin, s.current.end);
  std::sort(ranges.begin(), ranges.end());
  std::size_t next = 0;
  for (const auto& [b, e] : ranges) {
    if (b != next || e <= b) return false;
    next = e;
  }
  return next == jobs_;
}

// ------------------------------------------------------- HeartbeatMonitor --

void HeartbeatMonitor::start(std::size_t slot, TimePoint now) {
  State& s = slots_[slot];
  s.value = -1;
  s.last_change = now;
  s.armed = true;
}

std::optional<double> HeartbeatMonitor::observe(std::size_t slot,
                                                std::int64_t value,
                                                TimePoint now) {
  const auto it = slots_.find(slot);
  if (it == slots_.end() || !it->second.armed) return std::nullopt;
  if (value == it->second.value) return std::nullopt;
  const bool first = it->second.value < 0;
  const double interval =
      std::chrono::duration<double>(now - it->second.last_change).count();
  it->second.value = value;
  it->second.last_change = now;
  // The first change after (re)arming measures spawn latency, not job
  // pace; it is not an interval worth feeding the adaptive timeout.
  if (first) return std::nullopt;
  return interval;
}

bool HeartbeatMonitor::stale(std::size_t slot, TimePoint now) const {
  const auto it = slots_.find(slot);
  if (it == slots_.end() || !it->second.armed) return false;
  return now - it->second.last_change > timeout_;
}

double HeartbeatMonitor::age_seconds(std::size_t slot, TimePoint now) const {
  const auto it = slots_.find(slot);
  if (it == slots_.end() || !it->second.armed) return -1.0;
  return std::chrono::duration<double>(now - it->second.last_change).count();
}

void HeartbeatMonitor::stop(std::size_t slot) {
  const auto it = slots_.find(slot);
  if (it != slots_.end()) it->second.armed = false;
}

// -------------------------------------------------------- AdaptiveTimeout --

void AdaptiveTimeout::seed(const DurationStats& stats) {
  if (stats.count == 0) return;
  // The p99 stands in for the whole prior distribution; the max keeps the
  // whale guard honest even when the seed run had one extreme outlier.
  record(stats.p99_s);
  record(stats.max_s);
}

void AdaptiveTimeout::record(double seconds) {
  if (!(seconds > 0.0)) return;
  const std::size_t window = std::max<std::size_t>(config_.window, 1);
  if (window_.size() < window) {
    window_.push_back(seconds);
  } else {
    window_[next_] = seconds;
    next_ = (next_ + 1) % window;
  }
  ++count_;
  max_sample_ = std::max(max_sample_, seconds);
}

double AdaptiveTimeout::timeout_seconds() const {
  if (window_.empty()) return std::numeric_limits<double>::infinity();
  std::vector<double> sorted(window_);
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      0.99 * static_cast<double>(sorted.size() - 1) + 0.5);
  const double p99 = sorted[std::min(idx, sorted.size() - 1)];
  const double raw = std::max(p99 * config_.multiplier, max_sample_ * 2.0);
  return std::clamp(raw, config_.floor_s, config_.cap_s);
}

// ------------------------------------------------------------- quarantine --

std::string quarantine_path(const std::string& canonical_store) {
  return canonical_store + ".quarantine";
}

std::vector<QuarantineEntry> read_quarantine_file(const std::string& path) {
  std::vector<QuarantineEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string hash_str;
  unsigned long long index = 0;
  while (in >> hash_str >> index) {
    QuarantineEntry e;
    if (!parse_hash_hex(hash_str, e.content_hash)) continue;  // torn tail
    e.job_index = static_cast<std::size_t>(index);
    entries.push_back(e);
  }
  return entries;
}

void append_quarantine_entry(const std::string& path,
                             const QuarantineEntry& entry) {
#if defined(_WIN32)
  std::ofstream out(path, std::ios::app);
  out << hash_hex(entry.content_hash) << ' ' << entry.job_index << '\n';
#else
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0)
    throw SimulationError("cannot open quarantine file '" + path + "'");
  const std::string line =
      hash_hex(entry.content_hash) + strfmt(" %zu\n", entry.job_index);
  const bool ok =
      util::write_full(fd, line.data(), line.size()) && util::fsync_retry(fd);
  ::close(fd);
  if (!ok)
    throw SimulationError("quarantine append to '" + path + "' failed");
#endif
}

// -------------------------------------------------------------- ShardPlan --

ShardPlan::ShardPlan(const JobQueue& queue, std::size_t count)
    : hashes_(std::max<std::size_t>(count, 1)), total_(queue.size()) {
  for (const auto& job : queue.jobs())
    hashes_[shard_of_hash(job.content_hash, hashes_.size())].push_back(
        job.content_hash);
}

std::vector<std::size_t> ShardPlan::incomplete_shards(
    const std::string& canonical_store,
    const std::unordered_set<std::uint64_t>& already_done) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    if (hashes_[i].empty()) continue;
    const std::string store = shard_store_path(canonical_store, i,
                                               hashes_.size());
    auto done = load_completed_hashes(store);
    Checkpoint ckpt(Checkpoint::default_path(store));
    ckpt.load();
    const bool incomplete = std::any_of(
        hashes_[i].begin(), hashes_[i].end(), [&](std::uint64_t h) {
          return !done.contains(h) && !ckpt.contains(h) &&
                 !already_done.contains(h);
        });
    if (incomplete) out.push_back(i);
  }
  return out;
}

// ------------------------------------------------------------ ShardMerger --

void ShardMerger::add_store(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // a shard with no work never creates its store
  ++report_.stores_read;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto rec = parse_jsonl_record(line);
    if (!rec) {
      ++report_.corrupt_lines;  // a killed worker's partial tail line
      continue;
    }
    records_.push_back({rec->job_index, rec->content_hash, line});
  }
}

MergeReport ShardMerger::merge_to(const std::string& canonical_path) {
  // Job order is the serial engine's commit order, so sorting by job index
  // reproduces a serial run byte-for-byte (records themselves are written
  // deterministically by the sinks). stable_sort keeps first-seen order
  // for duplicate hashes, which the dedup below then collapses.
  std::stable_sort(records_.begin(), records_.end(),
                   [](const Record& a, const Record& b) {
                     return a.job_index < b.job_index;
                   });

  const std::string tmp = canonical_path + ".merge.tmp";
  {
    std::ofstream store(tmp, std::ios::out | std::ios::trunc);
    if (!store)
      throw SimulationError("cannot open '" + tmp + "' for writing");
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(records_.size());
    std::vector<std::uint64_t> order;
    order.reserve(records_.size());
    for (const auto& rec : records_) {
      if (!seen.insert(rec.content_hash).second) {
        ++report_.duplicates_dropped;
        continue;
      }
      store << rec.line << '\n';
      order.push_back(rec.content_hash);
      ++report_.records;
    }
    store.flush();
    if (!store)
      throw SimulationError("merge write to '" + tmp + "' failed");
    store.close();

    // Canonical checkpoint, rebuilt to exactly mirror the merged store so
    // a later serial --resume over the canonical store needs no rescans.
    const std::string ckpt_tmp = tmp + ".ckpt";
    std::ofstream ckpt(ckpt_tmp, std::ios::out | std::ios::trunc);
    if (!ckpt)
      throw SimulationError("cannot open '" + ckpt_tmp + "' for writing");
    for (const auto hash : order) ckpt << hash_hex(hash) << '\n';
    ckpt.flush();
    if (!ckpt)
      throw SimulationError("merge write to '" + ckpt_tmp + "' failed");
    ckpt.close();

    // Store first, checkpoint second: a crash in between leaves a stale
    // checkpoint beside a complete store, and resume rescans the store.
    util::atomic_replace(tmp, canonical_path);
    util::atomic_replace(ckpt_tmp, Checkpoint::default_path(canonical_path));
  }
  return report_;
}

// ------------------------------------------------------- run_lease_worker --

namespace {

[[noreturn]] void fire_death_fault(bool with_sigkill) {
#if defined(_WIN32)
  (void)with_sigkill;
  std::_Exit(1);
#else
  if (with_sigkill) {
    ::raise(SIGKILL);
    // raise() cannot return for SIGKILL, but keep the compiler satisfied.
  }
  ::_exit(1);
#endif
}

}  // namespace

BatchReport run_lease_worker(const std::vector<core::ExperimentConfig>& configs,
                             const LeaseWorkerOptions& options) {
  ORACLE_REQUIRE(!options.canonical_out.empty(),
                 "lease workers need the canonical --out store path");
  ORACLE_REQUIRE(options.slot < std::max<std::size_t>(options.slot_count, 1),
                 "lease worker slot out of range");
  const std::string store =
      worker_store_path(options.canonical_out, options.slot,
                        options.slot_count);
  const std::string lease_path =
      worker_lease_path(options.canonical_out, options.slot,
                        options.slot_count);
  const std::string hb_path =
      worker_heartbeat_path(options.canonical_out, options.slot,
                            options.slot_count);

  // Missing/malformed lease file ⇒ empty lease: run zero jobs but still
  // leave a valid (possibly empty) store so the merge never trips over a
  // slot that had nothing to do.
  Lease lease;
  if (const auto l = read_lease_file(lease_path)) lease = *l;

  BatchOptions opt;
  opt.jsonl_path = store;
  opt.collect = false;
  opt.master_seed = options.master_seed;
  opt.lease_begin = lease.begin;
  opt.lease_end = lease.end;
  opt.heartbeat_path = hb_path;
  // Always append + skip-own-completed: the supervisor pre-cleans slot
  // files on a fresh run, so "resume" here only ever sees this run's own
  // durable prefix — which is exactly what a respawned worker must skip.
  opt.resume = true;
  opt.exec.workers = std::max<std::size_t>(1, options.threads);
  opt.exec.progress = false;
  if (options.merge_resume && util::file_exists(options.canonical_out))
    opt.extra_resume_stores.push_back(options.canonical_out);
  for (std::size_t j = 0; j < options.slot_count; ++j) {
    // Sibling stores: after a steal race the victim may already hold
    // records from this slot's lease; reading them up front avoids
    // re-running those jobs (re-running would still merge correctly).
    if (j == options.slot) continue;
    const auto sibling =
        worker_store_path(options.canonical_out, j, options.slot_count);
    if (util::file_exists(sibling)) opt.extra_resume_stores.push_back(sibling);
  }

  // Poison jobs already quarantined by the supervisor are pre-marked
  // completed: a respawned worker must not walk into the same crash.
  for (const auto& q :
       read_quarantine_file(quarantine_path(options.canonical_out)))
    opt.skip_hashes.push_back(q.content_hash);

  const ShardTestHooks hooks = options.hooks;
  auto fault_armed = [&hooks]() {
    return hooks.once_marker.empty() || !util::file_exists(hooks.once_marker);
  };
  auto mark_fired = [&hooks]() {
    if (!hooks.once_marker.empty()) util::touch_file(hooks.once_marker);
  };
  std::atomic<std::size_t> jobs_started{0};
  opt.exec.stop_before = [&](const ExperimentJob& job) {
    const std::size_t n =
        jobs_started.fetch_add(1, std::memory_order_relaxed);
    if ((n == hooks.die_after_n_jobs || job.index == hooks.die_on_job_index) &&
        fault_armed()) {
      mark_fired();
      fire_death_fault(hooks.die_with_sigkill);
    }
    if (n == hooks.stall_after_n_jobs && fault_armed()) {
      mark_fired();
      std::this_thread::sleep_for(std::chrono::milliseconds(hooks.stall_ms));
    }
    // The live lease check: the parent may have stolen our tail since the
    // last job. Anything at or past the current end belongs to the thief.
    const auto live = read_lease_file(lease_path);
    return live.has_value() && job.index >= live->end;
  };

  const auto outcome = run_batch(configs, opt);
  // Final liveness mark: a worker that skipped everything (fully resumed
  // lease) must still register a sign of life before exiting 0.
  util::touch_file(hb_path);
  return outcome.report;
}

// ------------------------------------------------ run_lease_client_worker --

namespace {

void accumulate_batch(BatchReport* into, const BatchReport& one) {
  into->total_jobs += one.total_jobs;
  into->skipped += one.skipped;
  into->executed += one.executed;
  into->failed += one.failed;
  into->cancelled += one.cancelled;
  into->total_events += one.total_events;
  into->elapsed_seconds += one.elapsed_seconds;
  for (const auto& e : one.errors)
    if (into->errors.size() < 16) into->errors.push_back(e);
  into->jobs_per_second =
      into->elapsed_seconds > 0
          ? static_cast<double>(into->executed) / into->elapsed_seconds
          : 0.0;
}

}  // namespace

LeaseWorkerReport run_lease_client_worker(
    const std::vector<core::ExperimentConfig>& configs,
    const LeaseWorkerOptions& options) {
  ORACLE_REQUIRE(!options.canonical_out.empty(),
                 "lease workers need the canonical --out store path");
  ORACLE_REQUIRE(!options.lease_server.empty(),
                 "run_lease_client_worker needs --lease-server");
  ORACLE_REQUIRE(options.slot < std::max<std::size_t>(options.slot_count, 1),
                 "lease worker slot out of range");
  const auto server = util::HostPort::parse(options.lease_server);
  if (!server)
    throw ConfigError("bad --lease-server address: " + options.lease_server);

  const std::string store =
      worker_store_path(options.canonical_out, options.slot,
                        options.slot_count);
  const std::string hb_path =
      worker_heartbeat_path(options.canonical_out, options.slot,
                            options.slot_count);

  LeaseClientOptions copt;
  copt.server = *server;
  copt.slot = options.slot;
  copt.slot_count = std::max<std::size_t>(options.slot_count, 1);
  copt.jobs = configs.size();
  copt.op_timeout_ms = options.op_timeout_ms;
  copt.retry_budget = options.retry_budget;
  copt.backoff_base_ms = options.backoff_base_ms;
  copt.backoff_cap_ms = options.backoff_cap_ms;
  copt.jitter_seed = fnv1a64(strfmt("lease-jitter %zu", options.slot));
  LeaseClient client(copt);

  LeaseWorkerReport report;
  auto finish = [&] {
    report.retries = client.retries();
    report.reconnects = client.reconnects();
    util::touch_file(hb_path);
    return report;
  };

  try {
    std::optional<LeaseGrant> grant = client.acquire();
    while (grant) {
      obs::Span lease_span("lease", "worker.lease", "begin",
                           static_cast<std::int64_t>(grant->begin), "end",
                           static_cast<std::int64_t>(grant->end));
      ORACLE_LOG_INFO(strfmt(
          "slot %zu leased [%zu,%zu) epoch %llu from %s", options.slot,
          grant->begin, grant->end,
          static_cast<unsigned long long>(grant->epoch),
          options.lease_server.c_str()));

      BatchOptions opt;
      opt.jsonl_path = store;
      opt.collect = false;
      opt.master_seed = options.master_seed;
      opt.lease_begin = grant->begin;
      opt.lease_end = grant->end;
      opt.heartbeat_path = hb_path;
      // Append + skip-own-completed, exactly like the file-protocol worker:
      // a respawned or re-leased worker must skip its own durable prefix.
      opt.resume = true;
      // Commits are strictly ordered only with one executor thread — the
      // frontier the server fences on *is* the job index being started.
      opt.exec.workers = 1;
      opt.exec.progress = false;
      if (options.merge_resume && util::file_exists(options.canonical_out))
        opt.extra_resume_stores.push_back(options.canonical_out);
      for (std::size_t j = 0; j < options.slot_count; ++j) {
        if (j == options.slot) continue;
        const auto sibling =
            worker_store_path(options.canonical_out, j, options.slot_count);
        if (util::file_exists(sibling))
          opt.extra_resume_stores.push_back(sibling);
      }

      const ShardTestHooks hooks = options.hooks;
      auto fault_armed = [&hooks]() {
        return hooks.once_marker.empty() ||
               !util::file_exists(hooks.once_marker);
      };
      auto mark_fired = [&hooks]() {
        if (!hooks.once_marker.empty()) util::touch_file(hooks.once_marker);
      };

      std::size_t current_end = grant->end;
      bool fenced_mid_lease = false;
      std::size_t jobs_started = 0;
      auto last_commit = std::chrono::steady_clock::now();
      opt.exec.stop_before = [&](const ExperimentJob& job) {
        const std::size_t n = jobs_started++;
        if ((n == hooks.die_after_n_jobs ||
             job.index == hooks.die_on_job_index) &&
            fault_armed()) {
          mark_fired();
          fire_death_fault(hooks.die_with_sigkill);
        }
        if (n == hooks.stall_after_n_jobs && fault_armed()) {
          mark_fired();
          std::this_thread::sleep_for(
              std::chrono::milliseconds(hooks.stall_ms));
        }
        // Everything before job.index is durable (single-threaded ordered
        // commit), so the commit is both the fencing check and the
        // progress heartbeat; its reply carries the (possibly stolen-from)
        // current lease end.
        const auto now = std::chrono::steady_clock::now();
        const auto wall_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - last_commit)
                .count());
        last_commit = now;
        const auto verdict =
            client.commit(grant->epoch, job.index, n == 0 ? 0 : wall_us,
                          &current_end);
        if (verdict == LeaseClient::CommitResult::kFenced) {
          fenced_mid_lease = true;
          report.fenced = true;
          return true;  // stop: our range now belongs to someone else
        }
        if (verdict == LeaseClient::CommitResult::kDone) return true;
        util::touch_file(hb_path);
        return job.index >= current_end;
      };

      const auto outcome = run_batch(configs, opt);
      accumulate_batch(&report.batch, outcome.report);
      ++report.leases_run;

      if (fenced_mid_lease) {
        // The server revoked this epoch (we were presumed dead). Our
        // durable records are harmless duplicates; ask for fresh work
        // under a fresh epoch.
        ORACLE_LOG_WARN(strfmt(
            "slot %zu fenced mid-lease (epoch %llu); re-acquiring",
            options.slot, static_cast<unsigned long long>(grant->epoch)));
        grant = client.acquire();
        continue;
      }

      // Lease drained: publish the final frontier, then ask for more.
      const auto verdict =
          client.commit(grant->epoch, current_end, 0, nullptr);
      if (verdict == LeaseClient::CommitResult::kDone) break;
      grant = client.next_lease(grant->epoch);
    }
  } catch (const LeaseOrphanedError& e) {
    // Committed prefix is already fsynced by the batch engine; surface the
    // distinct orphaned outcome so the launcher exits with its own code
    // and a later --resume reshapes leases around this worker's store.
    ORACLE_LOG_WARN(strfmt("slot %zu orphaned: %s", options.slot, e.what()));
    obs::instant("lease", "worker.orphaned", "slot",
                 static_cast<std::int64_t>(options.slot));
    report.orphaned = true;
  }
  return finish();
}

// ---------------------------------------------------------- process layer --

#if defined(_WIN32)

std::vector<WorkerExit> spawn_and_wait(
    const std::vector<std::vector<std::string>>&,
    const std::vector<std::size_t>&) {
  throw SimulationError("multi-process sharded runs require a POSIX host");
}

std::string self_exec_path(const std::string& argv0) { return argv0; }

namespace {

ShardRunReport run_stealing_processes(
    const std::vector<core::ExperimentConfig>&, const ShardRunOptions&) {
  throw SimulationError("work-stealing sharded runs require a POSIX host");
}

ShardRunReport run_lease_server_processes(
    const std::vector<core::ExperimentConfig>&, const ShardRunOptions&) {
  throw SimulationError("lease-server sharded runs require a POSIX host");
}

}  // namespace

#else

namespace {

/// Fork+exec one worker; returns its pid, or throws when fork fails (the
/// caller owns cleanup of any siblings). The child reports exec failure
/// through the conventional 127 exit code without parent-side cleanup.
pid_t spawn_one(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0)
    throw SimulationError("fork failed for shard worker");
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "oracle_batch: cannot exec '%s'\n", argv[0]);
    ::_exit(127);
  }
  return pid;
}

}  // namespace

std::vector<WorkerExit> spawn_and_wait(
    const std::vector<std::vector<std::string>>& argvs,
    const std::vector<std::size_t>& shards) {
  ORACLE_ASSERT(argvs.size() == shards.size());
  std::vector<pid_t> pids(argvs.size(), -1);
  std::vector<WorkerExit> exits(argvs.size());

  for (std::size_t k = 0; k < argvs.size(); ++k) {
    exits[k].shard = shards[k];
    try {
      pids[k] = spawn_one(argvs[k]);
    } catch (const SimulationError&) {
      // Don't strand the workers already launched: a concurrent retry
      // (--resume) would otherwise race them on the same shard stores.
      for (std::size_t j = 0; j < k; ++j) {
        if (pids[j] <= 0) continue;
        ::kill(pids[j], SIGKILL);
        int status = 0;
        ::waitpid(pids[j], &status, 0);
      }
      throw SimulationError("fork failed for shard worker " +
                            std::to_string(shards[k]));
    }
  }

  for (std::size_t k = 0; k < pids.size(); ++k) {
    int status = 0;
    if (::waitpid(pids[k], &status, 0) < 0) {
      exits[k].exit_code = 126;  // lost track of the child: treat as failed
      continue;
    }
    if (WIFEXITED(status)) {
      exits[k].exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      exits[k].term_signal = WTERMSIG(status);
    } else {
      exits[k].exit_code = 126;
    }
  }
  return exits;
}

std::string self_exec_path(const std::string& argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return argv0;
}

// ------------------------------------------------- stealing supervisor --

namespace {

/// Per-slot process state the supervisor tracks between polls.
struct SlotProc {
  pid_t pid = -1;
  std::size_t restarts = 0;
  bool done = false;       ///< lease drained and nothing left to steal
  bool kill_sent = false;  ///< SIGKILL dispatched by the heartbeat monitor
};

ShardRunReport run_stealing_processes(
    const std::vector<core::ExperimentConfig>& configs,
    const ShardRunOptions& options) {
  using Clock = std::chrono::steady_clock;

  JobQueue queue(configs);
  if (options.master_seed != 0) queue.derive_seeds(options.master_seed);
  const std::size_t n = queue.size();

  ShardRunReport report;
  report.planned_jobs = n;

  // One worker per job at most: a lease of zero jobs buys nothing but a
  // process spawn (the empty-lease path still works — workers exit 0 with
  // an empty-but-valid store — it is just pointless to schedule).
  const std::size_t slots =
      std::max<std::size_t>(1, std::min(options.workers, n));

  std::unordered_set<std::uint64_t> canonical_done;
  if (options.resume) {
    canonical_done = load_completed_hashes(options.out);
    Checkpoint ckpt(Checkpoint::default_path(options.out));
    ckpt.load();
    canonical_done.insert(ckpt.completed().begin(), ckpt.completed().end());
  }

  // Quarantine lifecycle: a fresh run forgets old verdicts, --resume keeps
  // them (the poison jobs stay skipped), --resume --retry-quarantined
  // wipes the file so the recorded jobs get another chance.
  const std::string qpath = quarantine_path(options.out);
  if (!options.resume || options.retry_quarantined) util::remove_file(qpath);
  std::size_t prior_quarantined = 0;
  for (const auto& q : read_quarantine_file(qpath)) {
    canonical_done.insert(q.content_hash);
    ++prior_quarantined;
  }
  // Deaths per suspect job (the job at the victim's committed frontier):
  // max_restarts deaths on the *same* job quarantines it instead of
  // burning the slot's whole restart budget.
  std::unordered_map<std::uint64_t, std::size_t> suspect_deaths;

  auto slot_files = [&](std::size_t k) {
    return std::vector<std::string>{
        worker_store_path(options.out, k, slots),
        Checkpoint::default_path(worker_store_path(options.out, k, slots)),
        worker_lease_path(options.out, k, slots),
        worker_heartbeat_path(options.out, k, slots)};
  };
  if (!options.resume) {
    // A fresh run must not inherit stale slot state from an older run of
    // the same layout (workers append to their stores by design — and so
    // do their trace files, which survive SIGKILL the same way).
    for (std::size_t k = 0; k < slots; ++k) {
      for (const auto& f : slot_files(k)) util::remove_file(f);
      if (!options.trace_path.empty())
        util::remove_file(obs::worker_trace_path(options.trace_path, k, slots));
    }
  }

  LeaseTable table(n, slots);
  for (std::size_t k = 0; k < slots; ++k)
    write_lease_file(worker_lease_path(options.out, k, slots),
                     table.lease(k));

  auto make_argv = [&](std::size_t k) {
    std::vector<std::string> argv;
    argv.push_back(options.exec_path);
    argv.insert(argv.end(), options.worker_args.begin(),
                options.worker_args.end());
    argv.push_back("--worker-slot");
    argv.push_back(strfmt("%zu/%zu", k, slots));
    if (options.resume) argv.push_back("--resume");
    return argv;
  };

  std::vector<SlotProc> procs(slots);
  // Adaptive mode starts effectively disarmed (one-year timeout stands in
  // for AdaptiveTimeout's "infinite until the first sample") and re-tunes
  // the monitor online from observed inter-heartbeat intervals.
  AdaptiveTimeout adaptive(options.adaptive_config);
  const bool stall_detection =
      options.adaptive_heartbeat || options.heartbeat_ms > 0;
  HeartbeatMonitor monitor(
      options.adaptive_heartbeat
          ? std::chrono::nanoseconds(std::chrono::hours(24 * 365))
          : std::chrono::nanoseconds(
                std::chrono::milliseconds(options.heartbeat_ms)));

  // `shards_launched` counts slots (leases), not spawns: respawns after a
  // crash and post-steal re-arms are reported through report.workers,
  // steals, and restarts instead, keeping summary()'s worker arithmetic
  // meaningful.
  report.shards_launched = slots;

  auto spawn_slot = [&](std::size_t k) {
    procs[k].pid = spawn_one(make_argv(k));
    procs[k].kill_sent = false;
    procs[k].done = false;
    monitor.start(k, Clock::now());
    obs::instant("shard", "worker.spawn", "slot",
                 static_cast<std::int64_t>(k), "restarts",
                 static_cast<std::int64_t>(procs[k].restarts));
    ORACLE_LOG_INFO(strfmt("worker slot %zu spawned (pid %d, lease [%zu,%zu))",
                           k, static_cast<int>(procs[k].pid),
                           table.lease(k).begin, table.lease(k).end));
  };

  // The victim's committed frontier: one past the highest lease position
  // whose job is durable in the victim's checkpoint (or the canonical
  // store). Workers commit in ascending index order, so everything beyond
  // is unclaimed tail — up to the in-flight window, which steal races
  // tolerate by design.
  auto committed_frontier = [&](std::size_t victim) {
    const Lease& lease = table.lease(victim);
    Checkpoint ckpt(Checkpoint::default_path(
        worker_store_path(options.out, victim, slots)));
    ckpt.load();
    std::size_t frontier = lease.begin;
    for (std::size_t p = lease.begin; p < lease.end; ++p) {
      const std::uint64_t h = queue.job(p).content_hash;
      if (ckpt.contains(h) || canonical_done.contains(h)) frontier = p + 1;
    }
    return frontier;
  };

  const std::size_t min_steal = std::max<std::size_t>(options.min_steal_jobs, 1);

  // An idle (drained) slot steals the biggest unclaimed tail among live
  // leases: victim keeps the head half (including its in-flight window),
  // the thief takes the tail half. Returns false when no live lease has a
  // tail worth a process spawn.
  auto try_steal = [&](std::size_t thief) {
    std::size_t best_victim = slots, best_split = 0, best_take = 0;
    for (std::size_t v = 0; v < slots; ++v) {
      if (v == thief || procs[v].pid < 0 || table.drained(v)) continue;
      const Lease& lease = table.lease(v);
      const std::size_t frontier = committed_frontier(v);
      if (lease.end - frontier < min_steal + 1) continue;  // head must stay
      const std::size_t split = frontier + (lease.end - frontier + 1) / 2;
      const std::size_t take = lease.end - split;
      if (take >= min_steal && take > best_take) {
        best_victim = v;
        best_split = split;
        best_take = take;
      }
    }
    // ORACLE_STEAL_DEBUG predates the leveled logger; it still forces the
    // dump so existing test invocations keep working.
    if (std::getenv("ORACLE_STEAL_DEBUG") ||
        log::enabled(log::Level::Debug)) {
      std::string line = strfmt("try_steal(thief=%zu): ", thief);
      for (std::size_t v = 0; v < slots; ++v)
        line += strfmt("slot%zu[%zu,%zu)%s%s f=%zu ", v,
                       table.lease(v).begin, table.lease(v).end,
                       table.drained(v) ? "D" : "",
                       procs[v].pid >= 0 ? "L" : "",
                       (procs[v].pid >= 0 && !table.drained(v))
                           ? committed_frontier(v)
                           : 0);
      line += strfmt("-> victim=%lld split=%zu take=%zu",
                     best_victim == slots ? -1ll
                                          : static_cast<long long>(best_victim),
                     best_split, best_take);
      log::write(log::Level::Debug, line);
    }
    if (best_victim == slots) return false;
    if (!table.steal(best_victim, thief, best_split)) return false;
    // Publish the shrink before arming the thief: the overlap window in
    // which both workers could run a stolen job is then at most the
    // victim's current in-flight jobs (harmless: duplicates merge away).
    write_lease_file(worker_lease_path(options.out, best_victim, slots),
                     table.lease(best_victim));
    write_lease_file(worker_lease_path(options.out, thief, slots),
                     table.lease(thief));
    ++report.steals;
    // The steal renders as a flow arrow: source at the victim's shrink,
    // sink at the thief's respawn over the stolen tail.
    const std::uint64_t flow_id = obs::Tracer::next_flow_id();
    obs::flow('s', flow_id, "shard", "steal", "victim",
              static_cast<std::int64_t>(best_victim), "split",
              static_cast<std::int64_t>(best_split));
    obs::instant("shard", "lease.rewrite", "slot",
                 static_cast<std::int64_t>(best_victim), "end",
                 static_cast<std::int64_t>(best_split));
    ORACLE_LOG_INFO(strfmt(
        "slot %zu stole [%zu,%zu) from slot %zu", thief, best_split,
        table.lease(thief).end, best_victim));
    spawn_slot(thief);
    obs::flow('f', flow_id, "shard", "steal", "thief",
              static_cast<std::int64_t>(thief), "take",
              static_cast<std::int64_t>(best_take));
    return true;
  };

  auto kill_all_live = [&] {
    for (auto& proc : procs) {
      if (proc.pid <= 0) continue;
      ::kill(proc.pid, SIGKILL);
      int status = 0;
      ::waitpid(proc.pid, &status, 0);
      proc.pid = -1;
    }
  };

  const auto run_start = Clock::now();
  auto last_status = run_start;

  // One consistent snapshot of supervisor state, atomically rewritten so a
  // dashboard polling the file never sees a torn read. jobs_done counts
  // from the durable frontiers: retired/drained ranges are complete,
  // live leases are complete up to their checkpoint frontier.
  auto write_status = [&](const std::string& phase) {
    if (options.status_path.empty()) return;
    const auto now = Clock::now();
    obs::StatusSnapshot st;
    st.phase = phase;
    st.jobs_total = n;
    std::size_t remaining = 0;
    for (std::size_t k = 0; k < slots; ++k) {
      obs::WorkerStatus w;
      w.slot = k;
      w.live = procs[k].pid >= 0;
      const Lease& lease = table.lease(k);
      w.lease_begin = lease.begin;
      w.lease_end = lease.end;
      w.frontier = table.drained(k) ? lease.end : committed_frontier(k);
      w.restarts = procs[k].restarts;
      w.heartbeat_age_s = monitor.age_seconds(k, now);
      if (!table.drained(k)) remaining += lease.end - w.frontier;
      st.workers.push_back(w);
    }
    remaining = std::min(remaining, n);
    st.jobs_done = n - remaining;
    st.elapsed_seconds =
        std::chrono::duration<double>(now - run_start).count();
    st.jobs_per_second =
        st.elapsed_seconds > 0
            ? static_cast<double>(st.jobs_done) / st.elapsed_seconds
            : 0.0;
    st.eta_seconds = st.jobs_per_second > 0
                         ? static_cast<double>(remaining) / st.jobs_per_second
                         : -1.0;
    st.steals = report.steals;
    st.restarts = report.restarts;
    st.quarantined = prior_quarantined + report.quarantined;
    obs::write_status_file(options.status_path, st);
  };

  bool failed = false;
  try {
    for (std::size_t k = 0; k < slots; ++k) spawn_slot(k);
    write_status("running");

    while (true) {
      // Reap every exited worker without blocking the poll loop.
      for (std::size_t k = 0; k < slots && !failed; ++k) {
        SlotProc& proc = procs[k];
        if (proc.pid < 0) continue;
        int status = 0;
        const pid_t r = ::waitpid(proc.pid, &status, WNOHANG);
        if (r == 0) continue;  // still running

        monitor.stop(k);
        proc.pid = -1;
        WorkerExit we;
        we.shard = k;
        if (r < 0) {
          we.exit_code = 126;  // lost track of the child: treat as failed
        } else if (WIFEXITED(status)) {
          we.exit_code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          we.term_signal = WTERMSIG(status);
        } else {
          we.exit_code = 126;
        }
        report.workers.push_back(we);
        obs::instant("shard", we.ok() ? "worker.drained" : "worker.died",
                     "slot", static_cast<std::int64_t>(k), "code",
                     we.term_signal != 0
                         ? static_cast<std::int64_t>(-we.term_signal)
                         : static_cast<std::int64_t>(we.exit_code));

        if (we.ok()) {
          // Lease drained; go steal the biggest live tail or retire.
          ORACLE_LOG_INFO(strfmt("worker slot %zu drained its lease", k));
          table.mark_drained(k);
          if (!try_steal(k)) proc.done = true;
          continue;
        }

        // The prime suspect for the death: the job at the committed
        // frontier — the first one the respawn would retry. Dying
        // max_restarts times (but never fewer than twice — one death is
        // coincidence, not conviction) on the same job convicts the job,
        // not the slot: it is quarantined (durably recorded + skipped
        // everywhere) and the slot's restart budget is restored.
        bool quarantined_now = false;
        if (!table.drained(k) && options.max_restarts > 0) {
          const Lease& lease = table.lease(k);
          const std::size_t frontier = committed_frontier(k);
          if (frontier < lease.end) {
            const std::uint64_t h = queue.job(frontier).content_hash;
            const std::size_t convict =
                std::max<std::size_t>(2, options.max_restarts);
            if (++suspect_deaths[h] >= convict) {
              append_quarantine_entry(qpath, {h, frontier});
              canonical_done.insert(h);  // advances every frontier past it
              ++report.quarantined;
              quarantined_now = true;
              ORACLE_LOG_WARN(strfmt(
                  "job %zu (hash %016llx) killed its worker %zu time(s); "
                  "quarantined (re-run with --resume --retry-quarantined "
                  "to retry it)",
                  frontier, static_cast<unsigned long long>(h),
                  options.max_restarts));
              obs::instant("shard", "job.quarantined", "index",
                           static_cast<std::int64_t>(frontier), "slot",
                           static_cast<std::int64_t>(k));
            }
          }
        }

        if (quarantined_now) {
          // The poison job is out of the lease now; give the slot a clean
          // budget for whatever legitimately remains.
          proc.restarts = 0;
          ++report.restarts;
          spawn_slot(k);
        } else if (proc.restarts < options.max_restarts) {
          // Crash (or heartbeat SIGKILL): respawn over the same lease —
          // the slot store/checkpoint keep a durable prefix, so the
          // respawned worker skips straight to the first missing job.
          ORACLE_LOG_WARN(strfmt(
              "worker slot %zu died (%s %d); respawning (%zu/%zu)", k,
              we.term_signal != 0 ? "signal" : "exit code",
              we.term_signal != 0 ? we.term_signal : we.exit_code,
              proc.restarts + 1, options.max_restarts));
          ++proc.restarts;
          ++report.restarts;
          spawn_slot(k);
        } else {
          ORACLE_LOG_ERROR(strfmt(
              "worker slot %zu exhausted its restart budget (%zu); "
              "aborting (state kept for --resume)",
              k, options.max_restarts));
          failed = true;  // budget exhausted: abort, keep state for resume
        }
      }
      if (failed) break;

      const bool any_live = std::any_of(
          procs.begin(), procs.end(),
          [](const SlotProc& p) { return p.pid >= 0; });
      if (!any_live) break;

      if (stall_detection) {
        const auto now = Clock::now();
        for (std::size_t k = 0; k < slots; ++k) {
          if (procs[k].pid < 0 || procs[k].kill_sent) continue;
          const auto mtime =
              util::file_mtime_ns(worker_heartbeat_path(options.out, k, slots));
          const auto interval = monitor.observe(k, mtime.value_or(-1), now);
          if (options.adaptive_heartbeat) {
            if (interval) adaptive.record(*interval);
            const double t = adaptive.timeout_seconds();
            if (std::isfinite(t))
              monitor.set_timeout(std::chrono::nanoseconds(
                  static_cast<std::int64_t>(t * 1e9)));
          }
          if (monitor.stale(k, now)) {
            // Wedged worker: no checkpoint progress for a full timeout.
            // SIGKILL and let the reap path above restart it.
            ORACLE_LOG_WARN(strfmt(
                "worker slot %zu heartbeat stale (%.1fs); sending SIGKILL",
                k, monitor.age_seconds(k, now)));
            obs::instant("shard", "worker.stale_kill", "slot",
                         static_cast<std::int64_t>(k));
            ::kill(procs[k].pid, SIGKILL);
            procs[k].kill_sent = true;
          }
        }
      }

      if (!options.status_path.empty()) {
        const auto now = Clock::now();
        if (now - last_status >=
            std::chrono::milliseconds(
                std::max<std::uint32_t>(options.status_interval_ms, 1))) {
          last_status = now;
          write_status("running");
        }
      }

      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<std::uint32_t>(options.poll_ms, 1)));
    }
  } catch (...) {
    kill_all_live();
    throw;
  }

  if (failed) {
    // Leave every slot store in place (merge skipped) so --resume can
    // converge later; live workers must die now or they would race the
    // resume's respawns on the same stores.
    kill_all_live();
    write_status("failed");
    return report;
  }

  ORACLE_ASSERT(table.all_drained());
  write_status("merging");
  {
    obs::Span merge_span("shard", "merge");
    ShardMerger merger;
    if (options.resume) merger.add_store(options.out);
    for (std::size_t k = 0; k < slots; ++k)
      merger.add_store(worker_store_path(options.out, k, slots));
    report.merge = merger.merge_to(options.out);
    report.merged = true;
  }
  ORACLE_LOG_INFO(strfmt(
      "merged %zu record(s) into %s (%zu duplicate(s) dropped)",
      report.merge.records, options.out.c_str(),
      report.merge.duplicates_dropped));
  write_status("done");

  if (!options.keep_shard_stores) {
    for (std::size_t k = 0; k < slots; ++k)
      for (const auto& f : slot_files(k)) util::remove_file(f);
  }
  return report;
}

// ------------------------------------------- lease-server supervisor --
//
// With --lease-server the parent sheds most of its supervisor duties:
// leases, steals, fencing, and stall expiry live in the (possibly
// remote) lease service. What remains here is process custody — spawn
// one lease-client worker per slot, reap and respawn crashed ones,
// SIGKILL wedged ones as a local belt-and-braces (the server would
// expire them anyway, but only this parent can free the wedged PID) —
// plus the final completeness check and merge.

ShardRunReport run_lease_server_processes(
    const std::vector<core::ExperimentConfig>& configs,
    const ShardRunOptions& options) {
  using Clock = std::chrono::steady_clock;

  JobQueue queue(configs);
  if (options.master_seed != 0) queue.derive_seeds(options.master_seed);
  const std::size_t n = queue.size();

  ShardRunReport report;
  report.planned_jobs = n;
  const std::size_t slots =
      std::max<std::size_t>(1, std::min(options.workers, n));
  report.shards_launched = slots;

  auto slot_files = [&](std::size_t k) {
    return std::vector<std::string>{
        worker_store_path(options.out, k, slots),
        Checkpoint::default_path(worker_store_path(options.out, k, slots)),
        worker_heartbeat_path(options.out, k, slots)};
  };
  if (!options.resume) {
    for (std::size_t k = 0; k < slots; ++k) {
      for (const auto& f : slot_files(k)) util::remove_file(f);
      if (!options.trace_path.empty())
        util::remove_file(obs::worker_trace_path(options.trace_path, k, slots));
    }
  }

  auto make_argv = [&](std::size_t k) {
    std::vector<std::string> argv;
    argv.push_back(options.exec_path);
    argv.insert(argv.end(), options.worker_args.begin(),
                options.worker_args.end());
    argv.push_back("--worker-slot");
    argv.push_back(strfmt("%zu/%zu", k, slots));
    argv.push_back("--lease-server");
    argv.push_back(options.lease_server);
    if (options.resume) argv.push_back("--resume");
    return argv;
  };

  std::vector<SlotProc> procs(slots);
  AdaptiveTimeout adaptive(options.adaptive_config);
  const bool stall_detection =
      options.adaptive_heartbeat || options.heartbeat_ms > 0;
  HeartbeatMonitor monitor(
      options.adaptive_heartbeat
          ? std::chrono::nanoseconds(std::chrono::hours(24 * 365))
          : std::chrono::nanoseconds(
                std::chrono::milliseconds(options.heartbeat_ms)));

  auto spawn_slot = [&](std::size_t k) {
    procs[k].pid = spawn_one(make_argv(k));
    procs[k].kill_sent = false;
    procs[k].done = false;
    monitor.start(k, Clock::now());
    obs::instant("shard", "worker.spawn", "slot",
                 static_cast<std::int64_t>(k), "restarts",
                 static_cast<std::int64_t>(procs[k].restarts));
    ORACLE_LOG_INFO(strfmt(
        "worker slot %zu spawned (pid %d, leases from %s)", k,
        static_cast<int>(procs[k].pid), options.lease_server.c_str()));
  };

  auto kill_all_live = [&] {
    for (auto& proc : procs) {
      if (proc.pid <= 0) continue;
      ::kill(proc.pid, SIGKILL);
      int status = 0;
      ::waitpid(proc.pid, &status, 0);
      proc.pid = -1;
    }
  };

  const auto run_start = Clock::now();
  auto last_status = run_start;
  // Job-level progress lives in the server's status file; this one covers
  // what only the parent knows — process custody per slot.
  auto write_status = [&](const std::string& phase) {
    if (options.status_path.empty()) return;
    const auto now = Clock::now();
    obs::StatusSnapshot st;
    st.phase = phase;
    st.jobs_total = n;
    for (std::size_t k = 0; k < slots; ++k) {
      obs::WorkerStatus w;
      w.slot = k;
      w.live = procs[k].pid >= 0;
      w.restarts = procs[k].restarts;
      w.heartbeat_age_s = monitor.age_seconds(k, now);
      st.workers.push_back(w);
    }
    st.elapsed_seconds =
        std::chrono::duration<double>(now - run_start).count();
    st.restarts = report.restarts;
    obs::write_status_file(options.status_path, st);
  };

  bool failed = false;
  try {
    for (std::size_t k = 0; k < slots; ++k) spawn_slot(k);
    write_status("running");

    while (true) {
      for (std::size_t k = 0; k < slots && !failed; ++k) {
        SlotProc& proc = procs[k];
        if (proc.pid < 0) continue;
        int status = 0;
        const pid_t r = ::waitpid(proc.pid, &status, WNOHANG);
        if (r == 0) continue;

        monitor.stop(k);
        proc.pid = -1;
        WorkerExit we;
        we.shard = k;
        if (r < 0) {
          we.exit_code = 126;
        } else if (WIFEXITED(status)) {
          we.exit_code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          we.term_signal = WTERMSIG(status);
        } else {
          we.exit_code = 126;
        }
        report.workers.push_back(we);
        obs::instant("shard", we.ok() ? "worker.drained" : "worker.died",
                     "slot", static_cast<std::int64_t>(k), "code",
                     we.term_signal != 0
                         ? static_cast<std::int64_t>(-we.term_signal)
                         : static_cast<std::int64_t>(we.exit_code));

        if (we.ok()) {
          // The server said done; nothing left for this slot to do.
          proc.done = true;
        } else if (we.term_signal == 0 &&
                   we.exit_code == kOrphanedExitCode) {
          // The worker lost the server past its retry budget. Its durable
          // prefix is safe; respawning would only orphan again, so note it
          // and let the completeness check decide whether the rest of the
          // fleet covered the gap.
          ORACLE_LOG_WARN(strfmt(
              "worker slot %zu orphaned (lease server unreachable); "
              "not respawning",
              k));
          ++report.orphaned;
          proc.done = true;
        } else if (proc.restarts < options.max_restarts) {
          ORACLE_LOG_WARN(strfmt(
              "worker slot %zu died (%s %d); respawning (%zu/%zu)", k,
              we.term_signal != 0 ? "signal" : "exit code",
              we.term_signal != 0 ? we.term_signal : we.exit_code,
              proc.restarts + 1, options.max_restarts));
          ++proc.restarts;
          ++report.restarts;
          spawn_slot(k);
        } else {
          ORACLE_LOG_ERROR(strfmt(
              "worker slot %zu exhausted its restart budget (%zu); "
              "aborting (state kept for --resume)",
              k, options.max_restarts));
          failed = true;
        }
      }
      if (failed) break;

      const bool any_live = std::any_of(
          procs.begin(), procs.end(),
          [](const SlotProc& p) { return p.pid >= 0; });
      if (!any_live) break;

      if (stall_detection) {
        const auto now = Clock::now();
        for (std::size_t k = 0; k < slots; ++k) {
          if (procs[k].pid < 0 || procs[k].kill_sent) continue;
          const auto mtime =
              util::file_mtime_ns(worker_heartbeat_path(options.out, k, slots));
          const auto interval = monitor.observe(k, mtime.value_or(-1), now);
          if (options.adaptive_heartbeat) {
            if (interval) adaptive.record(*interval);
            const double t = adaptive.timeout_seconds();
            if (std::isfinite(t))
              monitor.set_timeout(std::chrono::nanoseconds(
                  static_cast<std::int64_t>(t * 1e9)));
          }
          if (monitor.stale(k, now)) {
            ORACLE_LOG_WARN(strfmt(
                "worker slot %zu heartbeat stale (%.1fs); sending SIGKILL",
                k, monitor.age_seconds(k, now)));
            obs::instant("shard", "worker.stale_kill", "slot",
                         static_cast<std::int64_t>(k));
            ::kill(procs[k].pid, SIGKILL);
            procs[k].kill_sent = true;
          }
        }
      }

      if (!options.status_path.empty()) {
        const auto now = Clock::now();
        if (now - last_status >=
            std::chrono::milliseconds(
                std::max<std::uint32_t>(options.status_interval_ms, 1))) {
          last_status = now;
          write_status("running");
        }
      }

      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<std::uint32_t>(options.poll_ms, 1)));
    }
  } catch (...) {
    kill_all_live();
    throw;
  }

  if (failed) {
    kill_all_live();
    write_status("failed");
    return report;
  }

  // Completeness gate: the server's `done` plus orphan exits are not proof
  // that every record landed on *this* host's disks. Merge only when the
  // union of the canonical + slot stores covers the whole sweep; anything
  // short of that keeps the state for --resume.
  {
    std::unordered_set<std::uint64_t> have;
    if (options.resume) {
      const auto canon = load_completed_hashes(options.out);
      have.insert(canon.begin(), canon.end());
    }
    for (std::size_t k = 0; k < slots; ++k) {
      const auto hashes =
          load_completed_hashes(worker_store_path(options.out, k, slots));
      have.insert(hashes.begin(), hashes.end());
    }
    std::size_t missing = 0;
    for (std::size_t p = 0; p < n; ++p)
      if (!have.contains(queue.job(p).content_hash)) ++missing;
    if (missing > 0) {
      ORACLE_LOG_ERROR(strfmt(
          "lease-server run incomplete: %zu job(s) missing from local "
          "stores (orphaned workers? wrong server?); merge skipped — "
          "re-run with --resume",
          missing));
      write_status("failed");
      return report;
    }
  }

  write_status("merging");
  {
    obs::Span merge_span("shard", "merge");
    ShardMerger merger;
    if (options.resume) merger.add_store(options.out);
    for (std::size_t k = 0; k < slots; ++k)
      merger.add_store(worker_store_path(options.out, k, slots));
    report.merge = merger.merge_to(options.out);
    report.merged = true;
  }
  ORACLE_LOG_INFO(strfmt(
      "merged %zu record(s) into %s (%zu duplicate(s) dropped)",
      report.merge.records, options.out.c_str(),
      report.merge.duplicates_dropped));
  write_status("done");

  if (!options.keep_shard_stores) {
    for (std::size_t k = 0; k < slots; ++k)
      for (const auto& f : slot_files(k)) util::remove_file(f);
  }
  return report;
}

}  // namespace

#endif

// ------------------------------------------------- run_sharded_processes --

bool ShardRunReport::ok() const noexcept {
  // The merge is the completion criterion. Static runs only merge when
  // every worker exited cleanly; steal-mode runs may carry failed exits
  // from workers the supervisor killed and successfully restarted — the
  // run still converged.
  return merged;
}

std::string ShardRunReport::summary() const {
  std::size_t failed = 0;
  for (const auto& w : workers)
    if (!w.ok()) ++failed;
  std::string s = strfmt(
      "%zu jobs over %zu worker(s): %zu launched, %zu shard(s) already "
      "complete",
      planned_jobs, shards_launched + shards_skipped, shards_launched,
      shards_skipped);
  if (steals > 0) s += strfmt(", %zu lease(s) stolen", steals);
  if (restarts > 0) s += strfmt(", %zu worker(s) auto-restarted", restarts);
  if (quarantined > 0)
    s += strfmt(", %zu poison job(s) quarantined", quarantined);
  if (orphaned > 0)
    s += strfmt(", %zu worker(s) orphaned by the lease server", orphaned);
  if (failed > 0) s += strfmt(", %zu worker exit(s) failed", failed);
  if (merged)
    s += strfmt("; merged %zu record(s) (%zu duplicate(s) dropped)",
                merge.records, merge.duplicates_dropped);
  else
    s += "; merge skipped (re-run with --resume to finish)";
  return s;
}

ShardRunReport run_sharded_processes(
    const std::vector<core::ExperimentConfig>& configs,
    const ShardRunOptions& options) {
  ORACLE_REQUIRE(!options.out.empty(),
                 "sharded runs need a canonical --out store");
  ORACLE_REQUIRE(options.workers >= 1, "--workers must be >= 1");
  ORACLE_REQUIRE(!options.exec_path.empty(),
                 "sharded runs need the worker executable path");
  ORACLE_REQUIRE(!configs.empty(), "sharded run over an empty sweep");

  if (!options.lease_server.empty())
    return run_lease_server_processes(configs, options);
  if (options.steal) return run_stealing_processes(configs, options);

  JobQueue queue(configs);
  if (options.master_seed != 0) queue.derive_seeds(options.master_seed);
  const ShardPlan plan(queue, options.workers);

  ShardRunReport report;
  report.planned_jobs = plan.total_jobs();

  // Which shards need a worker? Fresh runs: every shard with jobs (their
  // workers truncate any stale per-shard state). Resume: only shards with
  // jobs not already durable in their own store/checkpoint or in the
  // previously merged canonical store.
  std::vector<std::size_t> to_run;
  if (options.resume) {
    to_run = plan.incomplete_shards(options.out,
                                    load_completed_hashes(options.out));
  } else {
    for (std::size_t i = 0; i < plan.count(); ++i)
      if (!plan.shard_hashes(i).empty()) to_run.push_back(i);
  }
  std::size_t nonempty = 0;
  for (std::size_t i = 0; i < plan.count(); ++i)
    if (!plan.shard_hashes(i).empty()) ++nonempty;
  report.shards_launched = to_run.size();
  report.shards_skipped = nonempty - to_run.size();

  // A fresh run must not inherit stale per-shard state from an older,
  // different sweep: clear every shard store/checkpoint of this layout up
  // front (workers would truncate their own anyway; shards that get no
  // worker this time must not leak stale records into the merge).
  if (!options.resume) {
    for (std::size_t i = 0; i < plan.count(); ++i) {
      const std::string store = shard_store_path(options.out, i, plan.count());
      util::remove_file(store);
      util::remove_file(Checkpoint::default_path(store));
    }
  }

  if (!to_run.empty()) {
    std::vector<std::vector<std::string>> argvs;
    argvs.reserve(to_run.size());
    for (const std::size_t shard : to_run) {
      std::vector<std::string> argv;
      argv.push_back(options.exec_path);
      argv.insert(argv.end(), options.worker_args.begin(),
                  options.worker_args.end());
      argv.push_back("--shard");
      argv.push_back(ShardSpec{shard, plan.count()}.to_string());
      if (options.resume) argv.push_back("--resume");
      argvs.push_back(std::move(argv));
    }
    report.workers = spawn_and_wait(argvs, to_run);
  }

  for (const auto& w : report.workers)
    if (!w.ok()) return report;  // merge skipped; every store stays put

  // All workers finished cleanly: fold the per-shard stores (plus, when
  // resuming, the previously merged canonical store) into the canonical
  // store. A fresh run replaces the canonical store outright, mirroring
  // the serial engine's truncate-on-fresh-run semantics.
  ShardMerger merger;
  if (options.resume) merger.add_store(options.out);
  for (std::size_t i = 0; i < plan.count(); ++i)
    merger.add_store(shard_store_path(options.out, i, plan.count()));
  report.merge = merger.merge_to(options.out);
  report.merged = true;

  if (!options.keep_shard_stores) {
    for (std::size_t i = 0; i < plan.count(); ++i) {
      const std::string store = shard_store_path(options.out, i, plan.count());
      util::remove_file(store);
      util::remove_file(Checkpoint::default_path(store));
    }
  }
  return report;
}

}  // namespace oracle::exp
