#pragma once
// Crash-safe distributed sharding: run one sweep as N cooperating worker
// *processes* over one canonical result store.
//
// The model:
//   - Every job is assigned to a shard by content hash modulo shard count
//     (shard_of_hash). The slice is a pure function of job identity, so it
//     is stable across invocations, resumes, and hosts.
//   - Each worker process runs its slice into a private per-shard JSONL
//     store + checkpoint (shard_store_path), using the ordinary batch
//     engine — per-record durability included, so a SIGKILLed worker
//     leaves a clean, resumable prefix and can never corrupt any other
//     shard's state.
//   - When every worker has exited cleanly, the parent merges the shard
//     stores (plus any previously merged canonical store) into the
//     canonical store *in job order* via ShardMerger: the merged bytes are
//     identical to what a serial run would have produced.
//   - A killed/failed worker leaves the merge unperformed; a later
//     --resume re-runs only the incomplete shards' incomplete jobs
//     (ShardPlan::incomplete_shards + the per-shard checkpoint protocol)
//     and then merges, converging to the same byte-identical store.
//
// run_sharded_processes() drives the whole protocol by re-executing the
// current binary with `--shard i/N` per worker (self-exec); the pieces
// (ShardSpec, ShardPlan, ShardMerger, spawn_and_wait) are exposed for
// custom launchers — e.g. starting workers on different hosts and merging
// their stores with `oracle_batch aggregate <store>...`.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"
#include "exp/executor.hpp"

namespace oracle::exp {

class JobQueue;

/// One worker's identity inside a sharded run: shard `index` of `count`.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  /// Parse "i/N" (e.g. "2/4"); nullopt on malformed input or i >= N.
  static std::optional<ShardSpec> parse(const std::string& text);

  std::string to_string() const;  ///< "i/N"
};

/// The distributed sharding rule: which shard of `count` owns this job.
inline std::size_t shard_of_hash(std::uint64_t content_hash,
                                 std::size_t count) noexcept {
  return count <= 1 ? 0 : static_cast<std::size_t>(content_hash % count);
}

/// Per-shard private store path: "<canonical>.shard<i>of<N>". The shard
/// checkpoint sits beside it at Checkpoint::default_path of this.
std::string shard_store_path(const std::string& canonical_store,
                             std::size_t index, std::size_t count);

// ------------------------------------------------------------------------
// Work-stealing lease protocol (the `--steal` mode of `oracle_batch run`).
//
// Instead of the static hash-modulo partition, the parent keeps the whole
// job order [0, N) and hands each of W supervised worker *slots* a
// contiguous job-range lease through a small control file the worker
// re-reads before every job. Three files per slot, all derived from the
// canonical store path:
//   - worker_store_path:     private JSONL store (+ checkpoint beside it)
//   - worker_lease_path:     the lease, rewritten atomically by the parent
//   - worker_heartbeat_path: mtime-touched by the worker per checkpoint
//     record; the parent treats an unchanged mtime as "wedged" and reaps
// When a worker drains its lease it exits 0; the parent then steals the
// unclaimed tail of the most-loaded live lease for it and respawns it. A
// crashed (or heartbeat-reaped) worker is respawned over the same lease —
// its store/checkpoint keep a durable prefix, so the respawn skips what is
// already done. Steal races can run a job twice on two slots; that is
// harmless: the simulator is deterministic, so the duplicate records are
// byte-identical and the merge dedups them by content hash in job order.
// ------------------------------------------------------------------------

/// Worker-slot file paths, "<canonical>.{worker,lease,hb}<k>of<W>".
std::string worker_store_path(const std::string& canonical_store,
                              std::size_t slot, std::size_t count);
std::string worker_lease_path(const std::string& canonical_store,
                              std::size_t slot, std::size_t count);
std::string worker_heartbeat_path(const std::string& canonical_store,
                                  std::size_t slot, std::size_t count);

/// One contiguous job-range lease [begin, end) over sweep indices. The
/// generation increments on every parent rewrite, so a worker can tell a
/// reissued lease from the one it started with.
struct Lease {
  std::uint64_t generation = 0;
  std::size_t begin = 0;
  std::size_t end = 0;

  bool empty() const noexcept { return begin >= end; }
  std::size_t size() const noexcept { return empty() ? 0 : end - begin; }
};

/// Serialize `lease` into its one-line control file, atomically (tmp +
/// rename): a worker mid-read sees the whole old lease or the whole new
/// one, never a torn line. Writes the checksummed v2 format
/// ("v2 <gen> <begin> <end> <cksum>"). Throws SimulationError on I/O
/// failure.
void write_lease_file(const std::string& path, const Lease& lease);

/// Parse a lease control file (v1 or checksummed v2); nullopt when missing
/// or malformed (a worker treats that as an empty lease and exits
/// cleanly). A file that *exists* but fails to parse — a torn/partial
/// write observed mid-rename on filesystems without atomic rename — bumps
/// the process-wide torn-read counter instead of asserting.
std::optional<Lease> read_lease_file(const std::string& path);

/// Process-wide count of lease files that existed but failed to parse.
std::size_t lease_file_torn_reads() noexcept;

/// The parent's lease bookkeeping: every job position in [0, jobs) belongs
/// to exactly one lease — live (a worker owns it) or retired (drained).
/// Steals move the tail of a live lease onto a drained slot; the class
/// never creates overlap, so the property test can assert the partition
/// invariant after any steal sequence.
class LeaseTable {
 public:
  /// Balanced contiguous partition of [0, jobs) over `slots` leases (slot
  /// i gets [i*jobs/slots, (i+1)*jobs/slots)). slots >= 1.
  LeaseTable(std::size_t jobs, std::size_t slots);

  std::size_t jobs() const noexcept { return jobs_; }
  std::size_t slots() const noexcept { return slots_.size(); }
  const Lease& lease(std::size_t slot) const { return slots_[slot].current; }
  bool drained(std::size_t slot) const { return slots_[slot].drained; }

  /// The slot's worker exited 0: its current lease is fully executed.
  void mark_drained(std::size_t slot);
  bool all_drained() const;

  /// Move [split, victim.end) from the live `victim` lease to the drained
  /// `thief` slot; both generations bump. Returns the thief's new lease,
  /// or nullopt when the steal is invalid (victim drained or empty split
  /// range, thief still live, split outside (victim.begin, victim.end)).
  std::optional<Lease> steal(std::size_t victim, std::size_t thief,
                             std::size_t split);

  /// Take over a dead/expired victim's lease: [begin, frontier) is
  /// durably committed and retires; the drained `thief` slot gets
  /// [frontier, end); the victim is left with an empty, drained lease
  /// (its fencing epoch was bumped by the caller, so a resurrected victim
  /// can no longer commit into the moved range). frontier == end retires
  /// the whole lease (everything was committed) and returns nullopt with
  /// the victim drained; other invalid inputs (victim drained, thief
  /// live, frontier outside [begin, end]) return nullopt with no change.
  std::optional<Lease> reassign(std::size_t victim, std::size_t thief,
                                std::size_t frontier);

  /// Partition invariant: every job position [0, jobs) is covered by
  /// exactly one live or retired lease. Always true by construction; the
  /// property tests drive random steal sequences against it.
  bool partitions_queue() const;

 private:
  struct Slot {
    Lease current;
    bool drained = false;
  };
  std::vector<Slot> slots_;
  /// Drained ranges a thief abandoned when it took a new lease.
  std::vector<std::pair<std::size_t, std::size_t>> retired_;
  std::size_t jobs_ = 0;
};

/// Decides when a supervised worker is dead from heartbeat observations.
/// Deliberately free of clocks and filesystems: the caller feeds in the
/// observed heartbeat value (an mtime, a counter — anything that changes
/// on progress) plus a steady-clock timestamp, and staleness means "the
/// value has not changed for longer than `timeout`". Comparing change
/// intervals on the caller's steady clock makes the verdict immune to
/// wall-clock skew between parent and filesystem, and makes the class
/// deterministic to unit-test.
class HeartbeatMonitor {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit HeartbeatMonitor(std::chrono::nanoseconds timeout)
      : timeout_(timeout) {}

  /// (Re)arm the slot at spawn time: the spawn instant counts as the last
  /// sign of life, so a worker that never writes its first heartbeat still
  /// times out `timeout` after launch.
  void start(std::size_t slot, TimePoint now);

  /// Feed one observation of the slot's heartbeat value (e.g. the
  /// heartbeat file's mtime in ns, or any sentinel for "missing"). A
  /// changed value resets the slot's staleness clock; when it does, the
  /// seconds since the previous change are returned — the inter-progress
  /// interval that feeds the adaptive timeout.
  std::optional<double> observe(std::size_t slot, std::int64_t value,
                                TimePoint now);

  /// Replace the staleness threshold (adaptive mode re-tunes it online).
  void set_timeout(std::chrono::nanoseconds timeout) { timeout_ = timeout; }

  /// True when the slot is armed and its value last changed more than
  /// `timeout` ago. Never true for unarmed slots.
  bool stale(std::size_t slot, TimePoint now) const;

  /// Seconds since the slot's heartbeat value last changed; -1 for slots
  /// that are not armed. Feeds the live status file.
  double age_seconds(std::size_t slot, TimePoint now) const;

  /// Disarm a reaped slot (stale() returns false until the next start).
  void stop(std::size_t slot);

 private:
  struct State {
    std::int64_t value = -1;
    TimePoint last_change{};
    bool armed = false;
  };
  std::unordered_map<std::size_t, State> slots_;
  std::chrono::nanoseconds timeout_;
};

struct AdaptiveTimeoutConfig {
  double multiplier = 8.0;    ///< timeout >= p99 * multiplier
  double floor_s = 3.0;       ///< never reap faster than this
  double cap_s = 600.0;       ///< never wait longer than this
  std::size_t window = 512;   ///< sliding sample window for the p99
};

/// Replaces the fixed --heartbeat-ms guess: a staleness timeout derived
/// from observed job wall times. Seeded from a prior run's
/// BatchReport::job_wall p99 and updated online from per-job samples
/// (committed job walls in server mode, inter-heartbeat intervals in file
/// mode), it tracks the sweep's actual pace:
///
///   timeout = clamp(max(p99 * multiplier, max_sample * 2), floor, cap)
///
/// The max_sample * 2 term is the whale guard — a healthy job twice as
/// slow as the slowest ever seen is still given time — and with *no*
/// samples the timeout is infinite (never reap on pure guesswork).
class AdaptiveTimeout {
 public:
  explicit AdaptiveTimeout(AdaptiveTimeoutConfig config = {})
      : config_(config) {}

  /// Seed from a previous run's job-wall distribution (no-op when empty).
  void seed(const DurationStats& stats);

  /// Feed one observed job wall / progress interval (<= 0 is ignored).
  void record(double seconds);

  std::size_t samples() const noexcept { return count_; }

  /// Current staleness threshold in seconds; +infinity until the first
  /// sample arrives.
  double timeout_seconds() const;

 private:
  AdaptiveTimeoutConfig config_;
  std::vector<double> window_;   ///< ring buffer of recent samples
  std::size_t next_ = 0;         ///< ring write position
  std::size_t count_ = 0;        ///< total samples ever recorded
  double max_sample_ = 0.0;      ///< all-time max (whale guard)
};

/// The parent's view of a sharded run: which content hashes each shard is
/// responsible for, and which shards still have work left on disk.
class ShardPlan {
 public:
  /// Plan `count` shards over the (seed-derived, unfiltered) queue.
  ShardPlan(const JobQueue& queue, std::size_t count);

  std::size_t count() const noexcept { return hashes_.size(); }
  std::size_t total_jobs() const noexcept { return total_; }

  /// Content hashes owned by shard `i`, in job order.
  const std::vector<std::uint64_t>& shard_hashes(std::size_t i) const {
    return hashes_[i];
  }

  /// Shards that still have jobs not completed by (a) their own shard
  /// store/checkpoint under `canonical_store` or (b) the `already_done`
  /// set (typically the canonical store's hashes). Empty shards are never
  /// reported. This is the crash-detection step of --resume: only these
  /// shards get a worker process.
  std::vector<std::size_t> incomplete_shards(
      const std::string& canonical_store,
      const std::unordered_set<std::uint64_t>& already_done = {}) const;

 private:
  std::vector<std::vector<std::uint64_t>> hashes_;  // [shard][job order]
  std::size_t total_ = 0;
};

/// Outcome of merging shard stores into the canonical store.
struct MergeReport {
  std::size_t stores_read = 0;       ///< input stores that existed
  std::size_t records = 0;           ///< records written to the canonical store
  std::size_t duplicates_dropped = 0;///< same content hash seen twice
  std::size_t corrupt_lines = 0;     ///< unparseable lines skipped
};

/// Merges per-shard (or per-host) JSONL stores into one canonical store in
/// ascending job-index order. Records are copied byte-for-byte and the
/// batch engine writes them deterministically, so the merged store is
/// byte-identical to a serial run over the same sweep. The write is
/// atomic (tmp file + rename): a crash mid-merge leaves the previous
/// canonical store intact and every input store untouched.
class ShardMerger {
 public:
  /// Queue a store for merging; missing files are skipped silently (a
  /// shard with zero planned jobs never creates its store).
  void add_store(const std::string& path);

  /// Merge everything into `canonical_path` (and write the canonical
  /// checkpoint beside it, hashes in job order, so a later single-process
  /// --resume over the canonical store works unchanged). Throws
  /// SimulationError on I/O failure.
  MergeReport merge_to(const std::string& canonical_path);

 private:
  struct Record {
    std::uint64_t job_index = 0;
    std::uint64_t content_hash = 0;
    std::string line;
  };
  std::vector<Record> records_;
  MergeReport report_;
};

/// Exit status of one spawned worker process.
struct WorkerExit {
  std::size_t shard = 0;   ///< shard index the worker ran
  int exit_code = -1;      ///< exit status when it exited normally
  int term_signal = 0;     ///< nonzero when the worker died of a signal
  bool ok() const noexcept { return term_signal == 0 && exit_code == 0; }
};

/// Fork+exec one process per argv vector and wait for all of them.
/// argvs[k] is the full argument vector (argv[0] = executable path) for
/// worker k; `shards[k]` labels it in the result. POSIX only; throws
/// SimulationError elsewhere or when spawning fails.
std::vector<WorkerExit> spawn_and_wait(
    const std::vector<std::vector<std::string>>& argvs,
    const std::vector<std::size_t>& shards);

/// Resolve the path of the currently running executable for self-exec
/// (/proc/self/exe on Linux, falling back to argv0).
std::string self_exec_path(const std::string& argv0);

struct ShardRunOptions {
  std::size_t workers = 2;     ///< worker process count (= shard/slot count)
  std::string out;             ///< canonical JSONL store path (required)
  bool resume = false;         ///< re-run only dead shards' incomplete jobs
  bool keep_shard_stores = false;  ///< keep per-shard stores after merging
  std::uint64_t master_seed = 0;   ///< forwarded to each worker's queue

  /// Self-exec recipe: executable plus the sweep-defining arguments. The
  /// parent appends "--shard i/N" (static) or "--worker-slot k/W" (steal
  /// mode), plus "--resume" when resuming, per worker; the worker rebuilds
  /// the identical sweep, slices it, and runs only its share.
  std::string exec_path;
  std::vector<std::string> worker_args;

  // --- work-stealing supervisor (steal = true) ---

  /// Supervise workers over dynamic job-range leases with work stealing
  /// instead of the fixed hash-modulo partition. Single-host only (the
  /// parent must share a filesystem and PID namespace with its workers);
  /// keep the static `--shard i/N` layout for cross-host runs.
  bool steal = false;

  /// Heartbeat timeout: a worker whose heartbeat file mtime is unchanged
  /// for this long is SIGKILLed and respawned (counts against
  /// max_restarts). 0 disables stall detection (crashes are still caught
  /// by the exit status). Must exceed the longest single job.
  std::uint32_t heartbeat_ms = 0;

  /// Adaptive stall detection (ignores heartbeat_ms): the timeout is
  /// derived online from observed inter-heartbeat intervals via
  /// AdaptiveTimeout, so no per-sweep tuning is needed and a healthy slow
  /// whale job is never reaped. The CLI turns this on by default in steal
  /// mode when --heartbeat-ms is not given.
  bool adaptive_heartbeat = false;
  AdaptiveTimeoutConfig adaptive_config;

  /// Per-slot respawn budget for crashed/stalled workers. Exhausting it
  /// aborts the run (remaining workers are killed, stores kept, merge
  /// skipped) so a --resume can pick up later. It doubles as the
  /// poison-job threshold: a job whose worker dies on it this many times
  /// is quarantined (skipped + recorded) instead of burning the budget.
  std::size_t max_restarts = 2;

  /// With resume: forget previous quarantine verdicts (delete the
  /// quarantine file) so the recorded poison jobs get another chance.
  bool retry_quarantined = false;

  /// Cross-host lease service ("host:port", empty = single-host file
  /// protocol). The parent then only spawns/reaps/merges; leases, steals,
  /// fencing, and stall expiry live in the server (`oracle_batch
  /// serve-leases`), which must already be running and must have been
  /// started over the same sweep with the same slot count.
  std::string lease_server;

  /// Supervisor poll period (reap + heartbeat checks).
  std::uint32_t poll_ms = 25;

  /// Don't steal tails smaller than this. The default of 1 is right for
  /// heavy-tailed sweeps (one whale job is worth a process spawn); raise
  /// it when jobs are uniformly tiny and end-of-run spawns outweigh the
  /// balance gain.
  std::size_t min_steal_jobs = 1;

  /// When non-empty, the supervisor atomically rewrites this file with a
  /// one-line JSON obs::StatusSnapshot (jobs done/total, rate, ETA,
  /// per-worker lease frontier + heartbeat age, steals, restarts) every
  /// `status_interval_ms`, and a final "done"/"failed" snapshot at exit.
  /// Readers never see a torn file (tmp + rename).
  std::string status_path;
  std::uint32_t status_interval_ms = 500;

  /// Trace base path of this run (the CLI's --trace value). The
  /// supervisor's own events are buffered by the process-wide tracer (the
  /// CLI enables it and writes "<trace_path>.parent" afterwards); the
  /// supervisor uses the path only to pre-clean stale per-worker trace
  /// files ("<trace_path>.<k>of<W>") on a fresh run — workers append.
  std::string trace_path;
};

struct ShardRunReport {
  std::size_t planned_jobs = 0;     ///< sweep size (all shards)
  std::size_t shards_launched = 0;  ///< workers actually spawned
  std::size_t shards_skipped = 0;   ///< already complete (resume) or empty
  std::vector<WorkerExit> workers;  ///< one entry per worker process exit
  bool merged = false;              ///< canonical store written
  MergeReport merge;
  std::size_t steals = 0;           ///< leases re-issued to idle workers
  std::size_t restarts = 0;         ///< crashed/stalled workers respawned
  std::size_t quarantined = 0;      ///< poison jobs skipped this run
  std::size_t orphaned = 0;         ///< workers that lost the lease server

  bool ok() const noexcept;
  std::string summary() const;
};

// ---------------------------------------------------------------------
// Poison-job quarantine. When a slot's worker dies repeatedly at the same
// committed frontier, the job at that frontier is the prime suspect;
// after max_restarts deaths (never fewer than two — a single death is
// coincidence, not conviction) it is quarantined — appended (fsynced) to
// "<out>.quarantine", skipped by every worker from then on, and reported
// — instead of burning the whole restart budget and aborting the sweep.
// `--resume --retry-quarantined` clears the file to retry the jobs.
// ---------------------------------------------------------------------

/// "<canonical>.quarantine": one "hash_hex index" line per poisoned job.
std::string quarantine_path(const std::string& canonical_store);

struct QuarantineEntry {
  std::uint64_t content_hash = 0;
  std::size_t job_index = 0;  ///< sweep index, for the report/status file
};

/// Load the quarantine file; missing file or malformed lines (a torn
/// tail) yield an empty/shorter list, never an error.
std::vector<QuarantineEntry> read_quarantine_file(const std::string& path);

/// Append one entry durably (fsynced) so a supervisor crash right after
/// the verdict cannot resurrect the poison job on resume.
void append_quarantine_entry(const std::string& path,
                             const QuarantineEntry& entry);

/// Deterministic fault injection for the supervised-worker process tests:
/// kills or stalls a lease worker on cue, mid-shard. `once_marker` (when
/// non-empty) makes the fault one-shot across respawns — it only fires if
/// the marker file does not exist yet and creates it when firing, so the
/// respawned worker runs clean and the test converges.
struct ShardTestHooks {
  static constexpr std::size_t kOff = ~std::size_t{0};

  /// Die right before job number N (0-based count of jobs this process
  /// has started): the first N jobs are durably committed, then the
  /// worker vanishes without any cleanup.
  std::size_t die_after_n_jobs = kOff;
  bool die_with_sigkill = false;  ///< raise(SIGKILL) instead of _exit(1)

  /// Stall (sleep, no heartbeat) right before job number N — the wedged
  /// worker the heartbeat monitor exists to reap.
  std::size_t stall_after_n_jobs = kOff;
  std::uint32_t stall_ms = 60'000;

  /// Die right before running the job with *sweep index* N — a
  /// deterministic poison job that kills whichever worker picks it up,
  /// every time (unless once_marker limits it): the quarantine scenario.
  std::size_t die_on_job_index = kOff;

  std::string once_marker;  ///< one-shot guard file ("" = fire every time)
};

/// Worker side of the lease protocol (what `oracle_batch run
/// --worker-slot k/W` executes).
struct LeaseWorkerOptions {
  std::string canonical_out;   ///< canonical store (slot files derive from it)
  std::size_t slot = 0;        ///< this worker's slot k
  std::size_t slot_count = 1;  ///< total slots W (sibling-store discovery)
  bool merge_resume = false;   ///< also skip jobs already merged into the
                               ///< canonical store (parent ran --resume)
  std::uint64_t master_seed = 0;
  std::size_t threads = 1;     ///< executor threads inside this worker
  ShardTestHooks hooks;        ///< fault injection (tests only)

  // --- cross-host lease service mode (lease_server non-empty) ---

  /// Lease server address ("host:port"); empty keeps the file protocol.
  std::string lease_server;

  /// Per-request deadline and retry/backoff budget for the lease client.
  /// Exhausting retry_budget consecutive failures orphans the worker: it
  /// keeps its committed prefix durable and exits with the distinct
  /// orphaned status instead of spinning forever.
  std::uint32_t op_timeout_ms = 2'000;
  std::size_t retry_budget = 10;
  std::uint32_t backoff_base_ms = 50;
  std::uint32_t backoff_cap_ms = 2'000;
};

/// Exit status a lease-client worker process uses when orphaned (the
/// server stayed unreachable past the retry budget). Distinct from crash
/// codes so the launcher can tell "server gone, committed prefix durable,
/// do not respawn" from "worker bug, respawn".
constexpr int kOrphanedExitCode = 3;

/// Outcome of a lease-service worker (run_lease_client_worker).
struct LeaseWorkerReport {
  BatchReport batch;          ///< aggregate over every lease it ran
  std::size_t leases_run = 0; ///< leases acquired/stolen and executed
  bool orphaned = false;      ///< lost the server past the retry budget
  bool fenced = false;        ///< a stale epoch stopped this worker
  std::uint64_t retries = 0;    ///< client-side request retries
  std::uint64_t reconnects = 0; ///< TCP reconnects
};

/// Run this slot's current lease: read the lease file, slice the queue to
/// [begin, end), and execute into the slot's private store — always in
/// append/skip-completed mode (the supervisor pre-cleans slot files on a
/// fresh run), re-reading the lease before every job so a parent-side
/// shrink stops the worker at the new end. An empty or missing lease
/// still creates a valid empty store and reports 0 jobs. Returns the
/// slice's batch report.
BatchReport run_lease_worker(const std::vector<core::ExperimentConfig>& configs,
                             const LeaseWorkerOptions& options);

/// The lease-service flavour of run_lease_worker (options.lease_server
/// set): instead of re-reading a lease file, the worker acquires fenced
/// leases from the server and loops — run the lease, commit the frontier
/// per job (the commit doubles as the heartbeat), then ask for more work
/// until the server says `done`. A `fenced` verdict stops the worker
/// mid-lease (its durable records are harmless duplicates); an
/// unreachable server past the retry budget orphans it: the committed
/// prefix is already fsynced, the report says orphaned, and the caller
/// exits with the distinct orphaned status so `--resume` reshapes leases
/// around it.
LeaseWorkerReport run_lease_client_worker(
    const std::vector<core::ExperimentConfig>& configs,
    const LeaseWorkerOptions& options);

/// The parent side of `oracle_batch run --workers N`: plan shards over the
/// sweep, spawn one self-exec worker per incomplete shard, wait, and — iff
/// every worker exited cleanly — merge the shard stores into the canonical
/// store and (unless keep_shard_stores) delete them. On any worker
/// failure the merge is skipped so a later resume sees every shard's
/// surviving state. Throws SimulationError on setup errors (empty sweep,
/// missing out path, spawn failure).
///
/// With options.steal, the fork-join topology becomes a supervisor: the
/// parent partitions the job order into leases (clamped to one worker per
/// job), spawns one lease worker per slot, and loops — reaping exits,
/// re-leasing the unclaimed tail of the most-loaded live lease to each
/// drained worker (work stealing), SIGKILLing heartbeat-stale workers,
/// and respawning crashed ones up to max_restarts. The merge and its
/// byte-identity guarantee are unchanged: worker stores hold arbitrary
/// job subsets (possibly overlapping after steal races) and fold into the
/// canonical store in job order with content-hash dedup.
ShardRunReport run_sharded_processes(
    const std::vector<core::ExperimentConfig>& configs,
    const ShardRunOptions& options);

}  // namespace oracle::exp
