#pragma once
// Crash-safe distributed sharding: run one sweep as N cooperating worker
// *processes* over one canonical result store.
//
// The model:
//   - Every job is assigned to a shard by content hash modulo shard count
//     (shard_of_hash). The slice is a pure function of job identity, so it
//     is stable across invocations, resumes, and hosts.
//   - Each worker process runs its slice into a private per-shard JSONL
//     store + checkpoint (shard_store_path), using the ordinary batch
//     engine — per-record durability included, so a SIGKILLed worker
//     leaves a clean, resumable prefix and can never corrupt any other
//     shard's state.
//   - When every worker has exited cleanly, the parent merges the shard
//     stores (plus any previously merged canonical store) into the
//     canonical store *in job order* via ShardMerger: the merged bytes are
//     identical to what a serial run would have produced.
//   - A killed/failed worker leaves the merge unperformed; a later
//     --resume re-runs only the incomplete shards' incomplete jobs
//     (ShardPlan::incomplete_shards + the per-shard checkpoint protocol)
//     and then merges, converging to the same byte-identical store.
//
// run_sharded_processes() drives the whole protocol by re-executing the
// current binary with `--shard i/N` per worker (self-exec); the pieces
// (ShardSpec, ShardPlan, ShardMerger, spawn_and_wait) are exposed for
// custom launchers — e.g. starting workers on different hosts and merging
// their stores with `oracle_batch aggregate <store>...`.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/config.hpp"

namespace oracle::exp {

class JobQueue;

/// One worker's identity inside a sharded run: shard `index` of `count`.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  /// Parse "i/N" (e.g. "2/4"); nullopt on malformed input or i >= N.
  static std::optional<ShardSpec> parse(const std::string& text);

  std::string to_string() const;  ///< "i/N"
};

/// The distributed sharding rule: which shard of `count` owns this job.
inline std::size_t shard_of_hash(std::uint64_t content_hash,
                                 std::size_t count) noexcept {
  return count <= 1 ? 0 : static_cast<std::size_t>(content_hash % count);
}

/// Per-shard private store path: "<canonical>.shard<i>of<N>". The shard
/// checkpoint sits beside it at Checkpoint::default_path of this.
std::string shard_store_path(const std::string& canonical_store,
                             std::size_t index, std::size_t count);

/// The parent's view of a sharded run: which content hashes each shard is
/// responsible for, and which shards still have work left on disk.
class ShardPlan {
 public:
  /// Plan `count` shards over the (seed-derived, unfiltered) queue.
  ShardPlan(const JobQueue& queue, std::size_t count);

  std::size_t count() const noexcept { return hashes_.size(); }
  std::size_t total_jobs() const noexcept { return total_; }

  /// Content hashes owned by shard `i`, in job order.
  const std::vector<std::uint64_t>& shard_hashes(std::size_t i) const {
    return hashes_[i];
  }

  /// Shards that still have jobs not completed by (a) their own shard
  /// store/checkpoint under `canonical_store` or (b) the `already_done`
  /// set (typically the canonical store's hashes). Empty shards are never
  /// reported. This is the crash-detection step of --resume: only these
  /// shards get a worker process.
  std::vector<std::size_t> incomplete_shards(
      const std::string& canonical_store,
      const std::unordered_set<std::uint64_t>& already_done = {}) const;

 private:
  std::vector<std::vector<std::uint64_t>> hashes_;  // [shard][job order]
  std::size_t total_ = 0;
};

/// Outcome of merging shard stores into the canonical store.
struct MergeReport {
  std::size_t stores_read = 0;       ///< input stores that existed
  std::size_t records = 0;           ///< records written to the canonical store
  std::size_t duplicates_dropped = 0;///< same content hash seen twice
  std::size_t corrupt_lines = 0;     ///< unparseable lines skipped
};

/// Merges per-shard (or per-host) JSONL stores into one canonical store in
/// ascending job-index order. Records are copied byte-for-byte and the
/// batch engine writes them deterministically, so the merged store is
/// byte-identical to a serial run over the same sweep. The write is
/// atomic (tmp file + rename): a crash mid-merge leaves the previous
/// canonical store intact and every input store untouched.
class ShardMerger {
 public:
  /// Queue a store for merging; missing files are skipped silently (a
  /// shard with zero planned jobs never creates its store).
  void add_store(const std::string& path);

  /// Merge everything into `canonical_path` (and write the canonical
  /// checkpoint beside it, hashes in job order, so a later single-process
  /// --resume over the canonical store works unchanged). Throws
  /// SimulationError on I/O failure.
  MergeReport merge_to(const std::string& canonical_path);

 private:
  struct Record {
    std::uint64_t job_index = 0;
    std::uint64_t content_hash = 0;
    std::string line;
  };
  std::vector<Record> records_;
  MergeReport report_;
};

/// Exit status of one spawned worker process.
struct WorkerExit {
  std::size_t shard = 0;   ///< shard index the worker ran
  int exit_code = -1;      ///< exit status when it exited normally
  int term_signal = 0;     ///< nonzero when the worker died of a signal
  bool ok() const noexcept { return term_signal == 0 && exit_code == 0; }
};

/// Fork+exec one process per argv vector and wait for all of them.
/// argvs[k] is the full argument vector (argv[0] = executable path) for
/// worker k; `shards[k]` labels it in the result. POSIX only; throws
/// SimulationError elsewhere or when spawning fails.
std::vector<WorkerExit> spawn_and_wait(
    const std::vector<std::vector<std::string>>& argvs,
    const std::vector<std::size_t>& shards);

/// Resolve the path of the currently running executable for self-exec
/// (/proc/self/exe on Linux, falling back to argv0).
std::string self_exec_path(const std::string& argv0);

struct ShardRunOptions {
  std::size_t workers = 2;     ///< worker process count (= shard count)
  std::string out;             ///< canonical JSONL store path (required)
  bool resume = false;         ///< re-run only dead shards' incomplete jobs
  bool keep_shard_stores = false;  ///< keep per-shard stores after merging
  std::uint64_t master_seed = 0;   ///< forwarded to each worker's queue

  /// Self-exec recipe: executable plus the sweep-defining arguments. The
  /// parent appends "--shard i/N" (and "--resume" when resuming) per
  /// worker; the worker rebuilds the identical sweep, slices it, and runs
  /// only its shard.
  std::string exec_path;
  std::vector<std::string> worker_args;
};

struct ShardRunReport {
  std::size_t planned_jobs = 0;     ///< sweep size (all shards)
  std::size_t shards_launched = 0;  ///< workers actually spawned
  std::size_t shards_skipped = 0;   ///< already complete (resume) or empty
  std::vector<WorkerExit> workers;  ///< one entry per launched worker
  bool merged = false;              ///< canonical store written
  MergeReport merge;

  bool ok() const noexcept;
  std::string summary() const;
};

/// The parent side of `oracle_batch run --workers N`: plan shards over the
/// sweep, spawn one self-exec worker per incomplete shard, wait, and — iff
/// every worker exited cleanly — merge the shard stores into the canonical
/// store and (unless keep_shard_stores) delete them. On any worker
/// failure the merge is skipped so a later resume sees every shard's
/// surviving state. Throws SimulationError on setup errors (empty sweep,
/// missing out path, spawn failure).
ShardRunReport run_sharded_processes(
    const std::vector<core::ExperimentConfig>& configs,
    const ShardRunOptions& options);

}  // namespace oracle::exp
