#pragma once
// Aggregation/query engine over JSONL result stores: the multi-seed
// statistics backend for every reproduction table. A batch sweep writes
// one JSONL record per run (exp/result_sink.hpp); this layer reads those
// records back, groups them by *grid point* — the seed-independent slice
// of the job identity (topology, strategy, workload, PE count), hashed
// with the same FNV-1a scheme as the job content hash — and computes
// mean / sample stddev / 95% confidence interval (Student-t) / min / max /
// percentiles for every numeric metric the record carries.
//
// Exposed on the command line as `oracle_batch aggregate <store.jsonl>`
// with table and CSV output.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exp/result_sink.hpp"
#include "stats/run_result.hpp"

namespace oracle::exp {

/// Two-sided 97.5% Student-t critical value for `df` degrees of freedom
/// (the multiplier behind a 95% confidence interval); 1.960 asymptote
/// beyond df = 30. df = 0 returns 0 (a single sample has no interval).
double student_t95(std::size_t df);

/// Summary statistics of one metric across the runs of one grid point.
struct MetricSummary {
  std::string name;
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample (Bessel-corrected) standard deviation
  double ci95 = 0.0;    ///< half-width: mean ± ci95 covers 95%
  double min = 0.0;
  double max = 0.0;

  /// Samples in ascending order (kept for percentile queries).
  std::vector<double> sorted_samples;

  /// Linear-interpolated percentile (the R-7 / numpy default), p in
  /// [0, 100]. 0 when the group is empty.
  double percentile(double p) const;
};

/// One grid point: every run that differs only in seed.
struct GridPointSummary {
  std::uint64_t key = 0;  ///< grid_key() of the group
  std::string topology;
  std::string strategy;
  std::string workload;
  std::uint32_t num_pes = 0;
  std::size_t runs = 0;

  /// One summary per Aggregator::metric_names() entry, in that order.
  std::vector<MetricSummary> metrics;

  /// Lookup by metric name; nullptr when unknown.
  const MetricSummary* metric(std::string_view name) const;
};

class Aggregator {
 public:
  /// The metrics extracted from every record, in output order.
  static const std::vector<std::string>& metric_names();

  /// Grid-point identity of a record: FNV-1a over the seed-independent
  /// identification fields (topology | strategy | workload | num_pes) —
  /// the same hashing scheme as exp::job_content_hash, minus the knobs a
  /// JSONL record does not persist.
  static std::uint64_t grid_key(const stats::RunResult& r);

  /// Fold one run into its grid point (groups appear in first-seen order).
  void add(const stats::RunResult& r);

  /// Parse one JSONL line and add it; false (and counted as skipped) on
  /// malformed input. Blank lines are ignored and not counted. A record
  /// whose content hash was already ingested is counted as a duplicate
  /// and NOT added again: aggregating overlapping stores (e.g. a merged
  /// canonical store plus a kept per-shard store) must not double-count
  /// samples and silently shrink the confidence intervals.
  bool add_line(const std::string& line);

  /// Read every line of a stream.
  void read(std::istream& in);

  /// Read a whole store. Throws SimulationError when the file can't be
  /// opened; corrupt lines are skipped (and reported via skipped_lines()).
  static Aggregator from_jsonl_file(const std::string& path);

  /// Read several stores into one aggregation — the cross-host merge path:
  /// each host's sweep (or shard) store contributes its runs, and grid
  /// points spanning stores pool their samples. Group identity is the
  /// seed-independent grid key, so store order only affects group output
  /// order (first-seen), never the statistics.
  static Aggregator from_jsonl_files(const std::vector<std::string>& paths);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t skipped_lines() const noexcept { return skipped_; }
  std::size_t duplicate_rows() const noexcept { return duplicates_; }
  std::size_t groups() const noexcept { return groups_.size(); }

  /// Compute the per-group summaries (first-seen group order).
  std::vector<GridPointSummary> summarize() const;

  /// Long-format CSV: one row per (grid point, metric) with
  /// n/mean/stddev/ci95/min/max and the p50/p90/p99 percentiles.
  static std::string to_csv(const std::vector<GridPointSummary>& groups);

  /// Fixed-width table of one metric across all grid points.
  static std::string to_table(const std::vector<GridPointSummary>& groups,
                              std::string_view metric);

 private:
  struct Group {
    std::uint64_t key = 0;
    std::string topology;
    std::string strategy;
    std::string workload;
    std::uint32_t num_pes = 0;
    std::size_t runs = 0;
    std::vector<std::vector<double>> samples;  // [metric][run]
  };

  Group& group_for(const stats::RunResult& r);

  std::vector<Group> groups_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::unordered_set<std::uint64_t> seen_hashes_;  ///< add_line dedup
  std::size_t rows_ = 0;
  std::size_t skipped_ = 0;
  std::size_t duplicates_ = 0;
};

}  // namespace oracle::exp
