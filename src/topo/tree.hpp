#pragma once
// Complete k-ary tree topology. Tree-structured machines were a prominent
// alternative to grids in the mid-80s message-passing literature (and the
// paper's computations are themselves trees); included as an extra network
// family for the topology ablations. Node 0 is the root; children of node
// n are k*n + 1 .. k*n + k.

#include <cstdint>

#include "topo/topology.hpp"

namespace oracle::topo {

class KaryTree : public Topology {
 public:
  /// A complete tree with `arity` children per node and `levels` levels
  /// (levels = 1 is a single node; levels = 3, arity = 2 has 7 nodes).
  KaryTree(std::uint32_t arity, std::uint32_t levels);

  std::uint32_t arity() const noexcept { return arity_; }
  std::uint32_t levels() const noexcept { return levels_; }

  /// Number of nodes in a complete tree: (k^L - 1) / (k - 1).
  static std::uint32_t node_count(std::uint32_t arity, std::uint32_t levels);

  /// O(1) routing: the unique tree path (down into the child subtree that
  /// contains `to`, otherwise up to the parent).
  NodeId analytic_next_hop(NodeId from, NodeId to) const override;
  std::int64_t diameter_hint() const override;

 private:
  std::uint32_t arity_, levels_;
};

}  // namespace oracle::topo
