#include "topo/dlm.hpp"

#include <algorithm>
#include <set>

#include "util/string_util.hpp"

namespace oracle::topo {

DoubleLatticeMesh::DoubleLatticeMesh(std::uint32_t span, std::uint32_t rows,
                                     std::uint32_t cols)
    : Topology(strfmt("dlm-%u-%ux%u", span, rows, cols), rows * cols),
      span_(span),
      rows_(rows),
      cols_(cols) {
  ORACLE_REQUIRE(span >= 2, "DLM bus-span must be >= 2");
  ORACLE_REQUIRE(rows >= 1 && cols >= 1, "DLM dimensions must be >= 1");
  ORACLE_REQUIRE(span <= std::max(rows, cols),
                 "DLM bus-span larger than both dimensions");
  build_dimension(true);
  build_dimension(false);
  finalize();
}

void DoubleLatticeMesh::build_dimension(bool row_major) {
  const std::uint32_t nmajor = row_major ? rows_ : cols_;  // lines
  const std::uint32_t nminor = row_major ? cols_ : rows_;  // positions in line
  if (nminor < 2) return;  // a 1-wide dimension has no buses
  const std::uint32_t span = std::min(span_, nminor);

  auto node = [&](std::uint32_t major, std::uint32_t minor) {
    return row_major ? node_at(major, minor) : node_at(minor, major);
  };

  // Dedupe: with span == nminor the local and skip lattices coincide.
  std::set<std::vector<NodeId>> seen;
  auto add_bus = [&](std::vector<NodeId> members, bool local) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    if (members.size() < 2) return;
    if (!seen.insert(members).second) return;
    add_link(std::move(members));
    if (local)
      ++local_buses_;
    else
      ++skip_buses_;
  };

  for (std::uint32_t major = 0; major < nmajor; ++major) {
    // Local lattice: contiguous segments of `span` positions; a remainder
    // shorter than 2 is folded into the previous bus.
    for (std::uint32_t start = 0; start < nminor; start += span) {
      std::uint32_t end = std::min(start + span, nminor);
      if (nminor - end == 1) end = nminor;  // absorb length-1 remainder
      std::vector<NodeId> members;
      for (std::uint32_t m = start; m < end; ++m) members.push_back(node(major, m));
      add_bus(std::move(members), true);
      if (end == nminor) break;
    }
    // Skip lattice: strided buses; stride chosen so each bus has ~span taps.
    const std::uint32_t stride = std::max(1u, nminor / span);
    if (stride > 1) {
      for (std::uint32_t j = 0; j < stride; ++j) {
        std::vector<NodeId> members;
        for (std::uint32_t m = j; m < nminor; m += stride)
          members.push_back(node(major, m));
        add_bus(std::move(members), false);
      }
    }
  }
}

}  // namespace oracle::topo
