#include "topo/hypercube.hpp"

#include <bit>

#include "util/string_util.hpp"

namespace oracle::topo {

Hypercube::Hypercube(std::uint32_t dimension)
    : Topology(strfmt("hypercube-%u", dimension), 1u << dimension),
      dim_(dimension) {
  ORACLE_REQUIRE(dimension >= 1 && dimension <= 20,
                 "hypercube dimension must be in [1, 20]");
  const std::uint32_t n = num_nodes();
  for (NodeId node = 0; node < n; ++node) {
    for (std::uint32_t bit = 0; bit < dim_; ++bit) {
      const NodeId other = node ^ (1u << bit);
      if (other > node) add_link({node, other});
    }
  }
  finalize();
}

std::uint32_t Hypercube::hamming(NodeId a, NodeId b) noexcept {
  return static_cast<std::uint32_t>(std::popcount(a ^ b));
}

}  // namespace oracle::topo
