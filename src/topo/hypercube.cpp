#include "topo/hypercube.hpp"

#include <bit>

#include "util/string_util.hpp"

namespace oracle::topo {

Hypercube::Hypercube(std::uint32_t dimension)
    : Topology(strfmt("hypercube-%u", dimension), 1u << dimension),
      dim_(dimension) {
  ORACLE_REQUIRE(dimension >= 1 && dimension <= 20,
                 "hypercube dimension must be in [1, 20]");
  const std::uint32_t n = num_nodes();
  for (NodeId node = 0; node < n; ++node) {
    for (std::uint32_t bit = 0; bit < dim_; ++bit) {
      const NodeId other = node ^ (1u << bit);
      if (other > node) add_link({node, other});
    }
  }
  finalize();
}

std::uint32_t Hypercube::hamming(NodeId a, NodeId b) noexcept {
  return static_cast<std::uint32_t>(std::popcount(a ^ b));
}

NodeId Hypercube::analytic_next_hop(NodeId from, NodeId to) const {
  ORACLE_ASSERT(from < num_nodes() && to < num_nodes());
  if (from == to) return kInvalidNode;
  // Any differing bit may be flipped on a shortest path. The lowest-id
  // neighbor clears the highest clearable bit (id drops the most); if no
  // bit can be cleared, it sets the lowest settable one (id rises least).
  const std::uint32_t down = from & ~to;
  if (down != 0) return from ^ std::bit_floor(down);
  const std::uint32_t up = to & ~from;
  return from ^ (up & (0u - up));
}

}  // namespace oracle::topo
