#include "topo/topology.hpp"

#include <algorithm>

namespace oracle::topo {

LinkId Topology::add_link(std::vector<NodeId> members) {
  ORACLE_ASSERT_MSG(!finalized_, "add_link after finalize");
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  ORACLE_ASSERT_MSG(members.size() >= 2, "link must join at least two nodes");
  for (NodeId m : members) ORACLE_ASSERT(m < num_nodes_);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, std::move(members)});
  return id;
}

void Topology::finalize() {
  ORACLE_ASSERT_MSG(!finalized_, "finalize called twice");
  adjacency_.assign(num_nodes_, {});
  node_links_.assign(num_nodes_, {});
  for (const Link& link : links_) {
    for (NodeId m : link.members) {
      node_links_[m].push_back(link.id);
      for (NodeId other : link.members)
        if (other != m) adjacency_[m].push_back(other);
    }
  }
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  finalized_ = true;
}

LinkId Topology::link_between(NodeId from, NodeId to) const {
  ORACLE_ASSERT(from < num_nodes_ && to < num_nodes_);
  for (LinkId lid : node_links_[from]) {
    const Link& link = links_[lid];
    if (std::binary_search(link.members.begin(), link.members.end(), to))
      return lid;
  }
  return kInvalidLink;
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (NodeId n = 0; n < num_nodes_; ++n)
    best = std::max(best, adjacency_[n].size());
  return best;
}

bool Topology::are_neighbors(NodeId a, NodeId b) const {
  if (a == b) return false;
  const auto& adj = neighbors(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

}  // namespace oracle::topo
