#include "topo/graph_algos.hpp"

#include <deque>

namespace oracle::topo {

std::vector<std::uint32_t> bfs_distances(const Topology& topo, NodeId source) {
  ORACLE_ASSERT(source < topo.num_nodes());
  std::vector<std::uint32_t> dist(topo.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier;
  dist[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop_front();
    for (NodeId m : topo.neighbors(n)) {
      if (dist[m] == kUnreachable) {
        dist[m] = dist[n] + 1;
        frontier.push_back(m);
      }
    }
  }
  return dist;
}

bool is_connected(const Topology& topo) {
  const auto dist = bfs_distances(topo, 0);
  for (std::uint32_t d : dist)
    if (d == kUnreachable) return false;
  return true;
}

DistanceMatrix::DistanceMatrix(const Topology& topo)
    : n_(topo.num_nodes()), dist_(static_cast<std::size_t>(n_) * n_) {
  std::uint64_t sum = 0;
  std::uint64_t pairs = 0;
  for (NodeId src = 0; src < n_; ++src) {
    const auto row = bfs_distances(topo, src);
    for (NodeId dst = 0; dst < n_; ++dst) {
      const std::uint32_t d = row[dst];
      ORACLE_ASSERT_MSG(d != kUnreachable, "topology is disconnected");
      dist_[static_cast<std::size_t>(src) * n_ + dst] = d;
      if (src != dst) {
        if (d > diameter_) diameter_ = d;
        sum += d;
        ++pairs;
      }
    }
  }
  avg_ = pairs ? static_cast<double>(sum) / static_cast<double>(pairs) : 0.0;
}

RoutingTable::RoutingTable(const Topology& topo)
    : n_(topo.num_nodes()),
      table_(static_cast<std::size_t>(n_) * n_, kInvalidNode) {
  // Reverse BFS from each destination: next_hop(from, to) is the neighbor
  // of `from` with distance(neighbor, to) == distance(from, to) - 1;
  // neighbors are sorted ascending, so the first match is the lowest id.
  for (NodeId to = 0; to < n_; ++to) {
    const auto dist = bfs_distances(topo, to);
    for (NodeId from = 0; from < n_; ++from) {
      if (from == to) continue;
      ORACLE_ASSERT_MSG(dist[from] != kUnreachable, "topology is disconnected");
      for (NodeId nb : topo.neighbors(from)) {
        if (dist[nb] + 1 == dist[from]) {
          table_[static_cast<std::size_t>(from) * n_ + to] = nb;
          break;
        }
      }
      ORACLE_ASSERT(table_[static_cast<std::size_t>(from) * n_ + to] !=
                    kInvalidNode);
    }
  }
}

}  // namespace oracle::topo
