#include "topo/factory.hpp"

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "topo/dlm.hpp"
#include "topo/grid.hpp"
#include "topo/hypercube.hpp"
#include "topo/tree.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace oracle::topo {

Ring::Ring(std::uint32_t n) : Topology(strfmt("ring-%u", n), n) {
  ORACLE_REQUIRE(n >= 2, "ring needs at least 2 nodes");
  for (std::uint32_t i = 0; i + 1 < n; ++i) add_link({i, i + 1});
  if (n >= 3) add_link({n - 1, 0});
  finalize();
}

Complete::Complete(std::uint32_t n) : Topology(strfmt("complete-%u", n), n) {
  ORACLE_REQUIRE(n >= 2, "complete graph needs at least 2 nodes");
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) add_link({i, j});
  finalize();
}

namespace {

std::pair<std::uint32_t, std::uint32_t> parse_dims(std::string_view s,
                                                   std::string_view what) {
  const auto parts = split(s, 'x');
  ORACLE_REQUIRE(parts.size() == 2,
                 std::string(what) + ": expected RxC, got '" + std::string(s) + "'");
  const auto r = parse_int(parts[0], what);
  const auto c = parse_int(parts[1], what);
  ORACLE_REQUIRE(r > 0 && c > 0, std::string(what) + ": dimensions must be positive");
  return {static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(c)};
}

}  // namespace

std::unique_ptr<Topology> make_topology(std::string_view spec) {
  const auto parts = split(trim(spec), ':');
  ORACLE_REQUIRE(!parts.empty() && !parts[0].empty(),
                 "empty topology spec");
  const std::string kind = to_lower(parts[0]);

  if (kind == "grid" || kind == "torus") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: " + kind + ":RxC");
    const auto [r, c] = parse_dims(parts[1], kind);
    return std::make_unique<Grid2D>(r, c, kind == "torus");
  }
  if (kind == "dlm") {
    ORACLE_REQUIRE(parts.size() == 3, "usage: dlm:SPAN:RxC");
    const auto span = parse_int(parts[1], "dlm span");
    ORACLE_REQUIRE(span >= 2, "dlm span must be >= 2");
    const auto [r, c] = parse_dims(parts[2], "dlm");
    return std::make_unique<DoubleLatticeMesh>(static_cast<std::uint32_t>(span), r, c);
  }
  if (kind == "hypercube" || kind == "cube") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: hypercube:DIM");
    const auto d = parse_int(parts[1], "hypercube dimension");
    ORACLE_REQUIRE(d >= 1 && d <= 20, "hypercube dimension must be in [1,20]");
    return std::make_unique<Hypercube>(static_cast<std::uint32_t>(d));
  }
  if (kind == "tree") {
    ORACLE_REQUIRE(parts.size() == 3, "usage: tree:ARITY:LEVELS");
    const auto arity = parse_int(parts[1], "tree arity");
    const auto levels = parse_int(parts[2], "tree levels");
    ORACLE_REQUIRE(arity >= 1 && levels >= 1, "tree needs arity,levels >= 1");
    return std::make_unique<KaryTree>(static_cast<std::uint32_t>(arity),
                                      static_cast<std::uint32_t>(levels));
  }
  if (kind == "ring") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: ring:N");
    return std::make_unique<Ring>(
        static_cast<std::uint32_t>(parse_int(parts[1], "ring size")));
  }
  if (kind == "complete") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: complete:N");
    return std::make_unique<Complete>(
        static_cast<std::uint32_t>(parse_int(parts[1], "complete size")));
  }
  throw ConfigError("unknown topology kind '" + kind +
                    "' (expected grid|torus|dlm|hypercube|ring|complete)");
}

namespace {

// Process-wide shared-topology cache. Keyed by the canonicalized spec's
// content hash (the map still compares full spec strings, so a hash
// collision costs a rebuild, never a wrong topology). Bounded: topologies
// are a few hundred KB each with their routing tables, so an unbounded
// cache could pin real memory across many sweeps. On overflow, entries no
// longer referenced by any Machine are evicted first; only if every entry
// is still in use is the cache cleared outright.
struct SpecContentHash {
  std::size_t operator()(const std::string& s) const noexcept {
    return static_cast<std::size_t>(fnv1a64(s));
  }
};

constexpr std::size_t kTopologyCacheMax = 64;

std::mutex g_topo_cache_mutex;
std::unordered_map<std::string, SharedTopology, SpecContentHash>&
topo_cache() {
  static auto* cache =
      new std::unordered_map<std::string, SharedTopology, SpecContentHash>();
  return *cache;
}

}  // namespace

SharedTopology make_topology_shared(std::string_view spec) {
  // Key by the trimmed spec as written: lowercasing here would let a
  // malformed spelling (e.g. "grid:5X5", which make_topology rejects) hit
  // a warm cache and silently succeed. Distinct valid spellings caching
  // separately is harmless.
  const std::string key{trim(spec)};
  {
    std::lock_guard<std::mutex> lock(g_topo_cache_mutex);
    const auto it = topo_cache().find(key);
    if (it != topo_cache().end()) return it->second;
  }

  // Build outside the lock: concurrent first requests for *different*
  // topologies proceed in parallel; a duplicate concurrent build of the
  // same spec is harmless (both results are identical and immutable, the
  // second insert is dropped).
  SharedTopology built;
  built.topology = std::shared_ptr<const Topology>(make_topology(spec));
  if (built.topology->num_nodes() <= kExactRoutingMaxNodes) {
    built.routing = std::make_shared<const RoutingTable>(*built.topology);
    built.diameter = DistanceMatrix(*built.topology).diameter();
  } else {
    // Million-node machines: the O(n^2) table/matrix are unrepresentable,
    // so the topology must supply closed forms. Routing goes through
    // Topology::analytic_next_hop (Machine rejects families without one).
    const std::int64_t hint = built.topology->diameter_hint();
    ORACLE_REQUIRE(
        hint >= 0,
        strfmt("topology '%s' has %u nodes (> %u) but no closed-form "
               "diameter; families without analytic routing are capped at "
               "the exact-analysis size",
               built.topology->name().c_str(), built.topology->num_nodes(),
               kExactRoutingMaxNodes));
    built.diameter = static_cast<std::uint32_t>(hint);
  }

  std::lock_guard<std::mutex> lock(g_topo_cache_mutex);
  if (topo_cache().size() >= kTopologyCacheMax) {
    // Evict entries no live Machine references (the cache holds the only
    // shared_ptr); clear wholesale only if everything is still in use.
    for (auto it = topo_cache().begin(); it != topo_cache().end();) {
      if (it->second.topology.use_count() == 1) {
        it = topo_cache().erase(it);
      } else {
        ++it;
      }
    }
    if (topo_cache().size() >= kTopologyCacheMax) topo_cache().clear();
  }
  const auto [it, inserted] = topo_cache().emplace(key, built);
  return inserted ? built : it->second;
}

void prewarm_topology_cache(const std::vector<std::string>& specs) {
  std::vector<std::string> distinct;
  std::unordered_set<std::string> seen;
  for (const std::string& spec : specs)
    if (seen.insert(spec).second) distinct.push_back(spec);
  // Distinct specs build concurrently (the cache builds outside its lock);
  // the point of prewarming is only that *identical* specs build once
  // instead of once per racing worker.
  ThreadPool::parallel_for(distinct.size(), 0, [&](std::size_t i) {
    try {
      (void)make_topology_shared(distinct[i]);
    } catch (...) {
      // A malformed spec fails the job that names it, with per-job
      // reporting; prewarming must not fail a whole batch early.
    }
  });
}

std::size_t topology_cache_size() {
  std::lock_guard<std::mutex> lock(g_topo_cache_mutex);
  return topo_cache().size();
}

void clear_topology_cache() {
  std::lock_guard<std::mutex> lock(g_topo_cache_mutex);
  topo_cache().clear();
}

}  // namespace oracle::topo
