#include "topo/factory.hpp"

#include <string>

#include "topo/dlm.hpp"
#include "topo/grid.hpp"
#include "topo/hypercube.hpp"
#include "topo/tree.hpp"
#include "util/string_util.hpp"

namespace oracle::topo {

Ring::Ring(std::uint32_t n) : Topology(strfmt("ring-%u", n), n) {
  ORACLE_REQUIRE(n >= 2, "ring needs at least 2 nodes");
  for (std::uint32_t i = 0; i + 1 < n; ++i) add_link({i, i + 1});
  if (n >= 3) add_link({n - 1, 0});
  finalize();
}

Complete::Complete(std::uint32_t n) : Topology(strfmt("complete-%u", n), n) {
  ORACLE_REQUIRE(n >= 2, "complete graph needs at least 2 nodes");
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) add_link({i, j});
  finalize();
}

namespace {

std::pair<std::uint32_t, std::uint32_t> parse_dims(std::string_view s,
                                                   std::string_view what) {
  const auto parts = split(s, 'x');
  ORACLE_REQUIRE(parts.size() == 2,
                 std::string(what) + ": expected RxC, got '" + std::string(s) + "'");
  const auto r = parse_int(parts[0], what);
  const auto c = parse_int(parts[1], what);
  ORACLE_REQUIRE(r > 0 && c > 0, std::string(what) + ": dimensions must be positive");
  return {static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(c)};
}

}  // namespace

std::unique_ptr<Topology> make_topology(std::string_view spec) {
  const auto parts = split(trim(spec), ':');
  ORACLE_REQUIRE(!parts.empty() && !parts[0].empty(),
                 "empty topology spec");
  const std::string kind = to_lower(parts[0]);

  if (kind == "grid" || kind == "torus") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: " + kind + ":RxC");
    const auto [r, c] = parse_dims(parts[1], kind);
    return std::make_unique<Grid2D>(r, c, kind == "torus");
  }
  if (kind == "dlm") {
    ORACLE_REQUIRE(parts.size() == 3, "usage: dlm:SPAN:RxC");
    const auto span = parse_int(parts[1], "dlm span");
    ORACLE_REQUIRE(span >= 2, "dlm span must be >= 2");
    const auto [r, c] = parse_dims(parts[2], "dlm");
    return std::make_unique<DoubleLatticeMesh>(static_cast<std::uint32_t>(span), r, c);
  }
  if (kind == "hypercube" || kind == "cube") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: hypercube:DIM");
    const auto d = parse_int(parts[1], "hypercube dimension");
    ORACLE_REQUIRE(d >= 1 && d <= 20, "hypercube dimension must be in [1,20]");
    return std::make_unique<Hypercube>(static_cast<std::uint32_t>(d));
  }
  if (kind == "tree") {
    ORACLE_REQUIRE(parts.size() == 3, "usage: tree:ARITY:LEVELS");
    const auto arity = parse_int(parts[1], "tree arity");
    const auto levels = parse_int(parts[2], "tree levels");
    ORACLE_REQUIRE(arity >= 1 && levels >= 1, "tree needs arity,levels >= 1");
    return std::make_unique<KaryTree>(static_cast<std::uint32_t>(arity),
                                      static_cast<std::uint32_t>(levels));
  }
  if (kind == "ring") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: ring:N");
    return std::make_unique<Ring>(
        static_cast<std::uint32_t>(parse_int(parts[1], "ring size")));
  }
  if (kind == "complete") {
    ORACLE_REQUIRE(parts.size() == 2, "usage: complete:N");
    return std::make_unique<Complete>(
        static_cast<std::uint32_t>(parse_int(parts[1], "complete size")));
  }
  throw ConfigError("unknown topology kind '" + kind +
                    "' (expected grid|torus|dlm|hypercube|ring|complete)");
}

}  // namespace oracle::topo
