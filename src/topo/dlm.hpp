#pragma once
// Double Lattice Mesh (DLM) — Kale's bus-based topology (ICPP'86, "Optimal
// Communication Neighborhoods"), used by the paper as one of the two main
// test networks ("Double Lattice-Mesh of 5 10 10" = bus-span 5 on a 10x10
// node array; Figure 1).
//
// The paper gives only the bus-span and the node array; we reconstruct the
// wiring as *two* lattices of multi-drop buses per dimension (hence
// "double"):
//   - a LOCAL lattice: per row, buses over `span` consecutive columns
//     (segments [k*span, (k+1)*span)), and likewise per column;
//   - a SKIP lattice: per row, strided buses {j, j+stride, j+2*stride, ...}
//     with stride = max(1, cols/span), and likewise per column.
// Every node therefore sits on 4 buses (2 per dimension). This reproduces
// the properties the paper relies on: small diameter (4-5 for 25..400 PEs
// versus 8-38 for the grids) and a large single-hop neighborhood
// (~4*(span-1) neighbors). See DESIGN.md, Substitutions.

#include <cstdint>

#include "topo/topology.hpp"

namespace oracle::topo {

class DoubleLatticeMesh : public Topology {
 public:
  /// `span`: number of PEs attached to one bus. `rows` x `cols`: node array.
  DoubleLatticeMesh(std::uint32_t span, std::uint32_t rows, std::uint32_t cols);

  std::uint32_t span() const noexcept { return span_; }
  std::uint32_t rows() const noexcept { return rows_; }
  std::uint32_t cols() const noexcept { return cols_; }

  /// Number of buses in the local (contiguous) lattices.
  std::uint32_t local_buses() const noexcept { return local_buses_; }
  /// Number of buses in the skip (strided) lattices.
  std::uint32_t skip_buses() const noexcept { return skip_buses_; }

  NodeId node_at(std::uint32_t r, std::uint32_t c) const {
    ORACLE_ASSERT(r < rows_ && c < cols_);
    return r * cols_ + c;
  }

 private:
  /// Add one dimension's two bus lattices. `major` iterates rows (for row
  /// buses) or columns (for column buses).
  void build_dimension(bool row_major);

  std::uint32_t span_, rows_, cols_;
  std::uint32_t local_buses_ = 0;
  std::uint32_t skip_buses_ = 0;
};

}  // namespace oracle::topo
