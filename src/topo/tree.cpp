#include "topo/tree.hpp"

#include "util/string_util.hpp"

namespace oracle::topo {

std::uint32_t KaryTree::node_count(std::uint32_t arity, std::uint32_t levels) {
  ORACLE_REQUIRE(arity >= 1, "tree arity must be >= 1");
  ORACLE_REQUIRE(levels >= 1 && levels <= 24, "tree levels must be in [1,24]");
  std::uint64_t n = 0, level_size = 1;
  for (std::uint32_t l = 0; l < levels; ++l) {
    n += level_size;
    level_size *= arity;
    ORACLE_REQUIRE(n + level_size < (1ULL << 31), "tree too large");
  }
  return static_cast<std::uint32_t>(n);
}

KaryTree::KaryTree(std::uint32_t arity, std::uint32_t levels)
    : Topology(strfmt("tree-%u-%u", arity, levels), node_count(arity, levels)),
      arity_(arity),
      levels_(levels) {
  const std::uint32_t n = num_nodes();
  for (std::uint32_t node = 0; node < n; ++node) {
    for (std::uint32_t c = 1; c <= arity_; ++c) {
      const std::uint64_t child = static_cast<std::uint64_t>(node) * arity_ + c;
      if (child < n) add_link({node, static_cast<NodeId>(child)});
    }
  }
  finalize();
}

}  // namespace oracle::topo
