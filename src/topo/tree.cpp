#include "topo/tree.hpp"

#include "util/string_util.hpp"

namespace oracle::topo {

std::uint32_t KaryTree::node_count(std::uint32_t arity, std::uint32_t levels) {
  ORACLE_REQUIRE(arity >= 1, "tree arity must be >= 1");
  ORACLE_REQUIRE(levels >= 1 && levels <= 24, "tree levels must be in [1,24]");
  std::uint64_t n = 0, level_size = 1;
  for (std::uint32_t l = 0; l < levels; ++l) {
    n += level_size;
    level_size *= arity;
    ORACLE_REQUIRE(n + level_size < (1ULL << 31), "tree too large");
  }
  return static_cast<std::uint32_t>(n);
}

NodeId KaryTree::analytic_next_hop(NodeId from, NodeId to) const {
  ORACLE_ASSERT(from < num_nodes() && to < num_nodes());
  if (from == to) return kInvalidNode;
  // The tree path is unique. Descendants of `from` all have larger ids
  // (heap numbering), so climb `to` toward the root: if the climb passes
  // through `from`, descend into that child; otherwise the path goes up.
  NodeId cur = to;
  while (cur > from) {
    const NodeId parent = (cur - 1) / arity_;
    if (parent == from) return cur;
    cur = parent;
  }
  return (from - 1) / arity_;
}

std::int64_t KaryTree::diameter_hint() const {
  if (levels_ <= 1) return 0;
  // A chain (arity 1) is `levels_` nodes end to end; otherwise the two
  // deepest leaves in different root subtrees are 2*(levels-1) apart.
  if (arity_ == 1) return levels_ - 1;
  return 2 * static_cast<std::int64_t>(levels_ - 1);
}

KaryTree::KaryTree(std::uint32_t arity, std::uint32_t levels)
    : Topology(strfmt("tree-%u-%u", arity, levels), node_count(arity, levels)),
      arity_(arity),
      levels_(levels) {
  const std::uint32_t n = num_nodes();
  for (std::uint32_t node = 0; node < n; ++node) {
    for (std::uint32_t c = 1; c <= arity_; ++c) {
      const std::uint64_t child = static_cast<std::uint64_t>(node) * arity_ + c;
      if (child < n) add_link({node, static_cast<NodeId>(child)});
    }
  }
  finalize();
}

}  // namespace oracle::topo
