#pragma once
// Topology factory: builds topologies from compact spec strings, the form
// used by ExperimentConfig and the command-line examples.
//
//   "grid:RxC"         open 2-D grid            e.g. grid:10x10
//   "torus:RxC"        wrap-around 2-D grid     e.g. torus:20x20
//   "dlm:S:RxC"        double lattice mesh      e.g. dlm:5:10x10
//   "hypercube:D"      binary hypercube         e.g. hypercube:7
//   "ring:N"           1-D ring                 e.g. ring:16
//   "complete:N"       fully connected N nodes  e.g. complete:8
//   "tree:K:L"         complete k-ary tree      e.g. tree:2:5

#include <memory>
#include <string_view>

#include "topo/topology.hpp"

namespace oracle::topo {

/// Parse `spec` and build the topology; throws ConfigError on bad specs.
std::unique_ptr<Topology> make_topology(std::string_view spec);

/// A ring of N nodes (degenerate lattice; useful for tests and ablations).
class Ring : public Topology {
 public:
  explicit Ring(std::uint32_t n);
};

/// Complete graph on N nodes (an idealized "global communication" network;
/// the paper argues such networks are not scalable — we keep one as an
/// ablation baseline).
class Complete : public Topology {
 public:
  explicit Complete(std::uint32_t n);
};

}  // namespace oracle::topo
