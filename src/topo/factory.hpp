#pragma once
// Topology factory: builds topologies from compact spec strings, the form
// used by ExperimentConfig and the command-line examples.
//
//   "grid:RxC"         open 2-D grid            e.g. grid:10x10
//   "torus:RxC"        wrap-around 2-D grid     e.g. torus:20x20
//   "dlm:S:RxC"        double lattice mesh      e.g. dlm:5:10x10
//   "hypercube:D"      binary hypercube         e.g. hypercube:7
//   "ring:N"           1-D ring                 e.g. ring:16
//   "complete:N"       fully connected N nodes  e.g. complete:8
//   "tree:K:L"         complete k-ary tree      e.g. tree:2:5

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "topo/graph_algos.hpp"
#include "topo/topology.hpp"

namespace oracle::topo {

/// Parse `spec` and build the topology; throws ConfigError on bad specs.
std::unique_ptr<Topology> make_topology(std::string_view spec);

/// An immutable topology bundled with its derived routing structures, ready
/// to be shared by any number of concurrent single-threaded Machines. All
/// three members are read-only after construction, so sharing is safe.
/// For machines beyond kExactRoutingMaxNodes, `routing` is null (the O(n^2)
/// table is unrepresentable) and the topology's analytic_next_hop /
/// diameter_hint closed forms stand in for it.
struct SharedTopology {
  std::shared_ptr<const Topology> topology;
  std::shared_ptr<const RoutingTable> routing;
  std::uint32_t diameter = 0;
};

/// Cached make_topology + RoutingTable + diameter: batch jobs whose configs
/// name the same topology spec (e.g. a 64-seed ensemble on one grid) get
/// one shared build instead of 64. Keyed by the content hash (fnv1a64) of
/// the canonicalized spec, the same identity scheme exp::Job uses for
/// configs. Thread-safe; the cache is process-wide and bounded (on
/// overflow, entries no live Machine references are evicted first).
SharedTopology make_topology_shared(std::string_view spec);

/// Build every distinct spec in `specs` into the shared cache (distinct
/// specs build in parallel on a transient thread pool), swallowing
/// malformed specs (the job naming one fails later with per-job
/// reporting). Batch runners call this before fanning out workers so
/// identical specs are built once instead of once per racing worker.
void prewarm_topology_cache(const std::vector<std::string>& specs);

/// Entries currently held by the shared-topology cache (tests/diagnostics).
std::size_t topology_cache_size();

/// Drop every cached topology (entries still referenced by live Machines
/// stay alive through their shared_ptrs).
void clear_topology_cache();

/// A ring of N nodes (degenerate lattice; useful for tests and ablations).
class Ring : public Topology {
 public:
  explicit Ring(std::uint32_t n);
};

/// Complete graph on N nodes (an idealized "global communication" network;
/// the paper argues such networks are not scalable — we keep one as an
/// ablation baseline).
class Complete : public Topology {
 public:
  explicit Complete(std::uint32_t n);
};

}  // namespace oracle::topo
