#pragma once
// Interconnection topology abstraction.
//
// A topology is a set of nodes (PEs) plus *links*. A link is either a
// point-to-point channel between two PEs (grids, hypercubes) or a multi-drop
// bus attaching several PEs (the double lattice mesh). Two PEs are
// "neighbors" iff they share at least one link — both load-balancing schemes
// in the paper are defined purely in terms of immediate neighbors.

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace oracle::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;
inline constexpr LinkId kInvalidLink = UINT32_MAX;

/// A communication link: point-to-point (2 members) or bus (>= 2 members).
struct Link {
  LinkId id = kInvalidLink;
  std::vector<NodeId> members;  // attached PEs, sorted ascending
  bool is_bus() const noexcept { return members.size() > 2; }
};

/// Immutable topology description. Concrete topologies populate the member
/// structures in their constructors; adjacency and link indexes are derived
/// once and shared by all queries.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Human-readable name, e.g. "grid-10x10" or "dlm-5-10x10".
  const std::string& name() const noexcept { return name_; }

  std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  const std::vector<Link>& links() const noexcept { return links_; }

  /// Neighbor PEs of `node` (all PEs sharing a link, excluding itself),
  /// sorted ascending, deduplicated.
  const std::vector<NodeId>& neighbors(NodeId node) const {
    ORACLE_ASSERT(node < num_nodes_);
    return adjacency_[node];
  }

  /// Links attached to `node`.
  const std::vector<LinkId>& links_of(NodeId node) const {
    ORACLE_ASSERT(node < num_nodes_);
    return node_links_[node];
  }

  /// A link joining `from` and `to`, or kInvalidLink if not adjacent.
  /// When several links join the pair (DLM double coverage) the lowest
  /// link id is returned, deterministically.
  LinkId link_between(NodeId from, NodeId to) const;

  std::size_t num_links() const noexcept { return links_.size(); }

  /// Closed-form next hop on a shortest path from `from` to `to`, for
  /// topology families with O(1) analytic routing (grids, hypercubes,
  /// trees). Returns kInvalidNode when the family has no closed form (the
  /// BFS RoutingTable is then required) or when from == to. Deterministic;
  /// for open grids and hypercubes it returns exactly the lowest-id
  /// candidate the BFS table would pick. This is what makes 10^5–10^6-node
  /// machines feasible: an O(n^2) routing table at that scale is neither
  /// computable nor storable.
  virtual NodeId analytic_next_hop(NodeId from, NodeId to) const {
    (void)from;
    (void)to;
    return kInvalidNode;
  }

  /// Closed-form diameter, or -1 when the family has no closed form (the
  /// O(n^2) DistanceMatrix is then required).
  virtual std::int64_t diameter_hint() const { return -1; }

  /// Maximum node degree (number of neighbors).
  std::size_t max_degree() const;

  bool are_neighbors(NodeId a, NodeId b) const;

 protected:
  Topology(std::string name, std::uint32_t num_nodes)
      : name_(std::move(name)), num_nodes_(num_nodes) {
    ORACLE_REQUIRE(num_nodes_ > 0, "topology must have at least one node");
  }

  /// Add a link over `members` (deduplicated, sorted). Returns its id.
  LinkId add_link(std::vector<NodeId> members);

  /// Build adjacency/index structures; must be called at the end of every
  /// concrete constructor.
  void finalize();

 private:
  std::string name_;
  std::uint32_t num_nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::vector<LinkId>> node_links_;
  bool finalized_ = false;
};

}  // namespace oracle::topo
