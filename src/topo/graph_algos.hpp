#pragma once
// Graph algorithms over Topology: BFS distances, diameter, average distance,
// connectivity, and shortest-path next-hop routing tables. Computed once per
// topology and shared by the machine model and the statistics layer.

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace oracle::topo {

/// BFS hop distances from `source` to every node (kUnreachable if none).
inline constexpr std::uint32_t kUnreachable = UINT32_MAX;

/// Largest machine for which the O(n^2) exact structures below
/// (RoutingTable, DistanceMatrix) are built. Beyond this a topology must
/// provide Topology::analytic_next_hop / diameter_hint — at 10^6 nodes an
/// all-pairs table is ~4 TB, so exact routing is not merely slow, it is
/// unrepresentable.
inline constexpr std::uint32_t kExactRoutingMaxNodes = 2048;
std::vector<std::uint32_t> bfs_distances(const Topology& topo, NodeId source);

/// True if every node is reachable from node 0.
bool is_connected(const Topology& topo);

/// All-pairs distance matrix and derived metrics. For the paper's sizes
/// (<= 400 nodes) this is cheap; larger topologies should sample instead.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(const Topology& topo);

  std::uint32_t num_nodes() const noexcept { return n_; }

  std::uint32_t distance(NodeId a, NodeId b) const {
    ORACLE_ASSERT(a < n_ && b < n_);
    return dist_[static_cast<std::size_t>(a) * n_ + b];
  }

  /// Longest shortest path (the paper quotes 8..38 for its grids, 4-5 DLM).
  std::uint32_t diameter() const noexcept { return diameter_; }

  /// Mean over ordered pairs (a != b).
  double average_distance() const noexcept { return avg_; }

 private:
  std::uint32_t n_;
  std::vector<std::uint32_t> dist_;
  std::uint32_t diameter_ = 0;
  double avg_ = 0.0;
};

/// Next-hop routing: for each (from, to) pair, the neighbor of `from` that
/// lies on a shortest path to `to`. Deterministic (lowest-id candidate), so
/// whole runs are reproducible. Response messages in the machine model are
/// routed with this table; goal messages make their own per-hop decisions.
class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topo);

  /// Next node after `from` on a shortest path to `to`; `to` itself when
  /// adjacent, kInvalidNode when from == to.
  NodeId next_hop(NodeId from, NodeId to) const {
    ORACLE_ASSERT(from < n_ && to < n_);
    return table_[static_cast<std::size_t>(from) * n_ + to];
  }

  std::uint32_t num_nodes() const noexcept { return n_; }

 private:
  std::uint32_t n_;
  std::vector<NodeId> table_;
};

}  // namespace oracle::topo
