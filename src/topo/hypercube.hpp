#pragma once
// Binary hypercube of dimension d (2^d nodes). Used by the paper's Appendix
// I ("Simulation Experiments for the Hypercubes", dimensions 2..8).

#include <cstdint>

#include "topo/topology.hpp"

namespace oracle::topo {

class Hypercube : public Topology {
 public:
  explicit Hypercube(std::uint32_t dimension);

  std::uint32_t dimension() const noexcept { return dim_; }

  /// Exact distance: Hamming distance of node labels.
  static std::uint32_t hamming(NodeId a, NodeId b) noexcept;

  /// O(1) routing by flipping one differing bit, choosing exactly the
  /// lowest-id neighbor the BFS table would (clear the highest clearable
  /// bit, else set the lowest settable one).
  NodeId analytic_next_hop(NodeId from, NodeId to) const override;
  std::int64_t diameter_hint() const override { return dim_; }

 private:
  std::uint32_t dim_;
};

}  // namespace oracle::topo
