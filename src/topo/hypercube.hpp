#pragma once
// Binary hypercube of dimension d (2^d nodes). Used by the paper's Appendix
// I ("Simulation Experiments for the Hypercubes", dimensions 2..8).

#include <cstdint>

#include "topo/topology.hpp"

namespace oracle::topo {

class Hypercube : public Topology {
 public:
  explicit Hypercube(std::uint32_t dimension);

  std::uint32_t dimension() const noexcept { return dim_; }

  /// Exact distance: Hamming distance of node labels.
  static std::uint32_t hamming(NodeId a, NodeId b) noexcept;

 private:
  std::uint32_t dim_;
};

}  // namespace oracle::topo
