#pragma once
// 2-D nearest-neighbor grid, optionally with wrap-around (torus) links.
//
// The paper's main experiments use the "2-dimensional grid (nearest neighbor
// grid) with wrap-around connections", but the diameters it reports (8 for
// 5x5 up to 38 for 20x20) are those of the *open* grid, and the CWN radius
// of 9 only makes sense against those diameters. We support both variants;
// the paper presets use the open grid (see DESIGN.md, Substitutions).

#include <cstdint>

#include "topo/topology.hpp"

namespace oracle::topo {

class Grid2D : public Topology {
 public:
  /// rows x cols grid; `wrap` adds torus links in both dimensions.
  Grid2D(std::uint32_t rows, std::uint32_t cols, bool wrap = false);

  std::uint32_t rows() const noexcept { return rows_; }
  std::uint32_t cols() const noexcept { return cols_; }
  bool wraps() const noexcept { return wrap_; }

  NodeId node_at(std::uint32_t r, std::uint32_t c) const {
    ORACLE_ASSERT(r < rows_ && c < cols_);
    return r * cols_ + c;
  }
  std::uint32_t row_of(NodeId n) const { return n / cols_; }
  std::uint32_t col_of(NodeId n) const { return n % cols_; }

  /// Exact closed-form shortest-path distance (used to cross-check BFS).
  std::uint32_t manhattan(NodeId a, NodeId b) const;

  /// O(1) dimension-order routing. On the open grid this reproduces the
  /// BFS table's lowest-id choice exactly (up, left, right, down); on the
  /// torus it is a deterministic shortest-path hop (rows first, shorter
  /// wrap direction, forward on ties).
  NodeId analytic_next_hop(NodeId from, NodeId to) const override;
  std::int64_t diameter_hint() const override;

 private:
  std::uint32_t rows_, cols_;
  bool wrap_;
};

}  // namespace oracle::topo
