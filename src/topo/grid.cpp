#include "topo/grid.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/string_util.hpp"

namespace oracle::topo {

Grid2D::Grid2D(std::uint32_t rows, std::uint32_t cols, bool wrap)
    : Topology(strfmt("%s-%ux%u", wrap ? "torus" : "grid", rows, cols),
               rows * cols),
      rows_(rows),
      cols_(cols),
      wrap_(wrap) {
  ORACLE_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be >= 1");
  // Wrap links on a dimension of size < 3 would duplicate existing links
  // (size 2) or self-loop (size 1); skip them there, as real machines do.
  for (std::uint32_t r = 0; r < rows_; ++r) {
    for (std::uint32_t c = 0; c < cols_; ++c) {
      const NodeId n = node_at(r, c);
      if (c + 1 < cols_) add_link({n, node_at(r, c + 1)});
      else if (wrap_ && cols_ >= 3) add_link({n, node_at(r, 0)});
      if (r + 1 < rows_) add_link({n, node_at(r + 1, c)});
      else if (wrap_ && rows_ >= 3) add_link({n, node_at(0, c)});
    }
  }
  finalize();
}

std::uint32_t Grid2D::manhattan(NodeId a, NodeId b) const {
  const auto dr = static_cast<std::int64_t>(row_of(a)) - row_of(b);
  const auto dc = static_cast<std::int64_t>(col_of(a)) - col_of(b);
  std::uint32_t vr = static_cast<std::uint32_t>(std::llabs(dr));
  std::uint32_t vc = static_cast<std::uint32_t>(std::llabs(dc));
  if (wrap_) {
    if (rows_ >= 3) vr = std::min(vr, rows_ - vr);
    if (cols_ >= 3) vc = std::min(vc, cols_ - vc);
  }
  return vr + vc;
}

}  // namespace oracle::topo
