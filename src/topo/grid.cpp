#include "topo/grid.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/string_util.hpp"

namespace oracle::topo {

Grid2D::Grid2D(std::uint32_t rows, std::uint32_t cols, bool wrap)
    : Topology(strfmt("%s-%ux%u", wrap ? "torus" : "grid", rows, cols),
               rows * cols),
      rows_(rows),
      cols_(cols),
      wrap_(wrap) {
  ORACLE_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be >= 1");
  // Wrap links on a dimension of size < 3 would duplicate existing links
  // (size 2) or self-loop (size 1); skip them there, as real machines do.
  for (std::uint32_t r = 0; r < rows_; ++r) {
    for (std::uint32_t c = 0; c < cols_; ++c) {
      const NodeId n = node_at(r, c);
      if (c + 1 < cols_) add_link({n, node_at(r, c + 1)});
      else if (wrap_ && cols_ >= 3) add_link({n, node_at(r, 0)});
      if (r + 1 < rows_) add_link({n, node_at(r + 1, c)});
      else if (wrap_ && rows_ >= 3) add_link({n, node_at(0, c)});
    }
  }
  finalize();
}

NodeId Grid2D::analytic_next_hop(NodeId from, NodeId to) const {
  ORACLE_ASSERT(from < num_nodes() && to < num_nodes());
  if (from == to) return kInvalidNode;
  const std::uint32_t fr = row_of(from), fc = col_of(from);
  const std::uint32_t tr = row_of(to), tc = col_of(to);
  if (!wrap_) {
    // Lowest-id shortest-path neighbor, matching the BFS table exactly:
    // the ascending neighbor order is up (n-cols), left (n-1), right
    // (n+1), down (n+cols), and a move is a candidate iff it closes the
    // gap in its dimension.
    if (tr < fr) return node_at(fr - 1, fc);
    if (tc < fc) return node_at(fr, fc - 1);
    if (tc > fc) return node_at(fr, fc + 1);
    return node_at(fr + 1, fc);
  }
  // Torus: rows first, shorter wrap direction, forward on ties. A wrap
  // move only exists when the dimension has wrap links (size >= 3); a
  // size-2 dimension reduces to the open-grid move either way.
  if (tr != fr) {
    const std::uint32_t fwd = (tr + rows_ - fr) % rows_;
    if (rows_ < 3 || fwd <= rows_ - fwd) return node_at((fr + 1) % rows_, fc);
    return node_at((fr + rows_ - 1) % rows_, fc);
  }
  const std::uint32_t fwd = (tc + cols_ - fc) % cols_;
  if (cols_ < 3 || fwd <= cols_ - fwd) return node_at(fr, (fc + 1) % cols_);
  return node_at(fr, (fc + cols_ - 1) % cols_);
}

std::int64_t Grid2D::diameter_hint() const {
  const auto span = [this](std::uint32_t n) -> std::int64_t {
    if (n <= 1) return 0;
    return (wrap_ && n >= 3) ? n / 2 : n - 1;
  };
  return span(rows_) + span(cols_);
}

std::uint32_t Grid2D::manhattan(NodeId a, NodeId b) const {
  const auto dr = static_cast<std::int64_t>(row_of(a)) - row_of(b);
  const auto dc = static_cast<std::int64_t>(col_of(a)) - col_of(b);
  std::uint32_t vr = static_cast<std::uint32_t>(std::llabs(dr));
  std::uint32_t vc = static_cast<std::uint32_t>(std::llabs(dc));
  if (wrap_) {
    if (rows_ >= 3) vr = std::min(vr, rows_ - vr);
    if (cols_ >= 3) vc = std::min(vc, cols_ - vc);
  }
  return vr + vc;
}

}  // namespace oracle::topo
