// End-to-end integration tests: the full config -> simulator -> result
// pipeline, the parallel runner, paper presets, and the headline result of
// the paper reproduced at test scale (CWN beats GM on grids).

#include <gtest/gtest.h>

#include <set>

#include "core/presets.hpp"
#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "util/error.hpp"
#include "workload/dc.hpp"
#include "workload/fib.hpp"

namespace oracle::core {
namespace {

TEST(Simulator, RunsFromSpecStrings) {
  ExperimentConfig cfg;
  cfg.topology = "grid:5x5";
  cfg.strategy = "cwn:radius=9,horizon=2";
  cfg.workload = "fib:12";
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.num_pes, 25u);
  EXPECT_EQ(r.topology, "grid-5x5");
  EXPECT_EQ(r.strategy, "cwn(r=9,h=2)");
  EXPECT_EQ(r.workload, "fib-12");
  EXPECT_EQ(r.goals_executed, workload::FibWorkload::tree_size(12));
}

TEST(Simulator, BadSpecsThrowBeforeRunning) {
  ExperimentConfig cfg;
  cfg.topology = "nonsense:3";
  EXPECT_THROW(run_experiment(cfg), ConfigError);
  cfg = ExperimentConfig{};
  cfg.strategy = "nonsense";
  EXPECT_THROW(run_experiment(cfg), ConfigError);
  cfg = ExperimentConfig{};
  cfg.workload = "nonsense:1";
  EXPECT_THROW(run_experiment(cfg), ConfigError);
}

TEST(Simulator, LabelIsReadable) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.label(), "grid:10x10 / cwn / fib:15");
}

TEST(Runner, ParallelMatchesSerial) {
  std::vector<ExperimentConfig> configs;
  for (int n : {9, 10, 11}) {
    for (const char* strat : {"cwn", "gm"}) {
      ExperimentConfig cfg;
      cfg.topology = "grid:4x4";
      cfg.strategy = strat;
      cfg.workload = "fib:" + std::to_string(n);
      configs.push_back(cfg);
    }
  }
  const auto parallel = run_all(configs, 6);
  const auto serial = run_all(configs, 1);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].completion_time, serial[i].completion_time) << i;
    EXPECT_EQ(parallel[i].events_executed, serial[i].events_executed) << i;
  }
}

TEST(Runner, PreservesOrder) {
  std::vector<ExperimentConfig> configs(4);
  configs[0].workload = "fib:7";
  configs[1].workload = "fib:9";
  configs[2].workload = "dc:1:21";
  configs[3].workload = "dc:1:55";
  const auto results = run_all(configs, 4);
  EXPECT_EQ(results[0].workload, "fib-7");
  EXPECT_EQ(results[1].workload, "fib-9");
  EXPECT_EQ(results[2].workload, "dc-1-21");
  EXPECT_EQ(results[3].workload, "dc-1-55");
}

TEST(Runner, PropagatesErrors) {
  std::vector<ExperimentConfig> configs(2);
  configs[1].topology = "bogus:1";
  EXPECT_THROW(run_all(configs, 2), ConfigError);
}

// --------------------------------------------------------------------------
// Paper presets
// --------------------------------------------------------------------------

TEST(Presets, SizePointsMatchPaper) {
  const auto& sizes = paper::size_points();
  ASSERT_EQ(sizes.size(), 5u);
  std::vector<std::uint32_t> pes;
  for (const auto& s : sizes) pes.push_back(s.pes);
  EXPECT_EQ(pes, (std::vector<std::uint32_t>{25, 64, 100, 256, 400}));
}

TEST(Presets, WorkloadsMatchPaperSizes) {
  ASSERT_EQ(paper::fib_specs().size(), 6u);
  ASSERT_EQ(paper::dc_specs().size(), 6u);
  // Equal tree sizes pairwise (fib 7 ~ dc 21, ..., fib 18 ~ dc 4181).
  const std::vector<std::uint32_t> fib_args = {7, 9, 11, 13, 15, 18};
  const std::vector<std::int64_t> dc_ns = {21, 55, 144, 377, 987, 4181};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(workload::FibWorkload::tree_size(fib_args[i]),
              workload::DcWorkload::tree_size(1, dc_ns[i]));
  }
}

TEST(Presets, Table1Parameters) {
  EXPECT_EQ(paper::cwn_spec(paper::Family::Grid), "cwn:radius=9,horizon=2");
  EXPECT_EQ(paper::cwn_spec(paper::Family::Dlm), "cwn:radius=5,horizon=1");
  EXPECT_NE(paper::gm_spec(paper::Family::Grid).find("hwm=2"),
            std::string::npos);
  EXPECT_NE(paper::gm_spec(paper::Family::Dlm).find("hwm=1"),
            std::string::npos);
}

TEST(Presets, SamplePointBuildsRunnableConfig) {
  const auto cfg = paper::sample_point(paper::Family::Dlm,
                                       paper::size_points()[0], true,
                                       "fib:9");
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.num_pes, 25u);
  EXPECT_EQ(r.goals_executed, workload::FibWorkload::tree_size(9));
}

// --------------------------------------------------------------------------
// The paper's headline results, at test scale
// --------------------------------------------------------------------------

TEST(PaperHeadline, CwnBeatsGmOnGrid) {
  // Table 2's core finding: CWN yields substantially larger speedups than
  // GM on grids. Test at 8x8 / fib 13 (a mid-table cell).
  ExperimentConfig cwn = paper::base_config();
  cwn.topology = "grid:8x8";
  cwn.strategy = paper::cwn_spec(paper::Family::Grid);
  cwn.workload = "fib:13";
  ExperimentConfig gm = cwn;
  gm.strategy = paper::gm_spec(paper::Family::Grid);
  const auto rc = run_experiment(cwn);
  const auto rg = run_experiment(gm);
  EXPECT_GT(rc.speedup, rg.speedup * 1.10);  // "significant, > 10%"
}

TEST(PaperHeadline, DlmMarginSmallerThanGridMargin) {
  // Table 2: grid speedup ratios reach 2-3x; DLM ratios stay near 1.0-1.5.
  auto ratio = [](const std::string& topo, paper::Family family) {
    ExperimentConfig cwn = paper::base_config();
    cwn.topology = topo;
    cwn.strategy = paper::cwn_spec(family);
    cwn.workload = "fib:13";
    ExperimentConfig gm = cwn;
    gm.strategy = paper::gm_spec(family);
    return run_experiment(cwn).speedup / run_experiment(gm).speedup;
  };
  const double grid_ratio = ratio("grid:8x8", paper::Family::Grid);
  const double dlm_ratio = ratio("dlm:4:8x8", paper::Family::Dlm);
  EXPECT_GT(grid_ratio, dlm_ratio * 0.95);
  EXPECT_GT(dlm_ratio, 0.75);  // GM never wins big on DLM
}

TEST(PaperHeadline, CwnCommunicatesMoreThanGm) {
  // §4: "Typically, it requires thrice as much communication as the GM...
  // the average distance travelled by a goal message is typically less
  // than 1 [for GM]; on the grids, with CWN the distance is about 3."
  ExperimentConfig cwn = paper::base_config();
  cwn.topology = "grid:10x10";
  cwn.strategy = paper::cwn_spec(paper::Family::Grid);
  cwn.workload = "fib:15";
  ExperimentConfig gm = cwn;
  gm.strategy = paper::gm_spec(paper::Family::Grid);
  const auto rc = run_experiment(cwn);
  const auto rg = run_experiment(gm);
  // Our GM re-distributes more than the paper's (see EXPERIMENTS.md), so
  // the distance gap is narrower than the paper's 3.4x but the ordering
  // must hold, along with the absolute ~3-hop CWN average.
  EXPECT_GT(rc.avg_goal_distance, rg.avg_goal_distance);
  EXPECT_GT(rc.goal_transmissions, rg.goal_transmissions);
  EXPECT_NEAR(rc.avg_goal_distance, 3.15, 1.0);  // paper Table 3: 3.15
}

TEST(PaperHeadline, CwnFasterRiseTime) {
  // Plots 11-16: CWN "spreads work quickly to all the PEs at beginning".
  // Compare utilization early in the run (at 20% of GM's completion).
  ExperimentConfig cwn = paper::base_config();
  cwn.topology = "grid:8x8";
  cwn.strategy = paper::cwn_spec(paper::Family::Grid);
  cwn.workload = "fib:14";
  cwn.machine.sample_interval = 50;
  ExperimentConfig gm = cwn;
  gm.strategy = paper::gm_spec(paper::Family::Grid);
  const auto rc = run_experiment(cwn);
  const auto rg = run_experiment(gm);
  const sim::SimTime probe = rg.completion_time / 5;
  EXPECT_GT(rc.utilization_series().interpolate(probe),
            rg.utilization_series().interpolate(probe));
}

}  // namespace
}  // namespace oracle::core
