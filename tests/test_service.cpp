// The resident oracle service (exp::Service + the "s1" service protocol):
// request/response wire round-trips, malformed-frame rejection, and the
// memoization contract — a cold query schedules exactly the missing jobs,
// a warm repeat of the same query is 100% cache hits, runs zero jobs, and
// renders aggregates byte-identical to a direct Aggregator pass over the
// same store. The daemon smoke drives a real TCP poll loop in-process.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "exp/aggregate.hpp"
#include "exp/batch.hpp"
#include "exp/checkpoint.hpp"
#include "exp/service.hpp"
#include "exp/service_protocol.hpp"
#include "obs/status.hpp"
#include "util/error.hpp"
#include "util/net.hpp"

#if !defined(_WIN32)

namespace oracle {
namespace {

using exp::ServiceOp;
using exp::ServiceRequest;
using exp::ServiceResponse;
using exp::ServiceResponseKind;

std::string temp_path(const std::string& name) {
  // Pid-unique: ctest runs each TEST as its own process, concurrently.
  return testing::TempDir() + "oracle_svc_" + std::to_string(::getpid()) +
         "_" + name;
}

/// The fixed fast sweep the service tests query: 1 x 2 x 1 x 2 = 4 jobs.
/// Strategy specs stay comma-free: the wire encoding (like the CLI's
/// --strategies flag) splits list values on commas, so a multi-param spec
/// such as "cwn:radius=3,horizon=1" is not expressible in a query.
core::SweepSpec small_sweep() {
  core::SweepSpec s;
  s.topologies = {"grid:4x4"};
  s.strategies = {"cwn:radius=3", "random"};
  s.workloads = {"fib:8"};
  s.seeds = {1, 2};
  return s;
}

/// Run `spec` directly through the batch engine into `store` (the
/// "already have the results" precondition for warm queries).
void prebuild_store(const core::SweepSpec& spec, const std::string& store) {
  std::remove(store.c_str());
  std::remove(exp::Checkpoint::default_path(store).c_str());
  exp::BatchOptions opt;
  opt.jsonl_path = store;
  opt.collect = false;
  const auto outcome = exp::run_batch(spec.build(), opt);
  ASSERT_TRUE(outcome.report.ok());
}

/// ServiceSink that records everything it is handed.
struct CollectSink : exp::ServiceSink {
  std::vector<std::vector<std::size_t>> progress;
  std::vector<std::pair<std::string, std::string>> tables;
  std::string csv;
  exp::QueryStats stats;
  bool got_stats = false;

  void on_progress(std::size_t total, std::size_t cached,
                   std::size_t scheduled, std::size_t completed) override {
    progress.push_back({total, cached, scheduled, completed});
  }
  void on_table(const std::string& metric, const std::string& table) override {
    tables.emplace_back(metric, table);
  }
  void on_csv(const std::string& c) override { csv = c; }
  void on_stats(const exp::QueryStats& s) override {
    stats = s;
    got_stats = true;
  }
};

// ---------------------------------------------------------- wire protocol --

TEST(ServiceProtocol, SimpleRequestsRoundTrip) {
  for (const auto op :
       {ServiceOp::kPing, ServiceOp::kStatus, ServiceOp::kShutdown}) {
    ServiceRequest req;
    req.seq = 42;
    req.op = op;
    const auto parsed = ServiceRequest::parse(req.encode());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->seq, 42u);
    EXPECT_EQ(parsed->op, op);
  }
}

TEST(ServiceProtocol, QueryRequestRoundTripsEveryField) {
  ServiceRequest req;
  req.seq = 7;
  req.op = ServiceOp::kQuery;
  req.query.sweep.topologies = {"grid:6x6", "dlm:5:10x10"};
  req.query.sweep.strategies = {"cwn:radius=4", "gm"};
  req.query.sweep.workloads = {"fib:11"};
  req.query.sweep.seeds = {3, 9, 27};
  req.query.sweep.sample_interval = 50;
  req.query.sweep.hop_latency = 2;
  req.query.sweep.sim_threads = 4;
  req.query.sweep.sim_partitions = 8;
  req.query.metrics = {"speedup", "avg_utilization"};
  req.query.want_csv = true;
  req.query.target_metric = "speedup";
  req.query.target_ci95 = 0.125;

  const auto parsed = ServiceRequest::parse(req.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ServiceOp::kQuery);
  const auto& s = parsed->query.sweep;
  EXPECT_EQ(s.topologies, req.query.sweep.topologies);
  EXPECT_EQ(s.strategies, req.query.sweep.strategies);
  EXPECT_EQ(s.workloads, req.query.sweep.workloads);
  EXPECT_EQ(s.seeds, req.query.sweep.seeds);
  EXPECT_EQ(s.sample_interval, 50);
  EXPECT_EQ(s.hop_latency, 2);
  EXPECT_EQ(s.sim_threads, 4);
  EXPECT_EQ(s.sim_partitions, 8);
  EXPECT_EQ(parsed->query.metrics, req.query.metrics);
  EXPECT_TRUE(parsed->query.want_csv);
  EXPECT_EQ(parsed->query.target_metric, "speedup");
  EXPECT_DOUBLE_EQ(parsed->query.target_ci95, 0.125);

  // A single-seed axis survives the round trip as an explicit seed, not a
  // replication count (the trailing-comma encoding).
  ServiceRequest one;
  one.op = ServiceOp::kQuery;
  one.query.sweep.seeds = {5};
  const auto p2 = ServiceRequest::parse(one.encode());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->query.sweep.seeds, std::vector<std::uint64_t>{5});

  // Master seed round-trips too (exclusive with target in the *service*,
  // but the protocol carries either).
  ServiceRequest m;
  m.op = ServiceOp::kQuery;
  m.query.sweep.master_seed = 99;
  const auto p3 = ServiceRequest::parse(m.encode());
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->query.sweep.master_seed, 99u);
}

TEST(ServiceProtocol, MalformedRequestsAreRejected) {
  const char* bad[] = {
      "",                          // empty
      "s1",                        // version alone
      "s1 1",                      // no op
      "s0 1 ping",                 // wrong version
      "lp1 1 ping",                // lease protocol, not service
      "s1 x ping",                 // non-numeric seq
      "s1 1 frobnicate",           // unknown op
      "s1 1 ping extra",           // trailing junk on a simple op
      "s1 1 query bogus=1",        // unknown query key
      "s1 1 query topos=",         // empty value
      "s1 1 query seeds=zero",     // malformed seed axis
      "s1 1 query master=0",       // master seed 0 is the off sentinel
      "s1 1 query csv=yes",        // csv must be 0|1
      "s1 1 query target=speedup", // target missing half-width
      "s1 1 query target=speedup:0",  // half-width must be > 0
      "s1 1 query simthreads=0",   // engine threads must be >= 1
  };
  for (const char* payload : bad)
    EXPECT_FALSE(ServiceRequest::parse(payload).has_value()) << payload;
}

TEST(ServiceProtocol, ResponsesRoundTripBytePerfectText) {
  // Free-text bodies (tables, CSV) travel byte-exactly: embedded spaces,
  // pipes, and newlines included — the warm-query byte-identity contract
  // rests on this.
  ServiceResponse table;
  table.seq = 9;
  table.kind = ServiceResponseKind::kTable;
  table.metric = "speedup";
  table.text = "a | b\n--+--\n1 |  2 \n";
  auto parsed = ServiceResponse::parse(table.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, ServiceResponseKind::kTable);
  EXPECT_EQ(parsed->seq, 9u);
  EXPECT_EQ(parsed->metric, "speedup");
  EXPECT_EQ(parsed->text, table.text);

  ServiceResponse stats;
  stats.kind = ServiceResponseKind::kStats;
  stats.total = 10;
  stats.cached = 6;
  stats.scheduled = 4;
  stats.failed = 1;
  stats.rounds = 2;
  stats.wall_us = 123456;
  parsed = ServiceResponse::parse(stats.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total, 10u);
  EXPECT_EQ(parsed->cached, 6u);
  EXPECT_EQ(parsed->scheduled, 4u);
  EXPECT_EQ(parsed->failed, 1u);
  EXPECT_EQ(parsed->rounds, 2u);
  EXPECT_EQ(parsed->wall_us, 123456u);

  ServiceResponse err;
  err.kind = ServiceResponseKind::kError;
  err.text = "unknown metric 'bogus' (try --metric list)";
  parsed = ServiceResponse::parse(err.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, ServiceResponseKind::kError);
  EXPECT_EQ(parsed->text, err.text);

  for (const auto kind : {ServiceResponseKind::kOk, ServiceResponseKind::kDone,
                          ServiceResponseKind::kProgress}) {
    ServiceResponse rsp;
    rsp.kind = kind;
    parsed = ServiceResponse::parse(rsp.encode());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, kind);
  }
}

TEST(ServiceProtocol, MalformedResponsesAreRejected) {
  const char* bad[] = {
      "s1 1 nope",
      "s1 1 ok trailing",
      "s1 1 progress 1 2 3",          // one counter short
      "s1 1 progress 1 2 3 x",        // non-numeric counter
      "s1 1 stats 1 2 3 4 5",         // one counter short
      "s1 1 stats 1 2 3 4 5 6 7",     // one counter long
      "s1 1 table",                   // table without a metric
      "s0 1 done",                    // wrong version
  };
  for (const char* payload : bad)
    EXPECT_FALSE(ServiceResponse::parse(payload).has_value()) << payload;
}

// --------------------------------------------------------- query semantics --

TEST(Service, WarmQueryIsAllHitsAndByteIdenticalToAggregate) {
  const auto store = temp_path("warm.jsonl");
  const auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  exp::Service service(opt);
  service.open();
  EXPECT_EQ(service.index().size(), spec.size());

  exp::ServiceQuery q;
  q.sweep = spec;
  q.metrics = {"speedup", "avg_utilization"};
  q.want_csv = true;
  CollectSink sink;
  const auto stats = service.query(q, sink);

  EXPECT_EQ(stats.total, spec.size());
  EXPECT_EQ(stats.cached, spec.size());
  EXPECT_EQ(stats.scheduled, 0u);  // the whole point: zero jobs re-run
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rounds, 1u);
  ASSERT_TRUE(sink.got_stats);

  // Byte-identity with a direct aggregation over the same store.
  const auto agg = exp::Aggregator::from_jsonl_files({store});
  const auto groups = agg.summarize();
  ASSERT_EQ(sink.tables.size(), 2u);
  EXPECT_EQ(sink.tables[0].first, "speedup");
  EXPECT_EQ(sink.tables[0].second, exp::Aggregator::to_table(groups, "speedup"));
  EXPECT_EQ(sink.tables[1].second,
            exp::Aggregator::to_table(groups, "avg_utilization"));
  EXPECT_EQ(sink.csv, exp::Aggregator::to_csv(groups));
}

TEST(Service, ColdQuerySchedulesOnlyTheMissingJobs) {
  const auto store = temp_path("cold.jsonl");
  auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  exp::Service service(opt);

  // Grow the seed axis: 2 of 6 points per strategy are new.
  spec.seeds = {1, 2, 3};
  exp::ServiceQuery q;
  q.sweep = spec;
  CollectSink sink;
  const auto stats = service.query(q, sink);
  EXPECT_EQ(stats.total, 6u);
  EXPECT_EQ(stats.cached, 4u);
  EXPECT_EQ(stats.scheduled, 2u);
  EXPECT_EQ(stats.failed, 0u);

  // The scheduled jobs were committed to the canonical store, so the same
  // query again is now fully warm.
  CollectSink warm;
  const auto again = service.query(q, warm);
  EXPECT_EQ(again.cached, 6u);
  EXPECT_EQ(again.scheduled, 0u);
  ASSERT_FALSE(warm.tables.empty());
  ASSERT_FALSE(sink.tables.empty());
  // And renders the identical bytes the cold query rendered.
  EXPECT_EQ(warm.tables[0].second, sink.tables[0].second);
}

TEST(Service, PrecisionTargetExtendsTheSeedAxis) {
  const auto store = temp_path("target.jsonl");
  const auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  opt.max_target_rounds = 2;
  exp::Service service(opt);

  // An absurdly tight target can never be met: the service must extend
  // the seed axis once per round and stop at the round cap.
  exp::ServiceQuery q;
  q.sweep = spec;
  q.target_metric = "speedup";
  q.target_ci95 = 1e-12;
  CollectSink sink;
  const auto stats = service.query(q, sink);
  EXPECT_EQ(stats.rounds, 3u);          // initial + 2 extension rounds
  EXPECT_EQ(stats.total, 2u * 4u);      // seeds {1,2} grew to {1,2,3,4}
  EXPECT_EQ(stats.cached, spec.size()); // the pre-built points stayed hits
  EXPECT_EQ(stats.scheduled, 4u);       // only the fresh seeds ran

  // A generous target is satisfied by the cached replications alone.
  q.target_ci95 = 1e9;
  CollectSink easy;
  const auto met = service.query(q, easy);
  EXPECT_EQ(met.rounds, 1u);
  EXPECT_EQ(met.scheduled, 0u);
}

TEST(Service, InvalidQueriesThrowConfigError) {
  const auto store = temp_path("invalid.jsonl");
  prebuild_store(small_sweep(), store);
  exp::ServiceOptions opt;
  opt.store = store;
  exp::Service service(opt);

  CollectSink sink;
  exp::ServiceQuery q;
  q.sweep = small_sweep();
  q.metrics = {"bogus"};
  EXPECT_THROW(service.query(q, sink), ConfigError);

  q = {};
  q.sweep = small_sweep();
  q.target_metric = "speedup";
  q.target_ci95 = 0.1;
  q.sweep.master_seed = 5;  // target + master seed: refused
  EXPECT_THROW(service.query(q, sink), ConfigError);

  exp::Service no_store{exp::ServiceOptions{}};
  EXPECT_THROW(no_store.open(), ConfigError);
}

// ----------------------------------------------------------- daemon smoke --

/// In-process daemon on an ephemeral port, serving until stop().
struct ServiceThread {
  explicit ServiceThread(exp::ServiceOptions opt) : svc(std::move(opt)) {
    svc.start();
    th = std::thread([this] { stats = svc.run(); });
  }
  ~ServiceThread() {
    svc.stop();
    if (th.joinable()) th.join();
  }
  void join() {
    if (th.joinable()) th.join();
  }

  exp::Service svc;
  exp::ServiceStats stats;
  std::thread th;
};

util::NetDeadline in_1s() {
  return util::NetClock::now() + std::chrono::seconds(1);
}
util::NetDeadline in_30s() {
  return util::NetClock::now() + std::chrono::seconds(30);
}

util::Socket connect_to(std::uint16_t port) {
  auto sock = util::connect_tcp({"127.0.0.1", port}, in_1s());
  EXPECT_TRUE(sock.valid());
  return sock;
}

std::optional<ServiceResponse> exchange(int fd, const ServiceRequest& req) {
  if (!util::send_frame(fd, req.encode(), in_1s(), exp::kServiceMaxFrameBytes))
    return std::nullopt;
  const auto payload =
      util::recv_frame(fd, in_30s(), exp::kServiceMaxFrameBytes);
  if (!payload) return std::nullopt;
  return ServiceResponse::parse(*payload);
}

TEST(ServiceDaemon, ServesPingStatusQueryAndShutdown) {
  const auto store = temp_path("daemon.jsonl");
  const auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  opt.status_path = temp_path("daemon_status.json");
  ServiceThread daemon(opt);
  ASSERT_GT(daemon.svc.port(), 0);

  auto conn = connect_to(daemon.svc.port());

  ServiceRequest ping;
  ping.seq = 1;
  ping.op = ServiceOp::kPing;
  auto rsp = exchange(conn.fd(), ping);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kOk);
  EXPECT_EQ(rsp->seq, 1u);

  ServiceRequest status;
  status.seq = 2;
  status.op = ServiceOp::kStatus;
  rsp = exchange(conn.fd(), status);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kStatus);
  const auto snap = obs::StatusSnapshot::parse(rsp->text);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->phase, "serving");

  // Warm query over the wire: progress then stats/tables then done, with
  // zero jobs scheduled and the table byte-identical to aggregation.
  ServiceRequest query;
  query.seq = 3;
  query.op = ServiceOp::kQuery;
  query.query.sweep = spec;
  ASSERT_TRUE(util::send_frame(conn.fd(), query.encode(), in_1s(),
                               exp::kServiceMaxFrameBytes));
  std::string table;
  exp::QueryStats qstats;
  bool done = false;
  while (!done) {
    const auto payload =
        util::recv_frame(conn.fd(), in_30s(), exp::kServiceMaxFrameBytes);
    ASSERT_TRUE(payload.has_value());
    const auto r = ServiceResponse::parse(*payload);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->seq, 3u);
    switch (r->kind) {
      case ServiceResponseKind::kTable:
        EXPECT_EQ(r->metric, "speedup");
        table = r->text;
        break;
      case ServiceResponseKind::kStats:
        qstats.total = r->total;
        qstats.cached = r->cached;
        qstats.scheduled = r->scheduled;
        break;
      case ServiceResponseKind::kDone:
        done = true;
        break;
      case ServiceResponseKind::kError:
        FAIL() << "server error: " << r->text;
      default:
        break;
    }
  }
  EXPECT_EQ(qstats.total, spec.size());
  EXPECT_EQ(qstats.cached, spec.size());
  EXPECT_EQ(qstats.scheduled, 0u);
  const auto agg = exp::Aggregator::from_jsonl_files({store});
  EXPECT_EQ(table, exp::Aggregator::to_table(agg.summarize(), "speedup"));

  // An invalid query is answered with an error frame, not a drop.
  ServiceRequest badq;
  badq.seq = 4;
  badq.op = ServiceOp::kQuery;
  badq.query.sweep = spec;
  badq.query.metrics = {"bogus"};
  rsp = exchange(conn.fd(), badq);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kError);

  ServiceRequest shutdown;
  shutdown.seq = 5;
  shutdown.op = ServiceOp::kShutdown;
  rsp = exchange(conn.fd(), shutdown);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kOk);
  daemon.join();
  EXPECT_TRUE(daemon.stats.shutdown_requested);
  EXPECT_EQ(daemon.stats.requests, 5u);
  EXPECT_EQ(daemon.stats.queries, 2u);
  EXPECT_EQ(daemon.stats.cache_hits, spec.size());
  EXPECT_EQ(daemon.stats.jobs_scheduled, 0u);
  EXPECT_EQ(daemon.stats.bad_requests, 1u);
}

TEST(ServiceDaemon, MalformedFramesDropTheConnectionOnly) {
  const auto store = temp_path("malformed.jsonl");
  prebuild_store(small_sweep(), store);
  exp::ServiceOptions opt;
  opt.store = store;
  ServiceThread daemon(opt);

  // Garbage on one connection: the server drops it...
  auto bad = connect_to(daemon.svc.port());
  ASSERT_TRUE(util::send_frame(bad.fd(), "lp1 1 acquire", in_1s(),
                               exp::kServiceMaxFrameBytes));
  EXPECT_FALSE(
      util::recv_frame(bad.fd(), in_1s(), exp::kServiceMaxFrameBytes)
          .has_value());

  // ...while a fresh, well-behaved connection is unaffected.
  auto good = connect_to(daemon.svc.port());
  ServiceRequest ping;
  ping.seq = 11;
  ping.op = ServiceOp::kPing;
  const auto rsp = exchange(good.fd(), ping);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kOk);

  daemon.svc.stop();
  daemon.join();
  EXPECT_EQ(daemon.stats.bad_requests, 1u);
}

}  // namespace
}  // namespace oracle

#endif  // !_WIN32
