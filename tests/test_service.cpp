// The resident oracle service (exp::Service + the "s1" service protocol):
// request/response wire round-trips, malformed-frame rejection, and the
// memoization contract — a cold query schedules exactly the missing jobs,
// a warm repeat of the same query is 100% cache hits, runs zero jobs, and
// renders aggregates byte-identical to a direct Aggregator pass over the
// same store. The daemon smoke drives a real TCP poll loop in-process.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "exp/aggregate.hpp"
#include "exp/batch.hpp"
#include "exp/checkpoint.hpp"
#include "exp/job_queue.hpp"
#include "exp/result_sink.hpp"
#include "exp/service.hpp"
#include "exp/service_protocol.hpp"
#include "obs/status.hpp"
#include "stats/run_result.hpp"
#include "util/error.hpp"
#include "util/net.hpp"

#if !defined(_WIN32)

namespace oracle {
namespace {

using exp::ServiceOp;
using exp::ServiceRequest;
using exp::ServiceResponse;
using exp::ServiceResponseKind;

std::string temp_path(const std::string& name) {
  // Pid-unique: ctest runs each TEST as its own process, concurrently.
  return testing::TempDir() + "oracle_svc_" + std::to_string(::getpid()) +
         "_" + name;
}

/// The fixed fast sweep the service tests query: 1 x 2 x 1 x 2 = 4 jobs.
/// Strategy specs stay comma-free: the wire encoding (like the CLI's
/// --strategies flag) splits list values on commas, so a multi-param spec
/// such as "cwn:radius=3,horizon=1" is not expressible in a query.
core::SweepSpec small_sweep() {
  core::SweepSpec s;
  s.topologies = {"grid:4x4"};
  s.strategies = {"cwn:radius=3", "random"};
  s.workloads = {"fib:8"};
  s.seeds = {1, 2};
  return s;
}

/// Run `spec` directly through the batch engine into `store` (the
/// "already have the results" precondition for warm queries).
void prebuild_store(const core::SweepSpec& spec, const std::string& store) {
  std::remove(store.c_str());
  std::remove(exp::Checkpoint::default_path(store).c_str());
  exp::BatchOptions opt;
  opt.jsonl_path = store;
  opt.collect = false;
  const auto outcome = exp::run_batch(spec.build(), opt);
  ASSERT_TRUE(outcome.report.ok());
}

/// A fabricated run record for `job`: identification from the config,
/// metrics chosen by the test. Lets a test author a store with exact
/// metric values (NaN, pinned single samples) without running anything.
stats::RunResult fabricated_result(const exp::ExperimentJob& job,
                                   double speedup) {
  stats::RunResult r;
  r.topology = job.config.topology;
  r.strategy = job.config.strategy;
  r.workload = job.config.workload;
  r.num_pes = 16;
  r.seed = job.config.machine.seed;
  r.completion_time = 1000;
  r.goals_executed = 10;
  r.total_work = 500;
  r.critical_path = 100;
  r.avg_utilization = 0.5;
  r.speedup = speedup;
  r.events_executed = 42;
  return r;
}

/// Write one fabricated record per job of `spec` into `store` (the warm
/// precondition, without paying for simulations).
void fabricate_store(const core::SweepSpec& spec, const std::string& store,
                     double speedup = 2.0) {
  std::remove(store.c_str());
  std::remove(exp::Checkpoint::default_path(store).c_str());
  exp::JobQueue queue(spec.build());
  std::ofstream out(store, std::ios::binary);
  ASSERT_TRUE(out.is_open());
  for (const auto& job : queue.jobs())
    out << exp::jsonl_record(job, fabricated_result(job, speedup)) << '\n';
}

/// ServiceSink that records everything it is handed.
struct CollectSink : exp::ServiceSink {
  std::vector<std::vector<std::size_t>> progress;
  std::vector<std::pair<std::string, std::string>> tables;
  std::string csv;
  exp::QueryStats stats;
  bool got_stats = false;

  void on_progress(std::size_t total, std::size_t cached,
                   std::size_t scheduled, std::size_t completed) override {
    progress.push_back({total, cached, scheduled, completed});
  }
  void on_table(const std::string& metric, const std::string& table) override {
    tables.emplace_back(metric, table);
  }
  void on_csv(const std::string& c) override { csv = c; }
  void on_stats(const exp::QueryStats& s) override {
    stats = s;
    got_stats = true;
  }
};

// ---------------------------------------------------------- wire protocol --

TEST(ServiceProtocol, SimpleRequestsRoundTrip) {
  for (const auto op :
       {ServiceOp::kPing, ServiceOp::kStatus, ServiceOp::kShutdown}) {
    ServiceRequest req;
    req.seq = 42;
    req.op = op;
    const auto parsed = ServiceRequest::parse(req.encode());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->seq, 42u);
    EXPECT_EQ(parsed->op, op);
  }
}

TEST(ServiceProtocol, QueryRequestRoundTripsEveryField) {
  ServiceRequest req;
  req.seq = 7;
  req.op = ServiceOp::kQuery;
  req.query.sweep.topologies = {"grid:6x6", "dlm:5:10x10"};
  req.query.sweep.strategies = {"cwn:radius=4", "gm"};
  req.query.sweep.workloads = {"fib:11"};
  req.query.sweep.seeds = {3, 9, 27};
  req.query.sweep.sample_interval = 50;
  req.query.sweep.hop_latency = 2;
  req.query.sweep.sim_threads = 4;
  req.query.sweep.sim_partitions = 8;
  req.query.metrics = {"speedup", "avg_utilization"};
  req.query.want_csv = true;
  req.query.target_metric = "speedup";
  req.query.target_ci95 = 0.125;

  const auto parsed = ServiceRequest::parse(req.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ServiceOp::kQuery);
  const auto& s = parsed->query.sweep;
  EXPECT_EQ(s.topologies, req.query.sweep.topologies);
  EXPECT_EQ(s.strategies, req.query.sweep.strategies);
  EXPECT_EQ(s.workloads, req.query.sweep.workloads);
  EXPECT_EQ(s.seeds, req.query.sweep.seeds);
  EXPECT_EQ(s.sample_interval, 50);
  EXPECT_EQ(s.hop_latency, 2);
  EXPECT_EQ(s.sim_threads, 4);
  EXPECT_EQ(s.sim_partitions, 8);
  EXPECT_EQ(parsed->query.metrics, req.query.metrics);
  EXPECT_TRUE(parsed->query.want_csv);
  EXPECT_EQ(parsed->query.target_metric, "speedup");
  EXPECT_DOUBLE_EQ(parsed->query.target_ci95, 0.125);

  // A single-seed axis survives the round trip as an explicit seed, not a
  // replication count (the trailing-comma encoding).
  ServiceRequest one;
  one.op = ServiceOp::kQuery;
  one.query.sweep.seeds = {5};
  const auto p2 = ServiceRequest::parse(one.encode());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->query.sweep.seeds, std::vector<std::uint64_t>{5});

  // Master seed round-trips too (exclusive with target in the *service*,
  // but the protocol carries either).
  ServiceRequest m;
  m.op = ServiceOp::kQuery;
  m.query.sweep.master_seed = 99;
  const auto p3 = ServiceRequest::parse(m.encode());
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->query.sweep.master_seed, 99u);
}

TEST(ServiceProtocol, MalformedRequestsAreRejected) {
  const char* bad[] = {
      "",                          // empty
      "s1",                        // version alone
      "s1 1",                      // no op
      "s0 1 ping",                 // wrong version
      "lp1 1 ping",                // lease protocol, not service
      "s1 x ping",                 // non-numeric seq
      "s1 1 frobnicate",           // unknown op
      "s1 1 ping extra",           // trailing junk on a simple op
      "s1 1 query bogus=1",        // unknown query key
      "s1 1 query topos=",         // empty value
      "s1 1 query seeds=zero",     // malformed seed axis
      "s1 1 query master=0",       // master seed 0 is the off sentinel
      "s1 1 query csv=yes",        // csv must be 0|1
      "s1 1 query target=speedup", // target missing half-width
      "s1 1 query target=speedup:0",  // half-width must be > 0
      "s1 1 query simthreads=0",   // engine threads must be >= 1
  };
  for (const char* payload : bad)
    EXPECT_FALSE(ServiceRequest::parse(payload).has_value()) << payload;
}

TEST(ServiceProtocol, ResponsesRoundTripBytePerfectText) {
  // Free-text bodies (tables, CSV) travel byte-exactly: embedded spaces,
  // pipes, and newlines included — the warm-query byte-identity contract
  // rests on this.
  ServiceResponse table;
  table.seq = 9;
  table.kind = ServiceResponseKind::kTable;
  table.metric = "speedup";
  table.text = "a | b\n--+--\n1 |  2 \n";
  auto parsed = ServiceResponse::parse(table.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, ServiceResponseKind::kTable);
  EXPECT_EQ(parsed->seq, 9u);
  EXPECT_EQ(parsed->metric, "speedup");
  EXPECT_EQ(parsed->text, table.text);

  ServiceResponse stats;
  stats.kind = ServiceResponseKind::kStats;
  stats.total = 10;
  stats.cached = 6;
  stats.scheduled = 4;
  stats.failed = 1;
  stats.rounds = 2;
  stats.wall_us = 123456;
  parsed = ServiceResponse::parse(stats.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total, 10u);
  EXPECT_EQ(parsed->cached, 6u);
  EXPECT_EQ(parsed->scheduled, 4u);
  EXPECT_EQ(parsed->failed, 1u);
  EXPECT_EQ(parsed->rounds, 2u);
  EXPECT_EQ(parsed->wall_us, 123456u);

  ServiceResponse err;
  err.kind = ServiceResponseKind::kError;
  err.text = "unknown metric 'bogus' (try --metric list)";
  parsed = ServiceResponse::parse(err.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, ServiceResponseKind::kError);
  EXPECT_EQ(parsed->text, err.text);

  for (const auto kind : {ServiceResponseKind::kOk, ServiceResponseKind::kDone,
                          ServiceResponseKind::kProgress}) {
    ServiceResponse rsp;
    rsp.kind = kind;
    parsed = ServiceResponse::parse(rsp.encode());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, kind);
  }
}

TEST(ServiceProtocol, MalformedResponsesAreRejected) {
  const char* bad[] = {
      "s1 1 nope",
      "s1 1 ok trailing",
      "s1 1 progress 1 2 3",          // one counter short
      "s1 1 progress 1 2 3 x",        // non-numeric counter
      "s1 1 stats 1 2 3 4 5",         // one counter short
      "s1 1 stats 1 2 3 4 5 6 7",     // one counter long
      "s1 1 table",                   // table without a metric
      "s0 1 done",                    // wrong version
  };
  for (const char* payload : bad)
    EXPECT_FALSE(ServiceResponse::parse(payload).has_value()) << payload;
}

// --------------------------------------------------------- query semantics --

TEST(Service, WarmQueryIsAllHitsAndByteIdenticalToAggregate) {
  const auto store = temp_path("warm.jsonl");
  const auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  exp::Service service(opt);
  service.open();
  EXPECT_EQ(service.index().size(), spec.size());

  exp::ServiceQuery q;
  q.sweep = spec;
  q.metrics = {"speedup", "avg_utilization"};
  q.want_csv = true;
  CollectSink sink;
  const auto stats = service.query(q, sink);

  EXPECT_EQ(stats.total, spec.size());
  EXPECT_EQ(stats.cached, spec.size());
  EXPECT_EQ(stats.scheduled, 0u);  // the whole point: zero jobs re-run
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rounds, 1u);
  ASSERT_TRUE(sink.got_stats);

  // Byte-identity with a direct aggregation over the same store.
  const auto agg = exp::Aggregator::from_jsonl_files({store});
  const auto groups = agg.summarize();
  ASSERT_EQ(sink.tables.size(), 2u);
  EXPECT_EQ(sink.tables[0].first, "speedup");
  EXPECT_EQ(sink.tables[0].second, exp::Aggregator::to_table(groups, "speedup"));
  EXPECT_EQ(sink.tables[1].second,
            exp::Aggregator::to_table(groups, "avg_utilization"));
  EXPECT_EQ(sink.csv, exp::Aggregator::to_csv(groups));
}

TEST(Service, ColdQuerySchedulesOnlyTheMissingJobs) {
  const auto store = temp_path("cold.jsonl");
  auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  exp::Service service(opt);

  // Grow the seed axis: 2 of 6 points per strategy are new.
  spec.seeds = {1, 2, 3};
  exp::ServiceQuery q;
  q.sweep = spec;
  CollectSink sink;
  const auto stats = service.query(q, sink);
  EXPECT_EQ(stats.total, 6u);
  EXPECT_EQ(stats.cached, 4u);
  EXPECT_EQ(stats.scheduled, 2u);
  EXPECT_EQ(stats.failed, 0u);

  // The scheduled jobs were committed to the canonical store, so the same
  // query again is now fully warm.
  CollectSink warm;
  const auto again = service.query(q, warm);
  EXPECT_EQ(again.cached, 6u);
  EXPECT_EQ(again.scheduled, 0u);
  ASSERT_FALSE(warm.tables.empty());
  ASSERT_FALSE(sink.tables.empty());
  // And renders the identical bytes the cold query rendered.
  EXPECT_EQ(warm.tables[0].second, sink.tables[0].second);
}

TEST(Service, PrecisionTargetExtendsTheSeedAxis) {
  const auto store = temp_path("target.jsonl");
  const auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  opt.max_target_rounds = 2;
  exp::Service service(opt);

  // An absurdly tight target can never be met: the service must extend
  // the seed axis once per round and stop at the round cap.
  exp::ServiceQuery q;
  q.sweep = spec;
  q.target_metric = "speedup";
  q.target_ci95 = 1e-12;
  CollectSink sink;
  const auto stats = service.query(q, sink);
  EXPECT_EQ(stats.rounds, 3u);          // initial + 2 extension rounds
  EXPECT_EQ(stats.total, 2u * 4u);      // seeds {1,2} grew to {1,2,3,4}
  EXPECT_EQ(stats.cached, spec.size()); // the pre-built points stayed hits
  EXPECT_EQ(stats.scheduled, 4u);       // only the fresh seeds ran

  // A generous target is satisfied by the cached replications alone.
  q.target_ci95 = 1e9;
  CollectSink easy;
  const auto met = service.query(q, easy);
  EXPECT_EQ(met.rounds, 1u);
  EXPECT_EQ(met.scheduled, 0u);
}

TEST(Service, InvalidQueriesThrowConfigError) {
  const auto store = temp_path("invalid.jsonl");
  prebuild_store(small_sweep(), store);
  exp::ServiceOptions opt;
  opt.store = store;
  exp::Service service(opt);

  CollectSink sink;
  exp::ServiceQuery q;
  q.sweep = small_sweep();
  q.metrics = {"bogus"};
  EXPECT_THROW(service.query(q, sink), ConfigError);

  q = {};
  q.sweep = small_sweep();
  q.target_metric = "speedup";
  q.target_ci95 = 0.1;
  q.sweep.master_seed = 5;  // target + master seed: refused
  EXPECT_THROW(service.query(q, sink), ConfigError);

  exp::Service no_store{exp::ServiceOptions{}};
  EXPECT_THROW(no_store.open(), ConfigError);
}

// ----------------------------------------------------------- daemon smoke --

/// In-process daemon on an ephemeral port, serving until stop().
struct ServiceThread {
  explicit ServiceThread(exp::ServiceOptions opt) : svc(std::move(opt)) {
    svc.start();
    th = std::thread([this] { stats = svc.run(); });
  }
  ~ServiceThread() {
    svc.stop();
    if (th.joinable()) th.join();
  }
  void join() {
    if (th.joinable()) th.join();
  }

  exp::Service svc;
  exp::ServiceStats stats;
  std::thread th;
};

util::NetDeadline in_1s() {
  return util::NetClock::now() + std::chrono::seconds(1);
}
util::NetDeadline in_30s() {
  return util::NetClock::now() + std::chrono::seconds(30);
}

util::Socket connect_to(std::uint16_t port) {
  auto sock = util::connect_tcp({"127.0.0.1", port}, in_1s());
  EXPECT_TRUE(sock.valid());
  return sock;
}

std::optional<ServiceResponse> exchange(int fd, const ServiceRequest& req) {
  if (!util::send_frame(fd, req.encode(), in_1s(), exp::kServiceMaxFrameBytes))
    return std::nullopt;
  const auto payload =
      util::recv_frame(fd, in_30s(), exp::kServiceMaxFrameBytes);
  if (!payload) return std::nullopt;
  return ServiceResponse::parse(*payload);
}

TEST(ServiceDaemon, ServesPingStatusQueryAndShutdown) {
  const auto store = temp_path("daemon.jsonl");
  const auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  opt.status_path = temp_path("daemon_status.json");
  ServiceThread daemon(opt);
  ASSERT_GT(daemon.svc.port(), 0);

  auto conn = connect_to(daemon.svc.port());

  ServiceRequest ping;
  ping.seq = 1;
  ping.op = ServiceOp::kPing;
  auto rsp = exchange(conn.fd(), ping);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kOk);
  EXPECT_EQ(rsp->seq, 1u);

  ServiceRequest status;
  status.seq = 2;
  status.op = ServiceOp::kStatus;
  rsp = exchange(conn.fd(), status);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kStatus);
  const auto snap = obs::StatusSnapshot::parse(rsp->text);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->phase, "serving");

  // Warm query over the wire: progress then stats/tables then done, with
  // zero jobs scheduled and the table byte-identical to aggregation.
  ServiceRequest query;
  query.seq = 3;
  query.op = ServiceOp::kQuery;
  query.query.sweep = spec;
  ASSERT_TRUE(util::send_frame(conn.fd(), query.encode(), in_1s(),
                               exp::kServiceMaxFrameBytes));
  std::string table;
  exp::QueryStats qstats;
  bool done = false;
  while (!done) {
    const auto payload =
        util::recv_frame(conn.fd(), in_30s(), exp::kServiceMaxFrameBytes);
    ASSERT_TRUE(payload.has_value());
    const auto r = ServiceResponse::parse(*payload);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->seq, 3u);
    switch (r->kind) {
      case ServiceResponseKind::kTable:
        EXPECT_EQ(r->metric, "speedup");
        table = r->text;
        break;
      case ServiceResponseKind::kStats:
        qstats.total = r->total;
        qstats.cached = r->cached;
        qstats.scheduled = r->scheduled;
        break;
      case ServiceResponseKind::kDone:
        done = true;
        break;
      case ServiceResponseKind::kError:
        FAIL() << "server error: " << r->text;
      default:
        break;
    }
  }
  EXPECT_EQ(qstats.total, spec.size());
  EXPECT_EQ(qstats.cached, spec.size());
  EXPECT_EQ(qstats.scheduled, 0u);
  const auto agg = exp::Aggregator::from_jsonl_files({store});
  EXPECT_EQ(table, exp::Aggregator::to_table(agg.summarize(), "speedup"));

  // An invalid query is answered with an error frame, not a drop.
  ServiceRequest badq;
  badq.seq = 4;
  badq.op = ServiceOp::kQuery;
  badq.query.sweep = spec;
  badq.query.metrics = {"bogus"};
  rsp = exchange(conn.fd(), badq);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kError);

  ServiceRequest shutdown;
  shutdown.seq = 5;
  shutdown.op = ServiceOp::kShutdown;
  rsp = exchange(conn.fd(), shutdown);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kOk);
  daemon.join();
  EXPECT_TRUE(daemon.stats.shutdown_requested);
  EXPECT_EQ(daemon.stats.requests, 5u);
  EXPECT_EQ(daemon.stats.queries, 2u);
  EXPECT_EQ(daemon.stats.cache_hits, spec.size());
  EXPECT_EQ(daemon.stats.jobs_scheduled, 0u);
  EXPECT_EQ(daemon.stats.bad_requests, 1u);
}

TEST(ServiceDaemon, MalformedFramesDropTheConnectionOnly) {
  const auto store = temp_path("malformed.jsonl");
  prebuild_store(small_sweep(), store);
  exp::ServiceOptions opt;
  opt.store = store;
  ServiceThread daemon(opt);

  // Garbage on one connection: the server drops it...
  auto bad = connect_to(daemon.svc.port());
  ASSERT_TRUE(util::send_frame(bad.fd(), "lp1 1 acquire", in_1s(),
                               exp::kServiceMaxFrameBytes));
  EXPECT_FALSE(
      util::recv_frame(bad.fd(), in_1s(), exp::kServiceMaxFrameBytes)
          .has_value());

  // ...while a fresh, well-behaved connection is unaffected.
  auto good = connect_to(daemon.svc.port());
  ServiceRequest ping;
  ping.seq = 11;
  ping.op = ServiceOp::kPing;
  const auto rsp = exchange(good.fd(), ping);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kOk);

  daemon.svc.stop();
  daemon.join();
  EXPECT_EQ(daemon.stats.bad_requests, 1u);
}

// --------------------------------------------- precision-target diagnostics --

TEST(Service, PrecisionTargetRejectsNaNMetric) {
  // A store whose target metric is NaN must fail the query loudly: NaN
  // poisons every `ci95 > target` comparison into false, which would
  // otherwise report the target as met after round one.
  const auto store = temp_path("nan_target.jsonl");
  core::SweepSpec spec;
  spec.topologies = {"grid:4x4"};
  spec.strategies = {"random"};
  spec.workloads = {"fib:8"};
  spec.seeds = {1, 2};
  fabricate_store(spec, store, std::numeric_limits<double>::quiet_NaN());

  exp::ServiceOptions opt;
  opt.store = store;
  exp::Service service(opt);

  exp::ServiceQuery q;
  q.sweep = spec;
  q.target_metric = "speedup";
  q.target_ci95 = 0.1;
  CollectSink sink;
  try {
    service.query(q, sink);
    FAIL() << "a NaN target metric must throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos)
        << e.what();
  }
}

TEST(Service, PrecisionTargetStopsWhenRoundsCannotProgress) {
  // One pinned sample (ci95 = 0 with n = 1 never satisfies a target) whose
  // extension jobs always fail — the "nonsense" topology parses at run
  // time and throws, so no extension round can ever add a sample. The
  // query must terminate with a diagnostic instead of burning every round.
  const auto store = temp_path("pinned.jsonl");
  core::SweepSpec spec;
  spec.topologies = {"nonsense:9q"};
  spec.strategies = {"random"};
  spec.workloads = {"fib:8"};
  spec.seeds = {1};
  fabricate_store(spec, store, 2.0);

  exp::ServiceOptions opt;
  opt.store = store;
  opt.max_target_rounds = 8;
  exp::Service service(opt);

  exp::ServiceQuery q;
  q.sweep = spec;
  q.target_metric = "speedup";
  q.target_ci95 = 0.5;
  CollectSink sink;
  try {
    service.query(q, sink);
    FAIL() << "a target that cannot make progress must throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("progress"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- daemon concurrency --

/// Drive one query over an already-connected socket: send, then read the
/// whole response stream. Returns false on any transport/parse problem.
struct WireQueryResult {
  std::vector<std::pair<std::string, std::string>> tables;
  exp::QueryStats stats;
  bool done = false;
  bool error = false;
  std::string error_text;
};

bool run_wire_query(int fd, const exp::ServiceQuery& q, std::uint64_t seq,
                    WireQueryResult& out) {
  ServiceRequest req;
  req.seq = seq;
  req.op = ServiceOp::kQuery;
  req.query = q;
  if (!util::send_frame(fd, req.encode(), in_30s(),
                        exp::kServiceMaxFrameBytes))
    return false;
  while (true) {
    const auto payload =
        util::recv_frame(fd, in_30s(), exp::kServiceMaxFrameBytes);
    if (!payload) return false;
    const auto rsp = ServiceResponse::parse(*payload);
    if (!rsp || rsp->seq != seq) return false;
    switch (rsp->kind) {
      case ServiceResponseKind::kTable:
        out.tables.emplace_back(rsp->metric, rsp->text);
        break;
      case ServiceResponseKind::kStats:
        out.stats.total = rsp->total;
        out.stats.cached = rsp->cached;
        out.stats.scheduled = rsp->scheduled;
        out.stats.failed = rsp->failed;
        out.stats.rounds = rsp->rounds;
        break;
      case ServiceResponseKind::kError:
        out.error = true;
        out.error_text = rsp->text;
        return true;
      case ServiceResponseKind::kDone:
        out.done = true;
        return true;
      default:
        break;
    }
  }
}

TEST(ServiceDaemon, ConcurrentWarmAndColdQueriesStayByteIdentical) {
  const auto store = temp_path("concurrent.jsonl");
  const auto spec = small_sweep();
  prebuild_store(spec, store);

  // The reference bytes BEFORE any cold query appends: a warm query names
  // exactly the prebuilt grid points, so later appends (other hashes) must
  // not change its answer.
  const auto ref_agg = exp::Aggregator::from_jsonl_files({store});
  const auto reference =
      exp::Aggregator::to_table(ref_agg.summarize(), "speedup");

  exp::ServiceOptions opt;
  opt.store = store;
  opt.poll_ms = 10;
  ServiceThread daemon(opt);
  ASSERT_GT(daemon.svc.port(), 0);

  // 4 warm + 4 cold clients at once. Each cold query asks one fresh seed
  // (a job the store does not have), so it schedules exactly one job.
  constexpr int kWarm = 4;
  constexpr int kCold = 4;
  std::vector<WireQueryResult> results(kWarm + kCold);
  // Not vector<bool>: distinct elements must be writable from distinct
  // threads without a shared-word data race.
  std::vector<char> transported(kWarm + kCold, 0);
  std::vector<std::thread> clients;
  for (int i = 0; i < kWarm + kCold; ++i) {
    clients.emplace_back([&, i] {
      auto sock = connect_to(daemon.svc.port());
      if (!sock.valid()) return;
      exp::ServiceQuery q;
      if (i < kWarm) {
        q.sweep = spec;
      } else {
        q.sweep = spec;
        q.sweep.strategies = {"random"};
        q.sweep.seeds = {100u + static_cast<std::uint64_t>(i)};
      }
      transported[static_cast<std::size_t>(i)] = run_wire_query(
          sock.fd(), q, 1000u + static_cast<std::uint64_t>(i),
          results[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kWarm + kCold; ++i) {
    ASSERT_TRUE(transported[static_cast<std::size_t>(i)]) << "client " << i;
    const auto& r = results[static_cast<std::size_t>(i)];
    ASSERT_TRUE(r.done) << "client " << i << ": " << r.error_text;
    EXPECT_EQ(r.stats.failed, 0u);
    ASSERT_EQ(r.tables.size(), 1u);
    if (i < kWarm) {
      // The concurrency contract: byte-identical to serial aggregation,
      // no matter how many clients were being served.
      EXPECT_EQ(r.tables[0].second, reference) << "warm client " << i;
      EXPECT_EQ(r.stats.cached, spec.size());
      EXPECT_EQ(r.stats.scheduled, 0u);
    } else {
      EXPECT_EQ(r.stats.cached, 0u);
      EXPECT_EQ(r.stats.scheduled, 1u);
    }
  }

  auto conn = connect_to(daemon.svc.port());
  ServiceRequest shutdown;
  shutdown.seq = 9000;
  shutdown.op = ServiceOp::kShutdown;
  const auto rsp = exchange(conn.fd(), shutdown);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->kind, ServiceResponseKind::kOk);
  daemon.join();

  // Deterministic accounting across all interleavings.
  EXPECT_EQ(daemon.stats.requests,
            static_cast<std::size_t>(kWarm + kCold) + 1u);
  EXPECT_EQ(daemon.stats.queries, static_cast<std::size_t>(kWarm + kCold));
  EXPECT_EQ(daemon.stats.bad_requests, 0u);
  EXPECT_EQ(daemon.stats.evicted, 0u);
  EXPECT_EQ(daemon.stats.jobs_requested,
            static_cast<std::size_t>(kWarm) * spec.size() +
                static_cast<std::size_t>(kCold));
  EXPECT_EQ(daemon.stats.cache_hits,
            static_cast<std::size_t>(kWarm) * spec.size());
  EXPECT_EQ(daemon.stats.jobs_scheduled, static_cast<std::size_t>(kCold));
}

TEST(ServiceDaemon, StalledClientIsEvictedWithoutBlockingOthers) {
  // A client that requests a large response and then stops reading must
  // not wedge the daemon: pings on other connections stay fast, and the
  // stalled connection is evicted once its write deadline expires.
  const auto store = temp_path("stall.jsonl");
  core::SweepSpec spec;
  spec.topologies = {"grid:4x4"};
  spec.strategies = {"random"};
  for (int i = 1; i <= 80; ++i)
    spec.workloads.push_back("fib:" + std::to_string(i));
  spec.seeds = {1, 2, 3};
  fabricate_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  opt.poll_ms = 10;
  opt.write_timeout_ms = 300;
  opt.sndbuf_bytes = 8192;  // bound the kernel's share of the stall
  ServiceThread daemon(opt);
  ASSERT_GT(daemon.svc.port(), 0);

  // Raw socket with a tiny receive buffer (set before connect so the
  // advertised window stays small): the big CSV cannot drain into it.
  const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  const int rcvbuf = 4096;
  ::setsockopt(stalled, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.svc.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(stalled, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ServiceRequest big;
  big.seq = 77;
  big.op = ServiceOp::kQuery;
  big.query.sweep = spec;
  big.query.want_csv = true;  // ~hundreds of KiB of response
  ASSERT_TRUE(util::send_frame(stalled, big.encode(), in_1s(),
                               exp::kServiceMaxFrameBytes));
  // ... and never read a byte.

  // Meanwhile a well-behaved connection keeps getting served: pings
  // round-trip within their 1 s deadline and a warm query still answers.
  auto other = connect_to(daemon.svc.port());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ServiceRequest ping;
    ping.seq = 100 + i;
    ping.op = ServiceOp::kPing;
    const auto rsp = exchange(other.fd(), ping);
    ASSERT_TRUE(rsp.has_value()) << "ping " << i << " while a client stalls";
    EXPECT_EQ(rsp->kind, ServiceResponseKind::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  exp::ServiceQuery warm;
  warm.sweep = spec;
  warm.sweep.workloads = {"fib:1"};
  WireQueryResult wr;
  ASSERT_TRUE(run_wire_query(other.fd(), warm, 200, wr));
  ASSERT_TRUE(wr.done) << wr.error_text;
  EXPECT_EQ(wr.stats.cached, 3u);

  daemon.svc.stop();
  daemon.join();
  ::close(stalled);
  EXPECT_EQ(daemon.stats.evicted, 1u);
}

TEST(ServiceDaemon, StopMidQueryEndsTheStreamCleanly) {
  // SIGTERM while a query is in flight (commands.cpp routes the signal to
  // Service::stop()) must leave the client with a parseable stream ending
  // in `done` or `error` — never a torn half-frame.
  const auto store = temp_path("sigterm.jsonl");
  const auto spec = small_sweep();
  prebuild_store(spec, store);

  exp::ServiceOptions opt;
  opt.store = store;
  opt.poll_ms = 10;
  opt.job_budget = 1;  // many short slices: stop lands mid-query
  ServiceThread daemon(opt);
  ASSERT_GT(daemon.svc.port(), 0);

  auto conn = connect_to(daemon.svc.port());
  ServiceRequest req;
  req.seq = 55;
  req.op = ServiceOp::kQuery;
  req.query.sweep = spec;
  req.query.sweep.seeds = {301, 302, 303, 304, 305, 306};  // all cold
  ASSERT_TRUE(util::send_frame(conn.fd(), req.encode(), in_1s(),
                               exp::kServiceMaxFrameBytes));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  daemon.svc.stop();

  // Every frame until EOF must parse; the stream must end with done or a
  // shutdown error, whichever the drain raced to.
  bool done = false, error = false;
  while (true) {
    const auto payload =
        util::recv_frame(conn.fd(), in_30s(), exp::kServiceMaxFrameBytes);
    if (!payload) break;  // EOF after the final frame
    const auto rsp = ServiceResponse::parse(*payload);
    ASSERT_TRUE(rsp.has_value()) << "torn or corrupt frame after stop";
    EXPECT_EQ(rsp->seq, 55u);
    if (rsp->kind == ServiceResponseKind::kDone) done = true;
    if (rsp->kind == ServiceResponseKind::kError) {
      error = true;
      EXPECT_EQ(rsp->text, exp::kServiceShuttingDown);
    }
  }
  EXPECT_TRUE(done || error) << "stream ended without done or error";
  daemon.join();
}

}  // namespace
}  // namespace oracle

#endif  // !_WIN32
