// Unit tests for the deterministic RNG substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace oracle {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(1);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 2000; ++i) {
      const auto v = rng.below(static_cast<std::uint64_t>(bound));
      ASSERT_LT(v, static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(23);
  const double p = 0.25;
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.geometric(p));
  // Mean of failures-before-success geometric: (1-p)/p = 3.
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ChanceProbability) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(123);
  Rng a = base.split(1);
  Rng b = base.split(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng x(55), y(55);
  Rng a = x.split(9), b = y.split(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace oracle
