// Focused tests of the Gradient Model's proximity machinery: the gradient
// surface must form correctly (0 at idle PEs, 1 + min neighbor elsewhere,
// clamped at diameter + 1) and updates must only flow via messages.

#include <gtest/gtest.h>

#include "lb/gradient.hpp"
#include "machine/machine.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"
#include "workload/fib.hpp"

namespace oracle::lb {
namespace {

// Run a workload that keeps only PE start_pe busy for a long stretch
// (LocalOnly-like: GM with an enormous hwm never ships work), then inspect
// the proximity field: the busy PE is surrounded by idle PEs, so its
// proximity must settle at 1; all idle PEs sit at 0.
TEST(GmProximity, SurfaceSettlesAroundSingleBusyPe) {
  const auto topo = topo::make_topology("grid:5x5");
  const workload::FibWorkload wl(14, workload::CostModel{100, 40, 40});
  GmParams p;
  p.high_water_mark = 1'000'000;  // never abundant: all work stays on PE 12
  p.interval = 20;
  GradientModel gm(p);
  machine::MachineConfig mc;
  mc.start_pe = 12;  // center
  machine::Machine m(*topo, wl, gm, mc);
  const auto r = m.run();

  // Everything ran on the center PE.
  EXPECT_DOUBLE_EQ(r.pe_utilization[12], 1.0);
  // Idle PEs broadcast proximity 0; the busy PE's proximity rises to 1
  // (one more than its idle neighbors) while loaded, and may drop back to
  // 0 in the final drain — never beyond 1 with idle neighbors all around.
  EXPECT_EQ(gm.proximity_of(0), 0);
  EXPECT_EQ(gm.proximity_of(24), 0);
  EXPECT_GE(gm.proximity_of(12), 0);
  EXPECT_LE(gm.proximity_of(12), 1);
}

TEST(GmProximity, CapIsDiameterPlusOne) {
  // On a ring of 8 (diameter 4), proximity can never exceed 5.
  const auto topo = topo::make_topology("ring:8");
  const workload::FibWorkload wl(12, workload::CostModel{100, 40, 40});
  GmParams p;
  p.low_water_mark = 1'000'000;  // every PE always "idle"
  p.high_water_mark = 2'000'000;
  GradientModel idle_gm(p);
  machine::MachineConfig mc;
  machine::Machine m(*topo, wl, idle_gm, mc);
  m.run();
  for (topo::NodeId pe = 0; pe < 8; ++pe)
    EXPECT_EQ(idle_gm.proximity_of(pe), 0) << "pe " << pe;
}

TEST(GmProximity, NonIdleSystemBoundedByCap) {
  const auto topo = topo::make_topology("grid:4x4");
  const topo::DistanceMatrix dm(*topo);
  const workload::FibWorkload wl(12, workload::CostModel{100, 40, 40});
  GmParams p;  // defaults
  GradientModel gm(p);
  machine::MachineConfig mc;
  machine::Machine m(*topo, wl, gm, mc);
  m.run();
  const auto cap = static_cast<std::int64_t>(dm.diameter()) + 1;
  for (topo::NodeId pe = 0; pe < topo->num_nodes(); ++pe) {
    EXPECT_GE(gm.proximity_of(pe), 0);
    EXPECT_LE(gm.proximity_of(pe), cap);
  }
}

TEST(GmProximity, ProximityDrivesWorkTowardIdleRegions) {
  // With require_gradient on, goal transfers only happen when an idle PE
  // is inferred; the run must still finish and touch remote PEs.
  const auto topo = topo::make_topology("grid:5x5");
  const workload::FibWorkload wl(13, workload::CostModel{100, 40, 40});
  GmParams p;
  p.require_gradient = true;
  GradientModel gm(p);
  machine::MachineConfig mc;
  mc.start_pe = 0;  // corner: work must diffuse across the whole grid
  machine::Machine m(*topo, wl, gm, mc);
  const auto r = m.run();
  int touched = 0;
  for (double u : r.pe_utilization)
    if (u > 0) ++touched;
  EXPECT_GT(touched, 20);  // nearly all 25 PEs reached
}

TEST(GmProximity, ControlMessagesOnlyOnChange) {
  // A system that stays uniformly loaded re-broadcasts rarely: control
  // traffic must be far below one message per PE per cycle.
  const auto topo = topo::make_topology("grid:4x4");
  const workload::FibWorkload wl(13, workload::CostModel{100, 40, 40});
  GmParams p;
  GradientModel gm(p);
  machine::MachineConfig mc;
  machine::Machine m(*topo, wl, gm, mc);
  const auto r = m.run();
  // Upper bound if every PE broadcast every cycle: PEs * (T/interval) *
  // links_per_pe. Require at least 3x fewer.
  const double cycles =
      static_cast<double>(r.completion_time) / static_cast<double>(p.interval);
  const double worst = 16.0 * cycles * 4.0;
  EXPECT_LT(static_cast<double>(r.control_transmissions), worst / 3.0);
}

}  // namespace
}  // namespace oracle::lb
